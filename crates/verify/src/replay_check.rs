//! Record/replay equivalence: full simulation vs the
//! record-once/replay-many path, compared bit for bit.
//!
//! The replay layer (`mrp_cache::replay` + `mrp_cpu::replay_single`)
//! claims that replaying a workload's recorded LLC-bound stream into a
//! policy reproduces full simulation exactly — same IPC bits, same MPKI
//! bits, same cycle count, same hierarchy counters. This module checks
//! that claim the same way the lockstep harness checks the shadow
//! models: run both paths on every `(policy, workload)` cell and report
//! every field that differs. One recording per workload is shared by
//! all policies, exercising the production sharing pattern.

use std::fmt;

use mrp_cache::replay::LlcRecording;
use mrp_cache::{Cache, HierarchyConfig};
use mrp_cpu::{replay_single, SingleCoreResult, SingleCoreSim};
use mrp_runtime::map_indexed;
use mrp_trace::Workload;

use crate::PolicySpec;

/// One field that differed between full simulation and replay.
#[derive(Debug, Clone)]
pub struct ReplayMismatch {
    /// Policy name.
    pub policy: String,
    /// Workload name.
    pub workload: String,
    /// Which result field diverged.
    pub field: &'static str,
    /// Full-simulation value, rendered.
    pub full: String,
    /// Replayed value, rendered.
    pub replayed: String,
}

impl fmt::Display for ReplayMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}/{}] {}: full {} vs replayed {}",
            self.policy, self.workload, self.field, self.full, self.replayed
        )
    }
}

/// Outcome of a replay-equivalence sweep.
#[derive(Debug, Clone)]
pub struct ReplayCheckSummary {
    /// `(policy, workload)` cells compared.
    pub cells: usize,
    /// Every field-level difference found (empty = bit-identical).
    pub mismatches: Vec<ReplayMismatch>,
}

impl ReplayCheckSummary {
    /// Whether every cell replayed bit-identically.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl fmt::Display for ReplayCheckSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "{} replay cells bit-identical", self.cells);
        }
        writeln!(
            f,
            "{} of {} replay cells diverged:",
            self.mismatches.len(),
            self.cells
        )?;
        for m in &self.mismatches {
            writeln!(f, "  {m}")?;
        }
        Ok(())
    }
}

/// Compares every result field, bit-exactly for the floating-point ones.
fn compare(
    policy: &str,
    workload: &str,
    full: &SingleCoreResult,
    replayed: &SingleCoreResult,
) -> Vec<ReplayMismatch> {
    let mut out = Vec::new();
    let mut push = |field: &'static str, a: String, b: String, equal: bool| {
        if !equal {
            out.push(ReplayMismatch {
                policy: policy.to_string(),
                workload: workload.to_string(),
                field,
                full: a,
                replayed: b,
            });
        }
    };
    push(
        "ipc",
        format!("{:?}", full.ipc),
        format!("{:?}", replayed.ipc),
        full.ipc.to_bits() == replayed.ipc.to_bits(),
    );
    push(
        "mpki",
        format!("{:?}", full.mpki),
        format!("{:?}", replayed.mpki),
        full.mpki.to_bits() == replayed.mpki.to_bits(),
    );
    push(
        "instructions",
        full.instructions.to_string(),
        replayed.instructions.to_string(),
        full.instructions == replayed.instructions,
    );
    push(
        "cycles",
        full.cycles.to_string(),
        replayed.cycles.to_string(),
        full.cycles == replayed.cycles,
    );
    push(
        "stats",
        format!("{:?}", full.stats),
        format!("{:?}", replayed.stats),
        full.stats == replayed.stats,
    );
    out
}

/// Runs every `(policy, workload)` cell both ways — full simulation and
/// record+replay — and collects every field that differs. Recordings are
/// taken once per workload and shared across policies, exactly as the
/// experiment drivers share them.
pub fn run_replay_check(
    policies: &[PolicySpec],
    workloads: &[Workload],
    warmup: u64,
    measure: u64,
    seed: u64,
) -> ReplayCheckSummary {
    let config = HierarchyConfig::single_thread();
    let recordings: Vec<LlcRecording> = mrp_runtime::par_map(workloads, |w| {
        LlcRecording::record(w.name(), w.trace(seed), &config, warmup, measure)
    });
    let cells = policies.len() * workloads.len();
    let mismatches: Vec<ReplayMismatch> = map_indexed(cells, |cell| {
        let (pi, wi) = (cell / workloads.len(), cell % workloads.len());
        let spec = &policies[pi];
        let w = &workloads[wi];
        let mut sim = SingleCoreSim::new(config, (spec.build)(&config.llc), w.trace(seed));
        let full = sim.run(warmup, measure);
        let mut cache = Cache::new(config.llc, (spec.build)(&config.llc));
        let replayed = replay_single(&recordings[wi], &mut cache, &config.latencies);
        compare(&spec.name, w.name(), &full, &replayed)
    })
    .into_iter()
    .flatten()
    .collect();
    ReplayCheckSummary { cells, mismatches }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_cache::policies::{Lru, Srrip};
    use mrp_cache::{CacheConfig, ReplacementPolicy};
    use mrp_trace::workloads;
    use std::sync::Arc;

    fn spec(name: &'static str) -> PolicySpec {
        PolicySpec::new(
            name,
            Arc::new(
                move |llc: &CacheConfig| -> Box<dyn ReplacementPolicy + Send> {
                    match name {
                        "lru" => Box::new(Lru::new(llc.sets(), llc.associativity())),
                        _ => Box::new(Srrip::new(llc.sets(), llc.associativity())),
                    }
                },
            ),
        )
    }

    #[test]
    fn replay_matches_full_simulation_on_small_cells() {
        let suite = workloads::suite();
        let summary = run_replay_check(
            &[spec("lru"), spec("srrip")],
            &suite[..2],
            10_000,
            40_000,
            5,
        );
        assert_eq!(summary.cells, 4);
        assert!(summary.is_clean(), "{summary}");
    }

    #[test]
    fn mismatch_rendering_names_the_cell_and_field() {
        let a = SingleCoreResult {
            ipc: 1.0,
            mpki: 2.0,
            instructions: 100,
            cycles: 200,
            stats: Default::default(),
        };
        let mut b = a;
        b.cycles = 201;
        let mismatches = compare("lru", "stream.a", &a, &b);
        assert_eq!(mismatches.len(), 1);
        let rendered = mismatches[0].to_string();
        assert!(rendered.contains("lru/stream.a"), "{rendered}");
        assert!(rendered.contains("cycles"), "{rendered}");
    }
}

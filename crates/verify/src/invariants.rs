//! Structural simulation invariants.
//!
//! Each check returns `Err(detail)` instead of panicking so the lockstep
//! driver can fold violations into a bounded
//! [`crate::divergence::DivergenceReport`]. The same conditions are also
//! wired as `debug_assert!`s inside the hot paths themselves
//! (`mrp-cache`, `mrp-core`), where they run for free in debug builds and
//! under the CI debug-assertions job.

use mrp_cache::{Cache, CacheStats};
use mrp_core::tables::WeightTables;

use crate::reference::ReferenceCache;

/// Checks one set of the optimized SoA cache: valid-bitmask width within
/// the associativity, occupancy ≤ associativity, every resident block
/// actually mapping to this set, and no duplicate residents.
pub fn check_cache_set(cache: &Cache, set: u32) -> Result<(), String> {
    let assoc = cache.config().associativity();
    let mask = cache.valid_mask(set);
    if assoc < 64 && mask >> assoc != 0 {
        return Err(format!(
            "set {set}: valid bitmask {mask:#x} has bits beyond associativity {assoc}"
        ));
    }
    let occupancy = mask.count_ones();
    if occupancy > assoc {
        return Err(format!(
            "set {set}: occupancy {occupancy} exceeds associativity {assoc}"
        ));
    }
    let mut seen: Vec<u64> = Vec::with_capacity(occupancy as usize);
    for way in 0..assoc {
        let Some(block) = cache.way_block(set, way) else {
            continue;
        };
        let home = cache.config().set_of(block);
        if home != set {
            return Err(format!(
                "set {set} way {way}: resident block {block:#x} maps to set {home}"
            ));
        }
        if seen.contains(&block) {
            return Err(format!(
                "set {set} way {way}: duplicate resident block {block:#x}"
            ));
        }
        seen.push(block);
    }
    Ok(())
}

/// Checks way-for-way agreement of one set between the optimized cache
/// and its shadow reference.
pub fn check_sets_agree(opt: &Cache, reference: &ReferenceCache, set: u32) -> Result<(), String> {
    for way in 0..opt.config().associativity() {
        let o = opt.way_block(set, way);
        let r = reference.way_block(set, way);
        if o != r {
            return Err(format!(
                "set {set} way {way}: optimized holds {o:?}, reference holds {r:?}"
            ));
        }
    }
    Ok(())
}

/// Checks that the optimized and reference caches accumulated identical
/// statistics over a run.
pub fn check_stats_agree(opt: &CacheStats, reference: &CacheStats) -> Result<(), String> {
    if opt == reference {
        Ok(())
    } else {
        Err(format!(
            "stats diverged: optimized {opt:?} vs reference {reference:?}"
        ))
    }
}

/// The oracle bound: no policy's demand-miss count on the recorded LLC
/// stream may beat MIN's (Belady with optimal bypass) on the same stream.
pub fn check_min_bound(policy_misses: u64, min_misses: u64) -> Result<(), String> {
    if policy_misses >= min_misses {
        Ok(())
    } else {
        Err(format!(
            "MIN bound violated: policy took {policy_misses} demand misses, \
             MIN floor is {min_misses}"
        ))
    }
}

/// Checks every weight in the arena against the tables' configured
/// saturation bounds.
pub fn check_weight_bounds(tables: &WeightTables) -> Result<(), String> {
    let (min, max) = tables.weight_bounds();
    for table in 0..tables.len() {
        let size = tables.base(table + 1) - tables.base(table);
        for index in 0..size {
            let w = tables.weight(table, index as u16);
            if w < min || w > max {
                return Err(format!(
                    "weight[{table}][{index}] = {w} outside saturation bounds [{min}, {max}]"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_cache::policies::Lru;
    use mrp_cache::CacheConfig;
    use mrp_core::feature::{Feature, FeatureKind};
    use mrp_trace::MemoryAccess;

    #[test]
    fn healthy_cache_passes_set_checks() {
        let config = CacheConfig::new(64 * 8, 4);
        let mut c = Cache::new(
            config,
            Box::new(Lru::new(config.sets(), config.associativity())),
        );
        for i in 0..20u64 {
            c.access(&MemoryAccess::load(0x400000, i * 64), false);
            for set in 0..config.sets() {
                check_cache_set(&c, set).expect("invariant");
            }
        }
    }

    #[test]
    fn min_bound_accepts_equality_and_rejects_beating() {
        assert!(check_min_bound(10, 10).is_ok());
        assert!(check_min_bound(11, 10).is_ok());
        assert!(check_min_bound(9, 10).is_err());
    }

    #[test]
    fn fresh_weight_tables_are_in_bounds() {
        let features = vec![
            Feature::new(16, FeatureKind::Bias, false),
            Feature::new(6, FeatureKind::Burst, true),
        ];
        let tables = WeightTables::new(&features);
        check_weight_bounds(&tables).expect("zeroed tables in bounds");
    }
}

//! Kernel-identity pass: every hot-path kernel against the interpretive
//! reference.
//!
//! The lane-SoA rewrite of the index hot path (see `mrp_core::plan`)
//! left four ways to compute the same arena offsets:
//!
//! 1. the interpretive reference — [`Feature::index`] plus a running
//!    table base, the definition the paper gives;
//! 2. the per-feature compiled path
//!    ([`FeaturePlan::compute_offsets_compiled`]);
//! 3. the lane kernel at each available SIMD level
//!    ([`FeaturePlan::compute_offsets_with`] over
//!    [`simd::available_levels`], which pairs AVX2 against scalar on
//!    machines that have it); and
//! 4. the batched front-end ([`FeaturePlan::compute_offsets_batch`]) at
//!    widths 1, half, and [`MAX_BATCH`].
//!
//! This pass fuzzes feature sets ([`gen_features`]) and access contexts
//! per job and asserts all four agree bit for bit, then randomizes the
//! weight arena and asserts [`WeightTables::confidence_with`] agrees
//! across levels with a per-table weight-sum reference. Any mismatch
//! reproduces from `(seed, job)` alone.
//!
//! A sibling pass ([`run_train_kernel_check`]) covers the write side: the
//! batched saturating weight-update kernel ([`simd::apply_events_i8`]) is
//! checked bit-identical to the one-event-at-a-time scalar reference on
//! fuzzed packed-event buffers — duplicate offsets (same- and mixed-sign),
//! weights pinned at the saturation bounds, buffer lengths straddling the
//! vector threshold and the chunk boundary, and every weight-bounds pair
//! the ablations use — at every available SIMD level.

use mrp_core::context::{FeatureContext, HISTORY_DEPTH};
use mrp_core::plan::MAX_BATCH;
use mrp_core::simd::{self, ApplyScratch, GATHER_PAD};
use mrp_core::tables::WeightTables;
use mrp_core::{Feature, FeaturePlan};
use mrp_runtime::map_indexed;

use crate::divergence::{Divergence, DivergenceReport};
use crate::fuzzer::{gen_features, SplitMix};

/// Fuzzed contexts checked per job. Each context is compared across all
/// kernels and levels, so a few hundred already cover the flag
/// combinations, warm/cold history, and extreme PC/address patterns.
const CONTEXTS_PER_JOB: usize = 384;

/// Batch widths exercised against the per-context path.
const BATCH_WIDTHS: [usize; 3] = [1, MAX_BATCH / 2, MAX_BATCH];

/// An owned fuzzed access context ([`FeatureContext`] borrows the PC
/// history, so the fuzzer stores it inline and lends out views).
struct CtxSpec {
    pc: u64,
    address: u64,
    history: [u64; HISTORY_DEPTH],
    history_len: usize,
    is_mru: bool,
    is_insert: bool,
    last_miss: bool,
}

impl CtxSpec {
    fn random(rng: &mut SplitMix) -> Self {
        let mut history = [0u64; HISTORY_DEPTH];
        for slot in &mut history {
            *slot = rng.next_u64();
        }
        // Every eighth context pins PC/address to an extreme so the fold
        // and shift paths see all-ones and all-zeros lanes.
        let (pc, address) = match rng.below(8) {
            0 => (u64::MAX, 0),
            1 => (0, u64::MAX),
            _ => (rng.next_u64(), rng.next_u64()),
        };
        CtxSpec {
            pc,
            address,
            history,
            history_len: rng.below(HISTORY_DEPTH as u64 + 1) as usize,
            is_mru: rng.below(2) == 1,
            is_insert: rng.below(2) == 1,
            last_miss: rng.below(2) == 1,
        }
    }

    fn view(&self) -> FeatureContext<'_> {
        FeatureContext {
            pc: self.pc,
            address: self.address,
            pc_history: &self.history[..self.history_len],
            is_mru: self.is_mru,
            is_insert: self.is_insert,
            last_miss: self.last_miss,
        }
    }
}

/// The interpretive reference: each feature's own index plus its table's
/// running arena base — the definition every optimized kernel must match.
fn reference_offsets(features: &[Feature], bases: &[u16], ctx: &FeatureContext<'_>) -> Vec<u16> {
    features
        .iter()
        .zip(bases)
        .map(|(f, base)| base + f.index(ctx))
        .collect()
}

/// Per-table weight-sum confidence reference, bypassing the gather-sum
/// kernel entirely.
fn reference_confidence(
    tables: &WeightTables,
    features: &[Feature],
    ctx: &FeatureContext<'_>,
) -> i32 {
    features
        .iter()
        .enumerate()
        .map(|(t, f)| i32::from(tables.weight(t, f.index(ctx))))
        .sum()
}

/// Drives every weight in the arena to a random value within the
/// saturation bounds, so confidence sums exercise mixed-sign weights.
fn randomize_weights(tables: &mut WeightTables, rng: &mut SplitMix) {
    let (min, max) = tables.weight_bounds();
    let span = i64::from(max) - i64::from(min) + 1;
    for offset in 0..tables.arena_len() {
        let target = i64::from(min) + rng.below(span as u64) as i64;
        let offset = offset as u16;
        for _ in 0..target.abs() {
            if target >= 0 {
                tables.increment_at(offset);
            } else {
                tables.decrement_at(offset);
            }
        }
    }
}

/// Feature-set notation used as the divergence subject, mirroring the
/// predictor lockstep's reporting.
fn notation(features: &[Feature]) -> String {
    features
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Runs the kernel-identity check for one `(seed, job)` pair.
pub fn check_kernels_job(seed: u64, job: usize) -> DivergenceReport {
    let mut rng = SplitMix::new(seed ^ (job as u64).wrapping_mul(0xd6e8_feb8_6659_fd93));
    let features = gen_features(seed, job);
    let subject = notation(&features);
    let plan = FeaturePlan::new(&features);
    let mut tables = WeightTables::new(&features);
    randomize_weights(&mut tables, &mut rng);
    let bases: Vec<u16> = features
        .iter()
        .scan(0u16, |base, f| {
            let this = *base;
            *base += f.table_size() as u16;
            Some(this)
        })
        .collect();

    let specs: Vec<CtxSpec> = (0..CONTEXTS_PER_JOB)
        .map(|_| CtxSpec::random(&mut rng))
        .collect();
    let mut report = DivergenceReport::default();
    let push = |report: &mut DivergenceReport, index: usize, detail: String| {
        report.push(Divergence {
            access_index: index,
            access: None,
            subject: subject.clone(),
            detail,
        });
    };

    // Per-context identity: reference vs compiled vs each lane level,
    // and the confidence kernel family vs the per-table weight sum.
    let mut references = Vec::with_capacity(specs.len());
    let mut out = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let ctx = spec.view();
        let reference = reference_offsets(&features, &bases, &ctx);
        plan.compute_offsets_compiled(&ctx, &mut out);
        if out != reference {
            push(
                &mut report,
                i,
                format!("compiled offsets {out:?} != reference {reference:?}"),
            );
        }
        for &level in simd::available_levels() {
            plan.compute_offsets_with(level, &ctx, &mut out);
            if out != reference {
                push(
                    &mut report,
                    i,
                    format!(
                        "{} lane offsets {out:?} != reference {reference:?}",
                        level.name()
                    ),
                );
            }
            let confidence = tables.confidence_with(level, &reference);
            let expected = reference_confidence(&tables, &features, &ctx);
            if confidence != expected {
                push(
                    &mut report,
                    i,
                    format!(
                        "{} confidence {confidence} != reference {expected}",
                        level.name()
                    ),
                );
            }
        }
        references.push(reference);
    }

    // Batched front-end identity: every batch width must reproduce the
    // per-context offsets exactly, at every chunk alignment.
    let len = features.len();
    let mut batch_out = Vec::new();
    for width in BATCH_WIDTHS {
        for (chunk_index, chunk) in specs.chunks(width).enumerate() {
            let views: Vec<FeatureContext<'_>> = chunk.iter().map(CtxSpec::view).collect();
            plan.compute_offsets_batch(&views, &mut batch_out);
            for (i, _) in chunk.iter().enumerate() {
                let global = chunk_index * width + i;
                let got = &batch_out[i * len..(i + 1) * len];
                if got != references[global].as_slice() {
                    push(
                        &mut report,
                        global,
                        format!(
                            "batch(width {width}) offsets {got:?} != per-context {:?}",
                            references[global]
                        ),
                    );
                }
            }
        }
    }
    report
}

/// Runs the kernel-identity pass across `jobs` fuzz jobs in parallel,
/// returning one report per job.
pub fn run_kernel_check(seed: u64, jobs: usize) -> Vec<DivergenceReport> {
    map_indexed(jobs.max(1), |job| check_kernels_job(seed, job))
}

/// Fuzzed event buffers checked per train-kernel job.
const BUFFERS_PER_JOB: usize = 48;

/// Weight-bounds pairs the train kernel must honor: the paper's 6-bit
/// weights, the narrowest and widest `with_weight_bits` ablations, and
/// SDBP's unsigned 2-bit counters.
const BOUNDS: [(i8, i8); 4] = [(-32, 31), (-2, 1), (-128, 127), (0, 3)];

/// The one-event-at-a-time scalar reference for the batched saturating
/// weight-update kernel: the definition `simd::apply_events_i8` must
/// reproduce bit for bit at every level, in any chunking.
fn reference_apply_events(weights: &mut [i8], events: &[u32], min: i8, max: i8) {
    for &event in events {
        let w = &mut weights[(event >> 1) as usize & 0xffff];
        *w = if event & 1 == 1 {
            (*w).saturating_sub(1).max(min)
        } else {
            (*w).saturating_add(1).min(max)
        };
    }
}

/// One fuzzed apply problem: an arena, its bounds, and an event buffer.
struct ApplySpec {
    weights: Vec<i8>,
    events: Vec<u32>,
    min: i8,
    max: i8,
}

impl ApplySpec {
    fn random(rng: &mut SplitMix) -> Self {
        let (min, max) = BOUNDS[rng.below(BOUNDS.len() as u64) as usize];
        let arena = 8 + rng.below(2041) as usize;
        let mut weights = vec![0i8; arena + GATHER_PAD];
        let span = i64::from(max) - i64::from(min) + 1;
        for w in &mut weights[..arena] {
            // Every fourth weight pinned at a saturation bound, so the
            // clamp path is exercised from the first event.
            *w = match rng.below(4) {
                0 => {
                    if rng.below(2) == 0 {
                        min
                    } else {
                        max
                    }
                }
                _ => (i64::from(min) + rng.below(span as u64) as i64) as i8,
            };
        }
        // Buffer lengths straddle the scalar-fold threshold, one vector
        // pass, and the chunk boundary; a small offset pool forces
        // duplicate offsets (same- and mixed-sign runs).
        let count = match rng.below(4) {
            0 => rng.below(16) as usize,
            1 => 16 + rng.below(240) as usize,
            2 => 256 + rng.below(3840) as usize,
            _ => 4096 + rng.below(4096) as usize,
        };
        let pool = 1 + rng.below(arena as u64) as usize;
        let events = (0..count)
            .map(|_| {
                let offset = rng.below(pool as u64) as u32;
                (offset << 1) | (rng.next_u64() & 1) as u32
            })
            .collect();
        ApplySpec {
            weights,
            events,
            min,
            max,
        }
    }
}

/// Runs the train-kernel identity check for one `(seed, job)` pair.
pub fn check_train_kernel_job(seed: u64, job: usize) -> DivergenceReport {
    let mut rng = SplitMix::new(seed ^ (job as u64).wrapping_mul(0xa076_1d64_78bd_642f));
    let mut report = DivergenceReport::default();
    let mut scratch = ApplyScratch::default();
    for i in 0..BUFFERS_PER_JOB {
        let spec = ApplySpec::random(&mut rng);
        let mut expected = spec.weights.clone();
        reference_apply_events(&mut expected, &spec.events, spec.min, spec.max);
        for &level in simd::available_levels() {
            let mut got = spec.weights.clone();
            simd::apply_events_i8(
                &mut got,
                &spec.events,
                spec.min,
                spec.max,
                level,
                &mut scratch,
            );
            if got != expected {
                let first = got
                    .iter()
                    .zip(&expected)
                    .position(|(g, e)| g != e)
                    .unwrap_or(0);
                report.push(Divergence {
                    access_index: i,
                    access: None,
                    subject: format!(
                        "train kernel ({} events, bounds {}..={})",
                        spec.events.len(),
                        spec.min,
                        spec.max
                    ),
                    detail: format!(
                        "{} apply diverges from scalar reference at offset {first}: \
                         {} != {}",
                        level.name(),
                        got[first],
                        expected[first]
                    ),
                });
            }
        }
    }
    report
}

/// Runs the train-kernel identity pass across `jobs` fuzz jobs in
/// parallel, returning one report per job.
pub fn run_train_kernel_check(seed: u64, jobs: usize) -> Vec<DivergenceReport> {
    map_indexed(jobs.max(1), |job| check_train_kernel_job(seed, job))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzzed_kernels_are_identical_across_paths() {
        for report in run_kernel_check(42, 4) {
            assert!(report.is_clean(), "{report}");
        }
    }

    #[test]
    fn fuzzed_train_kernel_is_identical_across_levels() {
        for report in run_train_kernel_check(42, 4) {
            assert!(report.is_clean(), "{report}");
        }
    }

    #[test]
    fn train_kernel_check_is_deterministic_in_seed() {
        let a = check_train_kernel_job(7, 2);
        let b = check_train_kernel_job(7, 2);
        assert_eq!(a.total, b.total);
        assert!(a.is_clean());
    }

    #[test]
    fn train_kernel_specs_cover_duplicates_and_pinned_bounds() {
        // The fuzzer must actually generate the hard cases the pass
        // exists for: duplicate offsets with mixed signs, and weights
        // starting at the saturation bounds.
        let mut rng = SplitMix::new(42);
        let mut mixed_duplicates = false;
        let mut pinned = false;
        for _ in 0..BUFFERS_PER_JOB {
            let spec = ApplySpec::random(&mut rng);
            let mut inc = std::collections::HashSet::new();
            let mut dec = std::collections::HashSet::new();
            for &e in &spec.events {
                if e & 1 == 1 {
                    dec.insert(e >> 1);
                } else {
                    inc.insert(e >> 1);
                }
            }
            mixed_duplicates |= inc.intersection(&dec).next().is_some();
            pinned |= spec.weights.iter().any(|&w| w == spec.min || w == spec.max);
        }
        assert!(
            mixed_duplicates,
            "no mixed-sign duplicate offsets generated"
        );
        assert!(pinned, "no weights pinned at the saturation bounds");
    }

    #[test]
    fn kernel_check_is_deterministic_in_seed() {
        // Same seed, same verdict and same divergence count — the pass
        // must reproduce from (seed, job) alone.
        let a = check_kernels_job(7, 2);
        let b = check_kernels_job(7, 2);
        assert_eq!(a.total, b.total);
        assert!(a.is_clean());
    }

    #[test]
    fn randomized_weights_cover_both_signs() {
        let features = gen_features(3, 0);
        let mut tables = WeightTables::new(&features);
        let mut rng = SplitMix::new(99);
        randomize_weights(&mut tables, &mut rng);
        let (min, max) = tables.weight_bounds();
        let weights: Vec<i8> = (0..tables.arena_len())
            .map(|o| {
                let t = features
                    .iter()
                    .scan(0usize, |b, f| {
                        let r = *b;
                        *b += f.table_size();
                        Some(r)
                    })
                    .take_while(|&b| b <= o)
                    .count()
                    - 1;
                let base: usize = features[..t].iter().map(|f| f.table_size()).sum();
                tables.weight(t, (o - base) as u16)
            })
            .collect();
        assert!(weights.iter().any(|&w| w < 0) && weights.iter().any(|&w| w > 0));
        assert!(weights.iter().all(|&w| w >= min && w <= max));
    }
}

//! Bounded divergence reporting.
//!
//! A lockstep run does not stop at the first mismatch: it records the
//! first [`MAX_REPORTED`] divergences with full access context (index,
//! trace record, subject, detail) and keeps counting the rest, so one
//! report shows whether a failure is a single glitch or a systematic
//! drift — and the run still terminates instead of panicking mid-stream.

use std::fmt;

use mrp_trace::MemoryAccess;

/// Divergences kept with full context per report; the rest only count.
pub const MAX_REPORTED: usize = 8;

/// One observed disagreement between the optimized and reference models
/// (or a violated invariant), with enough context to reproduce it.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index of the access in the driving stream. For end-of-run checks
    /// (final stats, weight sweeps) this is the stream length.
    pub access_index: usize,
    /// The access being simulated when the divergence fired, if any.
    pub access: Option<MemoryAccess>,
    /// What was being verified: a policy name or a feature-set notation.
    pub subject: String,
    /// What disagreed, with both sides' values.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] access {}: {}",
            self.subject, self.access_index, self.detail
        )?;
        if let Some(a) = &self.access {
            write!(
                f,
                " (pc={:#x} address={:#x} block={:#x} kind={})",
                a.pc,
                a.address,
                a.block(),
                a.kind
            )?;
        }
        Ok(())
    }
}

/// Accumulates divergences for one lockstep run, keeping full context for
/// the first [`MAX_REPORTED`] and a total count beyond that.
#[derive(Debug, Clone, Default)]
pub struct DivergenceReport {
    /// The first [`MAX_REPORTED`] divergences, in stream order.
    pub recorded: Vec<Divergence>,
    /// Total divergences observed, including unrecorded ones.
    pub total: usize,
}

impl DivergenceReport {
    /// Records a divergence (context kept only below the cap).
    pub fn push(&mut self, divergence: Divergence) {
        self.total += 1;
        if self.recorded.len() < MAX_REPORTED {
            self.recorded.push(divergence);
        }
    }

    /// Whether the run was divergence-free.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Whether the context buffer is full — callers may stop early, the
    /// report cannot get more informative.
    pub fn saturated(&self) -> bool {
        self.total >= MAX_REPORTED
    }

    /// Folds another report into this one (context still capped).
    pub fn merge(&mut self, other: &DivergenceReport) {
        self.total += other.total;
        for d in &other.recorded {
            if self.recorded.len() >= MAX_REPORTED {
                break;
            }
            self.recorded.push(d.clone());
        }
    }
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("clean");
        }
        writeln!(
            f,
            "{} divergence(s), first {}:",
            self.total,
            self.recorded.len()
        )?;
        for d in &self.recorded {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: usize) -> Divergence {
        Divergence {
            access_index: i,
            access: Some(MemoryAccess::load(0x400000, i as u64 * 64)),
            subject: "lru".to_string(),
            detail: format!("mismatch {i}"),
        }
    }

    #[test]
    fn report_counts_beyond_the_context_cap() {
        let mut r = DivergenceReport::default();
        for i in 0..MAX_REPORTED + 5 {
            r.push(d(i));
        }
        assert_eq!(r.total, MAX_REPORTED + 5);
        assert_eq!(r.recorded.len(), MAX_REPORTED);
        assert!(r.saturated());
        assert!(!r.is_clean());
    }

    #[test]
    fn merge_preserves_totals() {
        let mut a = DivergenceReport::default();
        let mut b = DivergenceReport::default();
        for i in 0..6 {
            a.push(d(i));
            b.push(d(100 + i));
        }
        a.merge(&b);
        assert_eq!(a.total, 12);
        assert_eq!(a.recorded.len(), MAX_REPORTED);
    }

    #[test]
    fn display_includes_access_context() {
        let rendered = d(3).to_string();
        assert!(rendered.contains("access 3"), "{rendered}");
        assert!(rendered.contains("block=0x3"), "{rendered}");
    }
}

//! Lockstep differential execution of optimized vs reference models.
//!
//! [`DualCache`] drives the optimized [`Cache`] and the shadow
//! [`ReferenceCache`] with the same access stream and two
//! identically-constructed policy instances, comparing access results,
//! per-set contents, structural invariants, and final statistics.
//! [`PredictorPair`] does the same for the predictor: compiled feature
//! plan + flat weight arena vs interpretive indices + per-table vectors,
//! comparing index vectors, confidence sums, and (periodically) the
//! entire weight state.

use mrp_cache::{Cache, CacheConfig, ReplacementPolicy, UpcomingAccess, LLC_LOOKAHEAD};
use mrp_core::context::{FeatureContext, PcHistory};
use mrp_core::feature::Feature;
use mrp_core::MultiperspectivePredictor;
use mrp_trace::MemoryAccess;

use crate::divergence::{Divergence, DivergenceReport};
use crate::invariants;
use crate::reference::{ReferenceCache, ReferencePredictor};

/// One fuzz-stream element: the access plus its prefetch flag.
pub type StreamItem = (MemoryAccess, bool);

/// The optimized cache and its shadow reference, stepped in lockstep.
pub struct DualCache {
    opt: Cache,
    reference: ReferenceCache,
    subject: String,
    /// Whether the optimized side's policy consumes upcoming-access
    /// windows ([`ReplacementPolicy::uses_upcoming_accesses`]).
    windowed: bool,
    window_buf: Vec<UpcomingAccess>,
}

impl DualCache {
    /// Builds both sides from one policy factory, called twice so each
    /// side owns an identically-constructed instance.
    pub fn new(
        llc: CacheConfig,
        subject: &str,
        build: &dyn Fn(&CacheConfig) -> Box<dyn ReplacementPolicy + Send>,
    ) -> Self {
        DualCache::with_policies(llc, subject, build(&llc), build(&llc))
    }

    /// Pairs explicit policy instances. Tests use this to plant an
    /// intentionally buggy optimized-side policy and prove the lockstep
    /// harness catches it.
    pub fn with_policies(
        llc: CacheConfig,
        subject: &str,
        opt_policy: Box<dyn ReplacementPolicy + Send>,
        ref_policy: Box<dyn ReplacementPolicy + Send>,
    ) -> Self {
        let opt = Cache::new(llc, opt_policy);
        let windowed = opt.policy().uses_upcoming_accesses();
        DualCache {
            opt,
            reference: ReferenceCache::new(llc, ref_policy),
            subject: subject.to_string(),
            windowed,
            window_buf: Vec::with_capacity(LLC_LOOKAHEAD),
        }
    }

    /// Announces the next stream span to the **optimized side only**.
    /// The reference stays fused, so every lockstep run over a
    /// window-consuming policy doubles as a proof that its split
    /// predict/train pipeline is bit-identical to the fused path. A
    /// no-op for policies that ignore windows. Window contents are a
    /// pure function of the stream slice, so the trace shrinker stays
    /// sound.
    pub fn announce_window(&mut self, upcoming: &[StreamItem]) {
        if !self.windowed {
            return;
        }
        self.window_buf.clear();
        self.window_buf.extend(
            upcoming
                .iter()
                .map(|(access, is_prefetch)| UpcomingAccess::new(access, *is_prefetch)),
        );
        self.opt.policy_mut().on_upcoming_accesses(&self.window_buf);
    }

    /// Simulates one access on both sides and records any divergence:
    /// mismatched access results (hit/miss/bypass/evicted block),
    /// structural invariant violations, or set-content disagreement.
    pub fn step(
        &mut self,
        index: usize,
        access: &MemoryAccess,
        is_prefetch: bool,
        report: &mut DivergenceReport,
    ) {
        if !is_prefetch {
            self.opt.policy_mut().on_core_access(access);
            self.reference.policy_mut().on_core_access(access);
        }
        let r_opt = self.opt.access(access, is_prefetch);
        let r_ref = self.reference.access(access, is_prefetch);
        let divergence = |detail: String| Divergence {
            access_index: index,
            access: Some(*access),
            subject: self.subject.clone(),
            detail,
        };
        if r_opt != r_ref {
            report.push(divergence(format!(
                "access result diverged: optimized {r_opt:?} vs reference {r_ref:?}"
            )));
        }
        let set = self.opt.config().set_of(access.block());
        if let Err(detail) = invariants::check_cache_set(&self.opt, set) {
            report.push(divergence(detail));
        }
        if let Err(detail) = invariants::check_sets_agree(&self.opt, &self.reference, set) {
            report.push(divergence(detail));
        }
    }

    /// End-of-run check: both sides' statistics must be identical.
    pub fn finish(&self, stream_len: usize, report: &mut DivergenceReport) {
        if let Err(detail) = invariants::check_stats_agree(self.opt.stats(), self.reference.stats())
        {
            report.push(Divergence {
                access_index: stream_len,
                access: None,
                subject: self.subject.clone(),
                detail,
            });
        }
    }

    /// Demand misses accumulated by the optimized side (for the MIN
    /// bound).
    pub fn demand_misses(&self) -> u64 {
        self.opt.stats().demand_misses
    }
}

/// Runs a whole stream through a [`DualCache`], stopping early once the
/// divergence report is saturated. Returns the report and the optimized
/// side's demand-miss count.
///
/// At every [`LLC_LOOKAHEAD`] boundary the upcoming stream span is
/// announced to the optimized side (see [`DualCache::announce_window`]),
/// so window-consuming policies are fuzzed on their batched predict path
/// against the always-fused reference.
pub fn run_lockstep(
    llc: &CacheConfig,
    subject: &str,
    build: &dyn Fn(&CacheConfig) -> Box<dyn ReplacementPolicy + Send>,
    stream: &[StreamItem],
) -> (DivergenceReport, u64) {
    let mut dual = DualCache::new(*llc, subject, build);
    let mut report = DivergenceReport::default();
    for (i, (access, is_prefetch)) in stream.iter().enumerate() {
        if i % LLC_LOOKAHEAD == 0 {
            let end = (i + LLC_LOOKAHEAD).min(stream.len());
            dual.announce_window(&stream[i..end]);
        }
        dual.step(i, access, *is_prefetch, &mut report);
        if report.saturated() {
            break;
        }
    }
    dual.finish(stream.len(), &mut report);
    (report, dual.demand_misses())
}

/// The optimized predictor and its shadow reference, stepped in lockstep.
///
/// Context flags (`is_mru`, `is_insert`, `last_miss`) are synthesized
/// from a stable hash of `(pc, address)` rather than from cache state, so
/// a step's inputs are a pure function of the access — which keeps the
/// trace shrinker sound (removing accesses never changes the flags of the
/// ones that remain).
pub struct PredictorPair {
    opt: MultiperspectivePredictor,
    reference: ReferencePredictor,
    /// Arena base offset of each feature's table, for the
    /// `offset == base + index` comparison.
    bases: Vec<u16>,
    idx_buf: Vec<u16>,
    history: PcHistory,
    llc_sets: u32,
    subject: String,
}

impl PredictorPair {
    /// Builds both predictor sides for one feature set.
    pub fn new(features: Vec<Feature>, llc_sets: u32, sampler_sets: u32, theta: i32) -> Self {
        let mut bases = Vec::with_capacity(features.len());
        let mut total = 0usize;
        for f in &features {
            bases.push(total as u16);
            total += f.table_size();
        }
        let subject = features
            .iter()
            .map(Feature::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        PredictorPair {
            opt: MultiperspectivePredictor::new(features.clone(), llc_sets, sampler_sets, theta),
            reference: ReferencePredictor::new(features, llc_sets, sampler_sets, theta),
            bases,
            idx_buf: Vec::new(),
            history: PcHistory::new(),
            llc_sets,
            subject,
        }
    }

    fn divergence(&self, index: usize, access: Option<MemoryAccess>, detail: String) -> Divergence {
        Divergence {
            access_index: index,
            access,
            subject: self.subject.clone(),
            detail,
        }
    }

    /// Steps both predictors on one access: compares the compiled arena
    /// offsets against `base + reference_index` per feature and the
    /// confidence sums, then trains both sides. Every 1024 steps the full
    /// weight state is swept.
    pub fn step(&mut self, index: usize, access: &MemoryAccess, report: &mut DivergenceReport) {
        self.history.push(access.pc);
        let h = stable_hash(access.pc, access.address);
        let ctx = FeatureContext {
            pc: access.pc,
            address: access.address,
            pc_history: self.history.as_slice(),
            is_mru: h & 1 != 0,
            is_insert: h & 2 != 0,
            last_miss: h & 4 != 0,
        };
        let ref_indices = self.reference.compute_indices(&ctx);
        self.opt.compute_indices(&ctx, &mut self.idx_buf);
        if self.idx_buf.len() != ref_indices.len() {
            report.push(self.divergence(
                index,
                Some(*access),
                format!(
                    "index arity diverged: plan emitted {}, reference {}",
                    self.idx_buf.len(),
                    ref_indices.len()
                ),
            ));
            return;
        }
        for (f, (&offset, &ref_index)) in self.idx_buf.iter().zip(&ref_indices).enumerate() {
            let expected = self.bases[f] + ref_index;
            if offset != expected {
                report.push(self.divergence(
                    index,
                    Some(*access),
                    format!(
                        "feature {f} offset diverged: plan {offset}, \
                         base {} + reference index {ref_index} = {expected}",
                        self.bases[f]
                    ),
                ));
            }
        }
        let c_opt = self.opt.confidence(&self.idx_buf);
        let c_ref = self.reference.confidence(&ref_indices);
        if c_opt != c_ref {
            report.push(self.divergence(
                index,
                Some(*access),
                format!("confidence diverged: arena sum {c_opt}, loop-fold sum {c_ref}"),
            ));
        }
        let set = (access.block() % u64::from(self.llc_sets)) as u32;
        self.opt.train(set, access.block(), &self.idx_buf, c_opt);
        self.reference
            .train(set, access.block(), &ref_indices, c_ref);
        if index % 1024 == 1023 {
            self.sweep(index, report);
        }
    }

    /// Full-state comparison: every weight of every table must be
    /// bit-equal across sides and within saturation bounds, and both
    /// samplers must satisfy their structural invariants.
    pub fn sweep(&self, index: usize, report: &mut DivergenceReport) {
        for table in 0..self.reference.features().len() {
            for i in 0..self.reference.table_len(table) {
                let o = self.opt.tables().weight(table, i as u16);
                let r = self.reference.weight(table, i);
                if o != r {
                    report.push(self.divergence(
                        index,
                        None,
                        format!("weight[{table}][{i}] diverged: arena {o}, reference {r}"),
                    ));
                    return; // one weight mismatch implies a flood; report the first
                }
            }
        }
        if let Err(detail) = invariants::check_weight_bounds(self.opt.tables()) {
            report.push(self.divergence(index, None, detail));
        }
        if let Err(detail) = self.opt.sampler().check_invariants() {
            report.push(self.divergence(index, None, format!("optimized sampler: {detail}")));
        }
        if let Err(detail) = self.reference.sampler().check_invariants() {
            report.push(self.divergence(index, None, format!("reference sampler: {detail}")));
        }
    }
}

/// Runs a whole stream through a [`PredictorPair`] (prefetch flags are
/// ignored: the predictor fuzz exercises index/training equivalence, not
/// the cache's prefetch accounting).
pub fn run_predictor_lockstep(
    features: &[Feature],
    llc_sets: u32,
    sampler_sets: u32,
    theta: i32,
    stream: &[StreamItem],
) -> DivergenceReport {
    let mut pair = PredictorPair::new(features.to_vec(), llc_sets, sampler_sets, theta);
    let mut report = DivergenceReport::default();
    for (i, (access, _)) in stream.iter().enumerate() {
        pair.step(i, access, &mut report);
        if report.saturated() {
            break;
        }
    }
    pair.sweep(stream.len(), &mut report);
    report
}

/// Deterministic mixing hash for synthesized context flags (splitmix64
/// finalizer over pc and address).
fn stable_hash(pc: u64, address: u64) -> u64 {
    let mut z = pc ^ address.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_cache::policies::{Lru, Srrip};
    use mrp_core::feature::FeatureKind;

    fn llc() -> CacheConfig {
        CacheConfig::new(64 * 16 * 2, 16) // 2 sets x 16 ways
    }

    fn stream(n: u64) -> Vec<StreamItem> {
        (0..n)
            .map(|i| {
                let block = (i * 7 + (i * i) % 13) % 40;
                (
                    MemoryAccess::load(0x400000 + (i % 9) * 4, block * 64),
                    false,
                )
            })
            .collect()
    }

    #[test]
    fn identical_policies_never_diverge() {
        let c = llc();
        for build in [
            (|llc: &CacheConfig| {
                Box::new(Lru::new(llc.sets(), llc.associativity()))
                    as Box<dyn ReplacementPolicy + Send>
            }) as fn(&CacheConfig) -> Box<dyn ReplacementPolicy + Send>,
            |llc: &CacheConfig| Box::new(Srrip::new(llc.sets(), llc.associativity())),
        ] {
            let (report, _) = run_lockstep(&c, "test", &build, &stream(500));
            assert!(report.is_clean(), "{report}");
        }
    }

    #[test]
    fn mismatched_policies_are_caught() {
        let c = llc();
        let mut dual = DualCache::with_policies(
            c,
            "planted",
            Box::new(Lru::new(c.sets(), c.associativity())),
            Box::new(Srrip::new(c.sets(), c.associativity())),
        );
        let mut report = DivergenceReport::default();
        for (i, (a, p)) in stream(500).iter().enumerate() {
            dual.step(i, a, *p, &mut report);
            if report.saturated() {
                break;
            }
        }
        assert!(!report.is_clean(), "LRU vs SRRIP must diverge");
        assert!(report.recorded[0].access.is_some(), "context captured");
    }

    /// The split predict/train pipeline against the fused path:
    /// `run_lockstep` announces windows to the optimized side only, so a
    /// clean report proves MPPPB's batched window consumption (offsets
    /// precomputed with zeroed flags, patched at access time) is
    /// bit-identical to computing everything at the access. Prefetches
    /// are mixed in to exercise the prefetch-PC substitution and the
    /// history-push skip for prefetch window entries.
    #[test]
    fn windowed_mpppb_split_path_matches_fused_reference() {
        use mrp_core::mpppb::{Mpppb, MpppbConfig};
        let c = CacheConfig::new(64 * 16 * 4, 16); // 4 sets x 16 ways
        for build in [
            (|llc: &CacheConfig| {
                Box::new(Mpppb::new(MpppbConfig::single_thread(llc), llc))
                    as Box<dyn ReplacementPolicy + Send>
            }) as fn(&CacheConfig) -> Box<dyn ReplacementPolicy + Send>,
            |llc: &CacheConfig| {
                Box::new(mrp_core::AdaptiveMpppb::new(
                    MpppbConfig::single_thread(llc),
                    llc,
                ))
            },
        ] {
            let items: Vec<StreamItem> = (0..6_000u64)
                .map(|i| {
                    let mixed = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    let block = mixed % 96;
                    let pc = 0x400000 + (mixed >> 32) % 23 * 4;
                    (MemoryAccess::load(pc, block * 64), mixed % 7 == 0)
                })
                .collect();
            let (report, _) = run_lockstep(&c, "mpppb-windowed", &build, &items);
            assert!(report.is_clean(), "{report}");
        }
    }

    #[test]
    fn predictor_pair_stays_in_lockstep() {
        let features = vec![
            Feature::new(16, FeatureKind::Bias, false),
            Feature::new(6, FeatureKind::Burst, true),
            Feature::new(
                10,
                FeatureKind::Pc {
                    begin: 1,
                    end: 53,
                    which: 3,
                },
                false,
            ),
            Feature::new(15, FeatureKind::Offset { begin: 1, end: 5 }, true),
        ];
        let report = run_predictor_lockstep(&features, 256, 48, 40, &stream(3000));
        assert!(report.is_clean(), "{report}");
    }
}

//! Shadow reference models: the obvious, slow forms of the optimized hot
//! paths.
//!
//! PR 2 specialized three inner loops away from their naive shapes: the
//! tag array became structure-of-arrays with validity bitmasks, feature
//! index computation became compiled straight-line plans, and the weight
//! tables became one flat arena addressed by precombined offsets. The
//! types here keep the naive shapes alive as first-class models —
//! [`ReferenceCache`] stores `Option<u64>` per way, and
//! [`ReferencePredictor`] keeps one `Vec<i8>` per feature indexed through
//! the interpretive [`Feature::index`] path — so the optimized
//! implementations can be checked against them access by access (see
//! [`crate::lockstep`]).
//!
//! Equivalence argument: both caches make identical way choices (the SoA
//! cache fills `(!valid_mask).trailing_zeros()`, the reference fills the
//! first `None` way — the same way; both snapshot occupants in way order
//! before `choose_victim`), and both drive the policy through the same
//! hook sequence, so two identically-constructed deterministic policy
//! instances observe identical inputs and stay bit-identical. For the
//! predictor, the flat arena offset of feature `i` is defined as
//! `base[i] + index[i]`, so per-table indices and arena offsets select
//! the same weights, and both sides apply the same saturation arithmetic.

use mrp_cache::{AccessInfo, AccessResult, CacheConfig, CacheStats, ReplacementPolicy};
use mrp_core::context::FeatureContext;
use mrp_core::feature::Feature;
use mrp_core::sampler::{
    clamp_confidence, event_feature, event_index, event_is_decrement, partial_tag, Sampler,
};
use mrp_core::tables::{WEIGHT_MAX, WEIGHT_MIN};
use mrp_trace::MemoryAccess;

/// The naive array-of-`Option` cache model, driving the same
/// [`ReplacementPolicy`] hook protocol as the optimized
/// [`mrp_cache::Cache`] in the same order.
pub struct ReferenceCache {
    config: CacheConfig,
    /// `slots[set * assoc + way]` is the resident block, if any.
    slots: Vec<Option<u64>>,
    policy: Box<dyn ReplacementPolicy + Send>,
    stats: CacheStats,
}

impl ReferenceCache {
    /// Creates the reference cache.
    pub fn new(config: CacheConfig, policy: Box<dyn ReplacementPolicy + Send>) -> Self {
        let slots = config.sets() as usize * config.associativity() as usize;
        ReferenceCache {
            config,
            slots: vec![None; slots],
            policy,
            stats: CacheStats::default(),
        }
    }

    /// Geometry of this cache.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Mutable access to the policy (for `on_core_access` forwarding).
    pub fn policy_mut(&mut self) -> &mut (dyn ReplacementPolicy + Send) {
        self.policy.as_mut()
    }

    /// The block resident in (`set`, `way`), if any.
    pub fn way_block(&self, set: u32, way: u32) -> Option<u64> {
        self.slots[set as usize * self.config.associativity() as usize + way as usize]
    }

    /// Looks a block up without touching policy or stats state.
    pub fn probe(&self, block: u64) -> bool {
        let set = self.config.set_of(block);
        let assoc = self.config.associativity() as usize;
        let base = set as usize * assoc;
        self.slots[base..base + assoc].contains(&Some(block))
    }

    /// Simulates one access with the reference tag array, mirroring the
    /// optimized cache's hook order exactly: `on_access`, then `on_hit` |
    /// (`should_bypass` → [`choose_victim` → `on_evict`] → `on_fill`).
    pub fn access(&mut self, access: &MemoryAccess, is_prefetch: bool) -> AccessResult {
        let info = AccessInfo::from_access(access, &self.config, is_prefetch);
        self.policy.on_access(&info);

        let assoc = self.config.associativity() as usize;
        let base = info.set as usize * assoc;
        let set_slots = &self.slots[base..base + assoc];
        let hit_way = set_slots.iter().position(|s| *s == Some(info.block));

        if let Some(way) = hit_way {
            if is_prefetch {
                self.stats.prefetch_hits += 1;
            } else {
                self.stats.demand_hits += 1;
            }
            self.policy.on_hit(&info, way as u32);
            return AccessResult::Hit;
        }

        if is_prefetch {
            self.stats.prefetch_fills += 1;
        } else {
            self.stats.demand_misses += 1;
        }

        if self.policy.should_bypass(&info) {
            self.stats.bypasses += 1;
            return AccessResult::Bypassed;
        }

        // The optimized cache fills `(!valid_mask).trailing_zeros()` — the
        // lowest invalid way — which is exactly the first `None` slot here.
        let invalid_way = set_slots.iter().position(|s| s.is_none());
        let mut evicted = None;
        let way = match invalid_way {
            Some(w) => w,
            None => {
                let occupants: Vec<u64> = set_slots.iter().map(|s| s.expect("full set")).collect();
                let victim = self.policy.choose_victim(&info, &occupants);
                assert!(
                    (victim as usize) < assoc,
                    "policy chose way {victim} of {assoc}"
                );
                let block = occupants[victim as usize];
                self.policy.on_evict(info.set, victim, block);
                self.stats.evictions += 1;
                evicted = Some(block);
                victim as usize
            }
        };
        self.slots[base + way] = Some(info.block);
        self.policy.on_fill(&info, way as u32);
        AccessResult::Miss { evicted }
    }
}

/// The naive per-table predictor model: one `Vec<i8>` per feature,
/// indices computed through the interpretive [`Feature::index`] path
/// instead of the compiled [`mrp_core::plan::FeaturePlan`], and weights
/// addressed `(table, index)` instead of by precombined arena offset.
pub struct ReferencePredictor {
    features: Vec<Feature>,
    tables: Vec<Vec<i8>>,
    sampler: Sampler,
    /// LLC sets between consecutive sampled sets (plain-division form of
    /// the optimized predictor's pow2-specialized check).
    sample_stride: u32,
}

impl ReferencePredictor {
    /// Creates the reference predictor with the paper's 6-bit weights,
    /// mirroring [`mrp_core::MultiperspectivePredictor::new`].
    pub fn new(features: Vec<Feature>, llc_sets: u32, sampler_sets: u32, theta: i32) -> Self {
        assert!(!features.is_empty(), "need at least one feature");
        assert!(
            sampler_sets > 0 && sampler_sets <= llc_sets,
            "sampler sets out of range"
        );
        let tables = features.iter().map(|f| vec![0i8; f.table_size()]).collect();
        let assocs: Vec<u8> = features.iter().map(|f| f.assoc).collect();
        ReferencePredictor {
            tables,
            sampler: Sampler::new(sampler_sets, assocs, theta),
            sample_stride: (llc_sets / sampler_sets).max(1),
            features,
        }
    }

    /// The feature set.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// The sampler (for invariant checks).
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// The sampler set `llc_set` maps to, if it is a sampled set.
    fn sampler_set(&self, llc_set: u32) -> Option<u32> {
        if !llc_set.is_multiple_of(self.sample_stride) {
            return None;
        }
        let quotient = llc_set / self.sample_stride;
        (quotient < self.sampler.sets()).then_some(quotient)
    }

    /// Per-table indices for an access context, via [`Feature::index`].
    pub fn compute_indices(&self, ctx: &FeatureContext<'_>) -> Vec<u16> {
        self.features.iter().map(|f| f.index(ctx)).collect()
    }

    /// Confidence: the loop-fold sum of the selected per-table weights.
    pub fn confidence(&self, indices: &[u16]) -> i32 {
        assert_eq!(indices.len(), self.tables.len(), "index vector arity");
        self.tables
            .iter()
            .zip(indices)
            .map(|(table, &i)| i32::from(table[usize::from(i)]))
            .sum()
    }

    /// Presents an access to the sampler if its set is sampled, applying
    /// training with the same saturation arithmetic as the flat arena.
    pub fn train(&mut self, llc_set: u32, block: u64, indices: &[u16], confidence: i32) {
        let Some(sampler_set) = self.sampler_set(llc_set) else {
            return;
        };
        let mut events = Vec::new();
        let _ = self.sampler.access(
            sampler_set,
            partial_tag(block),
            indices,
            clamp_confidence(confidence),
            &mut events,
        );
        // The packed event words carry the feature id in their high bits
        // precisely for this consumer: the reference stores per-table
        // indices, so it needs the feature to pick the table where the
        // optimized predictor's precombined arena offsets don't.
        for &event in &events {
            let w = &mut self.tables[usize::from(event_feature(event))]
                [usize::from(event_index(event))];
            *w = if event_is_decrement(event) {
                (*w).saturating_sub(1).max(WEIGHT_MIN)
            } else {
                (*w).saturating_add(1).min(WEIGHT_MAX)
            };
        }
    }

    /// Reads one weight (for the lockstep full-state sweep).
    pub fn weight(&self, table: usize, index: usize) -> i8 {
        self.tables[table][index]
    }

    /// Size of `table` (for the lockstep full-state sweep).
    pub fn table_len(&self, table: usize) -> usize {
        self.tables[table].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_cache::policies::Lru;
    use mrp_core::feature::FeatureKind;

    fn small() -> ReferenceCache {
        let config = CacheConfig::new(64 * 8, 4); // 2 sets x 4 ways
        ReferenceCache::new(
            config,
            Box::new(Lru::new(config.sets(), config.associativity())),
        )
    }

    fn load(block: u64) -> MemoryAccess {
        MemoryAccess::load(0x400000, block * 64)
    }

    #[test]
    fn reference_cache_mirrors_basic_protocol() {
        let mut c = small();
        assert!(c.access(&load(10), false).is_miss());
        assert!(c.access(&load(10), false).is_hit());
        assert_eq!(c.stats().demand_hits, 1);
        assert_eq!(c.stats().demand_misses, 1);
        assert!(c.probe(10));
        assert!(!c.probe(11));
    }

    #[test]
    fn reference_cache_evicts_lru_from_full_set() {
        let mut c = small();
        for i in 0..4u64 {
            assert_eq!(
                c.access(&load(i * 2), false),
                AccessResult::Miss { evicted: None }
            );
        }
        let r = c.access(&load(8 * 2), false);
        assert_eq!(r, AccessResult::Miss { evicted: Some(0) });
        assert!(!c.probe(0));
    }

    #[test]
    fn reference_predictor_matches_feature_table_sizes() {
        let features = vec![
            Feature::new(16, FeatureKind::Bias, false),
            Feature::new(6, FeatureKind::Burst, true),
        ];
        let p = ReferencePredictor::new(features.clone(), 256, 32, 40);
        assert_eq!(p.table_len(0), 1);
        assert_eq!(p.table_len(1), 256);
        let ctx = FeatureContext {
            pc: 0x400100,
            address: 0x8040,
            pc_history: &[],
            is_mru: false,
            is_insert: true,
            last_miss: false,
        };
        let idx = p.compute_indices(&ctx);
        assert_eq!(idx.len(), 2);
        assert_eq!(p.confidence(&idx), 0);
    }

    #[test]
    fn reference_training_saturates_at_weight_bounds() {
        let features = vec![Feature::new(1, FeatureKind::Bias, false)];
        let mut p = ReferencePredictor::new(features, 64, 64, 300);
        // Distinct blocks through sampled set 0: every insertion demotes
        // the previous one past A=1, incrementing the bias weight.
        for i in 0..100u64 {
            let idx = vec![0u16];
            let c = p.confidence(&idx);
            p.train(0, i * 64 + 7, &idx, c);
        }
        assert_eq!(p.weight(0, 0), WEIGHT_MAX);
    }
}

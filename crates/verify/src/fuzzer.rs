//! Deterministic trace fuzzer.
//!
//! Every fuzz artifact — cache geometry, access stream, feature set — is a
//! pure function of a single `u64` seed plus a job index, derived through
//! a self-contained splitmix64 generator (no dependency on any external
//! RNG crate, so streams reproduce bit-for-bit across environments). A
//! failure therefore reproduces from `(seed, job)` alone, and the greedy
//! [`shrink`] loop minimizes a failing stream before it is printed.

use mrp_cache::CacheConfig;
use mrp_core::feature::{Feature, FeatureKind};
use mrp_trace::{AccessKind, MemoryAccess};

use crate::lockstep::StreamItem;

/// Self-contained splitmix64: the standard finalizer over an incrementing
/// state. Deliberately not shared with any crate so fuzz streams are
/// independent of RNG implementations elsewhere in the workspace.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Per-job stream parameters, derived deterministically from the seed.
#[derive(Debug, Clone, Copy)]
pub struct StreamProfile {
    /// Cache geometry the stream targets.
    pub geometry: CacheConfig,
    /// Whether the stream interleaves prefetch requests. Prefetch jobs
    /// skip the MIN bound (MinPolicy models demand traffic only).
    pub prefetches: bool,
}

/// Candidate set counts: tiny sets maximize eviction pressure, larger
/// ones exercise the sampler stride and partially-filled-set scan paths.
/// Associativity stays at 16 because several policies (MDPP, Hawkeye,
/// MPPPB placement) are tuned for 16-way geometry.
const SET_CHOICES: [u32; 3] = [2, 16, 64];

/// Derives the stream profile for one `(seed, job)` pair.
pub fn job_profile(seed: u64, job: usize) -> StreamProfile {
    let mut rng = SplitMix::new(seed ^ (job as u64).wrapping_mul(0xa076_1d64_78bd_642f));
    let sets = SET_CHOICES[rng.below(SET_CHOICES.len() as u64) as usize];
    StreamProfile {
        geometry: CacheConfig::new(u64::from(sets) * 16 * 64, 16),
        prefetches: job % 4 == 3,
    }
}

/// Generates the access stream for one `(seed, job)` pair.
///
/// The stream alternates between locality modes (sequential scan, tight
/// loop, hot-set, uniform random) every few dozen accesses, so one stream
/// exercises streaming, thrashing, and reuse-friendly phases against the
/// same policy instance.
pub fn gen_stream(seed: u64, job: usize, len: usize) -> Vec<StreamItem> {
    let profile = job_profile(seed, job);
    let mut rng = SplitMix::new(seed ^ (job as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
    let footprint = [8u64, 64, 512, 4096][rng.below(4) as usize];
    let pcs: Vec<u64> = (0..16).map(|i| 0x40_0000 + i * 0x40).collect();
    let mut stream = Vec::with_capacity(len);
    let mut mode = rng.below(4);
    let mut mode_left = 16 + rng.below(112);
    let mut cursor = 0u64;
    let hot: Vec<u64> = (0..8).map(|_| rng.below(footprint)).collect();
    while stream.len() < len {
        if mode_left == 0 {
            mode = rng.below(4);
            mode_left = 16 + rng.below(112);
        }
        mode_left -= 1;
        let block = match mode {
            0 => {
                cursor = (cursor + 1) % footprint;
                cursor
            }
            1 => {
                cursor = (cursor + 1) % 24.min(footprint);
                cursor
            }
            2 => hot[rng.below(8) as usize],
            _ => rng.below(footprint),
        };
        // Sub-block offset derived from the block so shrinking never
        // changes surviving accesses.
        let offset = (block.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 59) & 0x38;
        let kind = if rng.below(4) == 0 {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let is_prefetch = profile.prefetches && rng.below(8) == 0;
        let access = MemoryAccess {
            pc: pcs[rng.below(16) as usize],
            address: block * 64 + offset,
            core: 0,
            kind,
            non_memory_before: (rng.below(8)) as u8,
            dependent: false,
        };
        stream.push((access, is_prefetch));
    }
    stream
}

/// Generates a random valid feature specification for one `(seed, job)`
/// pair: 1–12 features whose parameters respect [`Feature::new`]'s
/// validity rules.
pub fn gen_features(seed: u64, job: usize) -> Vec<Feature> {
    let mut rng = SplitMix::new(seed ^ (job as u64).wrapping_mul(0x9fb2_1c65_1e98_df25));
    let count = 1 + rng.below(12) as usize;
    (0..count)
        .map(|_| {
            let assoc = 1 + rng.below(18) as u8;
            let xor_pc = rng.below(2) == 1;
            let kind = match rng.below(7) {
                0 => {
                    let begin = rng.below(32) as u8;
                    FeatureKind::Pc {
                        begin,
                        end: begin + rng.below(24) as u8,
                        which: rng.below(18) as u8,
                    }
                }
                1 => {
                    let begin = rng.below(32) as u8;
                    FeatureKind::Address {
                        begin,
                        end: begin + rng.below(24) as u8,
                    }
                }
                2 => FeatureKind::Bias,
                3 => FeatureKind::Burst,
                4 => FeatureKind::Insert,
                5 => FeatureKind::LastMiss,
                _ => {
                    let begin = rng.below(6) as u8;
                    FeatureKind::Offset {
                        begin,
                        end: begin + rng.below(6 - u64::from(begin)) as u8,
                    }
                }
            };
            Feature::new(assoc, kind, xor_pc)
        })
        .collect()
}

/// Hard cap on `still_fails` evaluations during shrinking, so a slow
/// reproduction can never stall the verifier.
pub const SHRINK_BUDGET: usize = 4096;

/// Greedy delta-debugging shrink: repeatedly tries to delete chunks of
/// the failing input, keeping any candidate that still fails, halving the
/// chunk size until single-element removal stops making progress.
///
/// `still_fails` must return `true` when the candidate still reproduces
/// the failure. The input itself is assumed to fail.
pub fn shrink<T: Clone>(items: &[T], still_fails: &mut dyn FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    let mut budget = SHRINK_BUDGET;
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < current.len() {
            if budget == 0 {
                return current;
            }
            let end = (i + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - i));
            candidate.extend_from_slice(&current[..i]);
            candidate.extend_from_slice(&current[end..]);
            budget -= 1;
            if !candidate.is_empty() && still_fails(&candidate) {
                current = candidate;
                removed_any = true;
                // Re-test the same position: the next chunk slid into it.
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            if !removed_any {
                return current;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_in_seed_and_job() {
        let a = gen_stream(42, 3, 500);
        let b = gen_stream(42, 3, 500);
        let c = gen_stream(43, 3, 500);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn profiles_cover_all_geometries() {
        let sets: Vec<u32> = (0..32).map(|j| job_profile(7, j).geometry.sets()).collect();
        for choice in SET_CHOICES {
            assert!(sets.contains(&choice), "no job drew {choice} sets");
        }
        assert!((0..32).any(|j| job_profile(7, j).prefetches));
    }

    #[test]
    fn generated_features_are_valid_and_varied() {
        for job in 0..16 {
            let features = gen_features(11, job);
            assert!(!features.is_empty() && features.len() <= 12);
            for f in &features {
                assert!((1..=18).contains(&f.assoc));
                let _ = f.table_size(); // would panic on invalid spec
            }
        }
    }

    #[test]
    fn prefetch_flags_only_on_prefetch_jobs() {
        for job in 0..8 {
            let stream = gen_stream(5, job, 2000);
            let has_prefetch = stream.iter().any(|(_, p)| *p);
            assert_eq!(has_prefetch, job_profile(5, job).prefetches, "job {job}");
        }
    }

    #[test]
    fn shrink_finds_a_minimal_failing_pair() {
        // Failure: the input contains both 7 and 13.
        let items: Vec<u32> = (0..100).collect();
        let mut checks = 0;
        let shrunk = shrink(&items, &mut |candidate| {
            checks += 1;
            candidate.contains(&7) && candidate.contains(&13)
        });
        assert_eq!(shrunk, vec![7, 13]);
        assert!(checks <= SHRINK_BUDGET);
    }

    #[test]
    fn shrink_keeps_single_culprit() {
        let items: Vec<u32> = (0..64).collect();
        let shrunk = shrink(&items, &mut |c| c.contains(&63));
        assert_eq!(shrunk, vec![63]);
    }
}

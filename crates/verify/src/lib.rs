//! Differential verification subsystem.
//!
//! Three pillars, combined by [`run_verification`]:
//!
//! 1. **Shadow reference models** ([`reference`]): the naive
//!    `Option<u64>`-per-way cache and the per-table loop-fold predictor
//!    run in lockstep ([`lockstep`]) with the optimized SoA cache and
//!    flat-arena predictor on the same stream, asserting bit-equal
//!    results at every access.
//! 2. **Simulation invariants** ([`invariants`]): structural checks run
//!    after every access in verify mode and wired as `debug_assert!`s in
//!    the hot paths, including the oracle bound that no policy beats
//!    Belady MIN on the recorded demand stream.
//! 3. **Deterministic trace fuzzer** ([`fuzzer`]): seed-derived streams,
//!    geometries, and feature specs fanned out across the `mrp-runtime`
//!    pool with index-ordered collection, plus a greedy shrinker that
//!    minimizes a failing stream before it is reported.
//! 4. **Kernel identity** ([`kernels`]): the lane-SoA/SIMD/batched index
//!    kernels and the gather-sum confidence kernel checked bit-identical
//!    to the interpretive `Feature::index` reference on fuzzed feature
//!    sets, at every SIMD level the machine offers; and the batched
//!    saturating weight-update kernel checked against the
//!    one-event-at-a-time scalar reference on fuzzed packed-event
//!    buffers (duplicate offsets, pinned weights, every bounds pair).
//!
//! A separately-invoked pillar ([`replay_check`]) proves the
//! record-once/replay-many fast path bit-identical to full simulation
//! on real workload traces, per `(policy, workload)` cell.
//!
//! Everything reproduces from a single `u64` seed: the same seed, access
//! count, and job count replay the identical streams regardless of thread
//! count.

pub mod divergence;
pub mod fuzzer;
pub mod invariants;
pub mod kernels;
pub mod lockstep;
pub mod reference;
pub mod replay_check;

use std::fmt;
use std::sync::Arc;

use mrp_baselines::MinPolicy;
use mrp_cache::{Cache, CacheConfig, ReplacementPolicy};
use mrp_runtime::map_indexed;

pub use divergence::{Divergence, DivergenceReport, MAX_REPORTED};
pub use fuzzer::{gen_features, gen_stream, job_profile, shrink, SplitMix, StreamProfile};
pub use kernels::{
    check_kernels_job, check_train_kernel_job, run_kernel_check, run_train_kernel_check,
};
pub use lockstep::{run_lockstep, run_predictor_lockstep, DualCache, PredictorPair, StreamItem};
pub use reference::{ReferenceCache, ReferencePredictor};
pub use replay_check::{run_replay_check, ReplayCheckSummary, ReplayMismatch};

/// A policy factory shared across verification jobs. Called once per
/// lockstep side per stream, so both sides get identically-constructed
/// instances.
pub type PolicyBuilder =
    Arc<dyn Fn(&CacheConfig) -> Box<dyn ReplacementPolicy + Send> + Send + Sync>;

/// A named policy under verification.
#[derive(Clone)]
pub struct PolicySpec {
    /// Display name (matches the experiment CLI's policy names).
    pub name: String,
    /// Factory for fresh instances.
    pub build: PolicyBuilder,
}

impl PolicySpec {
    /// Creates a spec.
    pub fn new(name: &str, build: PolicyBuilder) -> Self {
        PolicySpec {
            name: name.to_string(),
            build,
        }
    }
}

/// Verification parameters.
#[derive(Debug, Clone, Copy)]
pub struct VerifyConfig {
    /// Master seed; every stream and feature spec derives from it.
    pub seed: u64,
    /// Total accesses, split across jobs.
    pub accesses: usize,
    /// Independent fuzz jobs (each with its own geometry and stream).
    pub jobs: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            seed: 42,
            accesses: 1_000_000,
            jobs: 8,
        }
    }
}

/// Lockstep outcome of one `(policy, job)` cell.
#[derive(Clone)]
pub struct PolicyCell {
    /// Policy name.
    pub policy: String,
    /// Fuzz job index.
    pub job: usize,
    /// Demand misses taken by the optimized side.
    pub demand_misses: u64,
    /// MIN's demand misses on the same stream (`None` for prefetch jobs,
    /// where the demand-only oracle does not apply).
    pub min_misses: Option<u64>,
    /// Divergences observed (lockstep mismatches, invariant violations,
    /// and MIN-bound violations).
    pub report: DivergenceReport,
}

/// A failing stream minimized by the shrinker.
pub struct ShrunkFailure {
    /// What failed: a policy name or feature-set notation.
    pub subject: String,
    /// The originating fuzz job.
    pub job: usize,
    /// The master seed (for regeneration).
    pub seed: u64,
    /// The minimized stream that still reproduces the failure.
    pub stream: Vec<StreamItem>,
    /// The report produced by the minimized stream.
    pub report: DivergenceReport,
}

impl fmt::Display for ShrunkFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "shrunk reproducer for [{}] (seed {}, job {}): {} accesses",
            self.subject,
            self.seed,
            self.job,
            self.stream.len()
        )?;
        for (i, (a, p)) in self.stream.iter().enumerate() {
            writeln!(f, "  {i:4}: {a}{}", if *p { " [prefetch]" } else { "" })?;
        }
        write!(f, "{}", self.report)
    }
}

/// Everything one verification run produced.
pub struct VerifySummary {
    /// The master seed.
    pub seed: u64,
    /// Fuzz jobs run per policy.
    pub jobs: usize,
    /// Accesses per job.
    pub accesses_per_job: usize,
    /// One cell per `(policy, job)` pair.
    pub policy_cells: Vec<PolicyCell>,
    /// Predictor lockstep reports, one per job.
    pub predictor_reports: Vec<DivergenceReport>,
    /// Kernel-identity reports (lane/SIMD/batch kernels vs the
    /// interpretive reference), one per job.
    pub kernel_reports: Vec<DivergenceReport>,
    /// Train-kernel identity reports (batched saturating weight updates
    /// vs the one-event-at-a-time scalar reference), one per job.
    pub train_kernel_reports: Vec<DivergenceReport>,
    /// `(applied, total)` MIN-bound checks.
    pub min_checks: (usize, usize),
    /// A minimized reproducer for the first failure, if any failed.
    pub shrunk: Option<ShrunkFailure>,
}

impl VerifySummary {
    /// Whether every cell and predictor job was divergence-free.
    pub fn is_clean(&self) -> bool {
        self.policy_cells.iter().all(|c| c.report.is_clean())
            && self.predictor_reports.iter().all(|r| r.is_clean())
            && self.kernel_reports.iter().all(|r| r.is_clean())
            && self.train_kernel_reports.iter().all(|r| r.is_clean())
    }

    /// Total divergences across all cells, predictor jobs, and kernel
    /// jobs.
    pub fn total_divergences(&self) -> usize {
        self.policy_cells
            .iter()
            .map(|c| c.report.total)
            .chain(self.predictor_reports.iter().map(|r| r.total))
            .chain(self.kernel_reports.iter().map(|r| r.total))
            .chain(self.train_kernel_reports.iter().map(|r| r.total))
            .sum()
    }
}

/// MIN's demand-miss count on the demand-block stream of one job (the
/// oracle floor for every policy's demand misses on that stream).
fn min_demand_misses(geometry: &CacheConfig, stream: &[StreamItem]) -> u64 {
    let blocks: Vec<u64> = stream
        .iter()
        .filter(|(_, p)| !p)
        .map(|(a, _)| a.block())
        .collect();
    let policy = MinPolicy::new(geometry, &blocks);
    let mut cache = Cache::new(*geometry, Box::new(policy));
    for (access, is_prefetch) in stream {
        if !is_prefetch {
            let _ = cache.access(access, false);
        }
    }
    cache.stats().demand_misses
}

/// Runs the full verification: per-job MIN floors, policy lockstep cells,
/// predictor lockstep jobs, kernel-identity jobs, and — if a stream-driven
/// check failed — one shrunk reproducer.
pub fn run_verification(cfg: &VerifyConfig, policies: &[PolicySpec]) -> VerifySummary {
    let per_job = (cfg.accesses / cfg.jobs.max(1)).max(64);
    let jobs = cfg.jobs.max(1);

    // Phase 1: MIN floors, one per fuzz job (demand-only jobs).
    let min_floors: Vec<Option<u64>> = map_indexed(jobs, |job| {
        let profile = job_profile(cfg.seed, job);
        if profile.prefetches {
            return None;
        }
        let stream = gen_stream(cfg.seed, job, per_job);
        Some(min_demand_misses(&profile.geometry, &stream))
    });

    // Phase 2: policy lockstep over every (policy, job) cell.
    let cells = policies.len() * jobs;
    let policy_cells: Vec<PolicyCell> = map_indexed(cells, |cell| {
        let (pi, job) = (cell / jobs, cell % jobs);
        let spec = &policies[pi];
        let profile = job_profile(cfg.seed, job);
        let stream = gen_stream(cfg.seed, job, per_job);
        let (mut report, demand_misses) = run_lockstep(
            &profile.geometry,
            &spec.name,
            &|llc| (spec.build)(llc),
            &stream,
        );
        // The MIN bound is only meaningful when the lockstep run itself
        // was clean (a diverged cache's miss count is already suspect).
        if report.is_clean() {
            if let Some(floor) = min_floors[job] {
                if let Err(detail) = invariants::check_min_bound(demand_misses, floor) {
                    report.push(Divergence {
                        access_index: stream.len(),
                        access: None,
                        subject: spec.name.clone(),
                        detail,
                    });
                }
            }
        }
        PolicyCell {
            policy: spec.name.clone(),
            job,
            demand_misses,
            min_misses: min_floors[job],
            report,
        }
    });

    // Phase 3: predictor lockstep, one random feature spec per job.
    let predictor_reports: Vec<DivergenceReport> = map_indexed(jobs, |job| {
        let features = gen_features(cfg.seed, job);
        let stream = gen_stream(cfg.seed, job, per_job);
        // Odd jobs use a non-power-of-two sampler-set count to exercise
        // the division sampling path; even jobs the pow2 mask path.
        let sampler_sets = if job % 2 == 1 { 48 } else { 32 };
        let theta = (job % 3) as i32 * 30 + 10;
        run_predictor_lockstep(&features, 256, sampler_sets, theta, &stream)
    });

    // Phase 4: kernel identity — the lane/SIMD/batch index kernels and
    // the gather-sum confidence kernel against the interpretive
    // reference, on fuzzed feature sets and contexts. A failure here
    // reproduces from (seed, job) alone, so no stream shrinking applies.
    let kernel_reports = kernels::run_kernel_check(cfg.seed, jobs);

    // Phase 4b: train-kernel identity — the batched saturating
    // weight-update kernel against the scalar event-order reference, on
    // fuzzed packed-event buffers. Same (seed, job) reproducibility.
    let train_kernel_reports = kernels::run_train_kernel_check(cfg.seed, jobs);

    // Phase 5: shrink the first stream-driven failure to a minimal
    // reproducer.
    let shrunk = shrink_first_failure(cfg, per_job, policies, &policy_cells, &predictor_reports);

    let applied = min_floors.iter().filter(|f| f.is_some()).count() * policies.len();
    VerifySummary {
        seed: cfg.seed,
        jobs,
        accesses_per_job: per_job,
        policy_cells,
        predictor_reports,
        kernel_reports,
        train_kernel_reports,
        min_checks: (applied, cells),
        shrunk,
    }
}

fn shrink_first_failure(
    cfg: &VerifyConfig,
    per_job: usize,
    policies: &[PolicySpec],
    policy_cells: &[PolicyCell],
    predictor_reports: &[DivergenceReport],
) -> Option<ShrunkFailure> {
    if let Some(cell) = policy_cells.iter().find(|c| !c.report.is_clean()) {
        let spec = policies.iter().find(|p| p.name == cell.policy)?;
        let profile = job_profile(cfg.seed, cell.job);
        let stream = gen_stream(cfg.seed, cell.job, per_job);
        let fails = |candidate: &[StreamItem]| -> DivergenceReport {
            let (mut report, misses) = run_lockstep(
                &profile.geometry,
                &spec.name,
                &|llc| (spec.build)(llc),
                candidate,
            );
            if report.is_clean() && cell.min_misses.is_some() {
                let floor = min_demand_misses(&profile.geometry, candidate);
                if let Err(detail) = invariants::check_min_bound(misses, floor) {
                    report.push(Divergence {
                        access_index: candidate.len(),
                        access: None,
                        subject: spec.name.clone(),
                        detail,
                    });
                }
            }
            report
        };
        let minimized = shrink(&stream, &mut |c| !fails(c).is_clean());
        let report = fails(&minimized);
        return Some(ShrunkFailure {
            subject: cell.policy.clone(),
            job: cell.job,
            seed: cfg.seed,
            stream: minimized,
            report,
        });
    }
    let (job, _) = predictor_reports
        .iter()
        .enumerate()
        .find(|(_, r)| !r.is_clean())?;
    let features = gen_features(cfg.seed, job);
    let stream = gen_stream(cfg.seed, job, per_job);
    let sampler_sets = if job % 2 == 1 { 48 } else { 32 };
    let theta = (job % 3) as i32 * 30 + 10;
    let subject = features
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(" ");
    let minimized = shrink(&stream, &mut |c| {
        !run_predictor_lockstep(&features, 256, sampler_sets, theta, c).is_clean()
    });
    let report = run_predictor_lockstep(&features, 256, sampler_sets, theta, &minimized);
    Some(ShrunkFailure {
        subject,
        job,
        seed: cfg.seed,
        stream: minimized,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_cache::policies::{Lru, Srrip};
    use mrp_cache::AccessInfo;

    fn lru_spec() -> PolicySpec {
        PolicySpec::new(
            "lru",
            Arc::new(|llc: &CacheConfig| {
                Box::new(Lru::new(llc.sets(), llc.associativity()))
                    as Box<dyn ReplacementPolicy + Send>
            }),
        )
    }

    #[test]
    fn clean_policies_verify_clean() {
        let cfg = VerifyConfig {
            seed: 7,
            accesses: 4_000,
            jobs: 4,
        };
        let specs = vec![
            lru_spec(),
            PolicySpec::new(
                "srrip",
                Arc::new(|llc: &CacheConfig| {
                    Box::new(Srrip::new(llc.sets(), llc.associativity()))
                        as Box<dyn ReplacementPolicy + Send>
                }),
            ),
        ];
        let summary = run_verification(&cfg, &specs);
        assert!(
            summary.is_clean(),
            "divergences: {}",
            summary.total_divergences()
        );
        assert_eq!(summary.policy_cells.len(), 8);
        assert_eq!(summary.predictor_reports.len(), 4);
        assert_eq!(summary.kernel_reports.len(), 4);
        assert_eq!(summary.train_kernel_reports.len(), 4);
        assert!(summary.shrunk.is_none());
        // Jobs 0..4 include one prefetch job (job 3), so 3 of 4 floors apply.
        assert_eq!(summary.min_checks.0, 6);
    }

    /// LRU with an off-by-one victim choice: evicts the way *after* the
    /// true LRU way. A planted bug the lockstep harness must catch.
    struct BuggyLru {
        inner: Lru,
        assoc: u32,
    }

    impl ReplacementPolicy for BuggyLru {
        fn name(&self) -> &str {
            "buggy-lru"
        }
        fn on_hit(&mut self, info: &AccessInfo, way: u32) {
            self.inner.on_hit(info, way);
        }
        fn choose_victim(&mut self, info: &AccessInfo, occupants: &[u64]) -> u32 {
            (self.inner.choose_victim(info, occupants) + 1) % self.assoc
        }
        fn on_fill(&mut self, info: &AccessInfo, way: u32) {
            self.inner.on_fill(info, way);
        }
    }

    #[test]
    fn planted_off_by_one_is_caught_and_shrunk_small() {
        let llc = CacheConfig::new(64 * 16 * 2, 16);
        // 64 distinct blocks (32 per set, twice the associativity) force
        // evictions, where the off-by-one victim must diverge.
        let stream: Vec<StreamItem> = (0..4_000u64)
            .map(|i| {
                let block = (i * 17 + i / 64) % 64;
                (
                    mrp_trace::MemoryAccess::load(0x400000 + (i % 5) * 4, block * 64),
                    false,
                )
            })
            .collect();
        let run = |candidate: &[StreamItem]| -> DivergenceReport {
            let mut dual = DualCache::with_policies(
                llc,
                "buggy-lru",
                Box::new(BuggyLru {
                    inner: Lru::new(llc.sets(), llc.associativity()),
                    assoc: llc.associativity(),
                }),
                Box::new(Lru::new(llc.sets(), llc.associativity())),
            );
            let mut report = DivergenceReport::default();
            for (i, (a, p)) in candidate.iter().enumerate() {
                dual.step(i, a, *p, &mut report);
                if report.saturated() {
                    break;
                }
            }
            dual.finish(candidate.len(), &mut report);
            report
        };
        assert!(!run(&stream).is_clean(), "planted bug must diverge");
        let minimized = shrink(&stream, &mut |c| !run(c).is_clean());
        assert!(
            minimized.len() <= 50,
            "reproducer not minimal: {} accesses",
            minimized.len()
        );
        assert!(!run(&minimized).is_clean());
    }
}

//! The self-exec worker: one `(workload, policy)` cell per process.
//!
//! `orchestrate worker --spec JSON --manifest-dir DIR --spec-hash HEX`
//! runs a [`SELF_BIN`] job in its own OS process, so the crash-injection
//! tests can SIGKILL/abort workers without touching the driver binaries.
//! The result is a standard run manifest (cell with `mpki`/`ipc`)
//! stamped with the job's spec hash — written via tmp + rename so a
//! worker killed mid-write can never leave a parsable-but-incomplete
//! manifest for resume to trust.
//!
//! Crash injection (tests only): when `MRP_ORCH_CRASH_JOB` names this
//! worker's job id and the `MRP_ORCH_CRASH_MARKER` file does not exist
//! yet, the worker writes the marker and aborts — exactly one induced
//! crash per campaign, after which retries succeed.
//!
//! [`SELF_BIN`]: mrp_experiments::SELF_BIN

use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use mrp_experiments::runner::{run_single_kind, StParams};
use mrp_experiments::{Args, JobSpec, PolicyKind};
use mrp_obs::{Json, RunManifest};

/// Entry point for the `worker` subcommand.
pub fn run_worker(args: &Args) -> ExitCode {
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("orchestrate worker: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args) -> Result<(), String> {
    let spec_text = args.get_str("spec", "");
    if spec_text.is_empty() {
        return Err("missing --spec".into());
    }
    let spec = JobSpec::from_json(&Json::parse(&spec_text)?)?;
    maybe_crash(&spec.id);

    let workload_name = spec.get_arg("workload").ok_or("spec missing workload")?;
    let policy_name = spec.get_arg("policy").ok_or("spec missing policy")?;
    let seed = spec_u64(&spec, "seed", 1)?;
    let params = StParams {
        warmup: spec_u64(&spec, "warmup", 2_000)?,
        measure: spec_u64(&spec, "measure", 8_000)?,
        seed,
    };
    // Result-neutral padding so the crash tests can reliably land a
    // SIGKILL mid-campaign even at tiny debug-profile scales.
    let spin_ms = spec_u64(&spec, "spin-ms", 0)?;
    if spin_ms > 0 {
        std::thread::sleep(Duration::from_millis(spin_ms));
    }

    let suite = mrp_trace::workloads::suite();
    let workload = suite
        .iter()
        .find(|w| w.name() == workload_name)
        .ok_or_else(|| format!("unknown workload {workload_name:?}"))?;
    let kind = PolicyKind::from_name(policy_name)
        .ok_or_else(|| format!("unknown policy {policy_name:?}"))?;
    let result = run_single_kind(workload, kind, params);

    // `orch-<job id>` keeps worker manifests from colliding with driver
    // manifests for the same seed + second.
    let manifest_dir = args.get_str("manifest-dir", "runs");
    let mut manifest = RunManifest::new(&format!("orch-{}", spec.id), seed, &manifest_dir);
    let spec_hash = args.get_str("spec-hash", "");
    if !spec_hash.is_empty() {
        manifest.meta("spec_hash", Json::Str(spec_hash));
    }
    manifest.meta("job", Json::Str(spec.id.clone()));
    manifest.cell(
        workload_name,
        policy_name,
        &[("mpki", result.mpki), ("ipc", result.ipc)],
    );

    let dir = Path::new(&manifest_dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let path = dir.join(manifest.file_name());
    let tmp = dir.join(format!("{}.tmp", manifest.file_name()));
    std::fs::write(&tmp, manifest.render()).map_err(|e| format!("{}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &path).map_err(|e| format!("{}: {e}", path.display()))?;
    eprintln!("run manifest: {}", path.display());
    Ok(())
}

/// One-shot induced crash for the injection tests (see module docs).
fn maybe_crash(job_id: &str) {
    let (Ok(target), Ok(marker)) = (
        std::env::var("MRP_ORCH_CRASH_JOB"),
        std::env::var("MRP_ORCH_CRASH_MARKER"),
    ) else {
        return;
    };
    if target != job_id || Path::new(&marker).exists() {
        return;
    }
    let _ = std::fs::write(&marker, b"crashed\n");
    std::process::abort();
}

/// Parses a numeric spec argument (the spec carries strings only).
fn spec_u64(spec: &JobSpec, key: &str, default: u64) -> Result<u64, String> {
    match spec.get_arg(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("spec arg {key}={v:?} is not an integer")),
    }
}

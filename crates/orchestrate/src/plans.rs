//! `--plan` resolution: turns CLI scale flags into a [`JobSpec`] list.

use mrp_experiments::jobspec;
use mrp_experiments::{Args, FullScale, JobSpec};

/// Resolves the `--plan` flag (falling back to the subcommand's
/// default) into the jobs to merge with the journal. `none` enqueues
/// nothing — a bare `orchestrate run --dir D` resumes whatever the
/// journal already holds.
pub fn resolve(args: &Args, default_plan: &str) -> Result<Vec<JobSpec>, String> {
    let plan = args.get_str("plan", default_plan);
    match plan.as_str() {
        "none" => Ok(Vec::new()),
        "ci" => Ok(jobspec::ci_plan()),
        "smoke" => Ok(jobspec::smoke_plan(
            args.get_u64("seed", 7),
            args.get_u64("warmup", 2_000),
            args.get_u64("measure", 8_000),
            args.get_u64("spin-ms", 0),
        )),
        "full" => {
            let d = FullScale::default();
            Ok(jobspec::full_plan(&FullScale {
                st_warmup: args.get_u64("st-warmup", d.st_warmup),
                st_measure: args.get_u64("st-measure", d.st_measure),
                mp_warmup: args.get_u64("mp-warmup", d.mp_warmup),
                mp_measure: args.get_u64("mp-measure", d.mp_measure),
                mixes: args.get_usize("mixes", d.mixes),
                sweep_mixes: args.get_usize("sweep-mixes", d.sweep_mixes),
                sweep_measure: args.get_u64("sweep-measure", d.sweep_measure),
                roc_measure: args.get_u64("roc-measure", d.roc_measure),
                candidates: args.get_usize("candidates", d.candidates),
            }))
        }
        other => Err(format!(
            "unknown plan {other:?} (expected none, ci, smoke, or full)"
        )),
    }
}

//! `orchestrate`: resumable multi-process experiment campaigns.
//!
//! Schedules [`JobSpec`] work across worker OS processes — spawning the
//! existing driver binaries, or re-execing itself (`orchestrate
//! worker`) for single-cell jobs — while persisting every scheduling
//! decision to an append-only journal (`journal.jsonl`, schema
//! `mrp-orchestrate-journal-v1`). A SIGKILL-ed orchestrator resumes
//! exactly: the journal is replayed, journaled done-jobs are re-verified
//! against their run manifests, pre-existing manifests in `runs/` dedupe
//! fresh enqueues by spec hash, and only the remainder is recomputed.
//! Results aggregate incrementally into `campaign.jsonl` (schema
//! `mrp-campaign-manifest-v1`), a pure function of the done set, so a
//! killed-and-resumed campaign is byte-identical to an uninterrupted
//! one.
//!
//! Subcommands:
//!
//! - `orchestrate run --dir DIR [--plan none|ci|smoke|full] [--procs N]
//!   [--retries N] [--worker-threads N] [--name NAME] [--metrics]` plus
//!   plan scale flags (`--st-warmup`, `--mixes`, … for `full`;
//!   `--seed`, `--warmup`, `--measure`, `--spin-ms` for `smoke`).
//!   `--plan none` (the default) resumes whatever the journal holds.
//! - `orchestrate ci` — `run` with the golden-check plan against
//!   `runs/ci-campaign`, no retries; exits nonzero on any golden drift.
//! - `orchestrate worker --spec JSON --manifest-dir DIR --spec-hash HEX`
//!   — the self-exec single-cell worker (internal).
//! - `orchestrate status --dir DIR` — journal summary without running.
//!
//! [`JobSpec`]: mrp_experiments::JobSpec

mod campaign;
mod plans;
mod worker;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mrp_experiments::Args;
use mrp_obs::{JournalEntry, Json, RunManifest};

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return usage(Some("missing subcommand"));
    }
    let cmd = argv.remove(0);
    if matches!(cmd.as_str(), "help" | "--help" | "-h") {
        return usage(None);
    }
    let args = Args::from_args(argv);
    match cmd.as_str() {
        "run" => run_cmd(&args, "runs/campaign", "none", 1),
        "ci" => run_cmd(&args, "runs/ci-campaign", "ci", 0),
        "worker" => worker::run_worker(&args),
        "status" => status_cmd(&args),
        other => usage(Some(&format!("unknown subcommand {other:?}"))),
    }
}

fn usage(error: Option<&str>) -> ExitCode {
    if let Some(error) = error {
        eprintln!("orchestrate: {error}");
    }
    eprintln!(
        "usage: orchestrate <run|ci|status|worker> [--key value ...]\n\
         \n\
         run    --dir DIR --plan none|ci|smoke|full --procs N --retries N\n\
         \x20      --worker-threads N --name NAME --metrics  (+ plan scale flags)\n\
         ci     run with the golden-check plan (dir runs/ci-campaign, no retries)\n\
         status --dir DIR  (journal summary)\n\
         worker --spec JSON --manifest-dir DIR --spec-hash HEX  (internal)"
    );
    if error.is_some() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Shared body of `run` and `ci` (which differ only in defaults).
fn run_cmd(args: &Args, default_dir: &str, default_plan: &str, default_retries: u64) -> ExitCode {
    let dir = PathBuf::from(args.get_str("dir", default_dir));
    let opts = campaign::CampaignOpts {
        name: args.get_str("name", &default_name(&dir)),
        procs: args.get_usize("procs", 2).max(1),
        worker_threads: args.get_usize("worker-threads", 1),
        retries: args.get_u64("retries", default_retries),
        dir,
    };
    let plan = match plans::resolve(args, default_plan) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("orchestrate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let metrics = args.get_flag("metrics", false);
    mrp_obs::set_enabled(metrics);
    let report = match campaign::run_campaign(&opts, plan) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("orchestrate: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", report.summary_line(&opts.name));
    if metrics {
        // The orchestrator's own run manifest lands in the campaign dir
        // root — `runs/` is reserved for worker manifests, which are
        // keyed by spec hash during dedup.
        let mut manifest = RunManifest::new("orchestrate", 0, &opts.dir);
        manifest.meta("campaign", Json::Str(opts.name.clone()));
        mrp_experiments::finish_manifest(Some(manifest));
    }
    if report.failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        for (job, reason) in &report.failed {
            eprintln!("orchestrate: job {job} failed: {reason}");
        }
        ExitCode::FAILURE
    }
}

/// Campaign name when `--name` is absent: the directory's base name.
fn default_name(dir: &Path) -> String {
    dir.file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("campaign")
        .to_string()
}

/// `orchestrate status`: print the journal's view of the campaign
/// without scheduling anything.
fn status_cmd(args: &Args) -> ExitCode {
    let dir = PathBuf::from(args.get_str("dir", "runs/campaign"));
    let path = dir.join("journal.jsonl");
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("orchestrate: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let read = match mrp_obs::read_journal(&text) {
        Ok(read) => read,
        Err(e) => {
            eprintln!("orchestrate: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut campaign = String::from("?");
    let mut resumes = 0u64;
    // Last-writer-wins fold of each job's lifecycle.
    let mut state: BTreeMap<String, String> = BTreeMap::new();
    for entry in &read.entries {
        match entry {
            JournalEntry::Meta { campaign: name, .. } => campaign = name.clone(),
            JournalEntry::Resume { .. } => resumes += 1,
            JournalEntry::Enqueue { job, .. } => {
                state.insert(job.clone(), "pending".into());
            }
            JournalEntry::Running { job, attempt, .. } => {
                state.insert(job.clone(), format!("running (attempt {attempt})"));
            }
            JournalEntry::Done { job, via, .. } => {
                state.insert(job.clone(), format!("done (via {via})"));
            }
            JournalEntry::Fail { job, attempt, .. } => {
                state.insert(job.clone(), format!("failed (attempt {attempt})"));
            }
            JournalEntry::Invalidate { job, .. } => {
                state.insert(job.clone(), "pending (invalidated)".into());
            }
        }
    }
    let done = state.values().filter(|s| s.starts_with("done")).count();
    println!(
        "campaign {campaign}: {} jobs, {done} done, {} journal entries, {resumes} resumes",
        state.len(),
        read.entries.len()
    );
    for (job, status) in &state {
        println!("  {job}: {status}");
    }
    if let Some(partial) = &read.truncated {
        println!("  (truncated tail dropped: {partial:?})");
    }
    ExitCode::SUCCESS
}

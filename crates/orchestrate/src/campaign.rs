//! Campaign state machine: journal replay → manifest re-verification →
//! dedup → process waves → deterministic aggregation.
//!
//! The journal is the single source of truth for scheduling state; run
//! manifests under `<dir>/runs/` are the source of truth for results.
//! Resume trusts neither blindly: a journaled `done` only survives if
//! its manifest still validates and records the job's spec hash, and
//! any valid manifest in `runs/` — journaled or not, including one left
//! by a worker orphaned when the orchestrator was SIGKILL-ed — can
//! satisfy a pending job by spec-hash dedup.
//!
//! The aggregate (`campaign.jsonl`) is rewritten atomically after every
//! stage that changes the done set. It is a pure function of that set —
//! job ids sorted, no timestamps, paths, pids, or attempt counts — so a
//! killed-and-resumed campaign renders byte-identically to an
//! uninterrupted one (the acceptance bar the crash tests enforce).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{SystemTime, UNIX_EPOCH};

use mrp_experiments::{JobSpec, SELF_BIN};
use mrp_obs::{read_journal, Journal, JournalEntry, Json, CAMPAIGN_SCHEMA};
use mrp_runtime::{run_processes, ProcessEvent, ProcessJob};

/// Scheduling options for one campaign run.
pub struct CampaignOpts {
    /// Campaign directory (journal, aggregate, `runs/`, `logs/`).
    pub dir: PathBuf,
    /// Campaign name recorded in journal and aggregate (not the
    /// directory, so aggregates never embed paths).
    pub name: String,
    /// Worker process pool width.
    pub procs: usize,
    /// `--threads` handed to each driver worker.
    pub worker_threads: usize,
    /// Re-run attempts after a failed or crashed worker.
    pub retries: u64,
}

/// What a campaign run did; drives the summary line and exit code.
#[derive(Debug, Default)]
pub struct CampaignReport {
    /// Total jobs in the campaign.
    pub jobs: usize,
    /// Journaled done-jobs whose manifests re-verified (no recompute).
    pub skipped: usize,
    /// Pending jobs satisfied by a pre-existing manifest's spec hash.
    pub deduped: usize,
    /// Jobs completed by a worker process this run.
    pub ran: usize,
    /// Re-spawns after failures.
    pub retried: usize,
    /// Jobs with no verified manifest after all attempts.
    pub failed: Vec<(String, String)>,
}

impl CampaignReport {
    /// One-line machine-parsable outcome (the crash tests assert on the
    /// `skipped=`/`deduped=`/`ran=` fields).
    pub fn summary_line(&self, campaign: &str) -> String {
        format!(
            "orchestrate summary: campaign={campaign} jobs={} done={} skipped={} deduped={} ran={} retried={} failed={}",
            self.jobs,
            self.skipped + self.deduped + self.ran,
            self.skipped,
            self.deduped,
            self.ran,
            self.retried,
            self.failed.len()
        )
    }
}

/// Scheduler-side view of one job.
struct JobState {
    spec: JobSpec,
    /// Hex spec hash (dedup key).
    hash: String,
    /// Verified run-manifest file name in `runs/`, once done.
    manifest: Option<String>,
}

/// Cached `orchestrate.jobs.*` counters.
struct Counters {
    enqueued: mrp_obs::Counter,
    skipped: mrp_obs::Counter,
    deduped: mrp_obs::Counter,
    spawned: mrp_obs::Counter,
    done: mrp_obs::Counter,
    failed: mrp_obs::Counter,
    retried: mrp_obs::Counter,
}

fn counters() -> Counters {
    Counters {
        enqueued: mrp_obs::counter("orchestrate.jobs.enqueued"),
        skipped: mrp_obs::counter("orchestrate.jobs.skipped"),
        deduped: mrp_obs::counter("orchestrate.jobs.deduped"),
        spawned: mrp_obs::counter("orchestrate.jobs.spawned"),
        done: mrp_obs::counter("orchestrate.jobs.done"),
        failed: mrp_obs::counter("orchestrate.jobs.failed"),
        retried: mrp_obs::counter("orchestrate.jobs.retried"),
    }
}

fn now_unix() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn jerr(e: std::io::Error) -> String {
    format!("journal append: {e}")
}

/// Runs (or resumes) a campaign to completion. See the module docs for
/// the stage order; every stage journals before it acts.
pub fn run_campaign(opts: &CampaignOpts, plan: Vec<JobSpec>) -> Result<CampaignReport, String> {
    let runs_dir = opts.dir.join("runs");
    let logs_dir = opts.dir.join("logs");
    for dir in [&runs_dir, &logs_dir] {
        fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    }

    let ctr = counters();
    let mut jobs: BTreeMap<String, JobState> = BTreeMap::new();
    let mut report = CampaignReport::default();

    // Stage 1: load or create the journal. A truncated final line (the
    // orchestrator died mid-append) is dropped; anything worse is a
    // hard error rather than a silently-wrong resume.
    let journal_path = opts.dir.join("journal.jsonl");
    let mut journal = if journal_path.exists() {
        let text = fs::read_to_string(&journal_path)
            .map_err(|e| format!("{}: {e}", journal_path.display()))?;
        let read = read_journal(&text).map_err(|e| format!("{}: {e}", journal_path.display()))?;
        if let Some(JournalEntry::Meta { campaign, .. }) = read.entries.first() {
            if *campaign != opts.name {
                return Err(format!(
                    "journal belongs to campaign {campaign:?}, not {:?} (pass --name {campaign})",
                    opts.name
                ));
            }
        }
        if let Some(partial) = &read.truncated {
            eprintln!("orchestrate: dropping truncated journal tail {partial:?}");
        }
        replay(&read.entries, &mut jobs)?;
        let mut journal =
            Journal::open_append(&journal_path, read.clean_len as u64).map_err(jerr)?;
        journal
            .append(&JournalEntry::Resume {
                timestamp: now_unix(),
            })
            .map_err(jerr)?;
        journal
    } else {
        Journal::create(&journal_path, &opts.name).map_err(jerr)?
    };

    // Stage 2: merge the plan. Known ids must hash identically — a
    // changed spec under a reused id would corrupt the dedup story.
    for spec in plan {
        spec.check_reserved()?;
        let hash = spec.spec_hash_hex();
        match jobs.get(&spec.id) {
            Some(state) if state.hash != hash => {
                return Err(format!(
                    "job {} re-planned with a different spec (journal {}, plan {hash}); use a fresh --dir",
                    spec.id, state.hash
                ));
            }
            Some(_) => {}
            None => {
                journal
                    .append(&JournalEntry::Enqueue {
                        job: spec.id.clone(),
                        spec_hash: hash.clone(),
                        spec: spec.to_json(),
                    })
                    .map_err(jerr)?;
                ctr.enqueued.incr();
                jobs.insert(
                    spec.id.clone(),
                    JobState {
                        spec,
                        hash,
                        manifest: None,
                    },
                );
            }
        }
    }
    report.jobs = jobs.len();

    // Stage 3: re-verify journaled done-jobs against their manifests.
    // A manifest that vanished, fails validation, or lost its spec
    // hash sends the job back to pending via an `invalidate` entry.
    for (id, state) in jobs.iter_mut() {
        let Some(file) = state.manifest.clone() else {
            continue;
        };
        match verify_manifest(&runs_dir.join(&file), &state.hash) {
            Ok(()) => {
                report.skipped += 1;
                ctr.skipped.incr();
            }
            Err(reason) => {
                journal
                    .append(&JournalEntry::Invalidate {
                        job: id.clone(),
                        reason,
                    })
                    .map_err(jerr)?;
                state.manifest = None;
            }
        }
    }

    // Stage 4: dedup pending jobs against every valid manifest already
    // in `runs/` — earlier campaigns, orphaned workers, manual runs.
    let by_hash = scan_runs(&runs_dir);
    for (id, state) in jobs.iter_mut() {
        if state.manifest.is_some() {
            continue;
        }
        if let Some(file) = by_hash.get(&state.hash) {
            journal
                .append(&JournalEntry::Done {
                    job: id.clone(),
                    spec_hash: state.hash.clone(),
                    manifest: file.clone(),
                    via: "dedupe".into(),
                })
                .map_err(jerr)?;
            state.manifest = Some(file.clone());
            report.deduped += 1;
            ctr.deduped.incr();
        }
    }
    write_aggregate(&opts.dir, &opts.name, &jobs, &runs_dir)?;

    // Stage 5: run the remainder in retry waves over the process pool.
    let mut fail_reason: BTreeMap<String, String> = BTreeMap::new();
    let max_attempts = opts.retries + 1;
    for attempt in 1..=max_attempts {
        let pending: Vec<String> = jobs
            .iter()
            .filter(|(_, s)| s.manifest.is_none())
            .map(|(id, _)| id.clone())
            .collect();
        if pending.is_empty() {
            break;
        }
        if attempt > 1 {
            report.retried += pending.len();
            ctr.retried.add(pending.len() as u64);
        }
        let procs: Vec<ProcessJob> = pending
            .iter()
            .map(|id| build_job(&jobs[id], &runs_dir, &logs_dir, opts.worker_threads))
            .collect::<Result<_, String>>()?;
        let statuses = run_processes(procs, opts.procs, |event| {
            if let ProcessEvent::Spawned { id, pid, .. } = event {
                ctr.spawned.incr();
                let entry = JournalEntry::Running {
                    job: id.to_string(),
                    pid: pid as u64,
                    attempt,
                };
                if let Err(e) = journal.append(&entry) {
                    eprintln!("orchestrate: journal append: {e}");
                }
            }
        });
        let by_hash = scan_runs(&runs_dir);
        for (id, status) in pending.iter().zip(&statuses) {
            let state = jobs.get_mut(id).expect("pending job exists");
            let failure = match status {
                Err(spawn) => Some(format!("spawn failed: {spawn}")),
                Ok(status) if !status.success() => Some(format!("worker exited with {status}")),
                Ok(_) => match by_hash.get(&state.hash) {
                    Some(file) => {
                        journal
                            .append(&JournalEntry::Done {
                                job: id.clone(),
                                spec_hash: state.hash.clone(),
                                manifest: file.clone(),
                                via: "run".into(),
                            })
                            .map_err(jerr)?;
                        state.manifest = Some(file.clone());
                        report.ran += 1;
                        ctr.done.incr();
                        None
                    }
                    None => Some("worker exited 0 without a manifest for its spec hash".into()),
                },
            };
            if let Some(reason) = failure {
                journal
                    .append(&JournalEntry::Fail {
                        job: id.clone(),
                        attempt,
                        reason: reason.clone(),
                    })
                    .map_err(jerr)?;
                ctr.failed.incr();
                eprintln!(
                    "orchestrate: job {id} attempt {attempt}/{max_attempts} failed: {reason}"
                );
                fail_reason.insert(id.clone(), reason);
            }
        }
        write_aggregate(&opts.dir, &opts.name, &jobs, &runs_dir)?;
    }

    for (id, state) in &jobs {
        if state.manifest.is_none() {
            let reason = fail_reason
                .remove(id)
                .unwrap_or_else(|| "never completed".into());
            report.failed.push((id.clone(), reason));
        }
    }
    Ok(report)
}

/// Rebuilds the job table from journal entries (resume path).
fn replay(entries: &[JournalEntry], jobs: &mut BTreeMap<String, JobState>) -> Result<(), String> {
    for entry in entries {
        match entry {
            JournalEntry::Enqueue {
                job,
                spec_hash,
                spec,
            } => {
                let spec =
                    JobSpec::from_json(spec).map_err(|e| format!("journal enqueue {job}: {e}"))?;
                jobs.insert(
                    job.clone(),
                    JobState {
                        spec,
                        hash: spec_hash.clone(),
                        manifest: None,
                    },
                );
            }
            JournalEntry::Done {
                job,
                spec_hash,
                manifest,
                ..
            } => {
                if let Some(state) = jobs.get_mut(job) {
                    if *spec_hash == state.hash {
                        state.manifest = Some(manifest.clone());
                    }
                }
            }
            JournalEntry::Invalidate { job, .. } => {
                if let Some(state) = jobs.get_mut(job) {
                    state.manifest = None;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// A done-job manifest verifies when it still parses under the
/// run-manifest schema and records the expected spec hash in its meta.
fn verify_manifest(path: &Path, expect_hash: &str) -> Result<(), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    mrp_obs::validate(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    match manifest_spec_hash(&text) {
        Some(hash) if hash == expect_hash => Ok(()),
        other => Err(format!(
            "{}: manifest spec hash {other:?} != expected {expect_hash:?}",
            path.display()
        )),
    }
}

/// The `spec_hash` meta field of a manifest document, if present.
fn manifest_spec_hash(text: &str) -> Option<String> {
    let meta = Json::parse(text.lines().next()?).ok()?;
    meta.get("spec_hash")
        .and_then(Json::as_str)
        .map(str::to_string)
}

/// Maps spec hash → manifest file for every valid manifest in `runs/`.
/// File names are scanned sorted and the first match wins, so the
/// choice is deterministic when several manifests share a hash.
fn scan_runs(runs_dir: &Path) -> BTreeMap<String, String> {
    let mut by_hash = BTreeMap::new();
    let Ok(entries) = fs::read_dir(runs_dir) else {
        return by_hash;
    };
    let mut files: Vec<String> = entries
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".jsonl"))
        .collect();
    files.sort();
    for file in files {
        let Ok(text) = fs::read_to_string(runs_dir.join(&file)) else {
            continue;
        };
        if mrp_obs::validate(&text).is_err() {
            continue;
        }
        if let Some(hash) = manifest_spec_hash(&text) {
            by_hash.entry(hash).or_insert(file);
        }
    }
    by_hash
}

/// Builds the OS process for one pending job: the orchestrator re-execs
/// itself for [`SELF_BIN`] cells, otherwise spawns the named driver
/// from its own directory with the spawn-time extras appended
/// (`--threads`, `--metrics`, `--manifest-dir`, `--spec-hash`).
fn build_job(
    state: &JobState,
    runs_dir: &Path,
    logs_dir: &Path,
    worker_threads: usize,
) -> Result<ProcessJob, String> {
    let spec = &state.spec;
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut command;
    if spec.bin == SELF_BIN {
        command = Command::new(&exe);
        command.arg("worker");
        command.arg("--spec").arg(spec.to_json().render());
    } else {
        let bin = exe
            .parent()
            .ok_or("orchestrator binary has no parent directory")?
            .join(&spec.bin);
        command = Command::new(bin);
        command.args(spec.cli_args());
        command.arg("--threads").arg(worker_threads.to_string());
        command.arg("--metrics").arg("1");
    }
    command.arg("--manifest-dir").arg(runs_dir);
    command.arg("--spec-hash").arg(&state.hash);

    // Reports go where the spec says (the script's old `tee` capture);
    // otherwise stdout and stderr land under `logs/`.
    let stdout_path = match &spec.stdout {
        Some(path) => PathBuf::from(path),
        None => logs_dir.join(format!("{}.log", spec.id)),
    };
    if let Some(parent) = stdout_path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
        }
    }
    let stdout =
        fs::File::create(&stdout_path).map_err(|e| format!("{}: {e}", stdout_path.display()))?;
    let err_path = logs_dir.join(format!("{}.err", spec.id));
    let stderr = fs::File::create(&err_path).map_err(|e| format!("{}: {e}", err_path.display()))?;
    command.stdout(Stdio::from(stdout));
    command.stderr(Stdio::from(stderr));
    Ok(ProcessJob {
        id: spec.id.clone(),
        command,
    })
}

/// Rewrites `campaign.jsonl` (atomically, tmp + rename) from the
/// currently-done jobs. Copies each manifest's `cell` and `scalar`
/// records — re-parsed and re-rendered through [`Json`], which is
/// bit-stable for floats — and nothing environment-dependent.
fn write_aggregate(
    dir: &Path,
    name: &str,
    jobs: &BTreeMap<String, JobState>,
    runs_dir: &Path,
) -> Result<(), String> {
    let s = |v: &str| Json::Str(v.to_string());
    let done: Vec<(&String, &JobState)> =
        jobs.iter().filter(|(_, s)| s.manifest.is_some()).collect();
    let mut lines = vec![Json::Obj(vec![
        ("type".into(), s("meta")),
        ("schema".into(), s(CAMPAIGN_SCHEMA)),
        ("campaign".into(), s(name)),
        ("jobs".into(), Json::U64(done.len() as u64)),
    ])
    .render()];
    for (id, state) in &done {
        lines.push(
            Json::Obj(vec![
                ("type".into(), s("job")),
                ("job".into(), s(id)),
                ("spec_hash".into(), s(&state.hash)),
                ("bin".into(), s(&state.spec.bin)),
                ("status".into(), s("done")),
            ])
            .render(),
        );
        let file = state.manifest.as_ref().expect("done jobs have manifests");
        let text = fs::read_to_string(runs_dir.join(file)).map_err(|e| format!("{file}: {e}"))?;
        for line in text.lines().skip(1) {
            let record = Json::parse(line).map_err(|e| format!("{file}: {e}"))?;
            let field = |key: &str| {
                record
                    .get(key)
                    .cloned()
                    .ok_or_else(|| format!("{file}: record missing {key}"))
            };
            match record.get("type").and_then(Json::as_str) {
                Some("cell") => lines.push(
                    Json::Obj(vec![
                        ("type".into(), s("cell")),
                        ("job".into(), s(id)),
                        ("workload".into(), field("workload")?),
                        ("policy".into(), field("policy")?),
                        ("metrics".into(), field("metrics")?),
                    ])
                    .render(),
                ),
                Some("scalar") => lines.push(
                    Json::Obj(vec![
                        ("type".into(), s("scalar")),
                        ("job".into(), s(id)),
                        ("name".into(), field("name")?),
                        ("value".into(), field("value")?),
                    ])
                    .render(),
                ),
                // Phases, counters, and gauges are run-specific noise;
                // copying them would break bit-identity across resumes.
                _ => {}
            }
        }
    }
    let mut out = lines.join("\n");
    out.push('\n');
    let path = dir.join("campaign.jsonl");
    let tmp = dir.join("campaign.jsonl.tmp");
    fs::write(&tmp, out).map_err(|e| format!("{}: {e}", tmp.display()))?;
    fs::rename(&tmp, &path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(())
}

use mrp_cache::policies::Lru;
use mrp_cache::HierarchyConfig;
use mrp_cpu::SingleCoreSim;
use mrp_trace::workloads;
use std::time::Instant;

fn main() {
    let suite = workloads::suite();
    for idx in [0usize, 9, 3] {
        let config = HierarchyConfig::single_thread();
        let lru = Lru::new(config.llc.sets(), config.llc.associativity());
        let mut sim = SingleCoreSim::new(config, Box::new(lru), suite[idx].trace(1));
        let t = Instant::now();
        let r = sim.run(0, 20_000_000);
        let dt = t.elapsed().as_secs_f64();
        println!(
            "{}: {:.1} M instr/s, ipc={:.3}, mpki={:.2}",
            suite[idx].name(),
            20.0 / dt,
            r.ipc,
            r.mpki
        );
    }
}

//! CPU timing model and multi-core co-simulation.
//!
//! The paper models "an out-of-order 4-wide 8-stage pipeline with a
//! 128-entry instruction window" (§4.1). This crate provides the same
//! abstraction at trace granularity:
//!
//! * [`CoreModel`] — an analytic out-of-order approximation: issue
//!   bandwidth of 4 instructions/cycle, a 128-entry window bounding how
//!   many instructions (and therefore overlapping misses) can be in
//!   flight, in-order retirement, and serialization of address-dependent
//!   accesses (pointer chasing cannot overlap its misses).
//! * [`SingleCoreSim`] — a workload + hierarchy + core model bundle
//!   producing IPC and MPKI.
//! * [`MulticoreSim`] — four cores with private L1/L2 sharing one LLC,
//!   interleaved by core-local cycle counts, with the paper's
//!   weighted-speedup methodology (§4.5).
//! * [`metrics`] — geometric means and speedup helpers.
//!
//! # Example
//!
//! ```
//! use mrp_cpu::SingleCoreSim;
//! use mrp_cache::{HierarchyConfig, policies::Lru};
//! use mrp_trace::workloads;
//!
//! let config = HierarchyConfig::single_thread();
//! let lru = Lru::new(config.llc.sets(), config.llc.associativity());
//! let mut sim = SingleCoreSim::new(config, Box::new(lru), workloads::suite()[3].trace(1));
//! let result = sim.run(10_000, 50_000);
//! assert!(result.ipc > 0.0);
//! ```

pub mod core_model;
pub mod metrics;
pub mod multicore;
pub mod replay;
pub mod single;

pub use core_model::{CoreModel, CoreModelConfig};
pub use multicore::{MulticoreResult, MulticoreSim};
pub use replay::replay_single;
pub use single::{SingleCoreResult, SingleCoreSim};

//! Four-core co-simulation with a shared LLC.

use std::fmt;

use mrp_cache::hierarchy::CorePrivate;
use mrp_cache::{Cache, HierarchyConfig, HierarchyStats, ReplacementPolicy};
use mrp_trace::{MemoryAccess, Mix};

use crate::core_model::{CoreModel, CoreModelConfig};

/// Address-space separation between cores: each program's addresses are
/// offset into a private region, as distinct processes would be.
const CORE_ADDRESS_STRIDE: u64 = 1 << 44;

/// PC separation between cores (distinct binaries).
const CORE_PC_STRIDE: u64 = 1 << 40;

/// Per-core and aggregate results of a multi-programmed run.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticoreResult {
    /// Measured IPC per core.
    pub ipc: Vec<f64>,
    /// Instructions retired per core during measurement.
    pub instructions: Vec<u64>,
    /// Shared-LLC demand misses during measurement, summed over cores.
    pub llc_misses: u64,
    /// Aggregate MPKI: LLC misses per kilo-instruction over all cores.
    pub mpki: f64,
}

impl MulticoreResult {
    /// Weighted speedup against per-core standalone baselines:
    /// `sum(IPC_i / SingleIPC_i)` (paper §4.5).
    ///
    /// # Panics
    ///
    /// Panics if `standalone_ipc` has a different core count or contains a
    /// non-positive entry.
    pub fn weighted_ipc(&self, standalone_ipc: &[f64]) -> f64 {
        assert_eq!(standalone_ipc.len(), self.ipc.len(), "core count mismatch");
        assert!(
            standalone_ipc.iter().all(|&s| s > 0.0),
            "standalone IPCs must be positive"
        );
        self.ipc
            .iter()
            .zip(standalone_ipc)
            .map(|(&ipc, &single)| ipc / single)
            .sum()
    }

    /// Publishes `<prefix>.llc_misses` and `<prefix>.instructions`
    /// (summed over cores) into the [`mrp_obs`] registry. Counters
    /// accumulate across runs. No-op while telemetry is disabled.
    pub fn publish(&self, prefix: &str) {
        if !mrp_obs::enabled() {
            return;
        }
        mrp_obs::counter(&format!("{prefix}.llc_misses")).add(self.llc_misses);
        mrp_obs::counter(&format!("{prefix}.instructions"))
            .add(self.instructions.iter().sum::<u64>());
    }
}

struct CoreState {
    private: CorePrivate,
    model: CoreModel,
    trace: Box<dyn Iterator<Item = MemoryAccess> + Send>,
    core_id: u8,
    measured_start_instructions: u64,
}

/// Runs a 4-program [`Mix`] against a shared LLC.
///
/// Cores are interleaved by their local cycle counts: each step advances
/// the core whose clock is furthest behind, so LLC interleaving tracks the
/// relative execution rates (a FIESTA-style sample-balanced co-simulation).
pub struct MulticoreSim {
    cores: Vec<CoreState>,
    llc: Cache,
    latencies: mrp_cache::LevelLatencies,
}

impl fmt::Debug for MulticoreSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MulticoreSim")
            .field("cores", &self.cores.len())
            .field("llc_policy", &self.llc.policy().name())
            .finish()
    }
}

impl MulticoreSim {
    /// Builds the simulation for `mix` with the given shared-LLC policy.
    /// Each member workload gets a private address space and PC range.
    pub fn new(
        config: HierarchyConfig,
        llc_policy: Box<dyn ReplacementPolicy + Send>,
        mix: &Mix,
    ) -> Self {
        MulticoreSim::with_llc(config, Cache::new(config.llc, llc_policy), mix)
    }

    /// Creates the simulation around an already-constructed shared LLC —
    /// the facade route (`PredictionEngine::into_llc`).
    ///
    /// # Panics
    ///
    /// Panics if the LLC's geometry differs from `config.llc`.
    pub fn with_llc(config: HierarchyConfig, llc: Cache, mix: &Mix) -> Self {
        assert_eq!(
            llc.config(),
            &config.llc,
            "LLC geometry must match the hierarchy config"
        );
        let workloads = mix.workloads();
        let seed = mix.seed();
        let cores = workloads
            .iter()
            .enumerate()
            .map(|(i, w)| CoreState {
                private: CorePrivate::new(&config),
                model: CoreModel::new(CoreModelConfig::default()),
                trace: Box::new(w.trace(seed.wrapping_add(i as u64))),
                core_id: i as u8,
                measured_start_instructions: 0,
            })
            .collect();
        MulticoreSim {
            cores,
            llc,
            latencies: config.latencies,
        }
    }

    fn step_core(&mut self, index: usize) {
        let core = &mut self.cores[index];
        let raw = core.trace.next().expect("traces are infinite");
        let access = MemoryAccess {
            pc: raw.pc + u64::from(core.core_id) * CORE_PC_STRIDE,
            address: raw.address + u64::from(core.core_id) * CORE_ADDRESS_STRIDE,
            core: core.core_id,
            ..raw
        };
        let outcome = core
            .private
            .access_with_llc(&access, &mut self.llc, &self.latencies);
        core.model.retire_access(
            access.instructions() as u32,
            outcome.latency,
            access.dependent,
        );
    }

    /// Runs until every core has retired at least `instructions_per_core`
    /// more instructions, advancing the laggard core each step.
    fn advance(&mut self, instructions_per_core: u64) {
        let targets: Vec<u64> = self
            .cores
            .iter()
            .map(|c| c.model.instructions() + instructions_per_core)
            .collect();
        loop {
            // Pick the unfinished core with the smallest local clock.
            let mut next: Option<(usize, u64)> = None;
            for (i, core) in self.cores.iter().enumerate() {
                if core.model.instructions() >= targets[i] {
                    continue;
                }
                let clock = core.model.cycle();
                if next.map(|(_, c)| clock < c).unwrap_or(true) {
                    next = Some((i, clock));
                }
            }
            match next {
                Some((i, _)) => self.step_core(i),
                None => break,
            }
        }
    }

    /// Warms for `warmup` instructions per core (the paper warms until
    /// 100M total instructions), then measures `measure` instructions per
    /// core and reports per-core IPC and aggregate MPKI.
    pub fn run(&mut self, warmup: u64, measure: u64) -> MulticoreResult {
        self.advance(warmup);
        let llc_misses_before = self.llc.stats().demand_misses;
        for core in &mut self.cores {
            core.model.reset_counters();
            core.measured_start_instructions = core.private.instructions();
        }
        self.advance(measure);

        let ipc: Vec<f64> = self.cores.iter().map(|c| c.model.ipc()).collect();
        let instructions: Vec<u64> = self
            .cores
            .iter()
            .map(|c| c.private.instructions() - c.measured_start_instructions)
            .collect();
        let llc_misses = self.llc.stats().demand_misses - llc_misses_before;
        let total_instructions: u64 = instructions.iter().sum();
        MulticoreResult {
            ipc,
            instructions,
            llc_misses,
            mpki: if total_instructions == 0 {
                0.0
            } else {
                llc_misses as f64 * 1000.0 / total_instructions as f64
            },
        }
    }

    /// Aggregated statistics across cores plus the shared LLC.
    pub fn stats(&self) -> HierarchyStats {
        let mut stats = HierarchyStats::default();
        for core in &self.cores {
            stats.merge(&core.private.stats());
        }
        stats.llc = *self.llc.stats();
        stats
    }

    /// The shared LLC.
    pub fn llc(&self) -> &Cache {
        &self.llc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_cache::policies::Lru;
    use mrp_trace::MixBuilder;

    fn sim(mix_index: usize) -> MulticoreSim {
        let config = HierarchyConfig::multi_core();
        let lru = Lru::new(config.llc.sets(), config.llc.associativity());
        let mix = MixBuilder::new(11).mix(mix_index);
        MulticoreSim::new(config, Box::new(lru), &mix)
    }

    #[test]
    fn all_cores_make_progress() {
        let mut s = sim(0);
        let r = s.run(20_000, 50_000);
        assert_eq!(r.ipc.len(), 4);
        for (i, &instr) in r.instructions.iter().enumerate() {
            assert!(instr >= 50_000, "core {i} retired only {instr}");
        }
        assert!(r.ipc.iter().all(|&ipc| ipc > 0.0));
    }

    #[test]
    fn runs_are_deterministic() {
        let a = sim(2).run(10_000, 30_000);
        let b = sim(2).run(10_000, 30_000);
        assert_eq!(a, b);
    }

    #[test]
    fn cores_have_disjoint_address_spaces() {
        // Two cores running the same workload id must not share LLC blocks:
        // verified indirectly by checking that per-core regions can't alias
        // (stride exceeds any generator footprint).
        const { assert!(CORE_ADDRESS_STRIDE > (1u64 << 40)) };
    }

    #[test]
    fn weighted_ipc_sums_ratios() {
        let r = MulticoreResult {
            ipc: vec![1.0, 2.0, 3.0, 0.5],
            instructions: vec![1, 1, 1, 1],
            llc_misses: 0,
            mpki: 0.0,
        };
        let w = r.weighted_ipc(&[1.0, 1.0, 1.0, 1.0]);
        assert!((w - 6.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "core count mismatch")]
    fn weighted_ipc_rejects_wrong_arity() {
        let r = MulticoreResult {
            ipc: vec![1.0; 4],
            instructions: vec![1; 4],
            llc_misses: 0,
            mpki: 0.0,
        };
        let _ = r.weighted_ipc(&[1.0; 3]);
    }

    #[test]
    fn mpki_reflects_shared_llc_misses() {
        let mut s = sim(1);
        let r = s.run(10_000, 40_000);
        assert!(r.mpki >= 0.0);
        let total: u64 = r.instructions.iter().sum();
        let expected = r.llc_misses as f64 * 1000.0 / total as f64;
        assert!((r.mpki - expected).abs() < 1e-9);
    }
}

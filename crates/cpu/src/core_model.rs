//! Analytic out-of-order core timing model.

use std::collections::VecDeque;

/// Pipeline parameters (paper §4.1: 4-wide, 128-entry window, 8 stages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreModelConfig {
    /// Instructions issued/retired per cycle.
    pub width: u32,
    /// Instruction window (ROB) capacity.
    pub window: u32,
}

impl Default for CoreModelConfig {
    fn default() -> Self {
        CoreModelConfig {
            width: 4,
            window: 128,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    completes_at: u64,
    instructions: u32,
}

/// Trace-granularity out-of-order timing approximation.
///
/// The model charges three constraints, taking the binding one:
///
/// 1. **Issue bandwidth** — the cycle count can never be lower than
///    `instructions / width`.
/// 2. **Window occupancy** — a memory access and its preceding non-memory
///    instructions occupy window slots from issue until the access
///    completes; when the window is full the core stalls until the oldest
///    entry completes (in-order retirement).
/// 3. **Dependencies** — an access flagged `dependent` cannot issue before
///    the previous access's data returns.
///
/// Together these reproduce the first-order behavior the paper's
/// experiments measure: independent misses overlap up to the window limit
/// (memory-level parallelism), dependent misses serialize, and IPC
/// degrades smoothly with MPKI.
#[derive(Debug)]
pub struct CoreModel {
    config: CoreModelConfig,
    /// `log2(width)` when the width is a power of two — the
    /// bandwidth-floor division on the retire path becomes a shift.
    width_shift: Option<u32>,
    cycle: u64,
    issued_instructions: u64,
    window: VecDeque<InFlight>,
    window_occupancy: u32,
    previous_completion: u64,
}

impl CoreModel {
    /// Creates an idle core.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero width or window.
    pub fn new(config: CoreModelConfig) -> Self {
        assert!(config.width > 0, "width must be nonzero");
        assert!(config.window > 0, "window must be nonzero");
        CoreModel {
            config,
            width_shift: config
                .width
                .is_power_of_two()
                .then(|| config.width.trailing_zeros()),
            cycle: 0,
            issued_instructions: 0,
            window: VecDeque::new(),
            window_occupancy: 0,
            previous_completion: 0,
        }
    }

    /// Accounts one memory access that completed with `latency` cycles,
    /// representing `instructions` total retired instructions (the access
    /// plus preceding non-memory work); `dependent` serializes it behind
    /// the previous access.
    pub fn retire_access(&mut self, instructions: u32, latency: u64, dependent: bool) {
        let instructions = instructions.min(self.config.window);
        self.issued_instructions += u64::from(instructions);

        // Retire already-completed entries for free.
        while let Some(front) = self.window.front() {
            if front.completes_at <= self.cycle {
                self.window_occupancy -= front.instructions;
                self.window.pop_front();
            } else {
                break;
            }
        }

        // Stall for window space (in-order retirement).
        while self.window_occupancy + instructions > self.config.window {
            let front = self.window.pop_front().expect("occupancy implies entries");
            self.cycle = self.cycle.max(front.completes_at);
            self.window_occupancy -= front.instructions;
        }

        // Issue-bandwidth floor.
        let bandwidth_floor = match self.width_shift {
            Some(shift) => self.issued_instructions >> shift,
            None => self.issued_instructions / u64::from(self.config.width),
        };
        self.cycle = self.cycle.max(bandwidth_floor);

        // Dependency serialization.
        let issue_at = if dependent {
            self.cycle.max(self.previous_completion)
        } else {
            self.cycle
        };

        let completes_at = issue_at + latency;
        self.previous_completion = completes_at;
        self.window.push_back(InFlight {
            completes_at,
            instructions,
        });
        self.window_occupancy += instructions;
    }

    /// Cycle count if the core drained its window now.
    pub fn drained_cycles(&self) -> u64 {
        let last = self
            .window
            .back()
            .map(|e| e.completes_at)
            .unwrap_or(self.cycle);
        last.max(self.cycle)
            .max(self.issued_instructions / u64::from(self.config.width))
    }

    /// The core-local clock *without* draining (used for multi-core
    /// interleaving order).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Instructions issued so far.
    pub fn instructions(&self) -> u64 {
        self.issued_instructions
    }

    /// Instructions per cycle over everything retired so far.
    pub fn ipc(&self) -> f64 {
        let cycles = self.drained_cycles();
        if cycles == 0 {
            0.0
        } else {
            self.issued_instructions as f64 / cycles as f64
        }
    }

    /// Resets the clock and counters but keeps the configuration — used
    /// at the warmup/measurement boundary.
    pub fn reset_counters(&mut self) {
        self.cycle = 0;
        self.issued_instructions = 0;
        self.window.clear();
        self.window_occupancy = 0;
        self.previous_completion = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CoreModel {
        CoreModel::new(CoreModelConfig::default())
    }

    #[test]
    fn all_hits_run_at_pipeline_width() {
        let mut m = model();
        for _ in 0..1000 {
            m.retire_access(4, 4, false);
        }
        let ipc = m.ipc();
        assert!(ipc > 3.5, "hit-only IPC should approach width: {ipc}");
    }

    #[test]
    fn independent_misses_overlap() {
        let mut serial = model();
        let mut overlapped = model();
        for _ in 0..200 {
            overlapped.retire_access(4, 254, false);
            serial.retire_access(4, 254, true);
        }
        assert!(
            overlapped.drained_cycles() * 4 < serial.drained_cycles(),
            "window should overlap independent misses: {} vs {}",
            overlapped.drained_cycles(),
            serial.drained_cycles()
        );
    }

    #[test]
    fn dependent_misses_serialize_fully() {
        let mut m = model();
        const N: u64 = 100;
        const LAT: u64 = 254;
        for _ in 0..N {
            m.retire_access(4, LAT, true);
        }
        assert!(
            m.drained_cycles() >= N * LAT,
            "cycles: {}",
            m.drained_cycles()
        );
    }

    #[test]
    fn window_bounds_mlp() {
        // 32-instruction window, accesses of 8 instructions => at most 4
        // concurrent misses.
        let mut m = CoreModel::new(CoreModelConfig {
            width: 4,
            window: 32,
        });
        const N: u64 = 100;
        const LAT: u64 = 200;
        for _ in 0..N {
            m.retire_access(8, LAT, false);
        }
        let cycles = m.drained_cycles();
        // With MLP 4: ~ N/4 * LAT.
        assert!(cycles >= N / 4 * LAT, "cycles too low: {cycles}");
        assert!(cycles <= N / 4 * LAT + 2 * LAT, "cycles too high: {cycles}");
    }

    #[test]
    fn higher_latency_lowers_ipc() {
        let mut fast = model();
        let mut slow = model();
        for _ in 0..500 {
            fast.retire_access(4, 16, true);
            slow.retire_access(4, 254, true);
        }
        assert!(fast.ipc() > slow.ipc());
    }

    #[test]
    fn reset_clears_state() {
        let mut m = model();
        m.retire_access(4, 100, false);
        m.reset_counters();
        assert_eq!(m.instructions(), 0);
        assert_eq!(m.drained_cycles(), 0);
    }

    #[test]
    fn ipc_of_idle_core_is_zero() {
        assert_eq!(model().ipc(), 0.0);
    }
}

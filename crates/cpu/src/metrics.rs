//! Aggregate metrics: geometric means and speedups.

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics if `values` is empty or any value is non-positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of no values");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean requires positive values"
    );
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of no values");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Speedup of `ipc` over `baseline_ipc`.
///
/// # Panics
///
/// Panics if the baseline is non-positive.
pub fn speedup(ipc: f64, baseline_ipc: f64) -> f64 {
    assert!(baseline_ipc > 0.0, "baseline IPC must be positive");
    ipc / baseline_ipc
}

/// Geometric-mean speedup, as the paper reports ("geometric mean 9.0%
/// speedup" means this function returning 1.090).
pub fn geomean_speedup(speedups: &[f64]) -> f64 {
    geometric_mean(speedups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_that_value() {
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_is_below_arithmetic_mean_for_spread_values() {
        let v = [1.0, 4.0];
        assert!(geometric_mean(&v) < arithmetic_mean(&v));
        assert!((geometric_mean(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_ratio() {
        assert!((speedup(1.5, 1.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geomean_rejects_nonpositive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "no values")]
    fn geomean_rejects_empty() {
        let _ = geometric_mean(&[]);
    }
}

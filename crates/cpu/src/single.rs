//! Single-core simulation: trace + hierarchy + timing.

use std::fmt;

use mrp_cache::{Hierarchy, HierarchyConfig, HierarchyStats, ReplacementPolicy, HIERARCHY_BATCH};
use mrp_trace::MemoryAccess;

use crate::core_model::{CoreModel, CoreModelConfig};

/// Result of a measured single-core run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleCoreResult {
    /// Instructions per cycle over the measurement window.
    pub ipc: f64,
    /// LLC misses per kilo-instruction.
    pub mpki: f64,
    /// Instructions retired during measurement.
    pub instructions: u64,
    /// Cycles consumed during measurement.
    pub cycles: u64,
    /// Full hierarchy statistics for the measurement window.
    pub stats: HierarchyStats,
}

impl SingleCoreResult {
    /// Publishes the run's hierarchy counters plus `<prefix>.cycles`
    /// into the [`mrp_obs`] registry. Counters accumulate across runs,
    /// so after a driver's fan-out they hold suite-wide totals. No-op
    /// while telemetry is disabled.
    pub fn publish(&self, prefix: &str) {
        if !mrp_obs::enabled() {
            return;
        }
        self.stats.publish(prefix);
        mrp_obs::counter(&format!("{prefix}.cycles")).add(self.cycles);
    }
}

/// Drives one trace through a [`Hierarchy`] and a [`CoreModel`].
pub struct SingleCoreSim<T> {
    hierarchy: Hierarchy,
    core: CoreModel,
    trace: T,
}

impl<T> fmt::Debug for SingleCoreSim<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SingleCoreSim")
            .field("hierarchy", &self.hierarchy)
            .finish()
    }
}

impl<T: Iterator<Item = MemoryAccess>> SingleCoreSim<T> {
    /// Creates the simulation with the paper's default core parameters.
    pub fn new(
        config: HierarchyConfig,
        llc_policy: Box<dyn ReplacementPolicy + Send>,
        trace: T,
    ) -> Self {
        SingleCoreSim {
            hierarchy: Hierarchy::new(config, llc_policy),
            core: CoreModel::new(CoreModelConfig::default()),
            trace,
        }
    }

    /// Creates the simulation around an already-constructed LLC — the
    /// facade route (`PredictionEngine::into_llc`).
    ///
    /// # Panics
    ///
    /// Panics if the LLC's geometry differs from `config.llc`.
    pub fn with_llc(config: HierarchyConfig, llc: mrp_cache::Cache, trace: T) -> Self {
        SingleCoreSim {
            hierarchy: Hierarchy::with_llc(config, llc),
            core: CoreModel::new(CoreModelConfig::default()),
            trace,
        }
    }

    /// Runs `warmup` instructions to warm microarchitectural state, then
    /// measures for `measure` instructions (the paper warms for 500M and
    /// measures 1B; scale to taste).
    pub fn run(&mut self, warmup: u64, measure: u64) -> SingleCoreResult {
        self.advance(warmup);
        // Reset measurement state at the warmup boundary.
        self.core.reset_counters();
        let stats_before = self.hierarchy.stats();
        self.advance(measure);
        let mut stats = self.hierarchy.stats();
        stats.l1d = diff(&stats.l1d, &stats_before.l1d);
        stats.l2 = diff(&stats.l2, &stats_before.l2);
        stats.llc = diff(&stats.llc, &stats_before.llc);
        stats.instructions -= stats_before.instructions;
        stats.prefetches_issued -= stats_before.prefetches_issued;

        let cycles = self.core.drained_cycles();
        let instructions = self.core.instructions();
        SingleCoreResult {
            ipc: self.core.ipc(),
            mpki: stats.llc_mpki(),
            instructions,
            cycles,
            stats,
        }
    }

    /// Runs until at least `instructions` have retired, driving the
    /// hierarchy in [`HIERARCHY_BATCH`]-access groups so the LLC
    /// policy's prediction stage can batch
    /// ([`Hierarchy::access_batch`]). The group pull re-checks the
    /// retirement target exactly where the one-at-a-time loop would, so
    /// the access sequence (including the final overshoot) is
    /// unchanged; accesses retire in access order.
    fn advance(&mut self, instructions: u64) {
        let mut retired = 0u64;
        let mut group: Vec<MemoryAccess> = Vec::with_capacity(HIERARCHY_BATCH);
        let mut outcomes = Vec::with_capacity(HIERARCHY_BATCH);
        while retired < instructions {
            group.clear();
            while group.len() < HIERARCHY_BATCH && retired < instructions {
                let access = self.trace.next().expect("traces are infinite");
                retired += access.instructions();
                group.push(access);
            }
            self.hierarchy.access_batch(&group, &mut outcomes);
            for (access, outcome) in group.iter().zip(&outcomes) {
                self.core.retire_access(
                    access.instructions() as u32,
                    outcome.latency,
                    access.dependent,
                );
            }
        }
    }

    /// The hierarchy (for policy introspection after a run).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }
}

fn diff(after: &mrp_cache::CacheStats, before: &mrp_cache::CacheStats) -> mrp_cache::CacheStats {
    mrp_cache::CacheStats {
        demand_hits: after.demand_hits - before.demand_hits,
        demand_misses: after.demand_misses - before.demand_misses,
        bypasses: after.bypasses - before.bypasses,
        prefetch_hits: after.prefetch_hits - before.prefetch_hits,
        prefetch_fills: after.prefetch_fills - before.prefetch_fills,
        evictions: after.evictions - before.evictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_cache::policies::Lru;
    use mrp_trace::workloads;

    fn sim_for(workload: usize) -> SingleCoreSim<mrp_trace::workloads::Trace> {
        let config = HierarchyConfig::single_thread();
        let lru = Lru::new(config.llc.sets(), config.llc.associativity());
        SingleCoreSim::new(config, Box::new(lru), workloads::suite()[workload].trace(1))
    }

    #[test]
    fn fitting_loop_has_high_ipc_and_low_mpki() {
        let mut sim = sim_for(3); // loop.fit: 1MB loop
        let r = sim.run(200_000, 200_000);
        assert!(r.mpki < 1.0, "loop.fit mpki: {}", r.mpki);
        assert!(r.ipc > 2.0, "loop.fit ipc: {}", r.ipc);
    }

    #[test]
    fn big_chase_has_low_ipc_and_high_mpki() {
        let mut sim = sim_for(9); // chase.16m
        let r = sim.run(100_000, 200_000);
        assert!(r.mpki > 20.0, "chase.16m mpki: {}", r.mpki);
        assert!(r.ipc < 0.5, "chase.16m ipc: {}", r.ipc);
    }

    #[test]
    fn measurement_excludes_warmup() {
        let mut sim = sim_for(3);
        let r = sim.run(300_000, 100_000);
        assert!(r.instructions >= 100_000);
        assert!(r.instructions < 110_000);
        assert_eq!(r.stats.instructions, r.instructions);
    }

    #[test]
    fn results_are_deterministic() {
        let a = sim_for(10).run(50_000, 100_000);
        let b = sim_for(10).run(50_000, 100_000);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats, b.stats);
    }
}

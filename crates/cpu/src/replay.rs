//! Full timing replay of a recorded LLC stream.
//!
//! [`replay_single`] reproduces `SingleCoreSim::run` bit for bit from an
//! [`LlcRecording`] instead of re-simulating the trace generator, L1, L2
//! and prefetcher: only the LLC (the one component that depends on the
//! policy under test) and the core timing model run live. The recorded
//! servicing level dictates each demand access's latency except for
//! LLC-bound accesses, whose hit/miss — and hence latency — is decided
//! by the replayed LLC itself.
//!
//! Correctness hinges on reproducing the full simulation's operation
//! order on both live components:
//!
//! * **LLC**: events are logged in emission order — a demand access at
//!   its `on_core_access` position, then the prefetch fills that drained
//!   during that access — but the *demand LLC access* of an LLC-bound
//!   event happens after those drains. Replay therefore holds the
//!   LLC-bound demand as `pending` and flushes it at the next demand
//!   event (or window edge), exactly where full simulation would issue
//!   it relative to every other LLC operation.
//! * **Core model**: accesses retire in access order; holding at most
//!   one pending retire (flushed before the next access's retire)
//!   preserves it. Retiring an L1/L2-serviced access immediately —
//!   before later prefetch drains touch the LLC — is exact because the
//!   core model and the LLC share no state.
//!
//! The measure-window statistics combine the recorded L1/L2 snapshot
//! diffs with the replayed LLC's own counter diff at the warmup
//! boundary, rebuilding the same `HierarchyStats` full simulation
//! reports.

use mrp_cache::replay::LlcRecording;
use mrp_cache::{Cache, CacheStats, HierarchyStats, LevelLatencies, UpcomingAccess, LLC_LOOKAHEAD};
use mrp_trace::ServiceLevel;

use crate::core_model::{CoreModel, CoreModelConfig};
use crate::single::SingleCoreResult;

/// Replays `recording` into `cache` (the LLC under test) with the
/// paper's default core parameters, returning the same
/// [`SingleCoreResult`] full simulation would produce.
pub fn replay_single(
    recording: &LlcRecording,
    cache: &mut Cache,
    latencies: &LevelLatencies,
) -> SingleCoreResult {
    let mut core = CoreModel::new(CoreModelConfig::default());
    let llc_hit = latencies.l1 + latencies.l2 + latencies.llc;
    let llc_miss = llc_hit + latencies.dram;
    // Policies whose `on_core_access` is the no-op default (all but the
    // perceptron family) skip both the per-access hook call and the
    // `MemoryAccess` reconstruction feeding it — the replay loop then
    // touches only the flag/gap bytes of upper-level-serviced events.
    let hook = cache.policy_mut().uses_core_accesses();
    // LLC operations execute in exact `llc_events` order (a pending
    // demand flushes before the next event's drains), so the window
    // feed can announce each upcoming span straight off the recording.
    let mut feed = WindowFeed::new(recording, cache.policy_mut().uses_upcoming_accesses());

    // Demand access bound for the LLC, awaiting its prefetch drains.
    let mut pending = None;
    let mut llc_before = CacheStats::default();
    let events = recording.len();
    for index in 0..=events {
        if index == recording.warmup_events() {
            // Warmup/measure boundary: complete the last warmup access,
            // then reset measurement state exactly as `run` does.
            flush(&mut pending, cache, &mut core, llc_hit, llc_miss, &mut feed);
            core.reset_counters();
            llc_before = *cache.stats();
        }
        if index == events {
            break;
        }
        // Run the tag-row prefetch a fixed window ahead of the serial
        // update loop; only LLC-reaching events cost a lookahead check
        // beyond one flag byte.
        let ahead = index + LlcRecording::REPLAY_LOOKAHEAD;
        if ahead < events && recording.reaches_llc(ahead) {
            cache.prefetch_block(recording.block_at(ahead));
        }
        if recording.is_prefetch(index) {
            feed.before_llc_op(cache);
            let _ = cache.access(&recording.access_at(index), true);
            continue;
        }
        flush(&mut pending, cache, &mut core, llc_hit, llc_miss, &mut feed);
        if hook {
            cache
                .policy_mut()
                .on_core_access(&recording.access_at(index));
        }
        match recording.level_at(index) {
            ServiceLevel::L1 => {
                core.retire_access(
                    recording.instructions_at(index),
                    latencies.l1,
                    recording.dependent_at(index),
                );
            }
            ServiceLevel::L2 => {
                core.retire_access(
                    recording.instructions_at(index),
                    latencies.l1 + latencies.l2,
                    recording.dependent_at(index),
                );
            }
            ServiceLevel::Llc => pending = Some(recording.access_at(index)),
        }
    }
    flush(&mut pending, cache, &mut core, llc_hit, llc_miss, &mut feed);

    let stats = HierarchyStats {
        l1d: diff(&recording.end().l1d, &recording.boundary().l1d),
        l2: diff(&recording.end().l2, &recording.boundary().l2),
        llc: diff(cache.stats(), &llc_before),
        instructions: recording.measured_instructions(),
        prefetches_issued: recording.end().prefetches_issued
            - recording.boundary().prefetches_issued,
    };
    SingleCoreResult {
        ipc: core.ipc(),
        mpki: stats.llc_mpki(),
        instructions: core.instructions(),
        cycles: core.drained_cycles(),
        stats,
    }
}

/// Announces [`UpcomingAccess`] windows to the replayed policy as the
/// loop reaches each window edge of the recorded LLC stream.
struct WindowFeed<'a> {
    recording: &'a LlcRecording,
    /// Whether the policy consumes windows (skip all work otherwise).
    enabled: bool,
    window: Vec<UpcomingAccess>,
    /// LLC operations executed so far — the position in `llc_events` of
    /// the operation about to run.
    cursor: usize,
}

impl<'a> WindowFeed<'a> {
    fn new(recording: &'a LlcRecording, enabled: bool) -> Self {
        WindowFeed {
            recording,
            enabled,
            window: Vec::with_capacity(LLC_LOOKAHEAD),
            cursor: 0,
        }
    }

    /// Called immediately before every LLC operation (prefetch fill or
    /// flushed demand): delivers the next window at each
    /// [`LLC_LOOKAHEAD`] boundary, then advances the cursor.
    #[inline]
    fn before_llc_op(&mut self, cache: &mut Cache) {
        if self.enabled && self.cursor.is_multiple_of(LLC_LOOKAHEAD) {
            self.recording
                .upcoming_window(self.cursor, &mut self.window);
            cache.policy_mut().on_upcoming_accesses(&self.window);
        }
        self.cursor += 1;
    }
}

/// Issues a deferred LLC-bound demand access and retires it with the
/// latency its replayed hit/miss outcome dictates.
fn flush(
    pending: &mut Option<mrp_trace::MemoryAccess>,
    cache: &mut Cache,
    core: &mut CoreModel,
    llc_hit: u64,
    llc_miss: u64,
    feed: &mut WindowFeed<'_>,
) {
    if let Some(access) = pending.take() {
        feed.before_llc_op(cache);
        let latency = if cache.access(&access, false).is_hit() {
            llc_hit
        } else {
            llc_miss
        };
        core.retire_access(access.instructions() as u32, latency, access.dependent);
    }
}

fn diff(after: &CacheStats, before: &CacheStats) -> CacheStats {
    CacheStats {
        demand_hits: after.demand_hits - before.demand_hits,
        demand_misses: after.demand_misses - before.demand_misses,
        bypasses: after.bypasses - before.bypasses,
        prefetch_hits: after.prefetch_hits - before.prefetch_hits,
        prefetch_fills: after.prefetch_fills - before.prefetch_fills,
        evictions: after.evictions - before.evictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::SingleCoreSim;
    use mrp_cache::policies::{Lru, Srrip};
    use mrp_cache::{HierarchyConfig, ReplacementPolicy};
    use mrp_trace::workloads;

    fn policies(config: &HierarchyConfig) -> Vec<Box<dyn ReplacementPolicy + Send>> {
        vec![
            Box::new(Lru::new(config.llc.sets(), config.llc.associativity())),
            Box::new(Srrip::new(config.llc.sets(), config.llc.associativity())),
        ]
    }

    fn check_workload(workload: usize, warmup: u64, measure: u64, seed: u64) {
        let config = HierarchyConfig::single_thread();
        let suite = workloads::suite();
        let w = &suite[workload];
        let recording = LlcRecording::record(w.name(), w.trace(seed), &config, warmup, measure);
        for (full_policy, replay_policy) in policies(&config).into_iter().zip(policies(&config)) {
            let name = full_policy.name().to_string();
            let mut sim = SingleCoreSim::new(config, full_policy, w.trace(seed));
            let full = sim.run(warmup, measure);
            let mut cache = Cache::new(config.llc, replay_policy);
            let replayed = replay_single(&recording, &mut cache, &config.latencies);
            assert_eq!(
                full.ipc.to_bits(),
                replayed.ipc.to_bits(),
                "{name}/{workload}: ipc diverged ({} vs {})",
                full.ipc,
                replayed.ipc
            );
            assert_eq!(
                full.mpki.to_bits(),
                replayed.mpki.to_bits(),
                "{name}/{workload}: mpki diverged ({} vs {})",
                full.mpki,
                replayed.mpki
            );
            assert_eq!(
                full.instructions, replayed.instructions,
                "{name}/{workload}"
            );
            assert_eq!(full.cycles, replayed.cycles, "{name}/{workload}");
            assert_eq!(full.stats, replayed.stats, "{name}/{workload}");
        }
    }

    #[test]
    fn replay_is_bit_identical_on_stream_workload() {
        check_workload(0, 20_000, 60_000, 1);
    }

    #[test]
    fn replay_is_bit_identical_on_loop_workload() {
        check_workload(4, 30_000, 50_000, 2);
    }

    #[test]
    fn replay_is_bit_identical_on_pointer_chase() {
        check_workload(9, 10_000, 40_000, 3);
    }

    #[test]
    fn replay_is_bit_identical_without_warmup() {
        check_workload(12, 0, 50_000, 4);
    }
}

//! Perceptron learning for reuse prediction.
//!
//! Teran, Wang & Jiménez, MICRO 2016 — the direct predecessor of
//! multiperspective prediction. Six fixed features (the current PC shifted,
//! three recent PCs, and two shifts of the block tag) each index a table of
//! 6-bit weights; the thresholded sum drives bypass and replacement, with a
//! per-block "predicted dead" bit (the extra state MPPPB eliminates, §2).

use mrp_cache::policies::Lru;
use mrp_cache::{AccessInfo, CacheConfig, ReplacementPolicy};
use mrp_core::simd::{self, ApplyScratch, GATHER_PAD};
use mrp_trace::MemoryAccess;

/// Number of feature tables.
const FEATURES: usize = 6;

/// Entries per table.
const TABLE_ENTRIES: usize = 256;

/// 6-bit weight bounds.
const WEIGHT_MIN: i8 = -32;
const WEIGHT_MAX: i8 = 31;

/// Sampler associativity.
const SAMPLER_ASSOC: usize = 16;

/// Training threshold θ and decision thresholds τ (tuned on the workload
/// suite; the original paper's values are calibrated to its own traces).
const THETA: i32 = 45;
const TAU_BYPASS: i32 = 6;
const TAU_REPLACE: i32 = 80;

#[derive(Debug, Clone, Copy, Default)]
struct SamplerEntry {
    tag: u16,
    indices: [u16; FEATURES],
    confidence: i16,
    lru: u8,
    valid: bool,
}

/// The perceptron reuse predictor policy.
#[derive(Debug)]
pub struct PerceptronPolicy {
    /// All six weight tables flattened into one arena; feature `f`'s
    /// table starts at `f * TABLE_ENTRIES`, and the index vector carries
    /// precombined arena offsets.
    tables: Vec<i8>,
    sampler: Vec<[SamplerEntry; SAMPLER_ASSOC]>,
    sample_stride: u32,
    /// `(shift, mask)` when `sample_stride` is a power of two: replaces
    /// the division pair in the sampled-set check.
    sample_pow2: Option<(u32, u32)>,
    history: [u64; 4],
    dead_bits: Vec<bool>,
    lru: Lru,
    assoc: u32,
    last_confidence: i32,
    measure_only: bool,
    /// Scratch for the shared weight-update kernel (allocation-free
    /// steady state, same as the multiperspective arena's).
    apply_scratch: ApplyScratch,
}

#[inline]
fn fold8(x: u64) -> u16 {
    let mut v = x;
    let mut out = 0u64;
    while v != 0 {
        out ^= v & 0xff;
        v >>= 8;
    }
    out as u16
}

impl PerceptronPolicy {
    /// Creates the policy for `llc` with `sampler_sets` sampled sets (the
    /// paper grants Perceptron extra sampler sets to equalize hardware
    /// budgets, §4.4).
    ///
    /// # Panics
    ///
    /// Panics if `sampler_sets` is 0 or exceeds the set count.
    pub fn new(llc: &CacheConfig, sampler_sets: u32) -> Self {
        assert!(
            sampler_sets > 0 && sampler_sets <= llc.sets(),
            "sampler sets out of range"
        );
        let sample_stride = (llc.sets() / sampler_sets).max(1);
        PerceptronPolicy {
            // Padded like `mrp_core::tables::WeightTables` so the shared
            // AVX2 gather-sum kernel stays in bounds on every offset.
            tables: vec![0i8; FEATURES * TABLE_ENTRIES + GATHER_PAD],
            sampler: vec![[SamplerEntry::default(); SAMPLER_ASSOC]; sampler_sets as usize],
            sample_stride,
            sample_pow2: sample_stride
                .is_power_of_two()
                .then(|| (sample_stride.trailing_zeros(), sample_stride - 1)),
            history: [0; 4],
            dead_bits: vec![false; llc.sets() as usize * llc.associativity() as usize],
            lru: Lru::new(llc.sets(), llc.associativity()),
            assoc: llc.associativity(),
            last_confidence: 0,
            measure_only: false,
            apply_scratch: ApplyScratch::default(),
        }
    }

    /// Switches off the optimization while keeping prediction/training.
    pub fn set_measure_only(&mut self, measure_only: bool) {
        self.measure_only = measure_only;
    }

    /// Confidence of the most recent prediction.
    pub fn last_confidence(&self) -> i32 {
        self.last_confidence
    }

    /// Per-feature arena offsets (`f * TABLE_ENTRIES + index`) for an
    /// access — ready for direct gather/update against `tables`.
    fn indices(&self, pc: u64, block: u64) -> [u16; FEATURES] {
        let tag = block;
        let mut offsets = [
            fold8(pc >> 2),
            fold8(self.history[1]),
            fold8(self.history[2]),
            fold8(self.history[3]),
            fold8(tag >> 4) ^ fold8(pc) & 0xff,
            fold8(tag >> 7) ^ fold8(pc >> 5) & 0xff,
        ]
        .map(|i| i % TABLE_ENTRIES as u16);
        for (f, offset) in offsets.iter_mut().enumerate() {
            *offset += (f * TABLE_ENTRIES) as u16;
        }
        offsets
    }

    fn confidence(&self, indices: &[u16; FEATURES]) -> i32 {
        // Same batched gather-sum kernel as the multiperspective
        // predictor's confidence — the two i8 arenas share one hot path.
        simd::gather_sum_i8(&self.tables, indices, simd::level())
    }

    fn train(&mut self, indices: &[u16; FEATURES], stored_confidence: i32, dead: bool) {
        // Threshold training: update on misprediction or low confidence.
        let should = if dead {
            stored_confidence <= THETA
        } else {
            stored_confidence >= -THETA
        };
        if !should {
            return;
        }
        // One packed `(offset << 1) | sign` word per feature, applied
        // through the same saturating weight-update kernel as the
        // multiperspective predictor's train path.
        let sign = u32::from(!dead);
        let events = indices.map(|i| (u32::from(i) << 1) | sign);
        simd::apply_events_i8(
            &mut self.tables,
            &events,
            WEIGHT_MIN,
            WEIGHT_MAX,
            simd::level(),
            &mut self.apply_scratch,
        );
    }

    fn sampler_access(&mut self, set: u32, block: u64, indices: [u16; FEATURES], confidence: i32) {
        let sampler_set = match self.sample_pow2 {
            Some((shift, mask)) => {
                if set & mask != 0 {
                    return;
                }
                (set >> shift) as usize
            }
            None => {
                if !set.is_multiple_of(self.sample_stride) {
                    return;
                }
                (set / self.sample_stride) as usize
            }
        };
        if sampler_set >= self.sampler.len() {
            return;
        }
        let tag = fold8(block) | (fold8(block >> 8) << 8);
        let set_entries_len = self.sampler[sampler_set].len();

        if let Some(i) = (0..set_entries_len).find(|&i| {
            self.sampler[sampler_set][i].valid && self.sampler[sampler_set][i].tag == tag
        }) {
            // Reuse: train live with the stored feature indices.
            let entry = self.sampler[sampler_set][i];
            self.train(&entry.indices, i32::from(entry.confidence), false);
            let old_lru = entry.lru;
            for e in self.sampler[sampler_set].iter_mut() {
                if e.valid && e.lru < old_lru {
                    e.lru += 1;
                }
            }
            let e = &mut self.sampler[sampler_set][i];
            e.lru = 0;
            e.indices = indices;
            e.confidence = confidence.clamp(-256, 255) as i16;
            return;
        }

        // Miss: insert, evicting LRU and training it dead.
        if let Some(i) = (0..set_entries_len).find(|&i| !self.sampler[sampler_set][i].valid) {
            for e in self.sampler[sampler_set].iter_mut() {
                if e.valid {
                    e.lru += 1;
                }
            }
            self.sampler[sampler_set][i] = SamplerEntry {
                tag,
                indices,
                confidence: confidence.clamp(-256, 255) as i16,
                lru: 0,
                valid: true,
            };
            return;
        }
        let victim = (0..set_entries_len)
            .max_by_key(|&i| self.sampler[sampler_set][i].lru)
            .expect("sampler set nonempty");
        let evicted = self.sampler[sampler_set][victim];
        self.train(&evicted.indices, i32::from(evicted.confidence), true);
        for e in self.sampler[sampler_set].iter_mut() {
            e.lru = e.lru.saturating_add(1);
        }
        self.sampler[sampler_set][victim] = SamplerEntry {
            tag,
            indices,
            confidence: confidence.clamp(-256, 255) as i16,
            lru: 0,
            valid: true,
        };
    }

    fn predict(&mut self, info: &AccessInfo) -> i32 {
        let indices = self.indices(info.pc, info.block);
        let confidence = self.confidence(&indices);
        self.sampler_access(info.set, info.block, indices, confidence);
        self.last_confidence = confidence;
        confidence
    }

    #[inline]
    fn slot(&self, set: u32, way: u32) -> usize {
        set as usize * self.assoc as usize + way as usize
    }
}

impl ReplacementPolicy for PerceptronPolicy {
    fn name(&self) -> &str {
        "perceptron"
    }

    fn on_core_access(&mut self, access: &MemoryAccess) {
        self.history.rotate_right(1);
        self.history[0] = access.pc;
    }

    fn uses_core_accesses(&self) -> bool {
        true
    }

    fn on_hit(&mut self, info: &AccessInfo, way: u32) {
        let confidence = self.predict(info);
        let slot = self.slot(info.set, way);
        self.dead_bits[slot] = confidence > TAU_REPLACE && !self.measure_only;
        self.lru.on_hit(info, way);
    }

    fn should_bypass(&mut self, info: &AccessInfo) -> bool {
        let confidence = self.predict(info);
        confidence > TAU_BYPASS && !self.measure_only
    }

    fn choose_victim(&mut self, info: &AccessInfo, occupants: &[u64]) -> u32 {
        if !self.measure_only {
            for way in 0..self.assoc {
                if self.dead_bits[self.slot(info.set, way)] {
                    return way;
                }
            }
        }
        self.lru.choose_victim(info, occupants)
    }

    fn on_fill(&mut self, info: &AccessInfo, way: u32) {
        let slot = self.slot(info.set, way);
        // A block filled despite a moderately positive prediction keeps
        // its dead mark so replacement can reclaim it early.
        self.dead_bits[slot] = false;
        self.lru.on_fill(info, way);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_cache::{AccessResult, Cache};
    use mrp_trace::MemoryAccess;

    fn llc() -> CacheConfig {
        CacheConfig::new(64 * 16 * 64, 16)
    }

    fn load(pc: u64, block: u64) -> MemoryAccess {
        MemoryAccess::load(pc, block * 64)
    }

    #[test]
    fn basic_hit_miss() {
        let c = llc();
        let mut cache = Cache::new(c, Box::new(PerceptronPolicy::new(&c, 16)));
        let a = load(0x400000, 3);
        assert!(cache.access(&a, false).is_miss());
        assert!(cache.access(&a, false).is_hit());
    }

    #[test]
    fn stream_learns_to_bypass() {
        let c = llc();
        let mut cache = Cache::new(c, Box::new(PerceptronPolicy::new(&c, 16)));
        let mut bypassed = false;
        for i in 0..300_000u64 {
            if cache.access(&load(0x400000, i), false) == AccessResult::Bypassed {
                bypassed = true;
            }
        }
        assert!(bypassed);
    }

    #[test]
    fn hot_set_is_retained() {
        let c = llc();
        let mut cache = Cache::new(c, Box::new(PerceptronPolicy::new(&c, 16)));
        let mut last_round_misses = 0;
        for round in 0..200u64 {
            let before = cache.stats().demand_misses;
            for b in 0..256u64 {
                let _ = cache.access(&load(0x500000, b), false);
            }
            last_round_misses = cache.stats().demand_misses - before;
            let _ = round;
        }
        assert_eq!(last_round_misses, 0, "resident hot set still missing");
    }

    #[test]
    fn measure_only_never_bypasses() {
        let c = llc();
        let mut p = PerceptronPolicy::new(&c, 16);
        p.set_measure_only(true);
        let mut cache = Cache::new(c, Box::new(p));
        for i in 0..100_000u64 {
            assert_ne!(
                cache.access(&load(0x400000, i), false),
                AccessResult::Bypassed
            );
        }
    }

    #[test]
    fn weights_stay_in_six_bit_range() {
        let c = llc();
        let mut p = PerceptronPolicy::new(&c, 8);
        let indices = p.indices(0x400000, 42);
        for _ in 0..200 {
            p.train(&indices, 0, true);
        }
        assert!(p.confidence(&indices) <= FEATURES as i32 * i32::from(WEIGHT_MAX));
        for _ in 0..500 {
            p.train(&indices, 0, false);
        }
        assert!(p.confidence(&indices) >= FEATURES as i32 * i32::from(WEIGHT_MIN));
    }
}

//! Hawkeye (Jain & Lin, ISCA 2016).
//!
//! Hawkeye reconstructs what Belady's MIN would have done on a few sampled
//! sets (OPTgen) and trains a PC-indexed classifier: loads whose blocks
//! MIN would have kept are "cache-friendly", the rest "cache-averse".
//! Friendly blocks are inserted protected (RRPV 0), averse blocks at
//! distant RRPV, over a 3-bit RRIP-like replacement scheme.

use mrp_cache::{AccessInfo, CacheConfig, ReplacementPolicy};

/// 3-bit RRPV maximum.
const RRPV_MAX: u8 = 7;

/// OPTgen time window per sampled set (8x a 16-way set's capacity).
const OPTGEN_WINDOW: usize = 128;

/// History entries per sampled set (tracks more blocks than the set holds,
/// as reuse intervals can exceed residency).
const HISTORY_ENTRIES: usize = 64;

/// Classifier table entries (PC-indexed 3-bit counters).
const CLASSIFIER_ENTRIES: usize = 8192;

#[derive(Debug, Clone, Copy, Default)]
struct HistoryEntry {
    tag: u16,
    last_time: u64,
    last_pc_hash: u32,
    valid: bool,
}

#[derive(Debug)]
struct OptGenSet {
    /// Ring buffer of occupancy counts, indexed by time % window.
    occupancy: [u8; OPTGEN_WINDOW],
    history: [HistoryEntry; HISTORY_ENTRIES],
    time: u64,
    capacity: u8,
}

impl OptGenSet {
    fn new(capacity: u8) -> Self {
        OptGenSet {
            occupancy: [0; OPTGEN_WINDOW],
            history: [HistoryEntry::default(); HISTORY_ENTRIES],
            time: 0,
            capacity,
        }
    }

    /// Advances time by one access; returns `Some(would_opt_hit)` when the
    /// block has a usable previous access, plus the PC hash of that
    /// previous access.
    fn access(&mut self, tag: u16, pc_hash: u32) -> Option<(bool, u32)> {
        let now = self.time;
        self.time += 1;
        // Expire the occupancy slot that `now` is about to reuse.
        self.occupancy[(now % OPTGEN_WINDOW as u64) as usize] = 0;

        let found = self.history.iter().position(|e| e.valid && e.tag == tag);
        let result = match found {
            Some(i) => {
                let prev = self.history[i];
                let age = now - prev.last_time;
                if age == 0 || age >= OPTGEN_WINDOW as u64 {
                    None // interval too long to decide: no training
                } else {
                    // Would MIN have kept this block across the interval?
                    let mut fits = true;
                    for t in prev.last_time..now {
                        if self.occupancy[(t % OPTGEN_WINDOW as u64) as usize] >= self.capacity {
                            fits = false;
                            break;
                        }
                    }
                    if fits {
                        for t in prev.last_time..now {
                            self.occupancy[(t % OPTGEN_WINDOW as u64) as usize] += 1;
                        }
                    }
                    Some((fits, prev.last_pc_hash))
                }
            }
            None => None,
        };

        // Update / allocate the history entry (LRU by last_time).
        match found {
            Some(i) => {
                self.history[i].last_time = now;
                self.history[i].last_pc_hash = pc_hash;
            }
            None => {
                let slot = self
                    .history
                    .iter()
                    .position(|e| !e.valid)
                    .unwrap_or_else(|| {
                        self.history
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, e)| e.last_time)
                            .map(|(i, _)| i)
                            .expect("history nonempty")
                    });
                self.history[slot] = HistoryEntry {
                    tag,
                    last_time: now,
                    last_pc_hash: pc_hash,
                    valid: true,
                };
            }
        }
        result
    }
}

#[inline]
fn pc_hash(pc: u64) -> u32 {
    let x = pc ^ (pc >> 17) ^ (pc >> 31);
    (x & 0xffff_ffff) as u32
}

/// The Hawkeye policy.
#[derive(Debug)]
pub struct Hawkeye {
    classifier: Vec<u8>,
    optgen: Vec<OptGenSet>,
    sample_stride: u32,
    rrpv: Vec<u8>,
    block_pc: Vec<u32>,
    assoc: u32,
    last_confidence: i32,
}

impl Hawkeye {
    /// Creates the policy for `llc` with `sampler_sets` OPTgen sets.
    ///
    /// # Panics
    ///
    /// Panics if `sampler_sets` is 0 or exceeds the set count.
    pub fn new(llc: &CacheConfig, sampler_sets: u32) -> Self {
        assert!(
            sampler_sets > 0 && sampler_sets <= llc.sets(),
            "sampler sets out of range"
        );
        let slots = llc.sets() as usize * llc.associativity() as usize;
        Hawkeye {
            classifier: vec![4u8; CLASSIFIER_ENTRIES], // start neutral-friendly
            optgen: (0..sampler_sets)
                .map(|_| OptGenSet::new(llc.associativity() as u8))
                .collect(),
            sample_stride: (llc.sets() / sampler_sets).max(1),
            rrpv: vec![RRPV_MAX; slots],
            block_pc: vec![0; slots],
            assoc: llc.associativity(),
            last_confidence: 0,
        }
    }

    /// Classifier counter (0..=7) for a PC; >= 4 means cache-friendly.
    pub fn counter(&self, pc: u64) -> u8 {
        self.classifier[pc_hash(pc) as usize % CLASSIFIER_ENTRIES]
    }

    /// The "confidence" of the last prediction: averse-ness as a positive
    /// number, comparable in spirit (not scale) to the reuse predictors.
    pub fn last_confidence(&self) -> i32 {
        self.last_confidence
    }

    fn friendly(&mut self, pc: u64) -> bool {
        let counter = self.counter(pc);
        self.last_confidence = 7 - i32::from(counter);
        counter >= 4
    }

    fn train(&mut self, trained_pc_hash: u32, friendly: bool) {
        let c = &mut self.classifier[trained_pc_hash as usize % CLASSIFIER_ENTRIES];
        if friendly {
            *c = (*c + 1).min(7);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn optgen_access(&mut self, info: &AccessInfo) {
        if !info.set.is_multiple_of(self.sample_stride) {
            return;
        }
        let idx = (info.set / self.sample_stride) as usize;
        if idx >= self.optgen.len() {
            return;
        }
        let tag = (info.block ^ (info.block >> 16)) as u16;
        if let Some((opt_hit, prev_pc)) = self.optgen[idx].access(tag, pc_hash(info.pc)) {
            self.train(prev_pc, opt_hit);
        }
    }

    #[inline]
    fn slot(&self, set: u32, way: u32) -> usize {
        set as usize * self.assoc as usize + way as usize
    }

    fn place(&mut self, info: &AccessInfo, way: u32) {
        let friendly = self.friendly(info.pc);
        let slot = self.slot(info.set, way);
        self.block_pc[slot] = pc_hash(info.pc);
        if friendly {
            // Age everything else, then protect this block.
            for w in 0..self.assoc {
                if w != way {
                    let s = self.slot(info.set, w);
                    self.rrpv[s] = (self.rrpv[s] + 1).min(RRPV_MAX - 1);
                }
            }
            self.rrpv[slot] = 0;
        } else {
            self.rrpv[slot] = RRPV_MAX;
        }
    }
}

impl ReplacementPolicy for Hawkeye {
    fn name(&self) -> &str {
        "hawkeye"
    }

    fn on_hit(&mut self, info: &AccessInfo, way: u32) {
        self.optgen_access(info);
        let friendly = self.friendly(info.pc);
        let slot = self.slot(info.set, way);
        self.block_pc[slot] = pc_hash(info.pc);
        self.rrpv[slot] = if friendly { 0 } else { RRPV_MAX };
    }

    fn should_bypass(&mut self, info: &AccessInfo) -> bool {
        // Original Hawkeye does not bypass; it relies on distant insertion.
        self.optgen_access(info);
        false
    }

    fn choose_victim(&mut self, info: &AccessInfo, _occupants: &[u64]) -> u32 {
        // Prefer an averse block (RRPV 7); otherwise evict the oldest
        // friendly block and detrain its PC (it was kept but died).
        let base = self.slot(info.set, 0);
        for way in 0..self.assoc {
            if self.rrpv[base + way as usize] == RRPV_MAX {
                return way;
            }
        }
        let victim = (0..self.assoc)
            .max_by_key(|&w| self.rrpv[base + w as usize])
            .expect("associativity nonzero");
        let victim_pc = self.block_pc[base + victim as usize];
        self.train(victim_pc, false);
        victim
    }

    fn on_fill(&mut self, info: &AccessInfo, way: u32) {
        self.place(info, way);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_cache::Cache;
    use mrp_trace::MemoryAccess;

    fn llc() -> CacheConfig {
        CacheConfig::new(64 * 16 * 64, 16)
    }

    fn load(pc: u64, block: u64) -> MemoryAccess {
        MemoryAccess::load(pc, block * 64)
    }

    #[test]
    fn basic_hit_miss() {
        let c = llc();
        let mut cache = Cache::new(c, Box::new(Hawkeye::new(&c, 16)));
        let a = load(0x400000, 3);
        assert!(cache.access(&a, false).is_miss());
        assert!(cache.access(&a, false).is_hit());
    }

    #[test]
    fn optgen_classifies_tight_loop_friendly() {
        let c = llc();
        let mut h = Hawkeye::new(&c, 16);
        // Loop over 8 blocks in sampled set 0: MIN keeps them all.
        for round in 0..100u64 {
            for b in 0..8u64 {
                let a = load(0x500000, b * 64); // set 0 via block addr b*64? -> block() = b*64
                let info = AccessInfo::from_access(&a, &c, false);
                h.optgen_access(&info);
            }
            let _ = round;
        }
        assert!(h.counter(0x500000) >= 4, "loop PC should be friendly");
    }

    #[test]
    fn optgen_classifies_wide_stream_averse() {
        let c = llc();
        let mut h = Hawkeye::new(&c, 16);
        // Stream over many distinct blocks of sampled set 0: reuse
        // interval far exceeds capacity, so MIN would miss.
        for round in 0..50u64 {
            for b in 0..48u64 {
                let a = load(0x600000, b * 64 * 64); // all map to set 0
                let info = AccessInfo::from_access(&a, &c, false);
                h.optgen_access(&info);
            }
            let _ = round;
        }
        assert!(h.counter(0x600000) < 4, "streaming PC should be averse");
    }

    #[test]
    fn averse_blocks_are_victimized_first() {
        let c = llc();
        let mut h = Hawkeye::new(&c, 16);
        // Force PC 0xbad averse.
        for _ in 0..20 {
            h.train(pc_hash(0xbad), false);
        }
        let friendly_access = load(0x500000, 0);
        let averse_access = load(0xbad, 1 << 11); // same set 0, different tag
        let fi = AccessInfo::from_access(&friendly_access, &c, false);
        let ai = AccessInfo::from_access(&averse_access, &c, false);
        h.on_fill(&fi, 0);
        h.on_fill(&ai, 1);
        let victim = h.choose_victim(&fi, &[0; 16]);
        assert_eq!(victim, 1, "averse block should be evicted first");
    }

    #[test]
    fn hawkeye_never_bypasses() {
        let c = llc();
        let mut cache = Cache::new(c, Box::new(Hawkeye::new(&c, 16)));
        for i in 0..100_000u64 {
            assert_ne!(
                cache.access(&load(0x400000, i), false),
                mrp_cache::AccessResult::Bypassed
            );
        }
        assert_eq!(cache.stats().bypasses, 0);
    }
}

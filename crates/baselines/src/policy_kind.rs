//! The named policy registry shared by experiments and serving.
//!
//! [`PolicyKind`] is the one place a policy name (as typed on a command
//! line or listed in a job spec) turns into a constructed
//! [`ReplacementPolicy`] for a given LLC geometry. It lives here — below
//! `mrp-experiments` and `mrp-serve` — so both the batch drivers and the
//! serving fleet build policies through the same factory, via
//! [`PolicyKind::engine`] and the `PredictionEngine` facade.

use mrp_cache::policies::{Drrip, Lru, Mdpp, MdppConfig, RandomPolicy, Srrip, TreePlru};
use mrp_cache::{CacheConfig, ReplacementPolicy};
use mrp_core::mpppb::{Mpppb, MpppbConfig};
use mrp_core::{AdaptiveMpppb, EngineConfig};

use crate::{Hawkeye, PerceptronPolicy, Sdbp, Ship};

/// The LLC management policies the experiments compare.
///
/// `Min` is intentionally absent: Belady MIN needs a recorded stream and
/// is constructed by the experiment runner via its two-pass path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// True LRU: the normalization baseline.
    Lru,
    /// Random replacement (sanity floor).
    Random,
    /// Tree-based pseudo-LRU.
    TreePlru,
    /// Static RRIP.
    Srrip,
    /// Dynamic RRIP with set dueling.
    Drrip,
    /// Static MDPP.
    Mdpp,
    /// SHiP-PC over SRRIP.
    Ship,
    /// Sampling dead block prediction.
    Sdbp,
    /// Perceptron reuse prediction.
    Perceptron,
    /// MPPPB over static MDPP (single-thread configuration).
    MpppbSingle,
    /// MPPPB over SRRIP (multi-core configuration).
    MpppbMulti,
    /// MPPPB with set-dueled bypass (the §7 future-work extension).
    MpppbAdaptive,
}

impl PolicyKind {
    /// Display name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Random => "Random",
            PolicyKind::TreePlru => "TreePLRU",
            PolicyKind::Srrip => "SRRIP",
            PolicyKind::Drrip => "DRRIP",
            PolicyKind::Mdpp => "MDPP",
            PolicyKind::Ship => "SHiP",
            PolicyKind::Sdbp => "SDBP",
            PolicyKind::Perceptron => "Perceptron",
            PolicyKind::MpppbSingle => "MPPPB",
            PolicyKind::MpppbMulti => "MPPPB",
            PolicyKind::MpppbAdaptive => "MPPPB-A",
        }
    }

    /// Parses a name as used on experiment command lines.
    pub fn from_name(name: &str) -> Option<PolicyKind> {
        Some(match name.to_ascii_lowercase().as_str() {
            "lru" => PolicyKind::Lru,
            "random" => PolicyKind::Random,
            "treeplru" | "plru" => PolicyKind::TreePlru,
            "srrip" => PolicyKind::Srrip,
            "drrip" => PolicyKind::Drrip,
            "mdpp" => PolicyKind::Mdpp,
            "ship" => PolicyKind::Ship,
            "sdbp" => PolicyKind::Sdbp,
            "perceptron" => PolicyKind::Perceptron,
            "mpppb" | "mpppb-mdpp" => PolicyKind::MpppbSingle,
            "mpppb-srrip" => PolicyKind::MpppbMulti,
            "mpppb-adaptive" => PolicyKind::MpppbAdaptive,
            _ => return None,
        })
    }

    /// Builds the policy for an LLC geometry.
    ///
    /// The paper equalizes hardware budgets (§4.4): Perceptron gets extra
    /// sampler sets, and the 8MB multi-core LLC scales each predictor's
    /// sampler by 4x.
    pub fn build(&self, llc: &CacheConfig) -> Box<dyn ReplacementPolicy + Send> {
        // 64 sampled sets per 2MB of capacity, as the paper scales.
        let scale = (llc.size_bytes() / (2 * 1024 * 1024)).max(1) as u32;
        match self {
            PolicyKind::Lru => Box::new(Lru::new(llc.sets(), llc.associativity())),
            PolicyKind::Random => Box::new(RandomPolicy::new(llc.associativity(), 0x5eed)),
            PolicyKind::TreePlru => Box::new(TreePlru::new(llc.sets(), llc.associativity())),
            PolicyKind::Srrip => Box::new(Srrip::new(llc.sets(), llc.associativity())),
            PolicyKind::Drrip => Box::new(Drrip::new(llc.sets(), llc.associativity(), 0x5eed)),
            PolicyKind::Mdpp => Box::new(Mdpp::new(
                llc.sets(),
                llc.associativity(),
                MdppConfig::default(),
            )),
            PolicyKind::Ship => Box::new(Ship::new(llc)),
            PolicyKind::Sdbp => Box::new(Sdbp::new(llc, (64 * scale).min(llc.sets()))),
            PolicyKind::Perceptron => {
                Box::new(PerceptronPolicy::new(llc, (160 * scale).min(llc.sets())))
            }
            PolicyKind::MpppbSingle => {
                let mut config = MpppbConfig::single_thread(llc);
                config.sampler_sets = (64 * scale).min(llc.sets());
                Box::new(Mpppb::new(config, llc))
            }
            PolicyKind::MpppbMulti => {
                // The shared-LLC setting amplifies misprediction cost (a
                // bypassed block hurts its owner core while the predictor
                // trains on the interleaved stream), so the multi-core
                // variant runs behind the set-dueling guard; its neutral
                // fallback is plain SRRIP, the paper's MP default (§3.7).
                let mut config = MpppbConfig::multi_core(llc);
                config.sampler_sets = (64 * scale).min(llc.sets());
                Box::new(AdaptiveMpppb::new(config, llc))
            }
            PolicyKind::MpppbAdaptive => {
                let mut config = MpppbConfig::single_thread(llc);
                config.sampler_sets = (64 * scale).min(llc.sets());
                Box::new(AdaptiveMpppb::new(config, llc))
            }
        }
    }

    /// Starts an [`EngineConfig`] for this policy over geometry `llc` —
    /// the facade route every driver and serving shard constructs
    /// through. The config comes pre-labelled with the policy name;
    /// callers refine (options, label, telemetry) and `build()`.
    pub fn engine(&self, llc: CacheConfig) -> EngineConfig {
        let kind = *self;
        EngineConfig::new(llc)
            .policy_with(move |geometry| kind.build(geometry))
            .label(kind.name())
    }

    /// Builds Hawkeye (separate because it shares the name scheme).
    pub fn hawkeye(llc: &CacheConfig) -> Box<dyn ReplacementPolicy + Send> {
        let scale = (llc.size_bytes() / (2 * 1024 * 1024)).max(1) as u32;
        Box::new(Hawkeye::new(llc, (64 * scale).min(llc.sets())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_builds_for_both_llc_geometries() {
        for llc in [CacheConfig::llc_single(), CacheConfig::llc_multi()] {
            for kind in [
                PolicyKind::Lru,
                PolicyKind::Random,
                PolicyKind::TreePlru,
                PolicyKind::Srrip,
                PolicyKind::Drrip,
                PolicyKind::Mdpp,
                PolicyKind::Ship,
                PolicyKind::Sdbp,
                PolicyKind::Perceptron,
                PolicyKind::MpppbSingle,
                PolicyKind::MpppbMulti,
                PolicyKind::MpppbAdaptive,
            ] {
                let p = kind.build(&llc);
                assert!(!p.name().is_empty());
            }
            let h = PolicyKind::hawkeye(&llc);
            assert_eq!(h.name(), "hawkeye");
        }
    }

    #[test]
    fn names_round_trip() {
        for (name, kind) in [
            ("lru", PolicyKind::Lru),
            ("mpppb", PolicyKind::MpppbSingle),
            ("perceptron", PolicyKind::Perceptron),
            ("SRRIP", PolicyKind::Srrip),
        ] {
            assert_eq!(PolicyKind::from_name(name), Some(kind));
        }
        assert_eq!(PolicyKind::from_name("bogus"), None);
    }

    #[test]
    fn engine_convenience_builds_a_labelled_engine() {
        let llc = CacheConfig::llc_single();
        let mut engine = PolicyKind::Srrip.engine(llc).build();
        assert_eq!(engine.label(), "SRRIP");
        assert_eq!(engine.cache().config(), &llc);
        let d = engine.submit_batch(&[mrp_trace::MemoryAccess::load(0x400000, 0x1000)]);
        assert_eq!(d.processed, 1);
        assert_eq!(d.misses, 1);
    }
}

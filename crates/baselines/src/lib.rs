//! Comparison cache-management policies.
//!
//! Clean-room reimplementations of the techniques the paper evaluates
//! against (§4.3):
//!
//! * [`sdbp::Sdbp`] — Sampling Dead Block Prediction (Khan, Tian &
//!   Jiménez, MICRO 2010): skewed PC-indexed 2-bit counter tables trained
//!   by a reduced-associativity LRU sampler; drives replacement + bypass.
//! * [`perceptron::PerceptronPolicy`] — Perceptron learning for reuse
//!   prediction (Teran, Wang & Jiménez, MICRO 2016): hashed-perceptron
//!   tables over PC history and tag shifts; the direct ancestor of
//!   multiperspective prediction.
//! * [`hawkeye::Hawkeye`] — Hawkeye (Jain & Lin, ISCA 2016): OPTgen
//!   reconstructs Belady-optimal decisions for sampled sets and trains a
//!   PC-indexed classifier of cache-friendly vs. cache-averse loads.
//! * [`ship::Ship`] — SHiP (Wu et al., MICRO 2011): PC-signature hit
//!   prediction steering SRRIP insertion.
//! * [`min`] — Belady's MIN with optimal bypass, computed offline from a
//!   recorded LLC access stream (usable for single-thread runs only, as
//!   in the paper).
//!
//! All policies implement [`mrp_cache::ReplacementPolicy`], so they drop
//! into the same hierarchy as MPPPB. [`policy_kind::PolicyKind`] is the
//! shared name→policy factory over all of them (plus the MPPPB variants
//! from `mrp-core`), feeding the `PredictionEngine` facade.

pub mod hawkeye;
pub mod min;
pub mod perceptron;
pub mod policy_kind;
pub mod sdbp;
pub mod ship;

pub use hawkeye::Hawkeye;
pub use min::MinPolicy;
pub use perceptron::PerceptronPolicy;
pub use policy_kind::PolicyKind;
pub use sdbp::Sdbp;
pub use ship::Ship;

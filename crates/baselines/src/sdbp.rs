//! Sampling Dead Block Prediction (SDBP).
//!
//! Khan, Tian & Jiménez, "Sampling Dead Block Prediction for Last-Level
//! Caches", MICRO 2010. A small set of sampled cache sets feeds a skewed
//! predictor of three PC-indexed tables of 2-bit saturating counters:
//! sampler hits decrement the counters for the hitting PC, sampler
//! evictions increment the counters for the PC that last touched the
//! victim. On LLC fills the summed counters classify the block dead (kept
//! as a per-block bit); predicted-dead blocks are victimized first and
//! dead-on-arrival fills are bypassed.

use mrp_cache::policies::Lru;
use mrp_cache::{AccessInfo, CacheConfig, ReplacementPolicy};
use mrp_core::simd::{self, ApplyScratch, GATHER_PAD};

/// Entries per skewed table (the original uses 4K-entry tables).
const TABLE_ENTRIES: usize = 4096;

/// Number of skewed tables.
const TABLES: usize = 3;

/// Saturation bounds of the 2-bit counters, in the shared weight-update
/// kernel's signed representation.
const COUNTER_MIN: i8 = 0;
const COUNTER_MAX: i8 = 3;

/// Sampler associativity (reduced from the cache's 16, per the paper).
const SAMPLER_ASSOC: usize = 12;

/// Default dead threshold: sum of three 2-bit counters in `0..=9`.
const DEFAULT_THRESHOLD: u32 = 8;

#[derive(Debug, Clone, Copy, Default)]
struct SamplerEntry {
    tag: u16,
    last_pc_hash: u32,
    lru: u8,
    valid: bool,
}

/// The SDBP policy.
#[derive(Debug)]
pub struct Sdbp {
    /// The three skewed tables flattened into one arena; table `t`
    /// starts at `t * TABLE_ENTRIES`. Counters live in `0..=3` but are
    /// stored signed (plus gather pad) so the shared saturating
    /// weight-update kernel can apply training.
    tables: Vec<i8>,
    sampler: Vec<[SamplerEntry; SAMPLER_ASSOC]>,
    sample_stride: u32,
    /// `(shift, mask)` when `sample_stride` is a power of two: replaces
    /// the division pair in the sampled-set check.
    sample_pow2: Option<(u32, u32)>,
    dead_bits: Vec<bool>,
    lru: Lru,
    assoc: u32,
    threshold: u32,
    /// Confidence of the most recent prediction (for ROC measurement).
    last_confidence: i32,
    measure_only: bool,
    /// Scratch for the shared weight-update kernel.
    apply_scratch: ApplyScratch,
}

#[inline]
fn pc_hash(pc: u64) -> u32 {
    let x = pc ^ (pc >> 13) ^ (pc >> 29);
    (x & 0xffff_ffff) as u32
}

#[inline]
fn table_index(pc_hash: u32, table: usize) -> usize {
    // Skewed indexing: different shifts/multipliers per table. The
    // returned value is a flat-arena offset (table base folded in).
    let salts: [u32; TABLES] = [0x9e37_79b9, 0x85eb_ca6b, 0xc2b2_ae35];
    let h = pc_hash.wrapping_mul(salts[table]);
    table * TABLE_ENTRIES + (h >> 16) as usize % TABLE_ENTRIES
}

impl Sdbp {
    /// Creates the policy for `llc` with `sampler_sets` sampled sets.
    ///
    /// # Panics
    ///
    /// Panics if `sampler_sets` is 0 or exceeds the set count.
    pub fn new(llc: &CacheConfig, sampler_sets: u32) -> Self {
        assert!(
            sampler_sets > 0 && sampler_sets <= llc.sets(),
            "sampler sets out of range"
        );
        let sample_stride = (llc.sets() / sampler_sets).max(1);
        Sdbp {
            tables: vec![0i8; TABLES * TABLE_ENTRIES + GATHER_PAD],
            sampler: vec![[SamplerEntry::default(); SAMPLER_ASSOC]; sampler_sets as usize],
            sample_stride,
            sample_pow2: sample_stride
                .is_power_of_two()
                .then(|| (sample_stride.trailing_zeros(), sample_stride - 1)),
            dead_bits: vec![false; llc.sets() as usize * llc.associativity() as usize],
            lru: Lru::new(llc.sets(), llc.associativity()),
            assoc: llc.associativity(),
            threshold: DEFAULT_THRESHOLD,
            last_confidence: 0,
            measure_only: false,
            apply_scratch: ApplyScratch::default(),
        }
    }

    /// Switches off the replacement/bypass optimization while keeping
    /// prediction and training active (ROC experiments).
    pub fn set_measure_only(&mut self, measure_only: bool) {
        self.measure_only = measure_only;
    }

    /// The confidence (counter sum, 0..=9) of the latest prediction.
    pub fn last_confidence(&self) -> i32 {
        self.last_confidence
    }

    fn predict_dead(&mut self, pc: u64) -> bool {
        let sum = self.confidence(pc);
        self.last_confidence = sum as i32;
        sum >= self.threshold
    }

    /// Counter sum for a PC.
    pub fn confidence(&self, pc: u64) -> u32 {
        let h = pc_hash(pc);
        (0..TABLES)
            .map(|t| u32::from(self.tables[table_index(h, t)] as u8))
            .sum()
    }

    fn train(&mut self, pc_hash_value: u32, dead: bool) {
        // One packed `(offset << 1) | sign` word per skewed table (the
        // flat-arena offsets land in disjoint per-table ranges), applied
        // through the shared saturating kernel with the 2-bit bounds:
        // dead increments toward 3, live decrements toward 0.
        let sign = u32::from(!dead);
        let events: [u32; TABLES] =
            std::array::from_fn(|t| ((table_index(pc_hash_value, t) as u32) << 1) | sign);
        simd::apply_events_i8(
            &mut self.tables,
            &events,
            COUNTER_MIN,
            COUNTER_MAX,
            simd::level(),
            &mut self.apply_scratch,
        );
    }

    fn sampler_access(&mut self, set: u32, block: u64, pc: u64) {
        let sampler_set = match self.sample_pow2 {
            Some((shift, mask)) => {
                if set & mask != 0 {
                    return;
                }
                (set >> shift) as usize
            }
            None => {
                if !set.is_multiple_of(self.sample_stride) {
                    return;
                }
                (set / self.sample_stride) as usize
            }
        };
        if sampler_set >= self.sampler.len() {
            return;
        }
        let tag = (block ^ (block >> 15)) as u16 & 0x7fff;
        let h = pc_hash(pc);
        let entries = &mut self.sampler[sampler_set];

        if let Some(i) = entries.iter().position(|e| e.valid && e.tag == tag) {
            // Sampler hit: the PC that last touched this block led to a
            // live block.
            let trained = entries[i].last_pc_hash;
            let old_lru = entries[i].lru;
            for e in entries.iter_mut() {
                if e.valid && e.lru < old_lru {
                    e.lru += 1;
                }
            }
            entries[i].lru = 0;
            entries[i].last_pc_hash = h;
            self.train(trained, false);
            return;
        }

        // Miss: place, evicting the LRU entry if full and training its
        // last-touch PC as dead.
        if let Some(i) = entries.iter().position(|e| !e.valid) {
            for e in entries.iter_mut() {
                if e.valid {
                    e.lru += 1;
                }
            }
            entries[i] = SamplerEntry {
                tag,
                last_pc_hash: h,
                lru: 0,
                valid: true,
            };
            return;
        }
        let victim = entries
            .iter()
            .position(|e| e.lru as usize == SAMPLER_ASSOC - 1)
            .unwrap_or(0);
        let dead_pc = entries[victim].last_pc_hash;
        for e in entries.iter_mut() {
            e.lru = (e.lru + 1).min(SAMPLER_ASSOC as u8 - 1);
        }
        entries[victim] = SamplerEntry {
            tag,
            last_pc_hash: h,
            lru: 0,
            valid: true,
        };
        self.train(dead_pc, true);
    }

    #[inline]
    fn slot(&self, set: u32, way: u32) -> usize {
        set as usize * self.assoc as usize + way as usize
    }
}

impl ReplacementPolicy for Sdbp {
    fn name(&self) -> &str {
        "sdbp"
    }

    fn on_hit(&mut self, info: &AccessInfo, way: u32) {
        self.sampler_access(info.set, info.block, info.pc);
        let dead = self.predict_dead(info.pc);
        let slot = self.slot(info.set, way);
        self.dead_bits[slot] = dead && !self.measure_only;
        self.lru.on_hit(info, way);
    }

    fn should_bypass(&mut self, info: &AccessInfo) -> bool {
        self.sampler_access(info.set, info.block, info.pc);
        let dead = self.predict_dead(info.pc);
        dead && !self.measure_only
    }

    fn choose_victim(&mut self, info: &AccessInfo, occupants: &[u64]) -> u32 {
        if !self.measure_only {
            // Prefer a block predicted dead at its last access.
            for way in 0..self.assoc {
                if self.dead_bits[self.slot(info.set, way)] {
                    return way;
                }
            }
        }
        self.lru.choose_victim(info, occupants)
    }

    fn on_fill(&mut self, info: &AccessInfo, way: u32) {
        let slot = self.slot(info.set, way);
        self.dead_bits[slot] = false;
        self.lru.on_fill(info, way);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_cache::{AccessResult, Cache};
    use mrp_trace::MemoryAccess;

    fn llc() -> CacheConfig {
        CacheConfig::new(64 * 16 * 64, 16)
    }

    fn cache() -> Cache {
        let c = llc();
        Cache::new(c, Box::new(Sdbp::new(&c, 16)))
    }

    fn load(pc: u64, block: u64) -> MemoryAccess {
        MemoryAccess::load(pc, block * 64)
    }

    #[test]
    fn basic_hit_miss() {
        let mut c = cache();
        let a = load(0x400000, 3);
        assert!(c.access(&a, false).is_miss());
        assert!(c.access(&a, false).is_hit());
    }

    #[test]
    fn streaming_pc_learns_dead_and_bypasses() {
        let mut c = cache();
        let mut bypassed = false;
        for i in 0..300_000u64 {
            if c.access(&load(0x400000, i), false) == AccessResult::Bypassed {
                bypassed = true;
            }
        }
        assert!(bypassed, "SDBP should learn to bypass a pure stream");
    }

    #[test]
    fn reused_pc_is_not_predicted_dead() {
        let c = llc();
        let mut p = Sdbp::new(&c, 16);
        // Train live: repeated sampler hits on the same PC.
        for round in 0..50u64 {
            for b in 0..4u64 {
                p.sampler_access(0, b, 0x500000);
            }
            let _ = round;
        }
        assert!(p.confidence(0x500000) < DEFAULT_THRESHOLD);
    }

    #[test]
    fn measure_only_disables_optimization() {
        let c = llc();
        let mut p = Sdbp::new(&c, 16);
        p.set_measure_only(true);
        let mut cache = Cache::new(c, Box::new(p));
        for i in 0..200_000u64 {
            assert_ne!(
                cache.access(&load(0x400000, i), false),
                AccessResult::Bypassed
            );
        }
    }

    #[test]
    fn confidence_is_bounded() {
        let c = llc();
        let mut p = Sdbp::new(&c, 8);
        for i in 0..10_000u64 {
            p.sampler_access(0, i, 0x400000);
        }
        assert!(p.confidence(0x400000) <= 9);
    }
}

//! Belady's MIN with optimal bypass, computed offline.
//!
//! The paper simulates "Bélády's optimal replacement policy (MIN) adapted
//! to also provide optimal bypass" for single-thread benchmarks (§4.3).
//! MIN needs future knowledge, so reproduction takes two passes over the
//! same deterministic trace:
//!
//! 1. Record the workload's LLC stream with
//!    `mrp_cache::replay::LlcRecording` (its `llc_blocks()` is the block
//!    sequence). The LLC access stream is *independent of the LLC
//!    policy* — L1/L2 filtering and the prefetcher only observe levels
//!    above — so the recorded stream is exactly what any LLC policy sees.
//! 2. Compute each access's next-use index and replay with [`MinPolicy`],
//!    which evicts the block with the farthest next use and bypasses
//!    blocks whose next use is farther than every resident block's.

use std::collections::HashMap;

use mrp_cache::{AccessInfo, CacheConfig, ReplacementPolicy};

/// Sentinel next-use index for "never used again".
const NEVER: u64 = u64::MAX;

/// Computes, for each access in `stream`, the index of the next access to
/// the same block ([`u64::MAX`] if none).
pub fn next_use_indices(stream: &[u64]) -> Vec<u64> {
    let mut next = vec![NEVER; stream.len()];
    let mut last_seen: HashMap<u64, usize> = HashMap::new();
    for (i, &block) in stream.iter().enumerate().rev() {
        if let Some(&j) = last_seen.get(&block) {
            next[i] = j as u64;
        }
        last_seen.insert(block, i);
    }
    next
}

/// Belady MIN with optimal bypass, driven by a precomputed next-use array.
///
/// The policy counts accesses as the cache presents them; access `i` must
/// be the `i`-th access of the recorded stream (guaranteed by determinism
/// of the trace and upper levels).
#[derive(Debug)]
pub struct MinPolicy {
    next_use: Vec<u64>,
    cursor: usize,
    /// Shadow of set contents: block -> its next-use index.
    block_next_use: HashMap<u64, u64>,
    /// Shadow of (set, way) -> block for victim bookkeeping.
    contents: Vec<Option<u64>>,
    assoc: u32,
    bypass_enabled: bool,
}

impl MinPolicy {
    /// Creates the policy from the recorded stream.
    pub fn new(llc: &CacheConfig, stream: &[u64]) -> Self {
        MinPolicy {
            next_use: next_use_indices(stream),
            cursor: 0,
            block_next_use: HashMap::new(),
            contents: vec![None; llc.sets() as usize * llc.associativity() as usize],
            assoc: llc.associativity(),
            bypass_enabled: true,
        }
    }

    /// Disables the optimal-bypass extension (pure MIN replacement).
    pub fn set_bypass(&mut self, enabled: bool) {
        self.bypass_enabled = enabled;
    }

    /// Next-use index of the block being accessed right now.
    fn current_next_use(&self) -> u64 {
        self.next_use.get(self.cursor).copied().unwrap_or(NEVER)
    }

    #[inline]
    fn slot(&self, set: u32, way: u32) -> usize {
        set as usize * self.assoc as usize + way as usize
    }
}

impl ReplacementPolicy for MinPolicy {
    fn name(&self) -> &str {
        "min"
    }

    fn on_hit(&mut self, info: &AccessInfo, _way: u32) {
        let next = self.current_next_use();
        self.block_next_use.insert(info.block, next);
        self.cursor += 1;
    }

    fn should_bypass(&mut self, info: &AccessInfo) -> bool {
        if !self.bypass_enabled {
            return false;
        }
        let my_next = self.current_next_use();
        if my_next == NEVER {
            self.cursor += 1;
            return true;
        }
        // Bypass only if the set is full and every resident block is
        // needed sooner than this one.
        let base = self.slot(info.set, 0);
        let mut full = true;
        let mut all_sooner = true;
        for way in 0..self.assoc {
            match self.contents[base + way as usize] {
                Some(block) => {
                    let theirs = self.block_next_use.get(&block).copied().unwrap_or(NEVER);
                    if theirs >= my_next {
                        all_sooner = false;
                    }
                }
                None => {
                    full = false;
                }
            }
        }
        if full && all_sooner {
            self.cursor += 1;
            return true;
        }
        false
    }

    fn choose_victim(&mut self, info: &AccessInfo, occupants: &[u64]) -> u32 {
        let _ = info;
        // Evict the block whose next use is farthest in the future.
        occupants
            .iter()
            .enumerate()
            .max_by_key(|(_, &block)| self.block_next_use.get(&block).copied().unwrap_or(NEVER))
            .map(|(w, _)| w as u32)
            .expect("occupants nonempty")
    }

    fn on_evict(&mut self, set: u32, way: u32, block: u64) {
        self.block_next_use.remove(&block);
        let slot = self.slot(set, way);
        self.contents[slot] = None;
    }

    fn on_fill(&mut self, info: &AccessInfo, way: u32) {
        let next = self.current_next_use();
        self.cursor += 1;
        self.block_next_use.insert(info.block, next);
        let slot = self.slot(info.set, way);
        self.contents[slot] = Some(info.block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_cache::policies::Lru;
    use mrp_cache::Cache;
    use mrp_trace::MemoryAccess;

    fn tiny() -> CacheConfig {
        CacheConfig::new(64 * 2, 2) // 1 set x 2 ways
    }

    fn load(block: u64) -> MemoryAccess {
        MemoryAccess::load(0x400000, block * 64)
    }

    fn run_min(stream: &[u64], bypass: bool) -> (u64, u64, u64) {
        let c = tiny();
        let mut p = MinPolicy::new(&c, stream);
        p.set_bypass(bypass);
        let mut cache = Cache::new(c, Box::new(p));
        for &b in stream {
            let _ = cache.access(&load(b), false);
        }
        let s = cache.stats();
        (s.demand_hits, s.demand_misses, s.bypasses)
    }

    #[test]
    fn next_use_indices_are_correct() {
        let stream = vec![1, 2, 1, 3, 2];
        let next = next_use_indices(&stream);
        assert_eq!(next, vec![2, 4, NEVER, NEVER, NEVER]);
    }

    #[test]
    fn min_beats_lru_on_cyclic_pattern() {
        // Classic: 3-block cycle in a 2-way set. LRU gets 0 hits; MIN
        // keeps one block resident and hits it every cycle.
        let stream: Vec<u64> = (0..60).map(|i| i % 3).collect();
        let (hits_min, _, _) = run_min(&stream, false);

        let c = tiny();
        let mut lru_cache = Cache::new(c, Box::new(Lru::new(c.sets(), c.associativity())));
        for &b in &stream {
            let _ = lru_cache.access(&load(b), false);
        }
        let hits_lru = lru_cache.stats().demand_hits;
        assert_eq!(hits_lru, 0, "LRU thrashes the 3-cycle");
        assert!(hits_min > 15, "MIN hits: {hits_min}");
    }

    #[test]
    fn bypass_skips_never_reused_blocks() {
        // Blocks 100.. appear once each: MIN-with-bypass never caches them.
        let mut stream: Vec<u64> = Vec::new();
        for i in 0..50u64 {
            stream.push(0);
            stream.push(100 + i);
        }
        let (hits, _, bypasses) = run_min(&stream, true);
        assert!(bypasses >= 49, "bypasses: {bypasses}");
        assert_eq!(hits, 49, "block 0 should always hit after its fill");
    }

    #[test]
    fn min_is_at_least_as_good_as_lru_on_random_streams() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for trial in 0..10 {
            let stream: Vec<u64> = (0..500).map(|_| rng.gen_range(0..8)).collect();
            let (hits_min, _, _) = run_min(&stream, true);
            let c = tiny();
            let mut lru_cache = Cache::new(c, Box::new(Lru::new(c.sets(), c.associativity())));
            for &b in &stream {
                let _ = lru_cache.access(&load(b), false);
            }
            assert!(
                hits_min >= lru_cache.stats().demand_hits,
                "trial {trial}: MIN ({hits_min}) worse than LRU ({})",
                lru_cache.stats().demand_hits
            );
        }
    }

    #[test]
    fn min_without_bypass_never_bypasses() {
        let stream: Vec<u64> = (0..100).collect();
        let (_, _, bypasses) = run_min(&stream, false);
        assert_eq!(bypasses, 0);
    }

    /// Runs MIN over `stream` and returns the cache for content probes.
    fn run_min_cache(stream: &[u64], bypass: bool) -> Cache {
        let c = tiny();
        let mut p = MinPolicy::new(&c, stream);
        p.set_bypass(bypass);
        let mut cache = Cache::new(c, Box::new(p));
        for &b in stream {
            let _ = cache.access(&load(b), false);
        }
        cache
    }

    #[test]
    fn four_access_next_use_indices_by_hand() {
        // By inspection: block 1 at index 0 recurs at index 3; blocks 2
        // and 3 never recur.
        assert_eq!(
            next_use_indices(&[1, 2, 3, 1]),
            vec![3, NEVER, NEVER, NEVER]
        );
    }

    #[test]
    fn four_accesses_with_bypass_keep_only_the_reused_block() {
        // [1, 2, 3, 1] in a 1-set x 2-way cache. Optimal with bypass, by
        // inspection: cache 1 (reused at index 3), bypass 2 and 3 (dead
        // on arrival), hit the final 1.
        let cache = run_min_cache(&[1, 2, 3, 1], true);
        let s = cache.stats();
        assert_eq!(s.demand_hits, 1, "the final access to block 1 hits");
        assert_eq!(s.demand_misses, 3, "bypassed accesses still miss");
        assert_eq!(s.bypasses, 2, "blocks 2 and 3 are never reused");
        assert_eq!(s.evictions, 0);
        assert!(cache.probe(1));
        assert!(!cache.probe(2) && !cache.probe(3));
    }

    #[test]
    fn four_accesses_without_bypass_evict_a_dead_block() {
        // Same stream, bypass disabled: 1 and 2 fill the two ways; 3 must
        // evict, and the optimal victim by inspection is 2 (never reused;
        // 1 is still needed at index 3).
        let cache = run_min_cache(&[1, 2, 3, 1], false);
        let s = cache.stats();
        assert_eq!(s.demand_hits, 1);
        assert_eq!(s.demand_misses, 3);
        assert_eq!(s.bypasses, 0);
        assert_eq!(s.evictions, 1);
        assert!(cache.probe(1), "block 1 must survive for its reuse");
        assert!(cache.probe(3));
        assert!(!cache.probe(2), "the never-reused block is the victim");
    }

    #[test]
    fn four_accesses_with_bypass_cache_the_recurring_tail() {
        // [1, 2, 3, 3]: blocks 1 and 2 are dead on arrival (bypassed);
        // 3 recurs immediately, so it is cached and its reuse hits.
        let cache = run_min_cache(&[1, 2, 3, 3], true);
        let s = cache.stats();
        assert_eq!(s.demand_hits, 1);
        assert_eq!(s.bypasses, 2);
        assert_eq!(s.evictions, 0);
        assert!(cache.probe(3));
    }

    #[test]
    fn recorded_stream_drives_an_optimal_second_pass() {
        // The full two-pass workflow: record a real workload's LLC stream
        // once, then replay it under MIN and under LRU on the same
        // geometry. MIN must not lose to LRU on its own stream.
        use mrp_cache::replay::LlcRecording;
        use mrp_cache::HierarchyConfig;

        let suite = mrp_trace::workloads::suite();
        let config = HierarchyConfig::single_thread();
        let rec = LlcRecording::record(suite[4].name(), suite[4].trace(3), &config, 0, 60_000);
        let blocks = rec.llc_blocks();
        assert_eq!(blocks.len(), rec.llc_len());

        let mut min_cache = Cache::new(config.llc, Box::new(MinPolicy::new(&config.llc, &blocks)));
        rec.replay_llc(&mut min_cache);
        let mut lru_cache = Cache::new(
            config.llc,
            Box::new(Lru::new(config.llc.sets(), config.llc.associativity())),
        );
        rec.replay_llc(&mut lru_cache);
        assert!(
            min_cache.stats().demand_misses <= lru_cache.stats().demand_misses,
            "MIN ({}) lost to LRU ({}) on its own stream",
            min_cache.stats().demand_misses,
            lru_cache.stats().demand_misses
        );
    }
}

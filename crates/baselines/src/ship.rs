//! SHiP: Signature-based Hit Predictor (Wu et al., MICRO 2011).
//!
//! Each block carries its fill signature (a PC hash) and an outcome bit.
//! A table of saturating counters (SHCT) learns, per signature, whether
//! filled blocks get reused: re-referenced blocks increment their
//! signature's counter; blocks evicted unreferenced decrement it. Blocks
//! from zero-counter signatures are inserted at distant RRPV (SRRIP
//! otherwise).

use mrp_cache::policies::{RripState, RRIP_MAX};
use mrp_cache::{AccessInfo, CacheConfig, ReplacementPolicy};

/// Signature history counter table size.
const SHCT_ENTRIES: usize = 16384;

/// 3-bit SHCT counter maximum.
const SHCT_MAX: u8 = 7;

#[inline]
fn signature(pc: u64) -> usize {
    let x = pc ^ (pc >> 14) ^ (pc >> 28);
    (x as usize) % SHCT_ENTRIES
}

/// The SHiP-PC policy over SRRIP replacement.
#[derive(Debug)]
pub struct Ship {
    shct: Vec<u8>,
    rrip: RripState,
    /// Per-block fill signature.
    signatures: Vec<u32>,
    /// Per-block outcome bit: reused since fill?
    outcome: Vec<bool>,
    assoc: u32,
}

impl Ship {
    /// Creates the policy for `llc`.
    pub fn new(llc: &CacheConfig) -> Self {
        let slots = llc.sets() as usize * llc.associativity() as usize;
        Ship {
            shct: vec![1u8; SHCT_ENTRIES],
            rrip: RripState::new(llc.sets(), llc.associativity()),
            signatures: vec![0; slots],
            outcome: vec![false; slots],
            assoc: llc.associativity(),
        }
    }

    /// SHCT counter for a PC (tests).
    pub fn counter(&self, pc: u64) -> u8 {
        self.shct[signature(pc)]
    }

    #[inline]
    fn slot(&self, set: u32, way: u32) -> usize {
        set as usize * self.assoc as usize + way as usize
    }
}

impl ReplacementPolicy for Ship {
    fn name(&self) -> &str {
        "ship"
    }

    fn on_hit(&mut self, info: &AccessInfo, way: u32) {
        let slot = self.slot(info.set, way);
        if !self.outcome[slot] {
            self.outcome[slot] = true;
            let sig = self.signatures[slot] as usize % SHCT_ENTRIES;
            self.shct[sig] = (self.shct[sig] + 1).min(SHCT_MAX);
        }
        self.rrip.set(info.set, way, 0);
    }

    fn choose_victim(&mut self, info: &AccessInfo, _occupants: &[u64]) -> u32 {
        self.rrip.victim(info.set)
    }

    fn uses_victim_occupants(&self) -> bool {
        false
    }

    fn on_evict(&mut self, set: u32, way: u32, _block: u64) {
        let slot = self.slot(set, way);
        if !self.outcome[slot] {
            let sig = self.signatures[slot] as usize % SHCT_ENTRIES;
            self.shct[sig] = self.shct[sig].saturating_sub(1);
        }
    }

    fn on_fill(&mut self, info: &AccessInfo, way: u32) {
        let slot = self.slot(info.set, way);
        let sig = signature(info.pc);
        self.signatures[slot] = sig as u32;
        self.outcome[slot] = false;
        let rrpv = if self.shct[sig] == 0 {
            RRIP_MAX
        } else {
            RRIP_MAX - 1
        };
        self.rrip.set(info.set, way, rrpv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_cache::Cache;
    use mrp_trace::MemoryAccess;

    fn llc() -> CacheConfig {
        CacheConfig::new(64 * 16 * 64, 16)
    }

    fn load(pc: u64, block: u64) -> MemoryAccess {
        MemoryAccess::load(pc, block * 64)
    }

    #[test]
    fn basic_hit_miss() {
        let c = llc();
        let mut cache = Cache::new(c, Box::new(Ship::new(&c)));
        let a = load(0x400000, 3);
        assert!(cache.access(&a, false).is_miss());
        assert!(cache.access(&a, false).is_hit());
    }

    #[test]
    fn unreused_signature_counter_decays_to_zero() {
        let c = llc();
        let mut cache = Cache::new(c, Box::new(Ship::new(&c)));
        for i in 0..200_000u64 {
            let _ = cache.access(&load(0x400000, i), false);
        }
        // Downcast impossible through Cache; instead verify behavior: a
        // fresh policy trained the same way shows counter 0.
        let mut p = Ship::new(&c);
        let mut shadow = Cache::new(c, Box::new(Ship::new(&c)));
        for i in 0..200_000u64 {
            let _ = shadow.access(&load(0x400000, i), false);
        }
        // Train p directly through fill/evict cycles.
        for i in 0..100u64 {
            let a = load(0x400000, i);
            let info = AccessInfo::from_access(&a, &c, false);
            p.on_fill(&info, 0);
            p.on_evict(info.set, 0, info.block);
        }
        assert_eq!(p.counter(0x400000), 0);
    }

    #[test]
    fn reused_signature_counter_grows() {
        let c = llc();
        let mut p = Ship::new(&c);
        for i in 0..100u64 {
            let a = load(0x500000, i);
            let info = AccessInfo::from_access(&a, &c, false);
            p.on_fill(&info, (i % 16) as u32);
            p.on_hit(&info, (i % 16) as u32);
        }
        assert_eq!(p.counter(0x500000), SHCT_MAX);
    }

    #[test]
    fn zero_counter_inserts_distant() {
        let c = llc();
        let mut p = Ship::new(&c);
        // Drive counter to zero.
        for i in 0..100u64 {
            let a = load(0x600000, i);
            let info = AccessInfo::from_access(&a, &c, false);
            p.on_fill(&info, 0);
            p.on_evict(info.set, 0, info.block);
        }
        // Make every way recently used so only the distant insert stands
        // out as the victim (RripState starts all-distant).
        let a = load(0x600000, 1000);
        let info = AccessInfo::from_access(&a, &c, false);
        for w in 0..16 {
            p.on_hit(&info, w);
        }
        p.on_fill(&info, 3);
        // Distant blocks are the immediate victim.
        assert_eq!(p.choose_victim(&info, &[0; 16]), 3);
    }
}

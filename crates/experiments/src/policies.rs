//! Policy lineups shared by all experiments.
//!
//! The name→policy factory itself ([`PolicyKind`]) lives in
//! `mrp-baselines` so the serving fleet (`mrp-serve`) and the batch
//! drivers construct policies through the same registry; this module
//! re-exports it and keeps the experiment-specific lineups.

pub use mrp_baselines::PolicyKind;

/// The four policies of the headline single-thread comparison (Fig. 6/7),
/// in plotting order. MIN is added by the runner.
pub const HEADLINE_ST: [PolicyKind; 3] = [
    PolicyKind::Lru,
    PolicyKind::Perceptron,
    PolicyKind::MpppbSingle,
];

/// The policies of the multi-programmed comparison (Fig. 4/5).
pub const HEADLINE_MP: [PolicyKind; 3] = [
    PolicyKind::Lru,
    PolicyKind::Perceptron,
    PolicyKind::MpppbMulti,
];

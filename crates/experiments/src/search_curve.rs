//! Feature-search distribution (Figure 3).
//!
//! Evaluates many random 16-feature sets on the fast MPKI-only simulator,
//! sorts them (descending MPKI, as the figure plots), and overlays the
//! LRU and MIN reference lines plus the result of hill climbing from the
//! best random set.

use mrp_baselines::MinPolicy;
use mrp_cache::policies::Lru;
use mrp_search::{crossval, HillClimber, RandomFeatures};
use mrp_trace::workloads;

/// Results of the search experiment.
#[derive(Debug, Clone)]
pub struct SearchCurve {
    /// MPKI of each random feature set, sorted descending (worst first).
    pub random_mpkis: Vec<f64>,
    /// LRU reference MPKI.
    pub lru_mpki: f64,
    /// Belady MIN (with bypass) reference MPKI.
    pub min_mpki: f64,
    /// MPKI after hill climbing from the best random set.
    pub hillclimbed_mpki: f64,
    /// Hill-climb move statistics (attempts, accepted).
    pub hillclimb_moves: (u32, u32),
}

/// Configuration of the search experiment.
#[derive(Debug, Clone, Copy)]
pub struct SearchParams {
    /// Number of random 16-feature sets (the paper uses 4,000).
    pub candidates: usize,
    /// Workloads evaluated (a cross-validation half of the suite).
    pub workload_count: usize,
    /// Instructions recorded per workload.
    pub instructions: u64,
    /// Hill-climb convergence patience and move cap.
    pub patience: u32,
    /// Maximum hill-climbing moves.
    pub max_moves: u32,
    /// Seed for workload split, random sets, and hill climbing.
    pub seed: u64,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            candidates: 80,
            workload_count: 10,
            instructions: 2_000_000,
            patience: 20,
            max_moves: 150,
            seed: 17,
        }
    }
}

/// Runs the experiment.
pub fn run(params: SearchParams) -> SearchCurve {
    let suite = workloads::suite();
    let (train, _test) = crossval::split(&suite, params.seed);
    let selected: Vec<_> = train
        .into_iter()
        .take(params.workload_count.max(1))
        .collect();
    let evaluator = crate::recording::fast_evaluator(&selected, params.seed, params.instructions);

    let lru_mpki =
        evaluator.average_mpki_with(|llc, _| Box::new(Lru::new(llc.sets(), llc.associativity())));
    let min_mpki =
        evaluator.average_mpki_with(|llc, trace| Box::new(MinPolicy::new(llc, &trace.blocks())));

    // The candidate sets are drawn serially (one deterministic RNG
    // stream), then evaluated in parallel — every evaluation replays
    // recorded traces against its own policy instance, so candidate
    // scores are independent of the schedule.
    let mut generator = RandomFeatures::new(params.seed);
    let sets: Vec<Vec<mrp_core::Feature>> = (0..params.candidates.max(1))
        .map(|_| generator.feature_set(16))
        .collect();
    let mpkis = mrp_runtime::par_map(&sets, |set| evaluator.average_mpki(set));
    let mut scored: Vec<(f64, Vec<mrp_core::Feature>)> = mpkis.into_iter().zip(sets).collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite mpki"));

    let best = scored.last().expect("at least one candidate").clone();
    let mut climber = HillClimber::new(params.seed ^ 0xc11b, params.patience, params.max_moves);
    let report = climber.climb(&evaluator, best.1);

    SearchCurve {
        random_mpkis: scored.iter().map(|(m, _)| *m).collect(),
        lru_mpki,
        min_mpki,
        hillclimbed_mpki: report.mpki,
        hillclimb_moves: (report.attempts, report.accepted),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_curve_has_expected_structure() {
        let params = SearchParams {
            candidates: 4,
            workload_count: 2,
            instructions: 150_000,
            patience: 2,
            max_moves: 4,
            seed: 5,
        };
        let curve = run(params);
        assert_eq!(curve.random_mpkis.len(), 4);
        // Sorted descending.
        for pair in curve.random_mpkis.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        // MIN lower-bounds everything else.
        assert!(curve.min_mpki <= curve.lru_mpki);
        assert!(curve.min_mpki <= curve.hillclimbed_mpki + 1e-9);
        // Hill climbing starts from the best random set and cannot worsen.
        assert!(curve.hillclimbed_mpki <= *curve.random_mpkis.last().expect("nonempty") + 1e-9);
    }
}

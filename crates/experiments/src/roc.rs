//! ROC accuracy measurement (Figures 1 and 8).
//!
//! Each predictor runs in measure-only mode ("we modify the simulator to
//! make the prediction but not apply the optimization", §6.3). A probe
//! wraps the policy and labels every prediction with its eventual ground
//! truth: *dead* if the block is evicted before its next use, *live* if it
//! is re-referenced while resident. Sweeping the decision threshold yields
//! (false positive rate, true positive rate) curves, averaged across
//! workloads.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mrp_baselines::{PerceptronPolicy, Sdbp};
use mrp_cache::{AccessInfo, Cache, CacheConfig, HierarchyConfig, ReplacementPolicy};
use mrp_core::mpppb::{Mpppb, MpppbConfig};
use mrp_cpu::{replay_single, SingleCoreSim};
use mrp_trace::{workloads, MemoryAccess, Workload};

use crate::recording;
use crate::runner::StParams;

/// A policy that exposes the confidence of its most recent prediction.
pub trait ConfidenceSource: ReplacementPolicy {
    /// Confidence of the latest prediction (more positive = more dead).
    fn confidence(&self) -> i32;
}

impl ConfidenceSource for Mpppb {
    fn confidence(&self) -> i32 {
        self.last_confidence()
    }
}

impl ConfidenceSource for Sdbp {
    fn confidence(&self) -> i32 {
        self.last_confidence()
    }
}

impl ConfidenceSource for PerceptronPolicy {
    fn confidence(&self) -> i32 {
        self.last_confidence()
    }
}

/// One labeled prediction: the confidence produced at access time and
/// whether the block turned out dead.
pub type Sample = (i32, bool);

/// Wraps a measure-only predictor policy, labeling predictions with
/// ground truth as blocks are reused or evicted.
pub struct RocProbe<P> {
    inner: P,
    pending: HashMap<u64, i32>,
    samples: Arc<Mutex<Vec<Sample>>>,
}

impl<P: ConfidenceSource> RocProbe<P> {
    /// Wraps `inner`; resolved samples appear in `samples`.
    pub fn new(inner: P, samples: Arc<Mutex<Vec<Sample>>>) -> Self {
        RocProbe {
            inner,
            pending: HashMap::new(),
            samples,
        }
    }

    fn resolve(&mut self, block: u64, dead: bool) {
        if let Some(confidence) = self.pending.remove(&block) {
            self.samples
                .lock()
                .expect("sample lock")
                .push((confidence, dead));
        }
    }
}

impl<P: ConfidenceSource> ReplacementPolicy for RocProbe<P> {
    fn name(&self) -> &str {
        "roc-probe"
    }

    fn on_access(&mut self, info: &AccessInfo) {
        self.inner.on_access(info);
    }

    fn on_core_access(&mut self, access: &MemoryAccess) {
        self.inner.on_core_access(access);
    }

    fn uses_core_accesses(&self) -> bool {
        self.inner.uses_core_accesses()
    }

    fn on_hit(&mut self, info: &AccessInfo, way: u32) {
        // The pending prediction said "dead"; the block was reused: live.
        self.resolve(info.block, false);
        self.inner.on_hit(info, way);
        self.pending.insert(info.block, self.inner.confidence());
    }

    fn should_bypass(&mut self, info: &AccessInfo) -> bool {
        let bypass = self.inner.should_bypass(info);
        debug_assert!(!bypass, "probe requires measure-only inner policy");
        self.pending.insert(info.block, self.inner.confidence());
        bypass
    }

    fn choose_victim(&mut self, info: &AccessInfo, occupants: &[u64]) -> u32 {
        self.inner.choose_victim(info, occupants)
    }

    fn uses_victim_occupants(&self) -> bool {
        self.inner.uses_victim_occupants()
    }

    fn on_evict(&mut self, set: u32, way: u32, block: u64) {
        // Evicted without reuse since its last prediction: dead.
        self.resolve(block, true);
        self.inner.on_evict(set, way, block);
    }

    fn on_fill(&mut self, info: &AccessInfo, way: u32) {
        self.inner.on_fill(info, way);
    }
}

/// The three predictors the ROC figures compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RocPredictor {
    /// The paper's multiperspective predictor.
    Multiperspective,
    /// Perceptron reuse prediction.
    Perceptron,
    /// Sampling dead block prediction.
    Sdbp,
}

impl RocPredictor {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            RocPredictor::Multiperspective => "Multiperspective",
            RocPredictor::Perceptron => "Perceptron",
            RocPredictor::Sdbp => "SDBP",
        }
    }

    /// Threshold sweep grid matched to the predictor's confidence range.
    pub fn thresholds(&self) -> Vec<i32> {
        match self {
            RocPredictor::Multiperspective => (-300..=300).step_by(4).collect(),
            RocPredictor::Perceptron => (-200..=200).step_by(4).collect(),
            RocPredictor::Sdbp => (-1..=10).collect(),
        }
    }

    fn build_probe(
        &self,
        llc: &CacheConfig,
        samples: Arc<Mutex<Vec<Sample>>>,
    ) -> Box<dyn ReplacementPolicy + Send> {
        match self {
            RocPredictor::Multiperspective => {
                let mut config = MpppbConfig::single_thread(llc);
                config.measure_only = true;
                Box::new(RocProbe::new(Mpppb::new(config, llc), samples))
            }
            RocPredictor::Perceptron => {
                let mut p = PerceptronPolicy::new(llc, 160.min(llc.sets()));
                p.set_measure_only(true);
                Box::new(RocProbe::new(p, samples))
            }
            RocPredictor::Sdbp => {
                let mut p = Sdbp::new(llc, 64.min(llc.sets()));
                p.set_measure_only(true);
                Box::new(RocProbe::new(p, samples))
            }
        }
    }
}

/// One averaged ROC curve.
#[derive(Debug, Clone)]
pub struct RocCurve {
    /// Predictor name.
    pub predictor: String,
    /// (threshold, mean FPR, mean TPR) per grid point.
    pub points: Vec<(i32, f64, f64)>,
}

impl RocCurve {
    /// TPR at the grid point whose FPR is closest to `fpr` (used to probe
    /// the paper's 25–31% bypass region).
    pub fn tpr_at_fpr(&self, fpr: f64) -> f64 {
        self.points
            .iter()
            .min_by(|a, b| {
                (a.1 - fpr)
                    .abs()
                    .partial_cmp(&(b.1 - fpr).abs())
                    .expect("finite")
            })
            .map(|p| p.2)
            .unwrap_or(0.0)
    }
}

/// Drives one measure-only probe over a workload, discarding the timing
/// result (only the probe's resolved samples matter). Replays the shared
/// recording when enabled — the probe observes the identical LLC
/// operation sequence either way, so the samples are bit-identical —
/// and falls back to full simulation under `--no-replay`.
fn drive_probe(workload: &Workload, params: StParams, policy: Box<dyn ReplacementPolicy + Send>) {
    let config = HierarchyConfig::single_thread();
    if recording::replay_enabled() {
        let rec = recording::recording_for(workload, params.seed, params.warmup, params.measure);
        let mut cache = Cache::new(config.llc, policy);
        let _ = replay_single(&rec, &mut cache, &config.latencies);
    } else {
        let mut sim = SingleCoreSim::new(config, policy, workload.trace(params.seed));
        let _ = sim.run(params.warmup, params.measure);
    }
}

/// Computes per-threshold (FPR, TPR) for one workload's samples.
pub fn rates(samples: &[Sample], thresholds: &[i32]) -> Vec<(f64, f64)> {
    let dead_total = samples.iter().filter(|(_, d)| *d).count().max(1) as f64;
    let live_total = samples.iter().filter(|(_, d)| !*d).count().max(1) as f64;
    thresholds
        .iter()
        .map(|&t| {
            let mut true_positive = 0usize;
            let mut false_positive = 0usize;
            for &(confidence, dead) in samples {
                if confidence > t {
                    if dead {
                        true_positive += 1;
                    } else {
                        false_positive += 1;
                    }
                }
            }
            (
                false_positive as f64 / live_total,
                true_positive as f64 / dead_total,
            )
        })
        .collect()
}

/// Runs the ROC for a multiperspective predictor with a *custom* feature
/// set (used to isolate feature-set effects from the training machinery).
pub fn run_custom_features(
    params: StParams,
    workload_count: usize,
    features: Vec<mrp_core::Feature>,
    label: &str,
) -> RocCurve {
    run_custom_features_with(params, workload_count, features, 64, 35, label)
}

/// Like [`run_custom_features`] but also overriding the sampler set count
/// and training threshold.
pub fn run_custom_features_with(
    params: StParams,
    workload_count: usize,
    features: Vec<mrp_core::Feature>,
    sampler_sets: u32,
    theta: i32,
    label: &str,
) -> RocCurve {
    let suite = workloads::suite();
    let count = workload_count.min(suite.len()).max(1);
    if recording::replay_enabled() {
        recording::prerecord(&suite[..count], params.seed, params.warmup, params.measure);
    }
    let thresholds: Vec<i32> = (-300..=300).step_by(4).collect();
    // One measure-only job per workload; the per-workload rate curves are
    // averaged afterward in suite order, exactly as the serial loop did.
    let per_workload: Vec<Vec<(f64, f64)>> = mrp_runtime::map_indexed(count, |wi| {
        let w = &suite[wi];
        let config = HierarchyConfig::single_thread();
        let samples = Arc::new(Mutex::new(Vec::new()));
        let mut mp_config = MpppbConfig::single_thread(&config.llc);
        mp_config.measure_only = true;
        mp_config.features = features.clone();
        mp_config.sampler_sets = sampler_sets.min(config.llc.sets());
        mp_config.training_threshold = theta;
        let policy = Box::new(RocProbe::new(
            Mpppb::new(mp_config, &config.llc),
            samples.clone(),
        ));
        drive_probe(w, params, policy);
        let collected = samples.lock().expect("sample lock");
        rates(&collected, &thresholds)
    });
    let mut sums: Vec<(f64, f64)> = vec![(0.0, 0.0); thresholds.len()];
    for workload_rates in &per_workload {
        for (i, &(fpr, tpr)) in workload_rates.iter().enumerate() {
            sums[i].0 += fpr;
            sums[i].1 += tpr;
        }
    }
    RocCurve {
        predictor: label.to_string(),
        points: thresholds
            .iter()
            .zip(sums)
            .map(|(&t, (fpr, tpr))| (t, fpr / count as f64, tpr / count as f64))
            .collect(),
    }
}

/// Runs the ROC experiment over `workload_count` workloads.
pub fn run(params: StParams, workload_count: usize) -> Vec<RocCurve> {
    let suite = workloads::suite();
    let count = workload_count.min(suite.len()).max(1);
    if recording::replay_enabled() {
        recording::prerecord(&suite[..count], params.seed, params.warmup, params.measure);
    }
    let predictors = [
        RocPredictor::Sdbp,
        RocPredictor::Perceptron,
        RocPredictor::Multiperspective,
    ];
    // One measure-only job per (predictor × workload) cell; per-workload
    // rate curves are averaged afterward in suite order, exactly as the
    // serial loop did.
    let per_workload: Vec<Vec<(f64, f64)>> =
        mrp_runtime::map_indexed(predictors.len() * count, |job| {
            let predictor = &predictors[job / count];
            let w = &suite[job % count];
            let thresholds = predictor.thresholds();
            let config = HierarchyConfig::single_thread();
            let samples = Arc::new(Mutex::new(Vec::new()));
            let policy = predictor.build_probe(&config.llc, samples.clone());
            drive_probe(w, params, policy);
            let collected = samples.lock().expect("sample lock");
            rates(&collected, &thresholds)
        });
    predictors
        .iter()
        .enumerate()
        .map(|(pi, predictor)| {
            let thresholds = predictor.thresholds();
            let mut sums: Vec<(f64, f64)> = vec![(0.0, 0.0); thresholds.len()];
            for workload_rates in &per_workload[pi * count..(pi + 1) * count] {
                for (i, &(fpr, tpr)) in workload_rates.iter().enumerate() {
                    sums[i].0 += fpr;
                    sums[i].1 += tpr;
                }
            }
            RocCurve {
                predictor: predictor.name().to_string(),
                points: thresholds
                    .iter()
                    .zip(sums)
                    .map(|(&t, (fpr, tpr))| (t, fpr / count as f64, tpr / count as f64))
                    .collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_monotone_in_threshold() {
        let samples: Vec<Sample> = (0..100).map(|i| (i - 50, i % 3 == 0)).collect();
        let thresholds: Vec<i32> = (-60..=60).step_by(10).collect();
        let r = rates(&samples, &thresholds);
        for pair in r.windows(2) {
            assert!(pair[0].0 >= pair[1].0, "FPR must fall as threshold rises");
            assert!(pair[0].1 >= pair[1].1, "TPR must fall as threshold rises");
        }
    }

    #[test]
    fn perfect_predictor_has_ideal_corner() {
        // Confidence 100 for dead, -100 for live.
        let samples: Vec<Sample> = (0..100)
            .map(|i| {
                if i % 2 == 0 {
                    (100, true)
                } else {
                    (-100, false)
                }
            })
            .collect();
        let r = rates(&samples, &[0]);
        assert_eq!(r[0], (0.0, 1.0));
    }

    #[test]
    fn probe_collects_resolved_samples() {
        let params = StParams {
            warmup: 20_000,
            measure: 100_000,
            seed: 1,
        };
        let curves = run(params, 1);
        assert_eq!(curves.len(), 3);
        for c in &curves {
            assert!(!c.points.is_empty());
            // Extreme thresholds bracket the rate range.
            let first = c.points.first().expect("nonempty");
            let last = c.points.last().expect("nonempty");
            assert!(first.1 >= last.1);
        }
    }
}

//! Minimal command-line argument parsing for the experiment binaries.

use std::collections::HashMap;

/// Parsed `--key value` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses the process arguments. Every argument must be of the form
    /// `--key value`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (tests).
    pub fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut values = HashMap::new();
        let mut iter = iter.into_iter();
        while let Some(key) = iter.next() {
            let stripped = key
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --key, got {key:?}"));
            let value = iter
                .next()
                .unwrap_or_else(|| panic!("missing value for --{stripped}"));
            values.insert(stripped.to_string(), value);
        }
        Args { values }
    }

    /// Integer argument with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// usize argument with default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get_u64(key, default as u64) as usize
    }

    /// String argument with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::from_iter(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = args(&["--instructions", "5000", "--mode", "fast"]);
        assert_eq!(a.get_u64("instructions", 1), 5000);
        assert_eq!(a.get_str("mode", "slow"), "fast");
    }

    #[test]
    fn missing_keys_use_defaults() {
        let a = args(&[]);
        assert_eq!(a.get_u64("instructions", 42), 42);
        assert_eq!(a.get_usize("mixes", 7), 7);
        assert_eq!(a.get_str("mode", "x"), "x");
    }

    #[test]
    #[should_panic(expected = "expected --key")]
    fn rejects_positional_arguments() {
        let _ = args(&["oops"]);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn rejects_non_integer() {
        let a = args(&["--n", "abc"]);
        let _ = a.get_u64("n", 0);
    }
}

//! Command-line argument handling for the experiment binaries.
//!
//! Generic `--key value` parsing lives in [`mrp_runtime::cli::Args`];
//! this wrapper layers the experiment-stack resolution over it: run
//! scale, report sinks, recording replay, telemetry manifests, and the
//! typed [`RuntimeOptions`] knobs.

use std::ops::Deref;

use mrp_core::RuntimeOptions;
use mrp_obs::{Json, RunManifest};

use crate::output::{ReportFormat, ReportSink};
use crate::runner::RunScale;

/// Parsed `--key value` arguments plus experiment-specific resolution.
///
/// Derefs to the generic [`mrp_runtime::cli::Args`], so the plain
/// getters (`get_u64`, `get_str`, `get_flag`, …) work unchanged.
#[derive(Debug, Clone, Default)]
pub struct Args {
    inner: mrp_runtime::cli::Args,
}

impl Deref for Args {
    type Target = mrp_runtime::cli::Args;

    fn deref(&self) -> &Self::Target {
        &self.inner
    }
}

impl Args {
    /// Parses the process arguments (see [`mrp_runtime::cli::Args::parse`]).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed or duplicated arguments.
    pub fn parse() -> Self {
        Args {
            inner: mrp_runtime::cli::Args::parse(),
        }
    }

    /// Parses from an explicit iterator (tests).
    pub fn from_args<I: IntoIterator<Item = String>>(iter: I) -> Self {
        Args {
            inner: mrp_runtime::cli::Args::from_args(iter),
        }
    }

    /// Resolves the shared runtime knobs — `--no-simd`, `--no-window`,
    /// `--threads` — into a typed [`RuntimeOptions`], installs it
    /// process-wide (SIMD dispatch, window delivery, worker pool), and
    /// returns the resolved worker count. Absent flags defer to the
    /// legacy `MRP_NO_SIMD`/`MRP_NO_WINDOW`/`MRP_THREADS` environment
    /// variables, so existing scripts keep working unchanged.
    pub fn init_runtime_options(&self) -> usize {
        let options = RuntimeOptions::from_env().with_cli(
            self.get_flag("no-simd", false),
            self.get_flag("no-window", false),
            self.get_usize("threads", 0),
        );
        options.install();
        mrp_runtime::set_threads(options.thread_request());
        mrp_runtime::threads()
    }

    /// Resolves the shared `--no-replay` switch and installs it
    /// process-wide: when set, single-thread runners re-simulate every
    /// (workload × policy) cell instead of replaying the shared
    /// per-workload recording (results are bit-identical either way; see
    /// [`crate::recording`]). Returns whether replay is enabled.
    pub fn init_replay(&self) -> bool {
        let enabled = !self.get_flag("no-replay", false);
        crate::recording::set_replay_enabled(enabled);
        enabled
    }

    /// Resolves the shared scale flags (`--warmup`, `--measure`,
    /// `--seed`, `--cores`) against a driver-supplied default, usually
    /// [`RunScale::single_thread`] or [`RunScale::multi_core`].
    pub fn run_scale(&self, defaults: RunScale) -> RunScale {
        defaults
            .warmup(self.get_u64("warmup", defaults.warmup))
            .measure(self.get_u64("measure", defaults.measure))
            .seed(self.get_u64("seed", defaults.seed))
            .cores(self.get_u64("cores", defaults.cores as u64) as u32)
    }

    /// The report format selected by the shared `--format` flag
    /// (`text`, the default, `tsv`, or `jsonl`).
    pub fn report_format(&self) -> ReportFormat {
        ReportFormat::parse(&self.get_str("format", "text"))
    }

    /// A stdout [`ReportSink`] in the `--format`-selected encoding.
    pub fn report_sink(&self) -> Box<dyn ReportSink> {
        self.report_format().stdout_sink()
    }

    /// Resolves the shared telemetry flags: `--metrics` switches the
    /// `mrp_obs` registry on (counters, gauges, phase timers) and
    /// returns a [`RunManifest`] that [`finish_manifest`] writes to
    /// `--manifest-dir` (default `runs/`) when the driver exits.
    /// Without `--metrics`, telemetry stays off — the zero-cost default
    /// — and no manifest is produced.
    ///
    /// `--spec-hash HEX` (appended by the orchestrator, never typed by
    /// hand) stamps the job's spec hash into the manifest's `meta`
    /// line, which is what lets resumed campaigns re-verify journaled
    /// done-jobs and dedupe against pre-existing manifests.
    pub fn init_metrics(&self, bin: &str, seed: u64) -> Option<RunManifest> {
        if !self.get_flag("metrics", false) {
            mrp_obs::set_enabled(false);
            return None;
        }
        mrp_obs::set_enabled(true);
        let mut manifest = RunManifest::new(bin, seed, self.get_str("manifest-dir", "runs"));
        let spec_hash = self.get_str("spec-hash", "");
        if !spec_hash.is_empty() {
            manifest.meta("spec_hash", Json::Str(spec_hash));
        }
        Some(manifest)
    }
}

/// Writes a driver's run manifest (if `--metrics` produced one) and
/// reports the path on stderr, keeping stdout for the report itself.
pub fn finish_manifest(manifest: Option<RunManifest>) {
    let Some(manifest) = manifest else {
        return;
    };
    match manifest.finish() {
        Ok(path) => eprintln!("run manifest: {}", path.display()),
        Err(err) => eprintln!("warning: could not write run manifest: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::from_args(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn derefs_to_generic_getters() {
        let a = args(&["--instructions", "5000", "--bless"]);
        assert_eq!(a.get_u64("instructions", 1), 5000);
        assert!(a.get_flag("bless", false));
    }

    #[test]
    fn runtime_options_flags_install_process_wide() {
        // Sole owner of the process-global runtime overrides in this
        // test binary: each sub-case restores the env-deferred default.
        let threads = args(&["--no-simd", "--no-window", "--threads", "2"]).init_runtime_options();
        assert_eq!(threads, 2);
        assert_eq!(mrp_core::simd::level(), mrp_core::SimdLevel::Scalar);
        assert!(!mrp_core::mpppb::window_delivery_enabled());
        // Absent flags fall back to the environment.
        let auto = args(&[]).init_runtime_options();
        assert!(auto >= 1);
        assert_eq!(mrp_core::simd::level(), mrp_core::simd::env_level());
        assert!(mrp_core::mpppb::window_delivery_enabled());
    }

    #[test]
    fn run_scale_overrides_only_given_flags() {
        let a = args(&["--measure", "5000", "--seed", "9"]);
        let scale = a.run_scale(RunScale::single_thread());
        assert_eq!(scale.warmup, RunScale::single_thread().warmup);
        assert_eq!(scale.measure, 5000);
        assert_eq!(scale.seed, 9);
        assert_eq!(scale.cores, 1);
        let mp = args(&["--cores", "2"]).run_scale(RunScale::multi_core());
        assert_eq!(mp.cores, 2);
        assert_eq!(mp.seed, 42);
    }

    #[test]
    fn report_format_flag_selects_sink() {
        assert_eq!(args(&[]).report_format(), ReportFormat::Text);
        assert_eq!(
            args(&["--format", "tsv"]).report_format(),
            ReportFormat::Tsv
        );
        assert_eq!(
            args(&["--format", "jsonl"]).report_format(),
            ReportFormat::Jsonl
        );
    }

    #[test]
    fn metrics_flag_gates_manifest_creation() {
        // Sole owner of the global obs flag in this test binary.
        let none = args(&[]).init_metrics("test_cli", 1);
        assert!(none.is_none());
        assert!(!mrp_obs::enabled());
        let some =
            args(&["--metrics", "--manifest-dir", "/tmp/mrp-cli-test"]).init_metrics("test_cli", 1);
        assert!(mrp_obs::enabled());
        let manifest = some.expect("--metrics yields a manifest");
        assert!(manifest.file_name().starts_with("test_cli-"));
        // --spec-hash (the orchestrator's plumbing) must land in the
        // meta line; absent, the manifest must not mention it.
        let with = args(&[
            "--metrics",
            "--manifest-dir",
            "/tmp/mrp-cli-test",
            "--spec-hash",
            "00d1f2e3c4b5a697",
        ])
        .init_metrics("test_cli", 2)
        .expect("manifest");
        assert!(with.render().contains("\"spec_hash\":\"00d1f2e3c4b5a697\""));
        assert!(!manifest.render().contains("spec_hash"));
        mrp_obs::set_enabled(false);
        // Dropping without finish() writes nothing.
        finish_manifest(None);
    }
}

//! Minimal command-line argument parsing for the experiment binaries.

use std::collections::HashMap;

use mrp_obs::{Json, RunManifest};

use crate::output::{ReportFormat, ReportSink};
use crate::runner::RunScale;

/// Parsed `--key value` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses the process arguments. Arguments are `--key value` pairs; a
    /// `--key` followed by another `--key` (or by nothing) is a valueless
    /// flag and reads as `true`, so switches like `--bless` need no
    /// operand. Negative numbers (`--delta -5`) still parse as values.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed or duplicated arguments.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (tests).
    pub fn from_args<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut values = HashMap::new();
        let mut iter = iter.into_iter().peekable();
        while let Some(key) = iter.next() {
            let stripped = key
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --key, got {key:?}"));
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => iter.next().expect("peeked"),
                _ => "true".to_string(),
            };
            if values.insert(stripped.to_string(), value).is_some() {
                panic!("duplicate argument --{stripped}");
            }
        }
        Args { values }
    }

    /// Integer argument with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// usize argument with default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get_u64(key, default as u64) as usize
    }

    /// String argument with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Boolean argument with default. Accepts `1`/`0`, `true`/`false`,
    /// `yes`/`no`, and `on`/`off`.
    pub fn get_flag(&self, key: &str, default: bool) -> bool {
        self.values
            .get(key)
            .map(|v| match v.as_str() {
                "1" | "true" | "yes" | "on" => true,
                "0" | "false" | "no" | "off" => false,
                other => panic!("--{key} expects a boolean (1/0/true/false), got {other:?}"),
            })
            .unwrap_or(default)
    }

    /// Resolves the shared `--threads` option and installs it as the
    /// global worker count for parallel experiment execution. `0` or
    /// absent defers to the `MRP_THREADS` environment variable, then to
    /// the machine's available parallelism. Returns the resolved count.
    pub fn init_threads(&self) -> usize {
        mrp_runtime::set_threads(self.get_usize("threads", 0));
        mrp_runtime::threads()
    }

    /// Resolves the shared `--no-replay` switch and installs it
    /// process-wide: when set, single-thread runners re-simulate every
    /// (workload × policy) cell instead of replaying the shared
    /// per-workload recording (results are bit-identical either way; see
    /// [`crate::recording`]). Returns whether replay is enabled.
    pub fn init_replay(&self) -> bool {
        let enabled = !self.get_flag("no-replay", false);
        crate::recording::set_replay_enabled(enabled);
        enabled
    }

    /// Resolves the shared scale flags (`--warmup`, `--measure`,
    /// `--seed`, `--cores`) against a driver-supplied default, usually
    /// [`RunScale::single_thread`] or [`RunScale::multi_core`].
    pub fn run_scale(&self, defaults: RunScale) -> RunScale {
        defaults
            .warmup(self.get_u64("warmup", defaults.warmup))
            .measure(self.get_u64("measure", defaults.measure))
            .seed(self.get_u64("seed", defaults.seed))
            .cores(self.get_u64("cores", defaults.cores as u64) as u32)
    }

    /// The report format selected by the shared `--format` flag
    /// (`text`, the default, `tsv`, or `jsonl`).
    pub fn report_format(&self) -> ReportFormat {
        ReportFormat::parse(&self.get_str("format", "text"))
    }

    /// A stdout [`ReportSink`] in the `--format`-selected encoding.
    pub fn report_sink(&self) -> Box<dyn ReportSink> {
        self.report_format().stdout_sink()
    }

    /// Resolves the shared telemetry flags: `--metrics` switches the
    /// `mrp_obs` registry on (counters, gauges, phase timers) and
    /// returns a [`RunManifest`] that [`finish_manifest`] writes to
    /// `--manifest-dir` (default `runs/`) when the driver exits.
    /// Without `--metrics`, telemetry stays off — the zero-cost default
    /// — and no manifest is produced.
    ///
    /// `--spec-hash HEX` (appended by the orchestrator, never typed by
    /// hand) stamps the job's spec hash into the manifest's `meta`
    /// line, which is what lets resumed campaigns re-verify journaled
    /// done-jobs and dedupe against pre-existing manifests.
    pub fn init_metrics(&self, bin: &str, seed: u64) -> Option<RunManifest> {
        if !self.get_flag("metrics", false) {
            mrp_obs::set_enabled(false);
            return None;
        }
        mrp_obs::set_enabled(true);
        let mut manifest = RunManifest::new(bin, seed, self.get_str("manifest-dir", "runs"));
        let spec_hash = self.get_str("spec-hash", "");
        if !spec_hash.is_empty() {
            manifest.meta("spec_hash", Json::Str(spec_hash));
        }
        Some(manifest)
    }
}

/// Writes a driver's run manifest (if `--metrics` produced one) and
/// reports the path on stderr, keeping stdout for the report itself.
pub fn finish_manifest(manifest: Option<RunManifest>) {
    let Some(manifest) = manifest else {
        return;
    };
    match manifest.finish() {
        Ok(path) => eprintln!("run manifest: {}", path.display()),
        Err(err) => eprintln!("warning: could not write run manifest: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::from_args(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = args(&["--instructions", "5000", "--mode", "fast"]);
        assert_eq!(a.get_u64("instructions", 1), 5000);
        assert_eq!(a.get_str("mode", "slow"), "fast");
    }

    #[test]
    fn missing_keys_use_defaults() {
        let a = args(&[]);
        assert_eq!(a.get_u64("instructions", 42), 42);
        assert_eq!(a.get_usize("mixes", 7), 7);
        assert_eq!(a.get_str("mode", "x"), "x");
    }

    #[test]
    #[should_panic(expected = "expected --key")]
    fn rejects_positional_arguments() {
        let _ = args(&["oops"]);
    }

    #[test]
    #[should_panic(expected = "duplicate argument --seed")]
    fn rejects_duplicate_keys() {
        let _ = args(&["--seed", "1", "--workloads", "4", "--seed", "2"]);
    }

    #[test]
    fn parses_boolean_flags() {
        let a = args(&["--min", "0", "--cv", "true", "--strict", "yes"]);
        assert!(!a.get_flag("min", true));
        assert!(a.get_flag("cv", false));
        assert!(a.get_flag("strict", false));
        assert!(a.get_flag("absent", true));
        assert!(!a.get_flag("absent", false));
    }

    #[test]
    #[should_panic(expected = "expects a boolean")]
    fn rejects_non_boolean_flag_values() {
        let a = args(&["--min", "maybe"]);
        let _ = a.get_flag("min", true);
    }

    #[test]
    fn valueless_flags_read_as_true() {
        let a = args(&["--bless", "--seed", "7"]);
        assert!(a.get_flag("bless", false));
        assert_eq!(a.get_u64("seed", 0), 7);
        let b = args(&["--seed", "7", "--bless"]);
        assert!(b.get_flag("bless", false));
    }

    #[test]
    fn negative_numbers_still_parse_as_values() {
        let a = args(&["--delta", "-5", "--strict"]);
        assert_eq!(a.get_str("delta", "0"), "-5");
        assert!(a.get_flag("strict", false));
    }

    #[test]
    fn threads_flag_resolves_and_installs_globally() {
        let a = args(&["--threads", "2"]);
        assert_eq!(a.init_threads(), 2);
        assert_eq!(mrp_runtime::threads(), 2);
        // Absent flag resets to automatic resolution.
        let auto = args(&[]).init_threads();
        assert!(auto >= 1);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn rejects_non_integer() {
        let a = args(&["--n", "abc"]);
        let _ = a.get_u64("n", 0);
    }

    #[test]
    fn run_scale_overrides_only_given_flags() {
        let a = args(&["--measure", "5000", "--seed", "9"]);
        let scale = a.run_scale(RunScale::single_thread());
        assert_eq!(scale.warmup, RunScale::single_thread().warmup);
        assert_eq!(scale.measure, 5000);
        assert_eq!(scale.seed, 9);
        assert_eq!(scale.cores, 1);
        let mp = args(&["--cores", "2"]).run_scale(RunScale::multi_core());
        assert_eq!(mp.cores, 2);
        assert_eq!(mp.seed, 42);
    }

    #[test]
    fn report_format_flag_selects_sink() {
        assert_eq!(args(&[]).report_format(), ReportFormat::Text);
        assert_eq!(
            args(&["--format", "tsv"]).report_format(),
            ReportFormat::Tsv
        );
        assert_eq!(
            args(&["--format", "jsonl"]).report_format(),
            ReportFormat::Jsonl
        );
    }

    #[test]
    fn metrics_flag_gates_manifest_creation() {
        // Sole owner of the global obs flag in this test binary.
        let none = args(&[]).init_metrics("test_cli", 1);
        assert!(none.is_none());
        assert!(!mrp_obs::enabled());
        let some =
            args(&["--metrics", "--manifest-dir", "/tmp/mrp-cli-test"]).init_metrics("test_cli", 1);
        assert!(mrp_obs::enabled());
        let manifest = some.expect("--metrics yields a manifest");
        assert!(manifest.file_name().starts_with("test_cli-"));
        // --spec-hash (the orchestrator's plumbing) must land in the
        // meta line; absent, the manifest must not mention it.
        let with = args(&[
            "--metrics",
            "--manifest-dir",
            "/tmp/mrp-cli-test",
            "--spec-hash",
            "00d1f2e3c4b5a697",
        ])
        .init_metrics("test_cli", 2)
        .expect("manifest");
        assert!(with.render().contains("\"spec_hash\":\"00d1f2e3c4b5a697\""));
        assert!(!manifest.render().contains("spec_hash"));
        mrp_obs::set_enabled(false);
        // Dropping without finish() writes nothing.
        finish_manifest(None);
    }
}

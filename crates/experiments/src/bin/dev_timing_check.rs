//! Development diagnostic: timing-level (IPC) comparison of MPPPB
//! operating points on the policy-sensitive workloads, against the
//! Perceptron reference.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin dev_timing_check --
//! [--threads N] [--metrics] [--manifest-dir DIR]`

use mrp_cache::HierarchyConfig;
use mrp_core::mpppb::MpppbConfig;
use mrp_core::AdaptiveMpppb;
use mrp_cpu::SingleCoreSim;
use mrp_experiments::runner::{run_single_kind, StParams};
use mrp_experiments::{finish_manifest, Args, PolicyKind};
use mrp_trace::workloads;

fn main() {
    let args = Args::parse();
    args.init_runtime_options();
    let params = StParams {
        warmup: args.get_u64("warmup", 600_000),
        measure: args.get_u64("measure", 2_500_000),
        seed: 1,
    };
    let mut manifest = args.init_metrics("dev_timing_check", params.seed);
    let names = [
        "scanhot.protect",
        "loop.edge",
        "spmv.fit",
        "mm.naive",
        "sat.clauses",
        "chase.2m",
    ];
    let suite = workloads::suite();

    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "workload", "LRU", "Perc", "rawA", "A+guard", "cv+g"
    );
    let mut geo = [0.0f64; 4];
    for name in names {
        let w = suite.iter().find(|w| w.name() == name).expect("workload");
        let lru = run_single_kind(w, PolicyKind::Lru, params);
        let perc = run_single_kind(w, PolicyKind::Perceptron, params);

        let config = HierarchyConfig::single_thread();
        let raw_a = {
            let mut sim = SingleCoreSim::new(
                config,
                Box::new(mrp_core::Mpppb::new(
                    MpppbConfig::single_thread(&config.llc),
                    &config.llc,
                )),
                w.trace(1),
            );
            sim.run(params.warmup, params.measure)
        };
        let a_guard = {
            let mut sim = SingleCoreSim::new(
                config,
                Box::new(AdaptiveMpppb::new(
                    MpppbConfig::single_thread(&config.llc),
                    &config.llc,
                )),
                w.trace(1),
            );
            sim.run(params.warmup, params.measure)
        };
        let cv_guard = {
            let mut sim = SingleCoreSim::new(
                config,
                mrp_experiments::runner::mpppb_cv_policy(w),
                w.trace(1),
            );
            sim.run(params.warmup, params.measure)
        };

        let speedups = [
            perc.ipc / lru.ipc,
            raw_a.ipc / lru.ipc,
            a_guard.ipc / lru.ipc,
            cv_guard.ipc / lru.ipc,
        ];
        for (g, s) in geo.iter_mut().zip(speedups) {
            *g += s.ln();
        }
        println!(
            "{:<18} {:>8.3} {:>7.2}x {:>7.2}x {:>7.2}x {:>7.2}x",
            name, lru.ipc, speedups[0], speedups[1], speedups[2], speedups[3]
        );
        if let Some(m) = manifest.as_mut() {
            m.cell(name, "Perceptron", &[("speedup", speedups[0])]);
            m.cell(name, "MPPPB(raw-A)", &[("speedup", speedups[1])]);
            m.cell(name, "MPPPB(A+guard)", &[("speedup", speedups[2])]);
            m.cell(name, "MPPPB(cv+guard)", &[("speedup", speedups[3])]);
        }
    }
    let n = names.len() as f64;
    println!(
        "{:<18} {:>8} {:>7.3}x {:>7.3}x {:>7.3}x {:>7.3}x",
        "geomean(these)",
        "",
        (geo[0] / n).exp(),
        (geo[1] / n).exp(),
        (geo[2] / n).exp(),
        (geo[3] / n).exp()
    );
    if let Some(m) = manifest.as_mut() {
        m.scalar("geomean.Perceptron", (geo[0] / n).exp());
        m.scalar("geomean.MPPPB(raw-A)", (geo[1] / n).exp());
        m.scalar("geomean.MPPPB(A+guard)", (geo[2] / n).exp());
        m.scalar("geomean.MPPPB(cv+guard)", (geo[3] / n).exp());
    }
    finish_manifest(manifest);
}

//! Figure 3: random feature-set search distribution + hill climbing.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin fig3_search --
//! [--candidates N] [--workloads N] [--instructions N] [--moves N] [--seed N] [--threads N]`

use mrp_experiments::search_curve::{self, SearchParams};
use mrp_experiments::Args;

fn main() {
    let args = Args::parse();
    let threads = args.init_threads();
    args.init_replay();
    let params = SearchParams {
        candidates: args.get_usize("candidates", 80),
        workload_count: args.get_usize("workloads", 10),
        instructions: args.get_u64("instructions", 2_000_000),
        patience: 20,
        max_moves: args.get_u64("moves", 150) as u32,
        seed: args.get_u64("seed", 17),
    };

    eprintln!(
        "fig3: evaluating {} random 16-feature sets on {} workloads ({threads} threads)",
        params.candidates, params.workload_count
    );
    let curve = search_curve::run(params);

    println!("# Fig 3: feature sets sorted by MPKI (descending), with reference lines");
    println!("LRU            {:.3}", curve.lru_mpki);
    println!("MIN            {:.3}", curve.min_mpki);
    println!(
        "hill-climbed   {:.3}  ({} moves tried, {} accepted)",
        curve.hillclimbed_mpki, curve.hillclimb_moves.0, curve.hillclimb_moves.1
    );
    println!("# rank  mpki");
    let step = (curve.random_mpkis.len() / 40).max(1);
    for (i, mpki) in curve.random_mpkis.iter().enumerate() {
        if i % step == 0 || i == curve.random_mpkis.len() - 1 {
            println!("{i:5}  {mpki:.3}");
        }
    }

    let best_random = curve.random_mpkis.last().expect("candidates nonempty");
    println!("\n# paper shape: random sets range from worse-than-LRU to roughly halfway LRU->MIN;");
    println!("# hill climbing adds a little on top of the best random set.");
    println!("best random    {best_random:.3}");
    println!(
        "worst random   {:.3}",
        curve.random_mpkis.first().expect("nonempty")
    );
}

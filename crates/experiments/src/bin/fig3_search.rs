//! Figure 3: random feature-set search distribution + hill climbing.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin fig3_search --
//! [--candidates N] [--workloads N] [--instructions N] [--moves N] [--seed N] [--threads N]
//! [--format text|tsv|jsonl] [--metrics] [--manifest-dir DIR]`

use mrp_experiments::output::series_points;
use mrp_experiments::search_curve::{self, SearchParams};
use mrp_experiments::{finish_manifest, Args};
use mrp_obs::Json;

fn main() {
    let args = Args::parse();
    let threads = args.init_runtime_options();
    args.init_replay();
    let params = SearchParams {
        candidates: args.get_usize("candidates", 80),
        workload_count: args.get_usize("workloads", 10),
        instructions: args.get_u64("instructions", 2_000_000),
        patience: 20,
        max_moves: args.get_u64("moves", 150) as u32,
        seed: args.get_u64("seed", 17),
    };
    let mut manifest = args.init_metrics("fig3_search", params.seed);

    eprintln!(
        "fig3: evaluating {} random 16-feature sets on {} workloads ({threads} threads)",
        params.candidates, params.workload_count
    );
    let curve = search_curve::run(params);

    let report_phase = mrp_obs::phase("report");
    let mut sink = args.report_sink();
    sink.comment("Fig 3: feature sets sorted by MPKI (descending), with reference lines");
    sink.scalar(
        "lru_mpki",
        curve.lru_mpki,
        &format!("{:.3}", curve.lru_mpki),
    );
    sink.scalar(
        "min_mpki",
        curve.min_mpki,
        &format!("{:.3}", curve.min_mpki),
    );
    sink.scalar(
        "hillclimbed_mpki",
        curve.hillclimbed_mpki,
        &format!(
            "{:.3}  ({} moves tried, {} accepted)",
            curve.hillclimbed_mpki, curve.hillclimb_moves.0, curve.hillclimb_moves.1
        ),
    );
    // Already sorted descending by the search; sample straight through.
    sink.series(
        "random_sets",
        &series_points(curve.random_mpkis.clone(), false, 40),
    );

    let best_random = *curve.random_mpkis.last().expect("candidates nonempty");
    let worst_random = *curve.random_mpkis.first().expect("nonempty");
    sink.comment("paper shape: random sets range from worse-than-LRU to roughly halfway LRU->MIN;");
    sink.comment("hill climbing adds a little on top of the best random set.");
    sink.scalar("best_random", best_random, &format!("{best_random:.3}"));
    sink.scalar("worst_random", worst_random, &format!("{worst_random:.3}"));

    if let Some(m) = manifest.as_mut() {
        m.meta("threads", Json::U64(threads as u64));
        m.meta("candidates", Json::U64(curve.random_mpkis.len() as u64));
        m.meta(
            "hillclimb_moves_tried",
            Json::U64(curve.hillclimb_moves.0 as u64),
        );
        m.meta(
            "hillclimb_moves_accepted",
            Json::U64(curve.hillclimb_moves.1 as u64),
        );
        m.scalar("lru_mpki", curve.lru_mpki);
        m.scalar("min_mpki", curve.min_mpki);
        m.scalar("hillclimbed_mpki", curve.hillclimbed_mpki);
        m.scalar("best_random", best_random);
        m.scalar("worst_random", worst_random);
    }
    drop(report_phase);
    finish_manifest(manifest);
}

//! Tables 1 and 2: the published feature sets, with storage accounting.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin tables_features`

use mrp_core::feature_sets;
use mrp_core::tables::WeightTables;
use mrp_core::Feature;

fn describe(title: &str, features: &[Feature]) {
    println!("# {title}");
    let tables = WeightTables::new(features);
    let index_bits: u32 = features
        .iter()
        .map(|f| (f.table_size() as u32).trailing_zeros())
        .sum();
    for f in features {
        println!("  {f}");
    }
    println!(
        "  -> {} features, {} index bits per sampler entry, {:.2} KB of weight tables\n",
        features.len(),
        index_bits,
        tables.storage_bits(6) as f64 / 8192.0
    );
}

fn main() {
    describe(
        "Table 1(a): single-thread feature set A (cross-validated)",
        &feature_sets::table_1a(),
    );
    describe(
        "Table 1(b): single-thread feature set B (paper's area estimate: 118 index bits)",
        &feature_sets::table_1b(),
    );
    describe(
        "Table 2: multi-programmed feature set (trained on 100 mixes)",
        &feature_sets::table_2(),
    );
}

//! Tables 1 and 2: the published feature sets, with storage accounting.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin tables_features --
//! [--format text|tsv|jsonl] [--metrics] [--manifest-dir DIR]`

use mrp_core::feature_sets;
use mrp_core::tables::WeightTables;
use mrp_core::Feature;
use mrp_experiments::{finish_manifest, Args, ReportSink};
use mrp_obs::{Json, RunManifest};

fn describe(
    sink: &mut dyn ReportSink,
    manifest: Option<&mut RunManifest>,
    key: &str,
    title: &str,
    features: &[Feature],
) {
    sink.comment(title);
    let tables = WeightTables::new(features);
    let index_bits: u32 = features
        .iter()
        .map(|f| (f.table_size() as u32).trailing_zeros())
        .sum();
    let rows: Vec<Vec<String>> = features.iter().map(|f| vec![f.to_string()]).collect();
    sink.table(key, &["feature"], &rows);
    let storage_kb = tables.storage_bits(6) as f64 / 8192.0;
    sink.scalar(
        &format!("{key}.index_bits"),
        index_bits as f64,
        &format!(
            "{} features, {index_bits} index bits per sampler entry, {storage_kb:.2} KB of weight tables",
            features.len()
        ),
    );
    if let Some(m) = manifest {
        m.cell(
            key,
            "feature_set",
            &[
                ("features", features.len() as f64),
                ("index_bits", index_bits as f64),
                ("storage_kb", storage_kb),
            ],
        );
    }
}

fn main() {
    let args = Args::parse();
    let mut manifest = args.init_metrics("tables_features", 0);
    let report_phase = mrp_obs::phase("report");
    let mut sink = args.report_sink();
    describe(
        sink.as_mut(),
        manifest.as_mut(),
        "table_1a",
        "Table 1(a): single-thread feature set A (cross-validated)",
        &feature_sets::table_1a(),
    );
    describe(
        sink.as_mut(),
        manifest.as_mut(),
        "table_1b",
        "Table 1(b): single-thread feature set B (paper's area estimate: 118 index bits)",
        &feature_sets::table_1b(),
    );
    describe(
        sink.as_mut(),
        manifest.as_mut(),
        "table_2",
        "Table 2: multi-programmed feature set (trained on 100 mixes)",
        &feature_sets::table_2(),
    );
    if let Some(m) = manifest.as_mut() {
        m.meta(
            "note",
            Json::Str("static feature-set accounting; no simulation".into()),
        );
    }
    drop(report_phase);
    finish_manifest(manifest);
}

//! Development diagnostic: ROC of the multiperspective machinery under
//! different feature sets, vs. the Perceptron baseline. If the machinery
//! is sound, the Perceptron-equivalent set should track the Perceptron
//! policy's curve; richer sets should beat it.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin dev_roc_check --
//! [--threads N] [--metrics] [--manifest-dir DIR]`

use mrp_core::feature_sets;
use mrp_experiments::roc;
use mrp_experiments::runner::StParams;
use mrp_experiments::{finish_manifest, Args};

fn main() {
    let args = Args::parse();
    args.init_runtime_options();
    let params = StParams {
        warmup: args.get_u64("warmup", 300_000),
        measure: args.get_u64("measure", 1_500_000),
        seed: args.get_u64("seed", 1),
    };
    let workloads = args.get_usize("workloads", 12);
    let mut manifest = args.init_metrics("dev_roc_check", params.seed);

    let baseline = roc::run(params, workloads);
    let like = roc::run_custom_features(
        params,
        workloads,
        feature_sets::perceptron_like(),
        "MP(perceptron-like)",
    );
    let like_scaled = roc::run_custom_features_with(
        params,
        workloads,
        feature_sets::perceptron_like(),
        160,
        45,
        "MP(p-like,160s,th45)",
    );
    let t1a_scaled = roc::run_custom_features_with(
        params,
        workloads,
        feature_sets::table_1a(),
        160,
        45,
        "MP(t1a,160s,th45)",
    );
    let t1b = roc::run_custom_features(params, workloads, feature_sets::table_1b(), "MP(table-1b)");

    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "predictor", "TPR@0.25", "TPR@0.28", "TPR@0.31"
    );
    for curve in baseline
        .iter()
        .chain([&like, &like_scaled, &t1a_scaled, &t1b])
    {
        println!(
            "{:<22} {:>10.3} {:>10.3} {:>10.3}",
            curve.predictor,
            curve.tpr_at_fpr(0.25),
            curve.tpr_at_fpr(0.28),
            curve.tpr_at_fpr(0.31)
        );
        if let Some(m) = manifest.as_mut() {
            m.cell(
                "all",
                &curve.predictor,
                &[
                    ("tpr_at_fpr_0.25", curve.tpr_at_fpr(0.25)),
                    ("tpr_at_fpr_0.28", curve.tpr_at_fpr(0.28)),
                    ("tpr_at_fpr_0.31", curve.tpr_at_fpr(0.31)),
                ],
            );
        }
    }
    finish_manifest(manifest);
}

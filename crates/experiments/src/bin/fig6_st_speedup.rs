//! Figure 6: single-thread speedup over LRU per benchmark.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin fig6_st_speedup --
//! [--warmup N] [--measure N] [--workloads N] [--min 0|1|true|false] [--seed N] [--threads N]
//! [--no-replay] [--format text|tsv|jsonl] [--metrics] [--manifest-dir DIR]`
//!
//! Each workload's LLC-bound stream is recorded once and replayed into
//! every policy (bit-identical to full simulation); `--no-replay`
//! re-simulates every cell instead. `--metrics` additionally writes a
//! schema-versioned JSONL run manifest (per-cell IPC/MPKI, phase
//! timings, runtime counters) under `--manifest-dir`.
//!
//! `--bless` regenerates the reduced-scale golden matrix at
//! `results/fig6_golden.txt` (checked by the `golden` test) and
//! `--golden-check` re-renders it and exits nonzero on drift (the
//! `orchestrate ci` entry point).

use std::process::ExitCode;

use mrp_experiments::output::pct;
use mrp_experiments::{finish_manifest, golden, single_thread, Args, RunScale};
use mrp_obs::Json;

fn main() -> ExitCode {
    let args = Args::parse();
    let threads = args.init_runtime_options();
    let replay = args.init_replay();
    if args.get_flag("bless", false) {
        let path = golden::results_path("fig6_golden.txt");
        std::fs::write(&path, golden::fig6_golden()).expect("write golden");
        eprintln!("fig6 golden regenerated at {}", path.display());
        return ExitCode::SUCCESS;
    }
    if args.get_flag("golden-check", false) {
        return golden::run_golden_check(
            &args,
            "fig6_st_speedup",
            "fig6_golden.txt",
            golden::FIG6_SEED,
            golden::fig6_golden,
        );
    }
    let scale = args.run_scale(RunScale::single_thread());
    let mut manifest = args.init_metrics("fig6_st_speedup", scale.seed);
    let workloads = args.get_usize("workloads", 33);
    let include_min = args.get_flag("min", true);
    let cv = args.get_flag("cv", false);

    eprintln!("fig6: running {workloads} workloads, warmup {} / measure {} instructions (cv={cv}, {threads} threads)", scale.warmup, scale.measure);
    let matrix = if cv {
        single_thread::run_cv(scale.st(), workloads, include_min)
    } else {
        single_thread::run(scale.st(), workloads, include_min)
    };

    // Scoped so the report phase lands in the manifest's phase snapshot.
    let report_phase = mrp_obs::phase("report");
    let mut sink = args.report_sink();
    let mut header = vec!["benchmark", "LRU ipc"];
    for n in &matrix.policy_names {
        header.push(n);
    }
    let mut rows: Vec<Vec<String>> = matrix
        .rows
        .iter()
        .map(|r| {
            let mut row = vec![r.workload.clone(), format!("{:.3}", r.lru_ipc)];
            for n in &matrix.policy_names {
                row.push(format!("{:.3}x", r.speedup(n)));
            }
            row
        })
        .collect();
    // Sort by MPPPB speedup, as the figure does.
    rows.sort_by(|a, b| a[4].partial_cmp(&b[4]).expect("finite"));
    sink.table("fig6_st_speedup", &header, &rows);

    sink.comment("geometric mean speedup over LRU (paper: Hawkeye +5.1%, Perceptron +6.3%, MPPPB +9.0%, MIN +13.6%):");
    for n in &matrix.policy_names {
        let g = matrix.geomean_speedup(n);
        sink.scalar(&format!("geomean_speedup.{n}"), g, &pct(g));
    }

    if let Some(m) = manifest.as_mut() {
        m.meta("threads", Json::U64(threads as u64));
        m.meta("replay", Json::Bool(replay));
        m.meta("cv", Json::Bool(cv));
        for r in &matrix.rows {
            m.cell(
                &r.workload,
                "LRU",
                &[("ipc", r.lru_ipc), ("mpki", r.lru_mpki)],
            );
            for (name, ipc, mpki) in &r.policies {
                m.cell(
                    &r.workload,
                    name,
                    &[("ipc", *ipc), ("mpki", *mpki), ("speedup", ipc / r.lru_ipc)],
                );
            }
        }
        for n in &matrix.policy_names {
            m.scalar(&format!("geomean_speedup.{n}"), matrix.geomean_speedup(n));
        }
    }
    drop(report_phase);
    finish_manifest(manifest);
    ExitCode::SUCCESS
}

//! Figure 6: single-thread speedup over LRU per benchmark.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin fig6_st_speedup --
//! [--warmup N] [--measure N] [--workloads N] [--min 0|1|true|false] [--seed N] [--threads N]
//! [--no-replay]`
//!
//! Each workload's LLC-bound stream is recorded once and replayed into
//! every policy (bit-identical to full simulation); `--no-replay`
//! re-simulates every cell instead.

use mrp_experiments::output::{pct, table};
use mrp_experiments::runner::StParams;
use mrp_experiments::{single_thread, Args};

fn main() {
    let args = Args::parse();
    let threads = args.init_threads();
    args.init_replay();
    let params = StParams {
        warmup: args.get_u64("warmup", 4_000_000),
        measure: args.get_u64("measure", 20_000_000),
        seed: args.get_u64("seed", 1),
    };
    let workloads = args.get_usize("workloads", 33);
    let include_min = args.get_flag("min", true);
    let cv = args.get_flag("cv", false);

    eprintln!("fig6: running {workloads} workloads, warmup {} / measure {} instructions (cv={cv}, {threads} threads)", params.warmup, params.measure);
    let matrix = if cv {
        single_thread::run_cv(params, workloads, include_min)
    } else {
        single_thread::run(params, workloads, include_min)
    };

    let mut header = vec!["benchmark", "LRU ipc"];
    for n in &matrix.policy_names {
        header.push(n);
    }
    let mut rows: Vec<Vec<String>> = matrix
        .rows
        .iter()
        .map(|r| {
            let mut row = vec![r.workload.clone(), format!("{:.3}", r.lru_ipc)];
            for n in &matrix.policy_names {
                row.push(format!("{:.3}x", r.speedup(n)));
            }
            row
        })
        .collect();
    // Sort by MPPPB speedup, as the figure does.
    rows.sort_by(|a, b| a[4].partial_cmp(&b[4]).expect("finite"));
    println!("{}", table(&header, &rows));

    println!("geometric mean speedup over LRU (paper: Hawkeye +5.1%, Perceptron +6.3%, MPPPB +9.0%, MIN +13.6%):");
    for n in &matrix.policy_names {
        println!("  {:<12} {}", n, pct(matrix.geomean_speedup(n)));
    }
}

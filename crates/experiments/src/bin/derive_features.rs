//! Derives suite-tuned feature sets via the paper's §5 methodology:
//! random search over 16-feature sets, then hill climbing, with two-fold
//! cross-validation (features searched on one half of the suite are
//! reported on the other).
//!
//! The paper's published sets (Tables 1–2) were developed on SPEC CPU
//! 2006 + CloudSuite; this binary re-runs the same process on this
//! repository's synthetic suite, printing the resulting sets as Rust
//! constructors ready to paste into `mrp_core::feature_sets`.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin derive_features --
//! [--candidates N] [--instructions N] [--moves N] [--patience N] [--seed N] [--threads N]
//! [--metrics] [--manifest-dir DIR]`

use mrp_search::{crossval, HillClimber, RandomFeatures};
use mrp_trace::workloads;

use mrp_experiments::{finish_manifest, Args};
use mrp_obs::Json;

fn kind_call(f: &mrp_core::Feature) -> String {
    use mrp_core::FeatureKind;
    let x = u8::from(f.xor_pc);
    match f.kind {
        FeatureKind::Pc { begin, end, which } => {
            format!("pc({}, {}, {}, {}, {})", f.assoc, begin, end, which, x)
        }
        FeatureKind::Address { begin, end } => {
            format!("address({}, {}, {}, {})", f.assoc, begin, end, x)
        }
        FeatureKind::Bias => format!("bias({}, {})", f.assoc, x),
        FeatureKind::Burst => format!("burst({}, {})", f.assoc, x),
        FeatureKind::Insert => format!("insert({}, {})", f.assoc, x),
        FeatureKind::LastMiss => format!("lastmiss({}, {})", f.assoc, x),
        FeatureKind::Offset { begin, end } => {
            format!("offset({}, {}, {}, {})", f.assoc, begin, end, x)
        }
    }
}

fn search_half(
    name: &str,
    workloads: &[mrp_trace::Workload],
    candidates: usize,
    instructions: u64,
    patience: u32,
    moves: u32,
    seed: u64,
) -> (Vec<mrp_core::Feature>, f64) {
    eprintln!(
        "[{name}] recording {} workloads: {}",
        workloads.len(),
        workloads
            .iter()
            .map(|w| w.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let evaluator = mrp_experiments::recording::fast_evaluator(workloads, seed, instructions);

    // Candidates come from one serial RNG stream, then score in parallel;
    // scanning the scores in draw order keeps the selected set (ties go to
    // the earliest candidate) identical to the serial loop's.
    let mut generator = RandomFeatures::new(seed ^ 0xfea7);
    let sets: Vec<Vec<mrp_core::Feature>> = (0..candidates.max(1))
        .map(|_| generator.feature_set(16))
        .collect();
    let scores = mrp_runtime::par_map(&sets, |set| evaluator.evaluate(set));
    let mut best_idx = 0;
    let mut best = scores[0];
    eprintln!(
        "[{name}] candidate 0: mpki {:.3} ratio {:.4}",
        best.0, best.1
    );
    for (i, score) in scores.iter().enumerate().skip(1) {
        if score.1 < best.1 {
            best = *score;
            best_idx = i;
            eprintln!(
                "[{name}] candidate {i}: mpki {:.3} ratio {:.4}",
                best.0, best.1
            );
        }
    }
    let best_set = sets[best_idx].clone();

    let mut climber = HillClimber::new(seed ^ 0xc11b, patience, moves);
    let report = climber.climb(&evaluator, best_set);
    eprintln!(
        "[{name}] hill climb: ratio {:.4} -> {:.4} ({} moves, {} accepted)",
        report.initial_objective, report.objective, report.attempts, report.accepted
    );
    (report.features, report.objective)
}

fn main() {
    let args = Args::parse();
    args.init_runtime_options();
    let candidates = args.get_usize("candidates", 120);
    let instructions = args.get_u64("instructions", 2_000_000);
    let moves = args.get_u64("moves", 250) as u32;
    let patience = args.get_u64("patience", 40) as u32;
    let seed = args.get_u64("seed", 2006);
    let mut manifest = args.init_metrics("derive_features", seed);

    let suite = workloads::suite();
    let (half_a, half_b) = crossval::split(&suite, seed);

    let (set_a, ratio_a) = search_half(
        "A",
        &half_a,
        candidates,
        instructions,
        patience,
        moves,
        seed,
    );
    let (set_b, ratio_b) = search_half(
        "B",
        &half_b,
        candidates,
        instructions,
        patience,
        moves,
        seed + 1,
    );

    println!("// Derived on suite half A (report on half B):");
    println!("pub fn suite_tuned_a() -> Vec<Feature> {{\n    vec![");
    for f in &set_a {
        println!("        {},", kind_call(f));
    }
    println!("    ]\n}}");
    println!("// Derived on suite half B (report on half A):");
    println!("pub fn suite_tuned_b() -> Vec<Feature> {{\n    vec![");
    for f in &set_b {
        println!("        {},", kind_call(f));
    }
    println!("    ]\n}}");

    if let Some(m) = manifest.as_mut() {
        m.meta("candidates", Json::U64(candidates as u64));
        m.meta("instructions", Json::U64(instructions));
        m.scalar("half_a.tuned_ratio", ratio_a);
        m.scalar("half_b.tuned_ratio", ratio_b);
    }
    finish_manifest(manifest);
}

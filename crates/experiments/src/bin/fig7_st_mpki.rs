//! Figure 7: single-thread MPKI per benchmark (log scale in the paper).
//!
//! Usage: `cargo run -p mrp-experiments --release --bin fig7_st_mpki --
//! [--warmup N] [--measure N] [--workloads N] [--min 0|1|true|false] [--seed N] [--threads N]
//! [--no-replay] [--format text|tsv|jsonl] [--metrics] [--manifest-dir DIR]`
//!
//! Each workload's LLC-bound stream is recorded once and replayed into
//! every policy (bit-identical to full simulation); `--no-replay`
//! re-simulates every cell instead. `--metrics` writes a JSONL run
//! manifest under `--manifest-dir`.

use mrp_experiments::{finish_manifest, single_thread, Args, RunScale};
use mrp_obs::Json;

fn main() {
    let args = Args::parse();
    let threads = args.init_runtime_options();
    let replay = args.init_replay();
    let scale = args.run_scale(RunScale::single_thread());
    let mut manifest = args.init_metrics("fig7_st_mpki", scale.seed);
    let workloads = args.get_usize("workloads", 33);
    let include_min = args.get_flag("min", true);
    let cv = args.get_flag("cv", false);

    eprintln!("fig7: running {workloads} workloads (cv={cv}, {threads} threads)");
    let matrix = if cv {
        single_thread::run_cv(scale.st(), workloads, include_min)
    } else {
        single_thread::run(scale.st(), workloads, include_min)
    };

    let report_phase = mrp_obs::phase("report");
    let mut sink = args.report_sink();
    let mut header = vec!["benchmark", "LRU"];
    for n in &matrix.policy_names {
        header.push(n);
    }
    let rows: Vec<Vec<String>> = matrix
        .rows
        .iter()
        .map(|r| {
            let mut row = vec![r.workload.clone(), format!("{:.2}", r.lru_mpki)];
            for n in &matrix.policy_names {
                row.push(format!("{:.2}", r.mpki(n)));
            }
            row
        })
        .collect();
    sink.table("fig7_st_mpki", &header, &rows);

    sink.comment("mean MPKI (paper: Hawkeye 3.8, Perceptron 3.7, MPPPB 3.5):");
    let lru_mean = matrix.mean_mpki("LRU");
    sink.scalar("mean_mpki.LRU", lru_mean, &format!("{lru_mean:.2}"));
    for n in &matrix.policy_names {
        let mean = matrix.mean_mpki(n);
        sink.scalar(&format!("mean_mpki.{n}"), mean, &format!("{mean:.2}"));
    }

    if let Some(m) = manifest.as_mut() {
        m.meta("threads", Json::U64(threads as u64));
        m.meta("replay", Json::Bool(replay));
        m.meta("cv", Json::Bool(cv));
        for r in &matrix.rows {
            m.cell(
                &r.workload,
                "LRU",
                &[("ipc", r.lru_ipc), ("mpki", r.lru_mpki)],
            );
            for (name, ipc, mpki) in &r.policies {
                m.cell(&r.workload, name, &[("ipc", *ipc), ("mpki", *mpki)]);
            }
        }
        m.scalar("mean_mpki.LRU", lru_mean);
        for n in &matrix.policy_names {
            m.scalar(&format!("mean_mpki.{n}"), matrix.mean_mpki(n));
        }
    }
    drop(report_phase);
    finish_manifest(manifest);
}

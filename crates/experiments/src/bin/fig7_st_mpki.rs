//! Figure 7: single-thread MPKI per benchmark (log scale in the paper).
//!
//! Usage: `cargo run -p mrp-experiments --release --bin fig7_st_mpki --
//! [--warmup N] [--measure N] [--workloads N] [--min 0|1|true|false] [--seed N] [--threads N]
//! [--no-replay]`
//!
//! Each workload's LLC-bound stream is recorded once and replayed into
//! every policy (bit-identical to full simulation); `--no-replay`
//! re-simulates every cell instead.

use mrp_experiments::output::table;
use mrp_experiments::runner::StParams;
use mrp_experiments::{single_thread, Args};

fn main() {
    let args = Args::parse();
    let threads = args.init_threads();
    args.init_replay();
    let params = StParams {
        warmup: args.get_u64("warmup", 4_000_000),
        measure: args.get_u64("measure", 20_000_000),
        seed: args.get_u64("seed", 1),
    };
    let workloads = args.get_usize("workloads", 33);
    let include_min = args.get_flag("min", true);
    let cv = args.get_flag("cv", false);

    eprintln!("fig7: running {workloads} workloads (cv={cv}, {threads} threads)");
    let matrix = if cv {
        single_thread::run_cv(params, workloads, include_min)
    } else {
        single_thread::run(params, workloads, include_min)
    };

    let mut header = vec!["benchmark", "LRU"];
    for n in &matrix.policy_names {
        header.push(n);
    }
    let rows: Vec<Vec<String>> = matrix
        .rows
        .iter()
        .map(|r| {
            let mut row = vec![r.workload.clone(), format!("{:.2}", r.lru_mpki)];
            for n in &matrix.policy_names {
                row.push(format!("{:.2}", r.mpki(n)));
            }
            row
        })
        .collect();
    println!("{}", table(&header, &rows));

    println!("mean MPKI (paper: Hawkeye 3.8, Perceptron 3.7, MPPPB 3.5):");
    println!("  {:<12} {:.2}", "LRU", matrix.mean_mpki("LRU"));
    for n in &matrix.policy_names {
        println!("  {:<12} {:.2}", n, matrix.mean_mpki(n));
    }
}

//! Threshold/position tuning for MPPPB (paper §5.5).
//!
//! "The bypass threshold τ0 is set first by an exhaustive search of all
//! possible values. Then the values of τ1, τ2, τ3, π1, π2, and π3 are
//! searched by generating thousands of random feasible combinations ...
//! selecting the combination yielding the minimum average MPKI."
//!
//! Usage: `cargo run -p mrp-experiments --release --bin tune_thresholds --
//! [--combos N] [--workloads N] [--instructions N] [--seed N] [--mode st|mp] [--threads N]
//! [--no-replay] [--metrics] [--manifest-dir DIR]`
//!
//! Training streams come from the shared recording cache (recorded once
//! per workload); `--no-replay` records privately instead.

use mrp_cache::Cache;
use mrp_core::mpppb::{Mpppb, MpppbConfig};
use mrp_search::{crossval, FastEvaluator};
use mrp_trace::workloads;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mrp_experiments::{finish_manifest, Args};
use mrp_obs::Json;

/// Damping added to MPKI ratios so near-zero-MPKI workloads don't blow up.
const EPS: f64 = 0.05;

/// Mean MPKI ratio vs. LRU over the training traces (1.0 = LRU parity;
/// lower is better). Ratio-to-baseline weights every workload equally, as
/// a speedup geomean does, instead of letting the highest-MPKI workload
/// dominate a plain average.
fn mean_mpki_ratio(evaluator: &FastEvaluator, lru: &[f64], config: &MpppbConfig) -> f64 {
    let llc = *evaluator.llc();
    // One replay per trace, each against its own policy instance; the sum
    // reduces in trace order so the ratio matches the serial loop exactly.
    let ratios = mrp_runtime::map_indexed(evaluator.traces().len(), |i| {
        let mut cache = Cache::new(llc, Box::new(Mpppb::new(config.clone(), &llc)));
        (evaluator.traces()[i].replay(&mut cache) + EPS) / (lru[i] + EPS)
    });
    ratios.iter().sum::<f64>() / ratios.len() as f64
}

fn main() {
    let args = Args::parse();
    args.init_runtime_options();
    args.init_replay();
    let combos = args.get_usize("combos", 200);
    let workload_count = args.get_usize("workloads", 12);
    let instructions = args.get_u64("instructions", 2_000_000);
    let seed = args.get_u64("seed", 17);
    let mode = args.get_str("mode", "st");
    let feature_choice = args.get_str("features", "default");
    let mut manifest = args.init_metrics("tune_thresholds", seed);

    let suite = workloads::suite();
    let (train, _) = crossval::split(&suite, seed);
    let selected: Vec<_> = train.into_iter().take(workload_count).collect();
    eprintln!(
        "tuning on: {}",
        selected
            .iter()
            .map(|w| w.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let evaluator = mrp_experiments::recording::fast_evaluator(&selected, seed, instructions);

    let llc = *evaluator.llc();
    let mut base = if mode == "mp" {
        MpppbConfig::multi_core(&llc)
    } else {
        MpppbConfig::single_thread(&llc)
    };
    match feature_choice.as_str() {
        "default" => {}
        "table1a" => base.features = mrp_core::feature_sets::table_1a(),
        "table1b" => base.features = mrp_core::feature_sets::table_1b(),
        "table2" => base.features = mrp_core::feature_sets::table_2(),
        "perceptron" => base.features = mrp_core::feature_sets::perceptron_like(),
        other => panic!("unknown --features {other}"),
    }
    let max_position = if mode == "mp" { 3u32 } else { 15u32 };

    let lru = evaluator.lru_mpkis().to_vec();
    let baseline_ratio = mean_mpki_ratio(&evaluator, &lru, &base);
    eprintln!("baseline (current defaults): mean MPKI ratio {baseline_ratio:.4}");

    // Random feasible combinations over ALL the policy parameters. The
    // training threshold theta bounds the equilibrium confidence
    // magnitude, so the decision thresholds are drawn relative to it
    // rather than on an absolute scale.
    // Combinations come from one serial RNG stream; scoring them is
    // embarrassingly parallel, and the best-so-far scan walks the scores
    // in draw order, so the winner matches the serial loop's.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7ea5);
    let configs: Vec<MpppbConfig> = (0..combos)
        .map(|_| {
            let mut config = base.clone();
            let theta = rng.gen_range(5..120);
            config.training_threshold = theta;
            let scale = theta + 30;
            // ~15% of candidates disable bypass outright.
            config.bypass_threshold = if rng.gen_range(0..100) < 15 {
                i32::MAX / 2
            } else {
                rng.gen_range(scale / 2..scale * 3)
            };
            // Feasible: tau1 >= tau2 >= tau3, all below tau0.
            let tau_hi = config.bypass_threshold.min(scale * 3);
            let mut taus: Vec<i32> = (0..3).map(|_| rng.gen_range(-scale..tau_hi)).collect();
            taus.sort_unstable_by(|a, b| b.cmp(a));
            config.place_thresholds = [taus[0], taus[1], taus[2]];
            let mut pis: Vec<u32> = (0..3).map(|_| rng.gen_range(0..=max_position)).collect();
            pis.sort_unstable_by(|a, b| b.cmp(a));
            config.positions = [pis[0], pis[1], pis[2]];
            config.promote_threshold = rng.gen_range(0..scale * 3);
            config
        })
        .collect();
    let ratios = mrp_runtime::par_map(&configs, |c| mean_mpki_ratio(&evaluator, &lru, c));

    let mut best = base.clone();
    let mut best_mpki = baseline_ratio;
    for (i, (config, &mpki)) in configs.iter().zip(&ratios).enumerate() {
        if mpki < best_mpki {
            best_mpki = mpki;
            best = config.clone();
            eprintln!(
                "  combo {i:4}: {mpki:.4}  tau0={} taus={:?} pis={:?} tau4={} theta={}",
                best.bypass_threshold,
                best.place_thresholds,
                best.positions,
                best.promote_threshold,
                best.training_threshold
            );
        }
    }

    println!("# tuned MPPPB parameters (mode {mode}), mean MPKI ratio vs LRU {best_mpki:.4}");
    println!("bypass_threshold: {}", best.bypass_threshold);
    println!("place_thresholds: {:?}", best.place_thresholds);
    println!("positions: {:?}", best.positions);
    println!("promote_threshold: {}", best.promote_threshold);
    println!("training_threshold: {}", best.training_threshold);

    if let Some(m) = manifest.as_mut() {
        m.meta("mode", Json::Str(mode.clone()));
        m.meta("features", Json::Str(feature_choice.clone()));
        m.meta("combos", Json::U64(combos as u64));
        m.scalar("baseline_ratio", baseline_ratio);
        m.scalar("tuned_ratio", best_mpki);
        m.scalar("bypass_threshold", best.bypass_threshold as f64);
        m.scalar("promote_threshold", best.promote_threshold as f64);
        m.scalar("training_threshold", best.training_threshold as f64);
    }
    finish_manifest(manifest);
}

//! Figure 4: normalized weighted speedup S-curves for 4-core mixes.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin fig4_mp_speedup --
//! [--warmup N] [--measure N] [--mixes N] [--seed N] [--threads N]
//! [--format text|tsv|jsonl] [--metrics] [--manifest-dir DIR]`

use mrp_experiments::multi;
use mrp_experiments::output::{pct, series_points};
use mrp_experiments::{finish_manifest, Args, RunScale};
use mrp_obs::Json;

fn main() {
    let args = Args::parse();
    let threads = args.init_runtime_options();
    let scale = args.run_scale(RunScale::multi_core());
    let mut manifest = args.init_metrics("fig4_mp_speedup", scale.seed);
    let mixes = args.get_usize("mixes", 32);

    eprintln!("fig4: running {mixes} 4-core mixes (test set, after 16 training mixes) on {threads} threads");
    let matrix = multi::run(scale.mp(), mixes, 16, scale.seed);

    let report_phase = mrp_obs::phase("report");
    let mut sink = args.report_sink();
    for name in &matrix.policy_names {
        sink.series(name, &series_points(matrix.speedups(name), true, 30));
    }

    sink.comment("geometric mean weighted speedup over LRU (paper: Hawkeye +5.2%, Perceptron +5.8%, MPPPB +8.3%):");
    for name in &matrix.policy_names {
        let g = matrix.geomean_speedup(name);
        sink.scalar(
            &format!("geomean_speedup.{name}"),
            g,
            &format!(
                "{}   (below LRU on {}/{} mixes)",
                pct(g),
                matrix.below_lru(name),
                matrix.rows.len()
            ),
        );
    }

    if let Some(m) = manifest.as_mut() {
        m.meta("threads", Json::U64(threads as u64));
        m.meta("mixes", Json::U64(matrix.rows.len() as u64));
        for r in &matrix.rows {
            for (name, speedup) in &r.speedups {
                m.cell(&r.label, name, &[("weighted_speedup", *speedup)]);
            }
        }
        for name in &matrix.policy_names {
            m.scalar(
                &format!("geomean_speedup.{name}"),
                matrix.geomean_speedup(name),
            );
            m.scalar(&format!("below_lru.{name}"), matrix.below_lru(name) as f64);
        }
    }
    drop(report_phase);
    finish_manifest(manifest);
}

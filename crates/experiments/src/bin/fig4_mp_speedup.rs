//! Figure 4: normalized weighted speedup S-curves for 4-core mixes.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin fig4_mp_speedup --
//! [--warmup N] [--measure N] [--mixes N] [--seed N] [--threads N]`

use mrp_experiments::multi;
use mrp_experiments::output::{pct, s_curve};
use mrp_experiments::runner::MpParams;
use mrp_experiments::Args;

fn main() {
    let args = Args::parse();
    let threads = args.init_threads();
    let params = MpParams {
        warmup: args.get_u64("warmup", 2_000_000),
        measure: args.get_u64("measure", 8_000_000),
    };
    let mixes = args.get_usize("mixes", 32);
    let seed = args.get_u64("seed", 42);

    eprintln!("fig4: running {mixes} 4-core mixes (test set, after 16 training mixes) on {threads} threads");
    let matrix = multi::run(params, mixes, 16, seed);

    for name in &matrix.policy_names {
        print!("{}", s_curve(name, matrix.speedups(name), true, 30));
    }

    println!("\ngeometric mean weighted speedup over LRU (paper: Hawkeye +5.2%, Perceptron +5.8%, MPPPB +8.3%):");
    for name in &matrix.policy_names {
        println!(
            "  {:<12} {}   (below LRU on {}/{} mixes)",
            name,
            pct(matrix.geomean_speedup(name)),
            matrix.below_lru(name),
            matrix.rows.len()
        );
    }
}

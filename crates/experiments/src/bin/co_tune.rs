//! Joint feature/threshold tuning: alternates the paper's §5.5 threshold
//! search and §5.1 feature hill-climbing until the budget is spent,
//! since decision thresholds scale with the feature count and must be
//! re-fit whenever the feature set changes.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin co_tune --
//! [--rounds N] [--combos N] [--moves N] [--workloads N]
//! [--instructions N] [--seed N] [--half a|b] [--threads N]
//! [--metrics] [--manifest-dir DIR]`

use mrp_cache::Cache;
use mrp_core::mpppb::{Mpppb, MpppbConfig};
use mrp_core::{feature_sets, Feature, FeatureKind};
use mrp_search::{crossval, FastEvaluator, HillClimber};
use mrp_trace::workloads;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mrp_experiments::{finish_manifest, Args};
use mrp_obs::Json;

const EPS: f64 = 0.05;

/// Fixed cross-validation split seed, shared with the reporting side
/// (`mrp_experiments::single_thread` uses the same constant so features
/// tuned on one half are only reported on the other).
const SPLIT_SEED: u64 = 17;

fn ratio(evaluator: &FastEvaluator, config: &MpppbConfig) -> f64 {
    let llc = *evaluator.llc();
    let lru = evaluator.lru_mpkis();
    // Traces replay in parallel, each against its own policy instance;
    // the sum reduces in trace order so the result matches the serial loop.
    let ratios = mrp_runtime::map_indexed(evaluator.traces().len(), |i| {
        let mut cache = Cache::new(llc, Box::new(Mpppb::new(config.clone(), &llc)));
        (evaluator.traces()[i].replay(&mut cache) + EPS) / (lru[i] + EPS)
    });
    ratios.iter().sum::<f64>() / ratios.len() as f64
}

fn search_thresholds(
    evaluator: &FastEvaluator,
    base: &MpppbConfig,
    combos: usize,
    rng: &mut StdRng,
) -> (MpppbConfig, f64) {
    // Combinations come from the caller's serial RNG stream; scoring is
    // parallel and the best-so-far scan walks the scores in draw order,
    // so the winner matches the serial loop's.
    let candidates: Vec<MpppbConfig> = (0..combos)
        .map(|_| {
            let mut config = base.clone();
            let theta = rng.gen_range(5..120);
            config.training_threshold = theta;
            // Sums scale with the feature count; scale the draw ranges.
            let scale = (theta + 30) * (config.features.len() as i32) / 6;
            config.bypass_threshold = if rng.gen_range(0..100) < 15 {
                i32::MAX / 2
            } else {
                rng.gen_range(scale / 2..scale * 3)
            };
            let tau_hi = config.bypass_threshold.min(scale * 3);
            let mut taus: Vec<i32> = (0..3).map(|_| rng.gen_range(-scale..tau_hi)).collect();
            taus.sort_unstable_by(|a, b| b.cmp(a));
            config.place_thresholds = [taus[0], taus[1], taus[2]];
            let mut pis: Vec<u32> = (0..3).map(|_| rng.gen_range(0..=15)).collect();
            pis.sort_unstable_by(|a, b| b.cmp(a));
            config.positions = [pis[0], pis[1], pis[2]];
            config.promote_threshold = rng.gen_range(0..scale * 3);
            config
        })
        .collect();
    let scores = mrp_runtime::par_map(&candidates, |c| ratio(evaluator, c));

    let mut best = base.clone();
    let mut best_score = ratio(evaluator, base);
    for (config, &score) in candidates.iter().zip(&scores) {
        if score < best_score {
            best_score = score;
            best = config.clone();
        }
    }
    (best, best_score)
}

fn feature_code(f: &Feature) -> String {
    let x = u8::from(f.xor_pc);
    match f.kind {
        FeatureKind::Pc { begin, end, which } => {
            format!("pc({}, {}, {}, {}, {})", f.assoc, begin, end, which, x)
        }
        FeatureKind::Address { begin, end } => {
            format!("address({}, {}, {}, {})", f.assoc, begin, end, x)
        }
        FeatureKind::Bias => format!("bias({}, {})", f.assoc, x),
        FeatureKind::Burst => format!("burst({}, {})", f.assoc, x),
        FeatureKind::Insert => format!("insert({}, {})", f.assoc, x),
        FeatureKind::LastMiss => format!("lastmiss({}, {})", f.assoc, x),
        FeatureKind::Offset { begin, end } => {
            format!("offset({}, {}, {}, {})", f.assoc, begin, end, x)
        }
    }
}

fn main() {
    let args = Args::parse();
    args.init_runtime_options();
    args.init_replay();
    let rounds = args.get_usize("rounds", 2);
    let combos = args.get_usize("combos", 100);
    let moves = args.get_u64("moves", 120) as u32;
    let workload_count = args.get_usize("workloads", 14);
    let instructions = args.get_u64("instructions", 1_500_000);
    let seed = args.get_u64("seed", 17);
    let half = args.get_str("half", "a");
    let mut manifest = args.init_metrics("co_tune", seed);

    let suite = workloads::suite();
    // The split seed is fixed so halves A and B are true complements
    // regardless of the search seed (the paper's cross-validation).
    let (half_a, half_b) = crossval::split(&suite, SPLIT_SEED);
    let selected: Vec<_> = if half == "b" { half_b } else { half_a }
        .into_iter()
        .take(workload_count)
        .collect();
    eprintln!(
        "[co_tune:{half}] workloads: {}",
        selected
            .iter()
            .map(|w| w.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let mut evaluator = mrp_experiments::recording::fast_evaluator(&selected, seed, instructions);

    // Seed: the Perceptron-equivalent 6 features cyclically padded to the
    // paper's 16 slots (duplicates are legitimate; the published sets
    // contain them), with the last-tuned thresholds.
    let llc = *evaluator.llc();
    let mut config = MpppbConfig::single_thread(&llc);
    let seed_features = feature_sets::perceptron_like();
    config.features = (0..16)
        .map(|i| seed_features[i % seed_features.len()])
        .collect();
    config.bypass_threshold = 108 * 16 / 6;
    config.place_thresholds = [94 * 16 / 6, 77 * 16 / 6, -37 * 16 / 6];
    config.positions = [13, 8, 6];
    config.promote_threshold = 194 * 16 / 6;

    let mut rng = StdRng::seed_from_u64(seed ^ 0xc07e);
    eprintln!(
        "[co_tune:{half}] seed ratio {:.4}",
        ratio(&evaluator, &config)
    );

    for round in 0..rounds {
        // Thresholds under the current features.
        let (tuned, score) = search_thresholds(&evaluator, &config, combos, &mut rng);
        config = tuned;
        eprintln!("[co_tune:{half}] round {round}: thresholds -> {score:.4}");
        if let Some(m) = manifest.as_mut() {
            m.scalar(&format!("round.{round}.threshold_ratio"), score);
        }

        // Features under the current thresholds.
        evaluator.set_base_config(config.clone());
        let mut climber = HillClimber::new(seed ^ (round as u64 + 1), 30, moves);
        let report = climber.climb(&evaluator, config.features.clone());
        config.features = report.features;
        eprintln!(
            "[co_tune:{half}] round {round}: features -> {:.4} ({} accepted)",
            report.objective, report.accepted
        );
        if let Some(m) = manifest.as_mut() {
            m.scalar(&format!("round.{round}.feature_ratio"), report.objective);
            m.scalar(
                &format!("round.{round}.moves_accepted"),
                report.accepted as f64,
            );
        }
    }

    let final_score = ratio(&evaluator, &config);
    println!("// co-tuned on suite half {half}: ratio {final_score:.4}");
    println!("pub fn suite_tuned_{half}() -> Vec<Feature> {{\n    vec![");
    for f in &config.features {
        println!("        {},", feature_code(f));
    }
    println!("    ]\n}}");
    println!("bypass_threshold: {}", config.bypass_threshold);
    println!("place_thresholds: {:?}", config.place_thresholds);
    println!("positions: {:?}", config.positions);
    println!("promote_threshold: {}", config.promote_threshold);
    println!("training_threshold: {}", config.training_threshold);

    if let Some(m) = manifest.as_mut() {
        m.meta("half", Json::Str(half.clone()));
        m.meta("rounds", Json::U64(rounds as u64));
        m.meta("combos", Json::U64(combos as u64));
        m.scalar("final_ratio", final_score);
        m.scalar("training_threshold", config.training_threshold as f64);
        m.scalar("bypass_threshold", config.bypass_threshold as f64);
    }
    finish_manifest(manifest);
}

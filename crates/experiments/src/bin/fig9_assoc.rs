//! Figure 9: performance impact of uniform feature associativity.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin fig9_assoc --
//! [--warmup N] [--measure N] [--mixes N] [--step N] [--seed N] [--threads N]
//! [--no-replay]`
//!
//! The standalone-IPC baseline replays each workload's shared recording;
//! `--no-replay` re-simulates it (mix runs are always simulated in full).

use mrp_experiments::assoc_sweep;
use mrp_experiments::output::pct;
use mrp_experiments::runner::MpParams;
use mrp_experiments::Args;

fn main() {
    let args = Args::parse();
    let threads = args.init_threads();
    args.init_replay();
    let params = MpParams {
        warmup: args.get_u64("warmup", 1_000_000),
        measure: args.get_u64("measure", 5_000_000),
    };
    let mixes = args.get_usize("mixes", 12);
    let step = args.get_usize("step", 1);
    let seed = args.get_u64("seed", 42);

    eprintln!("fig9: sweeping uniform associativity over {mixes} mixes (A step {step}, {threads} threads)");
    let sweep = assoc_sweep::run(params, mixes, step, seed);

    println!("# Fig 9: geomean weighted speedup vs uniform feature associativity");
    println!("# paper: A=1 -> +6.4%, A=18 -> +7.8%, variable (original) -> +8.0%");
    println!("{:>5}  {:>10}", "A", "speedup");
    for (a, s) in &sweep.uniform {
        println!("{a:>5}  {:>10}", pct(*s));
    }
    println!(
        "{:>5}  {:>10}   <- variable associativities",
        "orig",
        pct(sweep.original)
    );
}

//! Figure 9: performance impact of uniform feature associativity.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin fig9_assoc --
//! [--warmup N] [--measure N] [--mixes N] [--step N] [--seed N] [--threads N]
//! [--no-replay] [--format text|tsv|jsonl] [--metrics] [--manifest-dir DIR]`
//!
//! The standalone-IPC baseline replays each workload's shared recording;
//! `--no-replay` re-simulates it (mix runs are always simulated in full).

use mrp_experiments::assoc_sweep;
use mrp_experiments::output::pct;
use mrp_experiments::{finish_manifest, Args, RunScale};
use mrp_obs::Json;

fn main() {
    let args = Args::parse();
    let threads = args.init_runtime_options();
    args.init_replay();
    let scale = args.run_scale(RunScale::multi_core().warmup(1_000_000).measure(5_000_000));
    let mut manifest = args.init_metrics("fig9_assoc", scale.seed);
    let mixes = args.get_usize("mixes", 12);
    let step = args.get_usize("step", 1);

    eprintln!("fig9: sweeping uniform associativity over {mixes} mixes (A step {step}, {threads} threads)");
    let sweep = assoc_sweep::run(scale.mp(), mixes, step, scale.seed);

    let report_phase = mrp_obs::phase("report");
    let mut sink = args.report_sink();
    sink.comment("Fig 9: geomean weighted speedup vs uniform feature associativity");
    sink.comment("paper: A=1 -> +6.4%, A=18 -> +7.8%, variable (original) -> +8.0%");
    let rows: Vec<Vec<String>> = sweep
        .uniform
        .iter()
        .map(|(a, s)| vec![a.to_string(), pct(*s)])
        .chain(std::iter::once(vec![
            "orig (variable)".to_string(),
            pct(sweep.original),
        ]))
        .collect();
    sink.table("fig9_assoc", &["A", "speedup"], &rows);
    sink.scalar("speedup.original", sweep.original, &pct(sweep.original));

    if let Some(m) = manifest.as_mut() {
        m.meta("threads", Json::U64(threads as u64));
        m.meta("mixes", Json::U64(mixes as u64));
        m.meta("step", Json::U64(step as u64));
        for (a, s) in &sweep.uniform {
            m.cell(&format!("A={a}"), "uniform", &[("speedup", *s)]);
        }
        m.scalar("speedup.original", sweep.original);
    }
    drop(report_phase);
    finish_manifest(manifest);
}

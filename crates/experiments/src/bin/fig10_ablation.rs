//! Figure 10: performance impact of removing each feature.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin fig10_ablation --
//! [--warmup N] [--measure N] [--mixes N] [--features N] [--seed N] [--threads N]
//! [--no-replay]`
//!
//! The standalone-IPC baseline replays each workload's shared recording;
//! `--no-replay` re-simulates it (mix runs are always simulated in full).
//!
//! `--bless` regenerates the reduced-scale golden matrix at
//! `results/fig10_golden.txt` (checked by the `golden_tables` test)
//! instead of running the full study.

use mrp_experiments::ablation;
use mrp_experiments::output::pct;
use mrp_experiments::runner::MpParams;
use mrp_experiments::{golden, Args};

fn main() {
    let args = Args::parse();
    let threads = args.init_threads();
    args.init_replay();
    if args.get_flag("bless", false) {
        let path = golden::results_path("fig10_golden.txt");
        std::fs::write(&path, golden::ablation_golden()).expect("write golden");
        eprintln!("fig10 golden regenerated at {}", path.display());
        return;
    }
    let params = MpParams {
        warmup: args.get_u64("warmup", 1_000_000),
        measure: args.get_u64("measure", 5_000_000),
    };
    let mixes = args.get_usize("mixes", 12);
    let features = args.get_usize("features", 16);
    let seed = args.get_u64("seed", 42);

    eprintln!("fig10: leave-one-out over {features} features x {mixes} mixes on {threads} threads");
    let result = ablation::run(params, mixes, features, seed);

    println!("# Fig 10: geomean weighted speedup with each Table 1(a) feature omitted");
    println!("{:>22}  {:>10}", "feature omitted", "speedup");
    println!(
        "{:>22}  {:>10}   <- full set",
        "(original)",
        pct(result.original)
    );
    for (feature, speedup) in &result.omitted {
        let marker = if *speedup > result.original {
            "  <- removal helps"
        } else {
            ""
        };
        println!("{feature:>22}  {:>10}{marker}", pct(*speedup));
    }
    let (best_feature, best_speedup) = result.most_valuable();
    println!(
        "\nmost valuable feature: {} (speedup drops to {} without it; paper: offset(15,1,6,1), 8.0% -> 7.6%)",
        best_feature,
        pct(*best_speedup)
    );
}

//! Figure 10: performance impact of removing each feature.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin fig10_ablation --
//! [--warmup N] [--measure N] [--mixes N] [--features N] [--seed N] [--threads N]
//! [--no-replay] [--format text|tsv|jsonl] [--metrics] [--manifest-dir DIR]`
//!
//! The standalone-IPC baseline replays each workload's shared recording;
//! `--no-replay` re-simulates it (mix runs are always simulated in full).
//!
//! `--bless` regenerates the reduced-scale golden matrix at
//! `results/fig10_golden.txt` (checked by the `golden_tables` test)
//! instead of running the full study; `--golden-check` re-renders it
//! and exits nonzero on drift (the `orchestrate ci` entry point).

use std::process::ExitCode;

use mrp_experiments::ablation;
use mrp_experiments::output::pct;
use mrp_experiments::{finish_manifest, golden, Args, RunScale};
use mrp_obs::Json;

fn main() -> ExitCode {
    let args = Args::parse();
    let threads = args.init_runtime_options();
    args.init_replay();
    if args.get_flag("bless", false) {
        let path = golden::results_path("fig10_golden.txt");
        std::fs::write(&path, golden::ablation_golden()).expect("write golden");
        eprintln!("fig10 golden regenerated at {}", path.display());
        return ExitCode::SUCCESS;
    }
    if args.get_flag("golden-check", false) {
        return golden::run_golden_check(
            &args,
            "fig10_ablation",
            "fig10_golden.txt",
            golden::ABLATION_SEED,
            golden::ablation_golden,
        );
    }
    let scale = args.run_scale(RunScale::multi_core().warmup(1_000_000).measure(5_000_000));
    let mut manifest = args.init_metrics("fig10_ablation", scale.seed);
    let mixes = args.get_usize("mixes", 12);
    let features = args.get_usize("features", 16);

    eprintln!("fig10: leave-one-out over {features} features x {mixes} mixes on {threads} threads");
    let result = ablation::run(scale.mp(), mixes, features, scale.seed);

    let report_phase = mrp_obs::phase("report");
    let mut sink = args.report_sink();
    sink.comment("Fig 10: geomean weighted speedup with each Table 1(a) feature omitted");
    let rows: Vec<Vec<String>> = std::iter::once(vec![
        "(original)".to_string(),
        pct(result.original),
        "full set".to_string(),
    ])
    .chain(result.omitted.iter().map(|(feature, speedup)| {
        let marker = if *speedup > result.original {
            "removal helps"
        } else {
            ""
        };
        vec![feature.clone(), pct(*speedup), marker.to_string()]
    }))
    .collect();
    sink.table(
        "fig10_ablation",
        &["feature omitted", "speedup", "note"],
        &rows,
    );

    let (best_feature, best_speedup) = result.most_valuable();
    sink.comment(&format!(
        "most valuable feature: {best_feature} (speedup drops to {} without it; paper: offset(15,1,6,1), 8.0% -> 7.6%)",
        pct(*best_speedup)
    ));
    sink.scalar("speedup.original", result.original, &pct(result.original));

    if let Some(m) = manifest.as_mut() {
        m.meta("threads", Json::U64(threads as u64));
        m.meta("mixes", Json::U64(mixes as u64));
        m.meta("features", Json::U64(features as u64));
        m.meta("most_valuable", Json::Str(best_feature.clone()));
        for (feature, speedup) in &result.omitted {
            m.cell(
                "geomean",
                &format!("omit:{feature}"),
                &[("speedup", *speedup)],
            );
        }
        m.scalar("speedup.original", result.original);
    }
    drop(report_phase);
    finish_manifest(manifest);
    ExitCode::SUCCESS
}

//! Prints the runtime-dispatched SIMD level (`scalar` / `avx2` /
//! `avx512`) and exits. CI's kernel-dispatch matrix uses it to assert
//! that the dispatcher actually selected the level the host ISA offers
//! (and that `MRP_NO_SIMD=1` pins it to `scalar`).

fn main() {
    println!("{}", mrp_core::simd::level().name());
}

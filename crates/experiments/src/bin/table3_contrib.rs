//! Table 3: per-workload feature contributions.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin table3_contrib --
//! [--workloads N] [--instructions N] [--seed N] [--threads N]`
//!
//! `--bless` regenerates the reduced-scale golden matrix at
//! `results/table3_golden.txt` (checked by the `golden_tables` test)
//! instead of running the full study.

use mrp_experiments::feature_table;
use mrp_experiments::output::table;
use mrp_experiments::{golden, Args};

fn main() {
    let args = Args::parse();
    let threads = args.init_threads();
    args.init_replay();
    if args.get_flag("bless", false) {
        let path = golden::results_path("table3_golden.txt");
        std::fs::write(&path, golden::table3_golden()).expect("write golden");
        eprintln!("table3 golden regenerated at {}", path.display());
        return;
    }
    let workloads = args.get_usize("workloads", 33);
    let instructions = args.get_u64("instructions", 3_000_000);
    // A fresh seed so traces differ from every tuning run, mirroring the
    // paper's use of SPEC CPU 2017 as an untouched testing set.
    let seed = args.get_u64("seed", 2017);

    eprintln!("table3: leave-one-out over 16 features x {workloads} workloads ({threads} threads)");
    let rows = feature_table::run(workloads, instructions, seed);

    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.feature.clone(),
                format!("{:.2}", r.mpki_without),
                format!("{:.2}", r.mpki_with),
                format!("{:.2}%", r.percent_increase),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["workload", "feature", "MPKI w/o", "MPKI with", "increase"],
            &rendered
        )
    );
    println!("# paper's headline row: pc(15,14,32,6,0) improves an mcf simpoint by 18.88%");
}

//! Table 3: per-workload feature contributions.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin table3_contrib --
//! [--workloads N] [--instructions N] [--seed N] [--threads N]
//! [--format text|tsv|jsonl] [--metrics] [--manifest-dir DIR]`
//!
//! `--bless` regenerates the reduced-scale golden matrix at
//! `results/table3_golden.txt` (checked by the `golden_tables` test)
//! instead of running the full study; `--golden-check` re-renders it
//! and exits nonzero on drift (the `orchestrate ci` entry point).

use std::process::ExitCode;

use mrp_experiments::feature_table;
use mrp_experiments::{finish_manifest, golden, Args};
use mrp_obs::Json;

fn main() -> ExitCode {
    let args = Args::parse();
    let threads = args.init_runtime_options();
    args.init_replay();
    if args.get_flag("bless", false) {
        let path = golden::results_path("table3_golden.txt");
        std::fs::write(&path, golden::table3_golden()).expect("write golden");
        eprintln!("table3 golden regenerated at {}", path.display());
        return ExitCode::SUCCESS;
    }
    if args.get_flag("golden-check", false) {
        return golden::run_golden_check(
            &args,
            "table3_contrib",
            "table3_golden.txt",
            golden::TABLE3_SEED,
            golden::table3_golden,
        );
    }
    let workloads = args.get_usize("workloads", 33);
    let instructions = args.get_u64("instructions", 3_000_000);
    // A fresh seed so traces differ from every tuning run, mirroring the
    // paper's use of SPEC CPU 2017 as an untouched testing set.
    let seed = args.get_u64("seed", 2017);
    let mut manifest = args.init_metrics("table3_contrib", seed);

    eprintln!("table3: leave-one-out over 16 features x {workloads} workloads ({threads} threads)");
    let rows = feature_table::run(workloads, instructions, seed);

    let report_phase = mrp_obs::phase("report");
    let mut sink = args.report_sink();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.feature.clone(),
                format!("{:.2}", r.mpki_without),
                format!("{:.2}", r.mpki_with),
                format!("{:.2}%", r.percent_increase),
            ]
        })
        .collect();
    sink.table(
        "table3_contrib",
        &["workload", "feature", "MPKI w/o", "MPKI with", "increase"],
        &rendered,
    );
    sink.comment("paper's headline row: pc(15,14,32,6,0) improves an mcf simpoint by 18.88%");

    if let Some(m) = manifest.as_mut() {
        m.meta("threads", Json::U64(threads as u64));
        m.meta("workloads", Json::U64(workloads as u64));
        m.meta("instructions", Json::U64(instructions));
        for r in &rows {
            m.cell(
                &r.workload,
                &r.feature,
                &[
                    ("mpki_without", r.mpki_without),
                    ("mpki_with", r.mpki_with),
                    ("percent_increase", r.percent_increase),
                ],
            );
        }
    }
    drop(report_phase);
    finish_manifest(manifest);
    ExitCode::SUCCESS
}

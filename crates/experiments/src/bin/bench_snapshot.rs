//! Machine-readable performance snapshot of the predictor hot path and
//! hierarchy throughput, for tracking the perf trajectory across PRs.
//!
//! Mirrors the `predictor_hot_path` and `hierarchy_throughput` criterion
//! groups but measures with `std::time` directly, so it runs in any
//! environment (CI artifact upload, offline containers) and emits one
//! JSON document instead of a criterion report.
//!
//! Usage: `bench_snapshot [--samples N] [--iters N] [--instructions N]
//! [--out PATH] [--metrics] [--manifest-dir DIR]` — medians are taken
//! across `--samples` repetitions. `--metrics` additionally writes the
//! same numbers as scalars in a JSONL run manifest.

use std::fmt::Write as _;
use std::time::Instant;

use mrp_cache::replay::LlcRecording;
use mrp_cache::{Cache, HierarchyConfig, ReplacementPolicy};
use mrp_core::context::FeatureContext;
use mrp_core::feature_sets;
use mrp_core::{FeaturePlan, MultiperspectivePredictor};
use mrp_cpu::{replay_single, SingleCoreSim};
use mrp_experiments::cli::Args;
use mrp_experiments::{finish_manifest, PolicyKind};
use mrp_obs::Json;
use mrp_trace::workloads;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    xs[xs.len() / 2]
}

/// Median ns/op of `f` run `iters` times, across `samples` repetitions.
fn median_ns_per_op<F: FnMut()>(samples: usize, iters: u64, mut f: F) -> f64 {
    let mut per_sample = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_sample.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    median(per_sample)
}

fn bench_index_16_features(samples: usize, iters: u64) -> f64 {
    let plan = FeaturePlan::new(&feature_sets::table_1a());
    let history: Vec<u64> = (0..18).map(|i| 0x40_0000 + i * 1357).collect();
    let mut out = Vec::with_capacity(16);
    let mut pc = 0x40_0000u64;
    median_ns_per_op(samples, iters, || {
        pc = pc.wrapping_add(4);
        let ctx = FeatureContext {
            pc,
            address: pc << 3,
            pc_history: &history,
            is_mru: pc.is_multiple_of(2),
            is_insert: pc.is_multiple_of(3),
            last_miss: pc.is_multiple_of(5),
        };
        plan.compute_offsets(&ctx, &mut out);
        std::hint::black_box(out.len());
    })
}

/// Ns/op of one index pass through `compute_offsets_with` at `level`.
fn bench_lane_level(level: mrp_core::SimdLevel, samples: usize, iters: u64) -> f64 {
    let plan = FeaturePlan::new(&feature_sets::table_1a());
    let history: Vec<u64> = (0..18).map(|i| 0x40_0000 + i * 1357).collect();
    let mut out = Vec::with_capacity(16);
    let mut pc = 0x40_0000u64;
    median_ns_per_op(samples, iters, || {
        pc = pc.wrapping_add(4);
        let ctx = FeatureContext {
            pc,
            address: pc << 3,
            pc_history: &history,
            is_mru: pc.is_multiple_of(2),
            is_insert: pc.is_multiple_of(3),
            last_miss: pc.is_multiple_of(5),
        };
        plan.compute_offsets_with(level, &ctx, &mut out);
        std::hint::black_box(out.len());
    })
}

/// Per-access ns of the batched front-end at `width` accesses per batch.
fn bench_batch_width(width: usize, samples: usize, iters: u64) -> f64 {
    let plan = FeaturePlan::new(&feature_sets::table_1a());
    let history: Vec<u64> = (0..18).map(|i| 0x40_0000 + i * 1357).collect();
    let ctxs: Vec<FeatureContext<'_>> = (0..width as u64)
        .map(|i| {
            let pc = 0x40_0000 + i * 4;
            FeatureContext {
                pc,
                address: pc.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                pc_history: &history,
                is_mru: i % 2 == 0,
                is_insert: i % 3 == 0,
                last_miss: i % 5 == 0,
            }
        })
        .collect();
    let mut out = Vec::with_capacity(width * 16);
    let batches = (iters / width as u64).max(1);
    median_ns_per_op(samples, batches, || {
        plan.compute_offsets_batch(&ctxs, &mut out);
        std::hint::black_box(out.len());
    }) / width as f64
}

fn bench_confidence_and_train(samples: usize, iters: u64) -> f64 {
    const LLC_SETS: u32 = 2048;
    let mut predictor = MultiperspectivePredictor::new(feature_sets::table_1a(), LLC_SETS, 64, 18);
    let history: Vec<u64> = (0..18).map(|i| 0x40_0000 + i * 1357).collect();
    let mut pc = 0x40_0000u64;
    let mut block = 0u64;
    // The fused per-access entry point: one offsets pass feeding both the
    // confidence gather and sampler training, as the production policies
    // drive it (the unbatched fallback path of the MPPPB window).
    median_ns_per_op(samples, iters, || {
        pc = pc.wrapping_add(4);
        block = block.wrapping_add(0x61c8_8646_80b5_83eb);
        let ctx = FeatureContext {
            pc,
            address: block << 6,
            pc_history: &history,
            is_mru: pc.is_multiple_of(2),
            is_insert: pc.is_multiple_of(3),
            last_miss: pc.is_multiple_of(5),
        };
        let confidence = predictor.access(&ctx, block as u32 % LLC_SETS, block);
        std::hint::black_box(confidence);
    })
}

/// Ns/event of the batched saturating weight-update kernel at the
/// dispatched SIMD level, on a 4096-event buffer with duplicate offsets
/// and mixed signs (one full sort-coalesce chunk).
fn bench_train_apply_batch(samples: usize, iters: u64) -> f64 {
    use mrp_core::simd::{self, ApplyScratch, GATHER_PAD};
    use mrp_core::tables::{WeightTables, WEIGHT_MAX, WEIGHT_MIN};

    const EVENTS: usize = 4096;
    let arena = WeightTables::new(&feature_sets::table_1a()).arena_len();
    let mut weights = vec![0i8; arena + GATHER_PAD];
    let mut scratch = ApplyScratch::default();
    let events: Vec<u32> = (0..EVENTS as u32)
        .map(|i| {
            let offset = (i.wrapping_mul(2654435761) >> 8) as usize % arena;
            ((offset as u32) << 1) | ((i / 7) & 1)
        })
        .collect();
    let batches = (iters / EVENTS as u64).max(1);
    median_ns_per_op(samples, batches, || {
        simd::apply_events_i8(
            &mut weights,
            &events,
            WEIGHT_MIN,
            WEIGHT_MAX,
            simd::level(),
            &mut scratch,
        );
        std::hint::black_box(weights[0]);
    }) / EVENTS as f64
}

/// Serving-fleet throughput: the default `mrp-serve` shape (16 tenants
/// on 4 shards, 64Ki accesses/round, MPPPB engines, confidence tracking
/// on). One fleet is built and warmed, then each sample reopens the
/// drain window and measures `rounds` steady-state rounds. Returns
/// `(drain, wall)` accesses/sec, taking the *best* drain sample: on a
/// shared single-core host, timing noise is one-sided (interference only
/// slows the measured thread), so the max is the least-biased estimate
/// of the sustained service rate. The wall rate — which also bills the
/// in-process simulated clients' traffic generation — is reported
/// unselected, for context.
fn bench_serve_fleet(samples: usize) -> (f64, f64) {
    use mrp_serve::{Fleet, FleetConfig};
    const WARMUP_ROUNDS: u64 = 30;
    const ROUNDS_PER_SAMPLE: u64 = 50;
    let mut config = FleetConfig::new(16, 4, 42);
    config.traffic.round_quota = 64 * 1024;
    let mut fleet = Fleet::new(config);
    fleet.run_rounds(WARMUP_ROUNDS);
    let mut best_drain = 0.0f64;
    for _ in 0..samples {
        fleet.reset_drain_window();
        fleet.run_rounds(ROUNDS_PER_SAMPLE);
        best_drain = best_drain.max(fleet.drain_accesses_per_sec());
    }
    (best_drain, fleet.wall_accesses_per_sec())
}

/// Median instructions/second simulating `instructions` under `kind`.
fn bench_hierarchy(kind: PolicyKind, samples: usize, instructions: u64) -> f64 {
    let mut per_sample = Vec::with_capacity(samples);
    for _ in 0..samples {
        let config = HierarchyConfig::single_thread();
        let mut sim = SingleCoreSim::new(
            config,
            kind.build(&config.llc),
            workloads::suite()[10].trace(1),
        );
        let start = Instant::now();
        std::hint::black_box(sim.run(0, instructions).mpki);
        per_sample.push(instructions as f64 / start.elapsed().as_secs_f64());
    }
    median(per_sample)
}

/// Fresh instances of all 13 registered policies (CLI names + Hawkeye).
fn all_policies(config: &HierarchyConfig) -> Vec<Box<dyn ReplacementPolicy + Send>> {
    let names = [
        "lru",
        "random",
        "plru",
        "srrip",
        "drrip",
        "mdpp",
        "ship",
        "sdbp",
        "perceptron",
        "mpppb",
        "mpppb-srrip",
        "mpppb-adaptive",
    ];
    let mut out: Vec<Box<dyn ReplacementPolicy + Send>> = names
        .iter()
        .map(|n| {
            PolicyKind::from_name(n)
                .expect("known policy")
                .build(&config.llc)
        })
        .collect();
    out.push(PolicyKind::hawkeye(&config.llc));
    out
}

/// Median wall-clock (ms) of a 13-policy single-workload sweep, both
/// ways: full simulation per policy vs record-once + replay-13 (the
/// recording cost is included in the replay time, as a cold driver pays
/// it). Returns `(full_ms, replay_ms)`; results are bit-identical, so
/// the ratio is pure speedup.
fn bench_replay_speedup(samples: usize, instructions: u64) -> (f64, f64) {
    let config = HierarchyConfig::single_thread();
    let workload = &workloads::suite()[10];
    let warmup = instructions / 5;
    let mut full_ms = Vec::with_capacity(samples);
    let mut replay_ms = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        let mut total = 0.0;
        for policy in all_policies(&config) {
            let mut sim = SingleCoreSim::new(config, policy, workload.trace(1));
            total += sim.run(warmup, instructions).mpki;
        }
        std::hint::black_box(total);
        full_ms.push(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let recording = LlcRecording::record(
            workload.name(),
            workload.trace(1),
            &config,
            warmup,
            instructions,
        );
        let mut total = 0.0;
        for policy in all_policies(&config) {
            let mut cache = Cache::new(config.llc, policy);
            total += replay_single(&recording, &mut cache, &config.latencies).mpki;
        }
        std::hint::black_box(total);
        replay_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    (median(full_ms), median(replay_ms))
}

fn main() {
    let args = Args::parse();
    let samples = args.get_usize("samples", 7).max(1);
    let iters = args.get_u64("iters", 2_000_000).max(1);
    let instructions = args.get_u64("instructions", 200_000).max(1);
    let out_path = args.get_str("out", "results/bench_snapshot.json");
    let mut manifest = args.init_metrics("bench_snapshot", 0);
    if let Some(m) = manifest.as_mut() {
        m.meta("samples", Json::U64(samples as u64));
        m.meta("hot_path_iters", Json::U64(iters));
        m.meta("hierarchy_instructions", Json::U64(instructions));
    }

    eprintln!("bench_snapshot: {samples} samples, {iters} hot-path iters/sample");

    let index_ns = bench_index_16_features(samples, iters);
    eprintln!("  predictor_hot_path/index_16_features: {index_ns:.1} ns/op");
    let train_ns = bench_confidence_and_train(samples, iters);
    eprintln!("  predictor_hot_path/confidence_and_train: {train_ns:.1} ns/op");
    let apply_ns = bench_train_apply_batch(samples, iters);
    eprintln!("  predictor_hot_path/train_apply_batch: {apply_ns:.2} ns/event");

    // Batched hot path: the scalar-vs-SIMD lane kernel pair and the
    // per-access cost of the batch front-end at widths 1/4/8. The
    // dispatched level is whatever `simd::level()` detected (subject to
    // MRP_NO_SIMD), recorded so snapshots from different machines or CI
    // legs are comparable.
    let detected = mrp_core::simd::level();
    let lane_scalar_ns = bench_lane_level(mrp_core::SimdLevel::Scalar, samples, iters);
    eprintln!("  batched_hot_path/lane_scalar: {lane_scalar_ns:.1} ns/op");
    let lane_simd_ns = if detected == mrp_core::SimdLevel::Scalar {
        lane_scalar_ns
    } else {
        bench_lane_level(detected, samples, iters)
    };
    eprintln!(
        "  batched_hot_path/lane_{}: {lane_simd_ns:.1} ns/op",
        detected.name()
    );
    let batch_widths = [1usize, 4, mrp_core::plan::MAX_BATCH];
    let batch_ns: Vec<f64> = batch_widths
        .iter()
        .map(|&w| {
            let ns = bench_batch_width(w, samples, iters);
            eprintln!("  batched_hot_path/batch_{w}: {ns:.1} ns/access");
            ns
        })
        .collect();

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"mrp-bench-snapshot-v1\",");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"hot_path_iters\": {iters},");
    let _ = writeln!(json, "  \"hierarchy_instructions\": {instructions},");
    let _ = writeln!(json, "  \"predictor_hot_path\": {{");
    let _ = writeln!(
        json,
        "    \"index_16_features\": {{ \"median_ns_per_op\": {index_ns:.3} }},"
    );
    let _ = writeln!(
        json,
        "    \"confidence_and_train\": {{ \"median_ns_per_op\": {train_ns:.3} }},"
    );
    let _ = writeln!(
        json,
        "    \"train_apply_batch\": {{ \"median_ns_per_event\": {apply_ns:.3} }}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"batched_hot_path\": {{");
    let _ = writeln!(json, "    \"simd_level\": \"{}\",", detected.name());
    let _ = writeln!(
        json,
        "    \"lane_scalar\": {{ \"median_ns_per_op\": {lane_scalar_ns:.3} }},"
    );
    let _ = writeln!(
        json,
        "    \"lane_dispatched\": {{ \"median_ns_per_op\": {lane_simd_ns:.3} }},"
    );
    for (i, (&w, ns)) in batch_widths.iter().zip(&batch_ns).enumerate() {
        let comma = if i + 1 < batch_widths.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"batch_{w}\": {{ \"median_ns_per_access\": {ns:.3} }}{comma}"
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"hierarchy_throughput\": {{");
    let kinds = [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::MpppbSingle];
    for (i, kind) in kinds.iter().enumerate() {
        let ips = bench_hierarchy(*kind, samples, instructions);
        eprintln!(
            "  hierarchy_throughput/{}: {ips:.0} instructions/sec",
            kind.name()
        );
        let comma = if i + 1 < kinds.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"instructions_per_sec\": {ips:.1} }}{comma}",
            kind.name()
        );
        if let Some(m) = manifest.as_mut() {
            m.scalar(
                &format!("hierarchy_throughput.{}.instructions_per_sec", kind.name()),
                ips,
            );
        }
    }
    let _ = writeln!(json, "  }},");

    let (serve_drain, serve_wall) = bench_serve_fleet(samples.min(3));
    eprintln!(
        "  serve_fleet: {:.1}M accesses/sec drain aggregate ({:.1}M/s wall incl. traffic gen)",
        serve_drain / 1e6,
        serve_wall / 1e6
    );
    let _ = writeln!(json, "  \"serve_fleet\": {{");
    let _ = writeln!(json, "    \"tenants\": 16,");
    let _ = writeln!(json, "    \"shards\": 4,");
    let _ = writeln!(json, "    \"round_quota\": 65536,");
    let _ = writeln!(json, "    \"drain_accesses_per_sec\": {serve_drain:.1},");
    let _ = writeln!(json, "    \"wall_accesses_per_sec\": {serve_wall:.1}");
    let _ = writeln!(json, "  }},");

    let (full_ms, replay_ms) = bench_replay_speedup(samples, instructions);
    let ratio = full_ms / replay_ms;
    eprintln!(
        "  replay_speedup/full_sim_13_policies: {full_ms:.1} ms, \
         record_and_replay_13_policies: {replay_ms:.1} ms ({ratio:.2}x)"
    );
    let _ = writeln!(json, "  \"replay_speedup\": {{");
    let _ = writeln!(
        json,
        "    \"full_sim_13_policies\": {{ \"median_ms\": {full_ms:.3} }},"
    );
    let _ = writeln!(
        json,
        "    \"record_and_replay_13_policies\": {{ \"median_ms\": {replay_ms:.3} }},"
    );
    let _ = writeln!(json, "    \"speedup\": {ratio:.3}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("{json}");
    eprintln!("snapshot written to {out_path}");

    if let Some(m) = manifest.as_mut() {
        m.scalar(
            "predictor_hot_path.index_16_features.median_ns_per_op",
            index_ns,
        );
        m.scalar(
            "predictor_hot_path.confidence_and_train.median_ns_per_op",
            train_ns,
        );
        m.scalar(
            "predictor_hot_path.train_apply_batch.median_ns_per_event",
            apply_ns,
        );
        m.meta("simd_level", Json::Str(detected.name().to_string()));
        m.scalar(
            "batched_hot_path.lane_scalar.median_ns_per_op",
            lane_scalar_ns,
        );
        m.scalar(
            "batched_hot_path.lane_dispatched.median_ns_per_op",
            lane_simd_ns,
        );
        for (&w, ns) in batch_widths.iter().zip(&batch_ns) {
            m.scalar(
                &format!("batched_hot_path.batch_{w}.median_ns_per_access"),
                *ns,
            );
        }
        m.scalar("serve_fleet.drain_accesses_per_sec", serve_drain);
        m.scalar("serve_fleet.wall_accesses_per_sec", serve_wall);
        m.scalar("replay_speedup.full_sim_13_policies.median_ms", full_ms);
        m.scalar(
            "replay_speedup.record_and_replay_13_policies.median_ms",
            replay_ms,
        );
        m.scalar("replay_speedup.speedup", ratio);
    }
    finish_manifest(manifest);
}

//! Development diagnostic: mean LLC MPKI ratio vs. LRU for every policy
//! on identical recorded LLC streams (fast, no timing model).
//!
//! Usage: `cargo run -p mrp-experiments --release --bin dev_policy_ratio --
//! [--workloads N] [--instructions N] [--seed N] [--threads N]
//! [--metrics] [--manifest-dir DIR]`

use mrp_baselines::{Hawkeye, MinPolicy, PerceptronPolicy, Sdbp, Ship};
use mrp_cache::policies::{Drrip, Lru, Mdpp, MdppConfig, Srrip};
use mrp_cache::Cache;
use mrp_core::mpppb::{Mpppb, MpppbConfig};
use mrp_trace::workloads;

use mrp_experiments::{finish_manifest, Args};
use mrp_obs::Json;

fn main() {
    let args = Args::parse();
    args.init_runtime_options();
    let workload_count = args.get_usize("workloads", 14);
    let instructions = args.get_u64("instructions", 2_000_000);
    let seed = args.get_u64("seed", 17);
    let mut manifest = args.init_metrics("dev_policy_ratio", seed);

    let suite = workloads::suite();
    let half = args.get_str("half", "a");
    let (half_a, half_b) = mrp_search::crossval::split(&suite, seed);
    let pool = match half.as_str() {
        "a" => half_a,
        "b" => half_b,
        _ => suite.clone(),
    };
    let selected: Vec<_> = pool.into_iter().take(workload_count).collect();
    eprintln!(
        "workloads: {}",
        selected
            .iter()
            .map(|w| w.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let evaluator = mrp_experiments::recording::fast_evaluator(&selected, seed, instructions);
    let lru = evaluator.lru_mpkis().to_vec();

    let ratio = |mpkis: &[f64]| -> f64 {
        mpkis
            .iter()
            .zip(&lru)
            .map(|(&m, &l)| (m + 0.05) / (l + 0.05))
            .sum::<f64>()
            / mpkis.len() as f64
    };

    let mut ratios: Vec<(String, f64)> = Vec::new();
    let mut run = |name: &str,
                   build: &mut dyn FnMut(
        &mrp_cache::CacheConfig,
        &mrp_search::LlcTrace,
    ) -> Box<dyn mrp_cache::ReplacementPolicy + Send>| {
        let llc = *evaluator.llc();
        let mpkis: Vec<f64> = evaluator
            .traces()
            .iter()
            .map(|t| {
                let mut cache = Cache::new(llc, build(&llc, t));
                t.replay(&mut cache)
            })
            .collect();
        let r = ratio(&mpkis);
        println!("{name:<16} ratio {r:.4}");
        ratios.push((name.to_string(), r));
    };

    run("LRU", &mut |llc, _| {
        Box::new(Lru::new(llc.sets(), llc.associativity()))
    });
    run("SRRIP", &mut |llc, _| {
        Box::new(Srrip::new(llc.sets(), llc.associativity()))
    });
    run("DRRIP", &mut |llc, _| {
        Box::new(Drrip::new(llc.sets(), llc.associativity(), 1))
    });
    run("MDPP", &mut |llc, _| {
        Box::new(Mdpp::new(
            llc.sets(),
            llc.associativity(),
            MdppConfig::default(),
        ))
    });
    run("SHiP", &mut |llc, _| Box::new(Ship::new(llc)));
    run("SDBP", &mut |llc, _| Box::new(Sdbp::new(llc, 64)));
    run("Perceptron", &mut |llc, _| {
        Box::new(PerceptronPolicy::new(llc, 160))
    });
    run("Hawkeye", &mut |llc, _| Box::new(Hawkeye::new(llc, 64)));
    run("MPPPB(cfg-A)", &mut |llc, _| {
        Box::new(Mpppb::new(MpppbConfig::single_thread(llc), llc))
    });
    run("MPPPB(cfg-B)", &mut |llc, _| {
        Box::new(Mpppb::new(MpppbConfig::single_thread_alt(llc), llc))
    });
    run("MPPPB(adapt)", &mut |llc, _| {
        Box::new(mrp_core::AdaptiveMpppb::new(
            MpppbConfig::single_thread(llc),
            llc,
        ))
    });
    run("MIN", &mut |llc, t| {
        Box::new(MinPolicy::new(llc, &t.blocks()))
    });

    if let Some(m) = manifest.as_mut() {
        m.meta("half", Json::Str(half.clone()));
        m.meta("instructions", Json::U64(instructions));
        for (name, r) in &ratios {
            m.cell("mean", name, &[("mpki_ratio_vs_lru", *r)]);
        }
    }
    finish_manifest(manifest);
}

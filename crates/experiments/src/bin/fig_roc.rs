//! Figures 1 and 8: ROC curves for SDBP, Perceptron, Multiperspective.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin fig_roc --
//! [--warmup N] [--measure N] [--workloads N] [--seed N] [--threads N]
//! [--no-replay]`
//!
//! Each workload records once and every predictor probe replays the
//! shared stream; `--no-replay` re-simulates each (predictor × workload)
//! cell instead.

use mrp_experiments::roc;
use mrp_experiments::runner::StParams;
use mrp_experiments::Args;

fn main() {
    let args = Args::parse();
    let threads = args.init_threads();
    args.init_replay();
    let params = StParams {
        warmup: args.get_u64("warmup", 2_000_000),
        measure: args.get_u64("measure", 10_000_000),
        seed: args.get_u64("seed", 1),
    };
    let workloads = args.get_usize("workloads", 33);

    eprintln!("fig_roc: measuring predictor accuracy on {workloads} workloads ({threads} threads)");
    let curves = roc::run(params, workloads);

    for curve in &curves {
        println!("# ROC: {} (threshold  FPR  TPR)", curve.predictor);
        for &(t, fpr, tpr) in &curve.points {
            // Trim the flat tails for readability.
            if fpr > 0.001 && fpr < 0.999 {
                println!("{t:5}  {fpr:.4}  {tpr:.4}");
            }
        }
        println!();
    }

    println!("# Fig 8(b) inset: TPR in the bypass-relevant FPR region (paper: multiperspective dominates at 0.25-0.31)");
    println!(
        "{:<18} {:>10} {:>10} {:>10}",
        "predictor", "TPR@0.25", "TPR@0.28", "TPR@0.31"
    );
    for curve in &curves {
        println!(
            "{:<18} {:>10.3} {:>10.3} {:>10.3}",
            curve.predictor,
            curve.tpr_at_fpr(0.25),
            curve.tpr_at_fpr(0.28),
            curve.tpr_at_fpr(0.31)
        );
    }
}

//! Figures 1 and 8: ROC curves for SDBP, Perceptron, Multiperspective.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin fig_roc --
//! [--warmup N] [--measure N] [--workloads N] [--seed N] [--threads N]
//! [--no-replay] [--format text|tsv|jsonl] [--metrics] [--manifest-dir DIR]`
//!
//! Each workload records once and every predictor probe replays the
//! shared stream; `--no-replay` re-simulates each (predictor × workload)
//! cell instead.

use mrp_experiments::roc;
use mrp_experiments::{finish_manifest, Args, RunScale};
use mrp_obs::Json;

fn main() {
    let args = Args::parse();
    let threads = args.init_runtime_options();
    args.init_replay();
    let scale = args.run_scale(
        RunScale::single_thread()
            .warmup(2_000_000)
            .measure(10_000_000),
    );
    let mut manifest = args.init_metrics("fig_roc", scale.seed);
    let workloads = args.get_usize("workloads", 33);

    eprintln!("fig_roc: measuring predictor accuracy on {workloads} workloads ({threads} threads)");
    let curves = roc::run(scale.st(), workloads);

    let report_phase = mrp_obs::phase("report");
    let mut sink = args.report_sink();
    for curve in &curves {
        let rows: Vec<Vec<String>> = curve
            .points
            .iter()
            // Trim the flat tails for readability.
            .filter(|&&(_, fpr, _)| fpr > 0.001 && fpr < 0.999)
            .map(|&(t, fpr, tpr)| vec![t.to_string(), format!("{fpr:.4}"), format!("{tpr:.4}")])
            .collect();
        sink.table(
            &format!("roc.{}", curve.predictor),
            &["threshold", "FPR", "TPR"],
            &rows,
        );
    }

    sink.comment("Fig 8(b) inset: TPR in the bypass-relevant FPR region (paper: multiperspective dominates at 0.25-0.31)");
    let inset: Vec<Vec<String>> = curves
        .iter()
        .map(|curve| {
            vec![
                curve.predictor.clone(),
                format!("{:.3}", curve.tpr_at_fpr(0.25)),
                format!("{:.3}", curve.tpr_at_fpr(0.28)),
                format!("{:.3}", curve.tpr_at_fpr(0.31)),
            ]
        })
        .collect();
    sink.table(
        "roc_inset",
        &["predictor", "TPR@0.25", "TPR@0.28", "TPR@0.31"],
        &inset,
    );

    if let Some(m) = manifest.as_mut() {
        m.meta("threads", Json::U64(threads as u64));
        m.meta("workloads", Json::U64(workloads as u64));
        for curve in &curves {
            m.cell(
                "all",
                &curve.predictor,
                &[
                    ("tpr_at_fpr_0.25", curve.tpr_at_fpr(0.25)),
                    ("tpr_at_fpr_0.28", curve.tpr_at_fpr(0.28)),
                    ("tpr_at_fpr_0.31", curve.tpr_at_fpr(0.31)),
                ],
            );
        }
    }
    drop(report_phase);
    finish_manifest(manifest);
}

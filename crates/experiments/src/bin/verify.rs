//! Differential verification driver: lockstep shadow models, simulation
//! invariants, and the MIN oracle bound over fuzzed traces.
//!
//! Usage: `cargo run -p mrp-experiments --release --bin verify --
//! [--seed N] [--accesses N] [--jobs N] [--policies lru,srrip,...|all]
//! [--threads N] [--replay-workloads N] [--replay-warmup N]
//! [--replay-measure N] [--metrics] [--manifest-dir DIR]`
//!
//! Exits nonzero on any divergence, printing the bounded divergence
//! report and a shrunk reproducer. Any failure reproduces from the
//! printed seed alone: `verify --seed N` replays identical streams
//! regardless of thread count.
//!
//! Besides the fuzzed lockstep sweep, every selected policy is also
//! checked through the record-once/replay-many path on real workloads
//! (`--replay-workloads`, 0 to skip): full simulation and replay must
//! agree bit for bit on IPC, MPKI, cycles, and every hierarchy counter.

use std::process::ExitCode;
use std::sync::Arc;

use mrp_cache::CacheConfig;
use mrp_experiments::{finish_manifest, Args, PolicyKind};
use mrp_obs::Json;
use mrp_trace::workloads;
use mrp_verify::{run_replay_check, run_verification, PolicySpec, VerifyConfig};

/// Every policy the experiments register, in CLI naming.
const ALL_POLICIES: [&str; 13] = [
    "lru",
    "random",
    "plru",
    "srrip",
    "drrip",
    "mdpp",
    "ship",
    "sdbp",
    "perceptron",
    "mpppb",
    "mpppb-srrip",
    "mpppb-adaptive",
    "hawkeye",
];

fn spec(name: &str) -> PolicySpec {
    if name == "hawkeye" {
        return PolicySpec::new(name, Arc::new(|llc: &CacheConfig| PolicyKind::hawkeye(llc)));
    }
    let kind = PolicyKind::from_name(name)
        .unwrap_or_else(|| panic!("unknown policy {name:?}; known: {ALL_POLICIES:?}"));
    PolicySpec::new(name, Arc::new(move |llc: &CacheConfig| kind.build(llc)))
}

fn main() -> ExitCode {
    let args = Args::parse();
    let threads = args.init_runtime_options();
    let cfg = VerifyConfig {
        seed: args.get_u64("seed", 42),
        accesses: args.get_usize("accesses", 1_000_000),
        jobs: args.get_usize("jobs", 8),
    };
    let mut manifest = args.init_metrics("verify", cfg.seed);
    let selection = args.get_str("policies", "all");
    let names: Vec<&str> = if selection == "all" {
        ALL_POLICIES.to_vec()
    } else {
        selection.split(',').map(str::trim).collect()
    };
    let policies: Vec<PolicySpec> = names.iter().map(|n| spec(n)).collect();

    eprintln!(
        "verify: seed {} / {} accesses over {} jobs x {} policies on {threads} threads",
        cfg.seed,
        cfg.accesses,
        cfg.jobs,
        policies.len()
    );
    let summary = run_verification(&cfg, &policies);

    println!(
        "# verify seed={} jobs={} accesses/job={}",
        summary.seed, summary.jobs, summary.accesses_per_job
    );
    for name in &names {
        let cells: Vec<_> = summary
            .policy_cells
            .iter()
            .filter(|c| c.policy == *name)
            .collect();
        let divergences: usize = cells.iter().map(|c| c.report.total).sum();
        let misses: u64 = cells.iter().map(|c| c.demand_misses).sum();
        let status = if divergences == 0 { "ok" } else { "FAIL" };
        println!(
            "{name:>16}  {status:>4}  {divergences:>4} divergences  {misses:>9} demand misses"
        );
        if let Some(m) = manifest.as_mut() {
            m.cell(
                "fuzz",
                name,
                &[
                    ("divergences", divergences as f64),
                    ("demand_misses", misses as f64),
                ],
            );
        }
    }
    let predictor_divergences: usize = summary.predictor_reports.iter().map(|r| r.total).sum();
    println!(
        "{:>16}  {:>4}  {predictor_divergences:>4} divergences",
        "predictor",
        if predictor_divergences == 0 {
            "ok"
        } else {
            "FAIL"
        }
    );
    let kernel_divergences: usize = summary.kernel_reports.iter().map(|r| r.total).sum();
    println!(
        "{:>16}  {:>4}  {kernel_divergences:>4} divergences",
        "kernels",
        if kernel_divergences == 0 {
            "ok"
        } else {
            "FAIL"
        }
    );
    let train_kernel_divergences: usize =
        summary.train_kernel_reports.iter().map(|r| r.total).sum();
    println!(
        "{:>16}  {:>4}  {train_kernel_divergences:>4} divergences",
        "train-kernel",
        if train_kernel_divergences == 0 {
            "ok"
        } else {
            "FAIL"
        }
    );
    println!(
        "# MIN bound applied to {} of {} policy cells (prefetch jobs excluded)",
        summary.min_checks.0, summary.min_checks.1
    );

    // Phase: record/replay equivalence on real workloads.
    let replay_workloads = args.get_usize("replay-workloads", 3);
    let replay_clean = if replay_workloads == 0 {
        true
    } else {
        let suite = workloads::suite();
        let selected = &suite[..replay_workloads.min(suite.len())];
        let replay = run_replay_check(
            &policies,
            selected,
            args.get_u64("replay-warmup", 50_000),
            args.get_u64("replay-measure", 200_000),
            cfg.seed,
        );
        println!(
            "{:>16}  {:>4}  {}",
            "replay",
            if replay.is_clean() { "ok" } else { "FAIL" },
            replay
        );
        if !replay.is_clean() {
            eprintln!("\nreplay equivalence failures:\n{replay}");
        }
        replay.is_clean()
    };

    if let Some(m) = manifest.as_mut() {
        m.meta("jobs", Json::U64(summary.jobs as u64));
        m.meta(
            "accesses_per_job",
            Json::U64(summary.accesses_per_job as u64),
        );
        m.meta("min_checks", Json::U64(summary.min_checks.0 as u64));
        m.scalar("predictor_divergences", predictor_divergences as f64);
        m.scalar("kernel_divergences", kernel_divergences as f64);
        m.scalar("train_kernel_divergences", train_kernel_divergences as f64);
        m.scalar("total_divergences", summary.total_divergences() as f64);
        m.scalar("replay_clean", if replay_clean { 1.0 } else { 0.0 });
    }

    if summary.is_clean() && replay_clean {
        println!("# clean: optimized and reference models agreed on every access");
        finish_manifest(manifest);
        return ExitCode::SUCCESS;
    }
    if summary.is_clean() {
        finish_manifest(manifest);
        return ExitCode::FAILURE;
    }

    eprintln!("\n{} divergence(s) found:", summary.total_divergences());
    for cell in summary.policy_cells.iter().filter(|c| !c.report.is_clean()) {
        eprintln!(
            "--- policy {} job {}:\n{}",
            cell.policy, cell.job, cell.report
        );
    }
    for (job, report) in summary
        .predictor_reports
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_clean())
    {
        eprintln!("--- predictor job {job}:\n{report}");
    }
    for (job, report) in summary
        .kernel_reports
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_clean())
    {
        eprintln!("--- kernels job {job}:\n{report}");
    }
    for (job, report) in summary
        .train_kernel_reports
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_clean())
    {
        eprintln!("--- train-kernel job {job}:\n{report}");
    }
    if let Some(shrunk) = &summary.shrunk {
        eprintln!("\n{shrunk}");
    }
    finish_manifest(manifest);
    ExitCode::FAILURE
}

//! Figure 5: MPKI S-curves for 4-core mixes (log-scale y in the paper).
//!
//! Usage: `cargo run -p mrp-experiments --release --bin fig5_mp_mpki --
//! [--warmup N] [--measure N] [--mixes N] [--seed N] [--threads N]`

use mrp_experiments::multi;
use mrp_experiments::output::s_curve;
use mrp_experiments::runner::MpParams;
use mrp_experiments::Args;

fn main() {
    let args = Args::parse();
    let threads = args.init_threads();
    let params = MpParams {
        warmup: args.get_u64("warmup", 2_000_000),
        measure: args.get_u64("measure", 8_000_000),
    };
    let mixes = args.get_usize("mixes", 32);
    let seed = args.get_u64("seed", 42);

    eprintln!("fig5: running {mixes} 4-core mixes on {threads} threads");
    let matrix = multi::run(params, mixes, 16, seed);

    print!("{}", s_curve("LRU", matrix.mpkis("LRU"), false, 30));
    for name in &matrix.policy_names {
        print!("{}", s_curve(name, matrix.mpkis(name), false, 30));
    }

    println!(
        "\narithmetic mean MPKI (paper: LRU 14.1, Perceptron 12.49, Hawkeye 11.72, MPPPB 10.97):"
    );
    println!("  {:<12} {:.2}", "LRU", matrix.mean_mpki("LRU"));
    for name in &matrix.policy_names {
        println!("  {:<12} {:.2}", name, matrix.mean_mpki(name));
    }
}

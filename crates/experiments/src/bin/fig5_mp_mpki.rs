//! Figure 5: MPKI S-curves for 4-core mixes (log-scale y in the paper).
//!
//! Usage: `cargo run -p mrp-experiments --release --bin fig5_mp_mpki --
//! [--warmup N] [--measure N] [--mixes N] [--seed N] [--threads N]
//! [--format text|tsv|jsonl] [--metrics] [--manifest-dir DIR]`

use mrp_experiments::multi;
use mrp_experiments::output::series_points;
use mrp_experiments::{finish_manifest, Args, RunScale};
use mrp_obs::Json;

fn main() {
    let args = Args::parse();
    let threads = args.init_runtime_options();
    let scale = args.run_scale(RunScale::multi_core());
    let mut manifest = args.init_metrics("fig5_mp_mpki", scale.seed);
    let mixes = args.get_usize("mixes", 32);

    eprintln!("fig5: running {mixes} 4-core mixes on {threads} threads");
    let matrix = multi::run(scale.mp(), mixes, 16, scale.seed);

    let report_phase = mrp_obs::phase("report");
    let mut sink = args.report_sink();
    sink.series("LRU", &series_points(matrix.mpkis("LRU"), false, 30));
    for name in &matrix.policy_names {
        sink.series(name, &series_points(matrix.mpkis(name), false, 30));
    }

    sink.comment(
        "arithmetic mean MPKI (paper: LRU 14.1, Perceptron 12.49, Hawkeye 11.72, MPPPB 10.97):",
    );
    let lru_mean = matrix.mean_mpki("LRU");
    sink.scalar("mean_mpki.LRU", lru_mean, &format!("{lru_mean:.2}"));
    for name in &matrix.policy_names {
        let mean = matrix.mean_mpki(name);
        sink.scalar(&format!("mean_mpki.{name}"), mean, &format!("{mean:.2}"));
    }

    if let Some(m) = manifest.as_mut() {
        m.meta("threads", Json::U64(threads as u64));
        m.meta("mixes", Json::U64(matrix.rows.len() as u64));
        for r in &matrix.rows {
            for (name, mpki) in &r.mpkis {
                m.cell(&r.label, name, &[("mpki", *mpki)]);
            }
        }
        m.scalar("mean_mpki.LRU", lru_mean);
        for name in &matrix.policy_names {
            m.scalar(&format!("mean_mpki.{name}"), matrix.mean_mpki(name));
        }
    }
    drop(report_phase);
    finish_manifest(manifest);
}

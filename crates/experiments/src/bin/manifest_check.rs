//! Validates every JSONL run manifest in a directory against the
//! `mrp-run-manifest-v1` schema. CI runs this after the smoke drivers so
//! a malformed manifest fails the build instead of silently rotting in
//! the uploaded artifact.
//!
//! Usage: `manifest_check [--dir runs]`
//!
//! Exits nonzero if the directory is missing, holds no `*.jsonl` files,
//! or any manifest fails validation; prints one summary line per file.

use std::path::Path;
use std::process::ExitCode;

use mrp_experiments::Args;

fn main() -> ExitCode {
    let args = Args::parse();
    let dir = args.get_str("dir", "runs");
    let summaries = match mrp_obs::validate_dir(Path::new(&dir)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("manifest_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    if summaries.is_empty() {
        eprintln!("manifest_check: no *.jsonl manifests in {dir}");
        return ExitCode::FAILURE;
    }
    for (file, s) in &summaries {
        println!(
            "{file}: ok ({} from {}: {} cells, {} scalars, {} phases, {} counters)",
            s.schema, s.bin, s.cells, s.scalars, s.phases, s.counters
        );
    }
    println!("# {} manifest(s) valid", summaries.len());
    ExitCode::SUCCESS
}

//! CI gate binary: run-manifest schema validation plus the bench
//! snapshot regression gate.
//!
//! **Manifest mode** (default): validates every JSONL run manifest in a
//! directory against the `mrp-run-manifest-v1` schema. CI runs this
//! after the smoke drivers so a malformed manifest fails the build
//! instead of silently rotting in the uploaded artifact.
//!
//! **Journal mode** (`--journal FILE`): validates an orchestrator
//! campaign journal against the `mrp-orchestrate-journal-v1` schema
//! (clean journals only — a truncated tail means a campaign died and
//! was never resumed, which CI should flag).
//!
//! **Campaign mode** (`--campaign FILE`): validates an aggregated
//! campaign manifest against the `mrp-campaign-manifest-v1` schema.
//!
//! **Fleet mode** (`--fleet FILE`): validates a serving-fleet manifest
//! against the `mrp-fleet-manifest-v1` schema and fails if any shard
//! processed no accesses (the `serve --smoke` CI contract).
//!
//! **Bench-gate mode** (`--bench-gate FRESH.json`): diffs a freshly
//! measured `bench_snapshot` document against the committed baseline
//! (`--bench-baseline`, default `results/bench_snapshot.json`) and exits
//! nonzero when a gated metric regressed beyond the tolerance
//! (`--tolerance-pct`, default 15). Gated metrics: the predictor hot
//! path (`index_16_features`, `confidence_and_train`, and — once the
//! baseline records it — `train_apply_batch`; higher ns is worse) and
//! per-policy hierarchy throughput (lower instructions/sec is worse).
//! The replay speedup is gated against the absolute
//! [`REPLAY_SPEEDUP_FLOOR`] instead of a relative tolerance — the
//! committed ratio drifts with machine load, but the record/replay
//! design claim is "at least this much", and this constant is the
//! single source of truth for it. Other fields (lane kernels, batch
//! widths) are informational: they vary with the detected SIMD level
//! and machine, and the gated metrics already cover their sum.
//! `--bless` re-anchors: the fresh snapshot overwrites the baseline and
//! the gate passes, for intentional perf-profile changes.
//!
//! Usage: `manifest_check [--dir runs]`
//!        `manifest_check --fleet runs/fleet.json`
//!        `manifest_check --journal runs/ci-campaign/journal.jsonl`
//!        `manifest_check --campaign runs/ci-campaign/campaign.jsonl`
//!        `manifest_check --bench-gate results/bench_fresh.json
//!          [--bench-baseline results/bench_snapshot.json]
//!          [--tolerance-pct 15] [--bless]`

use std::path::Path;
use std::process::ExitCode;

use mrp_experiments::Args;
use mrp_obs::Json;

/// Minimum acceptable `replay_speedup.speedup` in a fresh snapshot: the
/// record-once/replay-many fast path must stay at least this much
/// faster than 13 full simulations. The floor (not the committed ratio,
/// which drifts with machine noise) is the design claim CI enforces.
const REPLAY_SPEEDUP_FLOOR: f64 = 4.0;

/// Minimum acceptable `serve_fleet.drain_accesses_per_sec` in a fresh
/// snapshot. The recorded capability on this host is ≥10M accesses/sec
/// aggregate; the CI floor sits 20% under it so one noisy shared-host
/// run doesn't flake the build, while a real regression of the serving
/// drain path still trips it.
const SERVE_DRAIN_FLOOR: f64 = 8.0e6;

/// One gated metric: where it lives and which direction is a regression.
struct GatedMetric {
    /// Dotted display name (`hierarchy_throughput.MPPPB.instructions_per_sec`).
    name: String,
    /// Path through the JSON objects.
    path: Vec<String>,
    /// `true` for ns/op metrics, `false` for throughput.
    higher_is_worse: bool,
}

/// Looks up a nested numeric field.
fn metric(doc: &Json, path: &[String]) -> Option<f64> {
    let mut cur = doc;
    for key in path {
        cur = cur.get(key)?;
    }
    cur.as_f64()
}

/// The gate set for a given baseline document: the two predictor
/// hot-path metrics plus one throughput metric per policy the baseline
/// recorded (so adding a policy to `bench_snapshot` auto-extends the
/// gate once blessed).
fn gated_metrics(baseline: &Json) -> Vec<GatedMetric> {
    let mut out = vec![
        GatedMetric {
            name: "predictor_hot_path.index_16_features.median_ns_per_op".into(),
            path: vec![
                "predictor_hot_path".into(),
                "index_16_features".into(),
                "median_ns_per_op".into(),
            ],
            higher_is_worse: true,
        },
        GatedMetric {
            name: "predictor_hot_path.confidence_and_train.median_ns_per_op".into(),
            path: vec![
                "predictor_hot_path".into(),
                "confidence_and_train".into(),
                "median_ns_per_op".into(),
            ],
            higher_is_worse: true,
        },
    ];
    // Gated once the baseline records it (pre-existing baselines from
    // before the train-apply kernel existed stay valid until blessed).
    let train_apply_path = [
        "predictor_hot_path".to_string(),
        "train_apply_batch".to_string(),
        "median_ns_per_event".to_string(),
    ];
    if metric(baseline, &train_apply_path).is_some() {
        out.push(GatedMetric {
            name: "predictor_hot_path.train_apply_batch.median_ns_per_event".into(),
            path: train_apply_path.to_vec(),
            higher_is_worse: true,
        });
    }
    if let Some(Json::Obj(policies)) = baseline.get("hierarchy_throughput") {
        for (policy, _) in policies {
            out.push(GatedMetric {
                name: format!("hierarchy_throughput.{policy}.instructions_per_sec"),
                path: vec![
                    "hierarchy_throughput".into(),
                    policy.clone(),
                    "instructions_per_sec".into(),
                ],
                higher_is_worse: false,
            });
        }
    }
    out
}

/// Compares fresh against baseline; returns regression descriptions
/// (empty = gate passes) or an error when a document is malformed.
fn bench_gate(baseline: &Json, fresh: &Json, tolerance_pct: f64) -> Result<Vec<String>, String> {
    let tol = tolerance_pct / 100.0;
    let mut failures = Vec::new();
    for m in gated_metrics(baseline) {
        let base = metric(baseline, &m.path)
            .ok_or_else(|| format!("baseline snapshot missing numeric field {}", m.name))?;
        let new = metric(fresh, &m.path)
            .ok_or_else(|| format!("fresh snapshot missing numeric field {}", m.name))?;
        let (regressed, change_pct) = if m.higher_is_worse {
            (new > base * (1.0 + tol), (new / base - 1.0) * 100.0)
        } else {
            (new < base * (1.0 - tol), (1.0 - new / base) * 100.0)
        };
        let verdict = if regressed { "REGRESSED" } else { "ok" };
        println!(
            "{}: {base:.3} -> {new:.3} ({change_pct:+.1}% {}) {verdict}",
            m.name,
            if m.higher_is_worse { "slower" } else { "loss" },
        );
        if regressed {
            failures.push(format!(
                "{} regressed {change_pct:.1}% (baseline {base:.3}, fresh {new:.3}, \
                 tolerance {tolerance_pct:.0}%)",
                m.name
            ));
        }
    }
    // Absolute floor on the replay speedup, applied whenever the
    // baseline records one (the tolerance diff above does not cover it:
    // the ratio is noisy, the floor is the actual claim).
    let speedup_path = ["replay_speedup".to_string(), "speedup".to_string()];
    if metric(baseline, &speedup_path).is_some() {
        let speedup = metric(fresh, &speedup_path).ok_or_else(|| {
            "fresh snapshot missing numeric field replay_speedup.speedup".to_string()
        })?;
        let ok = speedup >= REPLAY_SPEEDUP_FLOOR;
        println!(
            "replay_speedup.speedup: {speedup:.3} (floor {REPLAY_SPEEDUP_FLOOR:.1}) {}",
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            failures.push(format!(
                "replay_speedup.speedup {speedup:.3} fell below the {REPLAY_SPEEDUP_FLOOR:.1}x \
                 floor"
            ));
        }
    }
    // Same shape for the serving fleet: an absolute floor on the drain
    // rate, applied whenever the baseline records the serve_fleet row.
    let drain_path = [
        "serve_fleet".to_string(),
        "drain_accesses_per_sec".to_string(),
    ];
    if metric(baseline, &drain_path).is_some() {
        let drain = metric(fresh, &drain_path).ok_or_else(|| {
            "fresh snapshot missing numeric field serve_fleet.drain_accesses_per_sec".to_string()
        })?;
        let ok = drain >= SERVE_DRAIN_FLOOR;
        println!(
            "serve_fleet.drain_accesses_per_sec: {drain:.0} (floor {SERVE_DRAIN_FLOOR:.0}) {}",
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            failures.push(format!(
                "serve_fleet.drain_accesses_per_sec {drain:.0} fell below the \
                 {SERVE_DRAIN_FLOOR:.0} floor"
            ));
        }
    }
    Ok(failures)
}

fn load_json(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn run_bench_gate(args: &Args, fresh_path: &str) -> ExitCode {
    let baseline_path = args.get_str("bench-baseline", "results/bench_snapshot.json");
    let tolerance_pct = args.get_u64("tolerance-pct", 15) as f64;
    let bless = args.get_flag("bless", false);
    let fresh = match load_json(fresh_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    if bless {
        if let Err(e) = std::fs::copy(fresh_path, &baseline_path) {
            eprintln!("bench_gate: bless {fresh_path} -> {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench_gate: blessed {fresh_path} as new baseline {baseline_path}");
        return ExitCode::SUCCESS;
    }
    let baseline = match load_json(&baseline_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    match bench_gate(&baseline, &fresh, tolerance_pct) {
        Ok(failures) if failures.is_empty() => {
            println!("# bench gate passed ({tolerance_pct:.0}% tolerance)");
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            for f in &failures {
                eprintln!("bench_gate: {f}");
            }
            eprintln!(
                "# bench gate FAILED: {} metric(s) regressed \
                 (rerun with --bless to re-anchor an intentional change)",
                failures.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--fleet` mode: schema-check one serving-fleet manifest and require
/// every shard to have made progress (the serve smoke contract).
fn run_fleet_check(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("manifest_check: read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let manifest = match mrp_obs::fleet::validate(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("manifest_check: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(idle) = manifest.shards.iter().find(|s| s.processed == 0) {
        eprintln!(
            "manifest_check: {path}: shard {} processed no accesses",
            idle.shard
        );
        return ExitCode::FAILURE;
    }
    println!(
        "{path}: ok ({} for seed {}: {} tenants / {} shards, {} rounds, {} accesses, \
         {:.1}M/s drain aggregate)",
        mrp_obs::FLEET_SCHEMA,
        manifest.seed,
        manifest.tenants,
        manifest.shards.len(),
        manifest.rounds,
        manifest.processed(),
        manifest.accesses_per_sec() / 1e6,
    );
    ExitCode::SUCCESS
}

/// `--journal` mode: schema-check one campaign journal.
fn run_journal_check(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("manifest_check: read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match mrp_obs::validate_journal(&text) {
        Ok(s) => {
            println!(
                "{path}: ok ({} for campaign {}: {} entries, {} enqueued, {} done, {} failed)",
                mrp_obs::JOURNAL_SCHEMA,
                s.campaign,
                s.entries,
                s.enqueued,
                s.done,
                s.failed
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("manifest_check: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--campaign` mode: schema-check one aggregated campaign manifest.
fn run_campaign_check(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("manifest_check: read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match mrp_obs::validate_campaign(&text) {
        Ok(s) => {
            println!(
                "{path}: ok ({} for campaign {}: {} jobs, {} cells, {} scalars)",
                mrp_obs::CAMPAIGN_SCHEMA,
                s.campaign,
                s.jobs,
                s.cells,
                s.scalars
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("manifest_check: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    let bench_gate_path = args.get_str("bench-gate", "");
    if !bench_gate_path.is_empty() {
        return run_bench_gate(&args, &bench_gate_path);
    }
    let fleet_path = args.get_str("fleet", "");
    if !fleet_path.is_empty() {
        return run_fleet_check(&fleet_path);
    }
    let journal_path = args.get_str("journal", "");
    if !journal_path.is_empty() {
        return run_journal_check(&journal_path);
    }
    let campaign_path = args.get_str("campaign", "");
    if !campaign_path.is_empty() {
        return run_campaign_check(&campaign_path);
    }
    let dir = args.get_str("dir", "runs");
    let summaries = match mrp_obs::validate_dir(Path::new(&dir)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("manifest_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    if summaries.is_empty() {
        eprintln!("manifest_check: no *.jsonl manifests in {dir}");
        return ExitCode::FAILURE;
    }
    for (file, s) in &summaries {
        println!(
            "{file}: ok ({} from {}: {} cells, {} scalars, {} phases, {} counters)",
            s.schema, s.bin, s.cells, s.scalars, s.phases, s.counters
        );
    }
    println!("# {} manifest(s) valid", summaries.len());
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(index: f64, train: f64, lru: f64, mpppb: f64) -> Json {
        Json::parse(&format!(
            r#"{{
              "predictor_hot_path": {{
                "index_16_features": {{ "median_ns_per_op": {index} }},
                "confidence_and_train": {{ "median_ns_per_op": {train} }}
              }},
              "hierarchy_throughput": {{
                "LRU": {{ "instructions_per_sec": {lru} }},
                "MPPPB": {{ "instructions_per_sec": {mpppb} }}
              }}
            }}"#
        ))
        .expect("valid test snapshot")
    }

    #[test]
    fn unchanged_and_improved_metrics_pass() {
        let base = snapshot(40.0, 80.0, 30e6, 35e6);
        // Faster hot path, higher throughput: clean.
        let fresh = snapshot(20.0, 60.0, 40e6, 40e6);
        assert!(bench_gate(&base, &fresh, 15.0).unwrap().is_empty());
        // Exactly at the boundary is still within tolerance.
        let edge = snapshot(40.0 * 1.15, 80.0, 30e6 * 0.85, 35e6);
        assert!(bench_gate(&base, &edge, 15.0).unwrap().is_empty());
    }

    #[test]
    fn slower_ns_and_lower_throughput_fail() {
        let base = snapshot(40.0, 80.0, 30e6, 35e6);
        let slow_index = snapshot(50.0, 80.0, 30e6, 35e6);
        let f = bench_gate(&base, &slow_index, 15.0).unwrap();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains("index_16_features"), "{f:?}");

        let slow_mpppb = snapshot(40.0, 80.0, 30e6, 25e6);
        let f = bench_gate(&base, &slow_mpppb, 15.0).unwrap();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains("MPPPB"), "{f:?}");
    }

    #[test]
    fn gate_covers_every_baseline_policy() {
        let base = snapshot(40.0, 80.0, 30e6, 35e6);
        let names: Vec<String> = gated_metrics(&base).into_iter().map(|m| m.name).collect();
        assert_eq!(names.len(), 4);
        assert!(names
            .iter()
            .any(|n| n == "hierarchy_throughput.LRU.instructions_per_sec"));
        assert!(names
            .iter()
            .any(|n| n == "hierarchy_throughput.MPPPB.instructions_per_sec"));
    }

    /// A full snapshot with the train-apply row and a replay speedup.
    fn snapshot_v2(train_apply: f64, speedup: f64) -> Json {
        Json::parse(&format!(
            r#"{{
              "predictor_hot_path": {{
                "index_16_features": {{ "median_ns_per_op": 40.0 }},
                "confidence_and_train": {{ "median_ns_per_op": 80.0 }},
                "train_apply_batch": {{ "median_ns_per_event": {train_apply} }}
              }},
              "hierarchy_throughput": {{
                "MPPPB": {{ "instructions_per_sec": 35e6 }}
              }},
              "replay_speedup": {{ "speedup": {speedup} }}
            }}"#
        ))
        .expect("valid test snapshot")
    }

    #[test]
    fn train_apply_row_is_gated_once_baseline_records_it() {
        let base = snapshot_v2(3.0, 5.0);
        let names: Vec<String> = gated_metrics(&base).into_iter().map(|m| m.name).collect();
        assert!(names
            .iter()
            .any(|n| n == "predictor_hot_path.train_apply_batch.median_ns_per_event"));
        // Slower per-event apply beyond the tolerance fails the gate.
        let slow = snapshot_v2(4.0, 5.0);
        let f = bench_gate(&base, &slow, 15.0).unwrap();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains("train_apply_batch"), "{f:?}");
        // Absent from the baseline, the row is not required (pre-bless
        // compatibility).
        let old_base = snapshot(40.0, 80.0, 30e6, 35e6);
        assert!(bench_gate(&old_base, &old_base, 15.0).unwrap().is_empty());
    }

    #[test]
    fn replay_speedup_is_gated_against_the_absolute_floor() {
        let base = snapshot_v2(3.0, 5.0);
        // Well above the floor but far below the baseline ratio: still
        // clean — the floor, not a relative diff, is the claim.
        let noisy = snapshot_v2(3.0, REPLAY_SPEEDUP_FLOOR + 0.1);
        assert!(bench_gate(&base, &noisy, 15.0).unwrap().is_empty());
        let below = snapshot_v2(3.0, REPLAY_SPEEDUP_FLOOR - 0.5);
        let f = bench_gate(&base, &below, 15.0).unwrap();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains("floor"), "{f:?}");
    }

    /// A snapshot with a serve_fleet row at the given drain rate.
    fn snapshot_with_serve(drain: f64) -> Json {
        Json::parse(&format!(
            r#"{{
              "predictor_hot_path": {{
                "index_16_features": {{ "median_ns_per_op": 40.0 }},
                "confidence_and_train": {{ "median_ns_per_op": 80.0 }}
              }},
              "hierarchy_throughput": {{
                "MPPPB": {{ "instructions_per_sec": 35e6 }}
              }},
              "serve_fleet": {{ "drain_accesses_per_sec": {drain} }}
            }}"#
        ))
        .expect("valid test snapshot")
    }

    #[test]
    fn serve_drain_is_gated_against_the_absolute_floor() {
        let base = snapshot_with_serve(10.5e6);
        // Below the committed measurement but above the floor: clean —
        // the floor absorbs shared-host noise.
        let noisy = snapshot_with_serve(SERVE_DRAIN_FLOOR + 1.0);
        assert!(bench_gate(&base, &noisy, 15.0).unwrap().is_empty());
        let below = snapshot_with_serve(SERVE_DRAIN_FLOOR * 0.8);
        let f = bench_gate(&base, &below, 15.0).unwrap();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains("serve_fleet"), "{f:?}");
        // Baselines without the row don't require it (pre-bless).
        let old = snapshot(40.0, 80.0, 30e6, 35e6);
        assert!(bench_gate(&old, &old, 15.0).unwrap().is_empty());
    }

    #[test]
    fn missing_field_is_an_error_not_a_pass() {
        let base = snapshot(40.0, 80.0, 30e6, 35e6);
        let truncated = Json::parse(r#"{ "predictor_hot_path": {} }"#).unwrap();
        assert!(bench_gate(&base, &truncated, 15.0).is_err());
    }
}

//! Job specifications for the experiment orchestrator.
//!
//! A [`JobSpec`] names one schedulable unit of experiment work: which
//! driver binary to spawn (or [`SELF_BIN`] for the orchestrator's
//! built-in single-cell worker) and its `--key value` arguments. Specs
//! are extracted here — next to the drivers they describe — so the
//! `mrp-orchestrate` control plane, the campaign journal, and the CI
//! entry point all agree on one definition.
//!
//! # The spec hash
//!
//! [`JobSpec::spec_hash`] is the **dedup key** of the whole
//! orchestration layer: an FNV-1a fold over the binary name and the
//! argument pairs *sorted by key*, so two specs that describe the same
//! computation hash identically regardless of argument order. The id
//! and stdout destination are deliberately excluded — they name *where
//! results go*, not *what is computed* — as are the spawn-time extras
//! the orchestrator appends (`--metrics`, `--manifest-dir`,
//! `--spec-hash`, `--threads`). A worker run manifest records the hash
//! in its `meta` line (via the shared `--spec-hash` flag), which is how
//! resume re-verifies journaled done-jobs and how pre-existing
//! manifests in `runs/` dedupe fresh enqueues.
//!
//! # Plans
//!
//! Three canned campaigns: [`ci_plan`] (the golden-backed drivers in
//! `--golden-check` mode — CI's single entry point), [`full_plan`] (the
//! ten-driver suite `scripts/run_all_experiments.sh` runs), and
//! [`smoke_plan`] (tiny self-worker cells for the crash-injection
//! tests).

use crate::policies::PolicyKind;
use mrp_obs::Json;

/// Sentinel binary name: run the job in the orchestrator's own binary
/// (`orchestrate worker`) instead of spawning a driver.
pub const SELF_BIN: &str = "self";

/// Argument keys the orchestrator appends at spawn time; they are
/// excluded from the spec hash and rejected in plan-authored specs so a
/// spec cannot silently disagree with the runtime environment.
pub const RESERVED_ARG_KEYS: [&str; 4] = ["metrics", "manifest-dir", "spec-hash", "threads"];

/// One schedulable unit of experiment work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Campaign-unique job id (journal key, display name).
    pub id: String,
    /// Driver binary name (`fig6_st_speedup`, …) or [`SELF_BIN`].
    pub bin: String,
    /// `--key value` argument pairs, in authoring order.
    pub args: Vec<(String, String)>,
    /// Repo-relative file to write the worker's stdout into (report
    /// capture, like the script's `tee`); `None` logs under the
    /// campaign's `logs/` directory.
    pub stdout: Option<String>,
}

impl JobSpec {
    /// Starts a spec with no arguments.
    pub fn new(id: impl Into<String>, bin: impl Into<String>) -> JobSpec {
        JobSpec {
            id: id.into(),
            bin: bin.into(),
            args: Vec::new(),
            stdout: None,
        }
    }

    /// Appends one `--key value` argument (builder style).
    pub fn arg(mut self, key: impl Into<String>, value: impl ToString) -> JobSpec {
        self.args.push((key.into(), value.to_string()));
        self
    }

    /// Routes the worker's stdout into a repo-relative file.
    pub fn stdout_to(mut self, path: impl Into<String>) -> JobSpec {
        self.stdout = Some(path.into());
        self
    }

    /// Looks up an argument value by key.
    pub fn get_arg(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The dedup key: FNV-1a over the binary name and the argument
    /// pairs sorted by key. Invariant under argument reordering;
    /// excludes `id` and `stdout` (see module docs).
    pub fn spec_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let fold = |hash: u64, bytes: &[u8]| -> u64 {
            let mut h = hash;
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
            // Field separator so ("ab","c") and ("a","bc") differ.
            h ^= 0xff;
            h.wrapping_mul(PRIME)
        };
        let mut hash = fold(OFFSET, self.bin.as_bytes());
        let mut sorted: Vec<&(String, String)> = self.args.iter().collect();
        sorted.sort();
        for (key, value) in sorted {
            hash = fold(hash, key.as_bytes());
            hash = fold(hash, value.as_bytes());
        }
        hash
    }

    /// The spec hash as the 16-digit hex string used in journals,
    /// manifests, and `--spec-hash`.
    pub fn spec_hash_hex(&self) -> String {
        format!("{:016x}", self.spec_hash())
    }

    /// The argument pairs flattened to a command line (`--key value …`).
    pub fn cli_args(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.args.len() * 2);
        for (key, value) in &self.args {
            out.push(format!("--{key}"));
            out.push(value.clone());
        }
        out
    }

    /// Canonical JSON form (fixed field order, so journal round-trips
    /// are byte-identical).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::Str(self.id.clone())),
            ("bin".to_string(), Json::Str(self.bin.clone())),
            (
                "args".to_string(),
                Json::Obj(
                    self.args
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
        ];
        if let Some(stdout) = &self.stdout {
            fields.push(("stdout".to_string(), Json::Str(stdout.clone())));
        }
        Json::Obj(fields)
    }

    /// Parses the canonical JSON form.
    pub fn from_json(record: &Json) -> Result<JobSpec, String> {
        let text = |key: &str| -> Result<String, String> {
            record
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("job spec missing string {key}"))
        };
        let args = match record.get("args") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|v| (k.clone(), v.to_string()))
                        .ok_or_else(|| format!("job spec arg {k} is not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("job spec missing args object".into()),
        };
        let stdout = match record.get("stdout") {
            None => None,
            Some(v) => Some(
                v.as_str()
                    .map(str::to_string)
                    .ok_or("job spec stdout is not a string")?,
            ),
        };
        Ok(JobSpec {
            id: text("id")?,
            bin: text("bin")?,
            args,
            stdout,
        })
    }

    /// Rejects specs that set a [`RESERVED_ARG_KEYS`] argument.
    pub fn check_reserved(&self) -> Result<(), String> {
        for key in RESERVED_ARG_KEYS {
            if self.get_arg(key).is_some() {
                return Err(format!(
                    "job {} sets reserved argument --{key} (the orchestrator owns it)",
                    self.id
                ));
            }
        }
        Ok(())
    }
}

/// The CI campaign: every golden-backed driver in `--golden-check`
/// mode. A worker exits nonzero on drift, which the orchestrator
/// propagates, giving `orchestrate ci` its one-command golden gate.
pub fn ci_plan() -> Vec<JobSpec> {
    vec![
        JobSpec::new("golden.fig6", "fig6_st_speedup").arg("golden-check", "1"),
        JobSpec::new("golden.fig10", "fig10_ablation").arg("golden-check", "1"),
        JobSpec::new("golden.table3", "table3_contrib").arg("golden-check", "1"),
    ]
}

/// Scale knobs of the [`full_plan`] campaign; defaults mirror
/// `scripts/run_all_experiments.sh`.
#[derive(Debug, Clone)]
pub struct FullScale {
    /// Single-thread driver warmup instructions.
    pub st_warmup: u64,
    /// Single-thread driver measured instructions.
    pub st_measure: u64,
    /// Multicore driver warmup instructions.
    pub mp_warmup: u64,
    /// Multicore driver measured instructions.
    pub mp_measure: u64,
    /// Multiprogrammed mixes for fig4/fig5.
    pub mixes: usize,
    /// Mixes for the fig9/fig10 sweeps.
    pub sweep_mixes: usize,
    /// Measured instructions for the fig9/fig10 sweeps.
    pub sweep_measure: u64,
    /// Measured instructions for the ROC curves.
    pub roc_measure: u64,
    /// Feature-search candidates for fig3.
    pub candidates: usize,
}

impl Default for FullScale {
    fn default() -> Self {
        FullScale {
            st_warmup: 2_000_000,
            st_measure: 8_000_000,
            mp_warmup: 1_500_000,
            mp_measure: 5_000_000,
            mixes: 24,
            sweep_mixes: 8,
            sweep_measure: 3_000_000,
            roc_measure: 6_000_000,
            candidates: 60,
        }
    }
}

/// The full experiment suite: the ten jobs
/// `scripts/run_all_experiments.sh` historically looped over, each
/// capturing its report into `results/<name>.txt`.
pub fn full_plan(scale: &FullScale) -> Vec<JobSpec> {
    let st = |spec: JobSpec| {
        spec.arg("warmup", scale.st_warmup)
            .arg("measure", scale.st_measure)
    };
    let mp = |spec: JobSpec| {
        spec.arg("warmup", scale.mp_warmup)
            .arg("measure", scale.mp_measure)
            .arg("mixes", scale.mixes)
    };
    vec![
        JobSpec::new("fig_roc", "fig_roc")
            .arg("warmup", 2_000_000)
            .arg("measure", scale.roc_measure)
            .arg("workloads", 33)
            .stdout_to("results/fig_roc.txt"),
        st(JobSpec::new("fig6", "fig6_st_speedup"))
            .arg("workloads", 33)
            .stdout_to("results/fig6.txt"),
        st(JobSpec::new("fig7", "fig7_st_mpki"))
            .arg("workloads", 33)
            .stdout_to("results/fig7.txt"),
        mp(JobSpec::new("fig4", "fig4_mp_speedup")).stdout_to("results/fig4.txt"),
        mp(JobSpec::new("fig5", "fig5_mp_mpki")).stdout_to("results/fig5.txt"),
        JobSpec::new("fig3_search", "fig3_search")
            .arg("candidates", scale.candidates)
            .arg("workloads", 10)
            .arg("instructions", 2_000_000)
            .stdout_to("results/fig3_search.txt"),
        JobSpec::new("fig9", "fig9_assoc")
            .arg("mixes", scale.sweep_mixes)
            .arg("warmup", 1_000_000)
            .arg("measure", scale.sweep_measure)
            .arg("step", 2)
            .stdout_to("results/fig9.txt"),
        JobSpec::new("fig10", "fig10_ablation")
            .arg("mixes", scale.sweep_mixes)
            .arg("warmup", 1_000_000)
            .arg("measure", scale.sweep_measure)
            .stdout_to("results/fig10.txt"),
        JobSpec::new("tables", "tables_features").stdout_to("results/tables.txt"),
        JobSpec::new("table3", "table3_contrib")
            .arg("workloads", 33)
            .arg("instructions", 2_000_000)
            .stdout_to("results/table3.txt"),
    ]
}

/// Workloads in the crash-test smoke campaign (a spread of access
/// patterns that stays cheap at tiny scale).
pub const SMOKE_WORKLOADS: [&str; 3] = ["zipf.hot", "loop.edge", "stream.rw"];

/// Policies in the crash-test smoke campaign.
pub const SMOKE_POLICIES: [&str; 2] = ["lru", "srrip"];

/// A tiny (workload × policy) grid of self-worker cells: the campaign
/// the crash-injection tests SIGKILL and resume. `spin_ms` pads each
/// worker's runtime (result-neutral) so a kill reliably lands
/// mid-flight even at debug-profile test scales.
pub fn smoke_plan(seed: u64, warmup: u64, measure: u64, spin_ms: u64) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for workload in SMOKE_WORKLOADS {
        for policy in SMOKE_POLICIES {
            debug_assert!(PolicyKind::from_name(policy).is_some());
            let mut spec = JobSpec::new(format!("cell.{workload}.{policy}"), SELF_BIN)
                .arg("workload", workload)
                .arg("policy", policy)
                .arg("seed", seed)
                .arg("warmup", warmup)
                .arg("measure", measure);
            if spin_ms > 0 {
                spec = spec.arg("spin-ms", spin_ms);
            }
            jobs.push(spec);
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobSpec {
        JobSpec::new("cell.zipf.hot.lru", SELF_BIN)
            .arg("workload", "zipf.hot")
            .arg("policy", "lru")
            .arg("seed", 7)
            .stdout_to("results/cell.txt")
    }

    #[test]
    fn spec_hash_is_invariant_under_arg_order() {
        let a = sample();
        let mut b = a.clone();
        b.args.reverse();
        assert_eq!(a.spec_hash(), b.spec_hash());
        assert_eq!(a.spec_hash_hex().len(), 16);
    }

    #[test]
    fn spec_hash_ignores_id_and_stdout_but_not_args() {
        let a = sample();
        let mut renamed = a.clone();
        renamed.id = "other-name".into();
        renamed.stdout = None;
        assert_eq!(a.spec_hash(), renamed.spec_hash());
        let changed = a.clone().arg("extra", 1);
        assert_ne!(a.spec_hash(), changed.spec_hash());
        let mut other_bin = a.clone();
        other_bin.bin = "fig6_st_speedup".into();
        assert_ne!(a.spec_hash(), other_bin.spec_hash());
    }

    #[test]
    fn field_separator_prevents_concatenation_collisions() {
        let a = JobSpec::new("x", "b").arg("ab", "c");
        let b = JobSpec::new("x", "b").arg("a", "bc");
        assert_ne!(a.spec_hash(), b.spec_hash());
    }

    #[test]
    fn json_round_trips_bit_equal() {
        for spec in [sample(), JobSpec::new("bare", "fig_roc")] {
            let rendered = spec.to_json().render();
            let parsed = JobSpec::from_json(&Json::parse(&rendered).unwrap()).unwrap();
            assert_eq!(parsed, spec);
            assert_eq!(parsed.to_json().render(), rendered);
        }
    }

    #[test]
    fn reserved_keys_are_rejected() {
        assert!(sample().check_reserved().is_ok());
        let bad = sample().arg("manifest-dir", "elsewhere");
        assert!(bad.check_reserved().is_err());
    }

    #[test]
    fn cli_args_flatten_in_authoring_order() {
        let spec = JobSpec::new("x", "b").arg("seed", 7).arg("warmup", 100);
        assert_eq!(spec.cli_args(), vec!["--seed", "7", "--warmup", "100"]);
    }

    #[test]
    fn plans_have_unique_ids_and_clean_args() {
        let scale = FullScale::default();
        for plan in [ci_plan(), full_plan(&scale), smoke_plan(7, 2000, 8000, 50)] {
            let mut ids: Vec<&str> = plan.iter().map(|j| j.id.as_str()).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), plan.len(), "duplicate job ids in plan");
            for job in &plan {
                job.check_reserved()
                    .expect("plan must not set reserved args");
            }
        }
        assert_eq!(smoke_plan(7, 2000, 8000, 0).len(), 6);
        assert_eq!(full_plan(&scale).len(), 10);
    }

    #[test]
    fn smoke_plan_policies_resolve() {
        for job in smoke_plan(1, 10, 10, 0) {
            let policy = job.get_arg("policy").expect("policy arg");
            assert!(PolicyKind::from_name(policy).is_some(), "{policy}");
        }
    }
}

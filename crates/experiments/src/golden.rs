//! Golden-file plumbing for the table-producing drivers.
//!
//! The ablation (Fig. 10) and feature-contribution (Table 3) drivers
//! promise deterministic, bit-identical outputs for a given seed. Each
//! gets a reduced-scale golden matrix in `results/`, regenerated with the
//! driver's `--bless` flag (or `MRP_UPDATE_GOLDEN=1` on the test), in the
//! same format as `results/fig6_golden.txt`: a trace fingerprint line
//! followed by rows carrying exact `f64::to_bits` values plus a human
//! comment.
//!
//! Like the Fig. 6 golden, values are only comparable when the trace
//! streams match — they depend on the `rand` implementation backing the
//! generators — so a fingerprint mismatch skips the comparison with a
//! message instead of failing.

use std::fmt::Write as _;
use std::path::PathBuf;

use mrp_trace::workloads;

use crate::ablation;
use crate::feature_table;
use crate::runner::MpParams;

/// Workloads folded into the trace fingerprint (a stable, representative
/// sample of the suite).
const FINGERPRINT_WORKLOADS: [&str; 4] = ["scanhot.protect", "loop.edge", "zipf.hot", "stream.rw"];

/// Absolute path of a golden file in `results/`.
pub fn results_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../results/{file}"))
}

/// Fingerprint of the access streams behind a golden matrix: FNV-folds
/// the first 256 accesses of each fingerprint workload at `seed`.
/// Identifies the trace generator + rand implementation, not the cache
/// stack under test.
pub fn trace_fingerprint(seed: u64) -> u64 {
    let suite = workloads::suite();
    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    for name in FINGERPRINT_WORKLOADS {
        let w = suite.iter().find(|w| w.name() == name).expect("workload");
        for access in w.trace(seed).take(256) {
            for v in [access.pc, access.address] {
                fp ^= v;
                fp = fp.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    fp
}

/// Seed of the ablation golden run.
pub const ABLATION_SEED: u64 = 5;

/// Renders the reduced-scale Fig. 10 ablation golden matrix.
pub fn ablation_golden() -> String {
    let params = MpParams {
        warmup: 10_000,
        measure: 50_000,
    };
    let result = ablation::run(params, 1, 2, ABLATION_SEED);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# fig10 ablation golden (reduced scale: warmup 10k / measure 50k, 1 mix, 2 features, seed {ABLATION_SEED})"
    );
    let _ = writeln!(
        out,
        "# regenerate: cargo run -p mrp-experiments --bin fig10_ablation -- --bless"
    );
    let _ = writeln!(out, "fingerprint {:016x}", trace_fingerprint(ABLATION_SEED));
    let _ = writeln!(
        out,
        "(original) {:016x} # speedup={:.6}",
        result.original.to_bits(),
        result.original
    );
    for (feature, speedup) in &result.omitted {
        let _ = writeln!(
            out,
            "{} {:016x} # speedup={speedup:.6}",
            feature.replace(' ', "_"),
            speedup.to_bits()
        );
    }
    out
}

/// Seed of the Table 3 golden run.
pub const TABLE3_SEED: u64 = 99;

/// Renders the reduced-scale Table 3 feature-contribution golden matrix.
pub fn table3_golden() -> String {
    let rows = feature_table::run(2, 150_000, TABLE3_SEED);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# table3 contribution golden (reduced scale: 2 workloads, 150k instructions, seed {TABLE3_SEED})"
    );
    let _ = writeln!(
        out,
        "# regenerate: cargo run -p mrp-experiments --bin table3_contrib -- --bless"
    );
    let _ = writeln!(out, "fingerprint {:016x}", trace_fingerprint(TABLE3_SEED));
    for r in &rows {
        let _ = writeln!(
            out,
            "{} {} {:016x} {:016x} # without={:.4} with={:.4}",
            r.feature.replace(' ', "_"),
            r.workload,
            r.mpki_without.to_bits(),
            r.mpki_with.to_bits(),
            r.mpki_without,
            r.mpki_with
        );
    }
    out
}

/// Compares a freshly rendered golden against the committed file.
///
/// * `MRP_UPDATE_GOLDEN=1` (or a missing-but-blessing caller) rewrites
///   the file instead of comparing.
/// * A fingerprint mismatch prints the regeneration instructions and
///   skips the comparison (different rand/trace stream, values
///   incomparable).
/// * Otherwise every line must match exactly.
///
/// # Panics
///
/// Panics when the committed file is absent or any line differs.
pub fn check_against_committed(file: &str, rendered: &str) {
    let path = results_path(file);
    if std::env::var("MRP_UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, rendered).expect("write golden");
        eprintln!("golden regenerated at {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate it with the driver's --bless flag",
            path.display()
        )
    });
    let fp = |text: &str| -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix("fingerprint "))
            .map(|h| u64::from_str_radix(h, 16).expect("fingerprint hex"))
            .expect("fingerprint line")
    };
    let (committed_fp, fresh_fp) = (fp(&committed), fp(rendered));
    if committed_fp != fresh_fp {
        eprintln!(
            "{file}: trace fingerprint mismatch ({committed_fp:016x} committed vs \
             {fresh_fp:016x} here): golden values were produced by a different \
             rand/trace stream; skipping value comparison. Re-bless to pin this \
             environment."
        );
        return;
    }
    let significant = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| !l.starts_with('#'))
            .map(String::from)
            .collect()
    };
    let (want, got) = (significant(&committed), significant(rendered));
    assert_eq!(
        want, got,
        "{file} drifted (outputs are no longer bit-identical); \
         if the change is intentional, re-bless with the driver's --bless flag"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_depends_on_seed() {
        assert_ne!(trace_fingerprint(1), trace_fingerprint(2));
        assert_eq!(trace_fingerprint(5), trace_fingerprint(5));
    }

    #[test]
    fn renderers_emit_fingerprint_and_rows() {
        let a = ablation_golden();
        assert!(a.contains("fingerprint "));
        assert!(a.contains("(original) "));
        let t = table3_golden();
        assert!(t.contains("fingerprint "));
        // 16 features => 16 data rows after the fingerprint line.
        let rows = t
            .lines()
            .filter(|l| !l.starts_with('#') && !l.starts_with("fingerprint"))
            .count();
        assert_eq!(rows, 16);
    }
}

//! Golden-file plumbing for the golden-backed drivers.
//!
//! The Fig. 6 matrix, ablation (Fig. 10), and feature-contribution
//! (Table 3) drivers promise deterministic, bit-identical outputs for a
//! given seed. Each gets a reduced-scale golden matrix in `results/`,
//! regenerated with the driver's `--bless` flag (or
//! `MRP_UPDATE_GOLDEN=1` on the test), in a shared format: a trace
//! fingerprint line followed by rows carrying exact `f64::to_bits`
//! values plus a human comment.
//!
//! Values are only comparable when the trace streams match — they
//! depend on the `rand` implementation backing the generators — so a
//! fingerprint mismatch skips the comparison with a message instead of
//! failing.
//!
//! Two consumers share the comparison logic ([`diff_against_committed`]
//! / [`GoldenOutcome`]): the test harness ([`check_against_committed`]
//! panics on drift, for `cargo test`) and the drivers' `--golden-check`
//! mode ([`golden_check_cli`] returns pass/fail, for `orchestrate ci`
//! to turn into a process exit code).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use mrp_obs::Json;
use mrp_trace::workloads;

use crate::ablation;
use crate::feature_table;
use crate::runner::{run_single_kind, run_single_mpppb_cv, MpParams, StParams};
use crate::PolicyKind;

/// Workloads folded into the trace fingerprint (a stable, representative
/// sample of the suite).
const FINGERPRINT_WORKLOADS: [&str; 4] = ["scanhot.protect", "loop.edge", "zipf.hot", "stream.rw"];

/// Absolute path of a golden file in `results/`.
pub fn results_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../results/{file}"))
}

/// Fingerprint of the access streams behind a golden matrix: FNV-folds
/// the first 256 accesses of each fingerprint workload at `seed`.
/// Identifies the trace generator + rand implementation, not the cache
/// stack under test.
pub fn trace_fingerprint(seed: u64) -> u64 {
    let suite = workloads::suite();
    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    for name in FINGERPRINT_WORKLOADS {
        let w = suite.iter().find(|w| w.name() == name).expect("workload");
        for access in w.trace(seed).take(256) {
            for v in [access.pc, access.address] {
                fp ^= v;
                fp = fp.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    fp
}

/// Seed of the Fig. 6 golden run.
pub const FIG6_SEED: u64 = 1;

/// Policies in the Fig. 6 golden matrix (plus the `mpppb-cv` row).
const FIG6_KINDS: [PolicyKind; 3] = [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::MpppbSingle];

/// Renders the reduced-scale Fig. 6 golden matrix: MPKI/IPC per
/// (workload × policy) over the fingerprint workloads, exact to the bit.
pub fn fig6_golden() -> String {
    let params = StParams {
        warmup: 50_000,
        measure: 200_000,
        seed: FIG6_SEED,
    };
    let suite = workloads::suite();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# fig6 golden matrix (reduced scale: warmup 50k / measure 200k, seed {FIG6_SEED})"
    );
    let _ = writeln!(
        out,
        "# regenerate: MRP_UPDATE_GOLDEN=1 cargo test -p mrp-experiments --test golden"
    );
    let _ = writeln!(out, "fingerprint {:016x}", trace_fingerprint(FIG6_SEED));
    for name in FINGERPRINT_WORKLOADS {
        let w = suite.iter().find(|w| w.name() == name).expect("workload");
        let mut rows: Vec<(String, f64, f64)> = FIG6_KINDS
            .iter()
            .map(|kind| {
                let r = run_single_kind(w, *kind, params);
                (kind.name().to_string(), r.mpki, r.ipc)
            })
            .collect();
        let cv = run_single_mpppb_cv(w, params);
        rows.push(("mpppb-cv".to_string(), cv.mpki, cv.ipc));
        for (policy, mpki, ipc) in rows {
            let _ = writeln!(
                out,
                "{name} {policy} {:016x} {:016x} # mpki={mpki:.4} ipc={ipc:.4}",
                mpki.to_bits(),
                ipc.to_bits()
            );
        }
    }
    out
}

/// Seed of the ablation golden run.
pub const ABLATION_SEED: u64 = 5;

/// Renders the reduced-scale Fig. 10 ablation golden matrix.
pub fn ablation_golden() -> String {
    let params = MpParams {
        warmup: 10_000,
        measure: 50_000,
    };
    let result = ablation::run(params, 1, 2, ABLATION_SEED);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# fig10 ablation golden (reduced scale: warmup 10k / measure 50k, 1 mix, 2 features, seed {ABLATION_SEED})"
    );
    let _ = writeln!(
        out,
        "# regenerate: cargo run -p mrp-experiments --bin fig10_ablation -- --bless"
    );
    let _ = writeln!(out, "fingerprint {:016x}", trace_fingerprint(ABLATION_SEED));
    let _ = writeln!(
        out,
        "(original) {:016x} # speedup={:.6}",
        result.original.to_bits(),
        result.original
    );
    for (feature, speedup) in &result.omitted {
        let _ = writeln!(
            out,
            "{} {:016x} # speedup={speedup:.6}",
            feature.replace(' ', "_"),
            speedup.to_bits()
        );
    }
    out
}

/// Seed of the Table 3 golden run.
pub const TABLE3_SEED: u64 = 99;

/// Renders the reduced-scale Table 3 feature-contribution golden matrix.
pub fn table3_golden() -> String {
    let rows = feature_table::run(2, 150_000, TABLE3_SEED);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# table3 contribution golden (reduced scale: 2 workloads, 150k instructions, seed {TABLE3_SEED})"
    );
    let _ = writeln!(
        out,
        "# regenerate: cargo run -p mrp-experiments --bin table3_contrib -- --bless"
    );
    let _ = writeln!(out, "fingerprint {:016x}", trace_fingerprint(TABLE3_SEED));
    for r in &rows {
        let _ = writeln!(
            out,
            "{} {} {:016x} {:016x} # without={:.4} with={:.4}",
            r.feature.replace(' ', "_"),
            r.workload,
            r.mpki_without.to_bits(),
            r.mpki_with.to_bits(),
            r.mpki_without,
            r.mpki_with
        );
    }
    out
}

/// Outcome of comparing a freshly rendered golden against the committed
/// file, without deciding pass/fail policy (the test harness panics on
/// drift; the drivers' `--golden-check` mode turns it into an exit
/// code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoldenOutcome {
    /// Every significant line matches bit-for-bit.
    Match,
    /// Trace fingerprints differ: values were produced by a different
    /// rand/trace stream and are incomparable. Skipped, not failed.
    FingerprintSkip {
        /// Fingerprint recorded in the committed file.
        committed: u64,
        /// Fingerprint of this environment's trace streams.
        fresh: u64,
    },
    /// Fingerprints match but lines differ: outputs are no longer
    /// bit-identical. Each entry describes one drifted line.
    Drift(Vec<String>),
    /// The committed golden file is absent or unreadable.
    Missing(String),
}

/// Compares `rendered` against the committed golden `file`, returning
/// the structured [`GoldenOutcome`]. Comment lines (`#`) are ignored;
/// everything else — fingerprint line included — must match exactly.
pub fn diff_against_committed(file: &str, rendered: &str) -> GoldenOutcome {
    let path = results_path(file);
    let committed = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => return GoldenOutcome::Missing(format!("{}: {e}", path.display())),
    };
    let fp = |text: &str| -> Option<u64> {
        text.lines()
            .find_map(|l| l.strip_prefix("fingerprint "))
            .and_then(|h| u64::from_str_radix(h, 16).ok())
    };
    let (Some(committed_fp), Some(fresh_fp)) = (fp(&committed), fp(rendered)) else {
        return GoldenOutcome::Missing(format!(
            "{}: no parseable fingerprint line",
            path.display()
        ));
    };
    if committed_fp != fresh_fp {
        return GoldenOutcome::FingerprintSkip {
            committed: committed_fp,
            fresh: fresh_fp,
        };
    }
    fn significant(text: &str) -> Vec<&str> {
        text.lines().filter(|l| !l.starts_with('#')).collect()
    }
    let (want, got) = (significant(&committed), significant(rendered));
    let mut drifted = Vec::new();
    for i in 0..want.len().max(got.len()) {
        let (w, g) = (want.get(i).copied(), got.get(i).copied());
        if w != g {
            drifted.push(format!(
                "row {}: committed {} vs fresh {}",
                i + 1,
                w.unwrap_or("<absent>"),
                g.unwrap_or("<absent>")
            ));
        }
    }
    if drifted.is_empty() {
        GoldenOutcome::Match
    } else {
        GoldenOutcome::Drift(drifted)
    }
}

/// Compares a freshly rendered golden against the committed file.
///
/// * `MRP_UPDATE_GOLDEN=1` (or a missing-but-blessing caller) rewrites
///   the file instead of comparing.
/// * A fingerprint mismatch prints the regeneration instructions and
///   skips the comparison (different rand/trace stream, values
///   incomparable).
/// * Otherwise every line must match exactly.
///
/// # Panics
///
/// Panics when the committed file is absent or any line differs.
pub fn check_against_committed(file: &str, rendered: &str) {
    if std::env::var("MRP_UPDATE_GOLDEN").is_ok() {
        let path = results_path(file);
        std::fs::write(&path, rendered).expect("write golden");
        eprintln!("golden regenerated at {}", path.display());
        return;
    }
    match diff_against_committed(file, rendered) {
        GoldenOutcome::Match => {}
        GoldenOutcome::FingerprintSkip { committed, fresh } => {
            eprintln!(
                "{file}: trace fingerprint mismatch ({committed:016x} committed vs \
                 {fresh:016x} here): golden values were produced by a different \
                 rand/trace stream; skipping value comparison. Re-bless to pin this \
                 environment."
            );
        }
        GoldenOutcome::Drift(lines) => panic!(
            "{file} drifted (outputs are no longer bit-identical); if the change is \
             intentional, re-bless with the driver's --bless flag:\n{}",
            lines.join("\n")
        ),
        GoldenOutcome::Missing(why) => {
            panic!("missing golden file ({why}); regenerate it with the driver's --bless flag")
        }
    }
}

/// `--golden-check` driver mode: compares and reports on stderr,
/// returning whether the check passed (a [`GoldenOutcome::FingerprintSkip`]
/// passes — the values are incomparable, not wrong — so CI hosts with a
/// different rand stream skip rather than fail, exactly like the test
/// tier).
pub fn golden_check_cli(file: &str, rendered: &str) -> bool {
    match diff_against_committed(file, rendered) {
        GoldenOutcome::Match => {
            eprintln!("golden-check {file}: ok (bit-identical)");
            true
        }
        GoldenOutcome::FingerprintSkip { committed, fresh } => {
            eprintln!(
                "golden-check {file}: skipped (fingerprint {committed:016x} committed vs \
                 {fresh:016x} here; different rand/trace stream)"
            );
            true
        }
        GoldenOutcome::Drift(lines) => {
            eprintln!(
                "golden-check {file}: FAILED — {} drifted line(s):",
                lines.len()
            );
            for line in &lines {
                eprintln!("  {line}");
            }
            false
        }
        GoldenOutcome::Missing(why) => {
            eprintln!("golden-check {file}: FAILED — {why}");
            false
        }
    }
}

/// The shared `--golden-check` driver mode behind `orchestrate ci`:
/// renders the reduced-scale golden, diffs it against the committed
/// `file`, reports on stderr, and — with `--metrics` — records the
/// outcome in the run manifest (`golden.match` scalar, `golden_file`
/// meta). Returns the process exit code: failure on drift or a missing
/// golden, success on match or fingerprint skip.
pub fn run_golden_check(
    args: &crate::Args,
    bin: &str,
    file: &str,
    seed: u64,
    render: impl FnOnce() -> String,
) -> ExitCode {
    let mut manifest = args.init_metrics(bin, seed);
    let simulate_phase = mrp_obs::phase("simulate");
    let rendered = render();
    drop(simulate_phase);
    let report_phase = mrp_obs::phase("report");
    let ok = golden_check_cli(file, &rendered);
    if let Some(m) = manifest.as_mut() {
        m.meta("mode", Json::Str("golden-check".into()));
        m.meta("golden_file", Json::Str(file.into()));
        m.scalar("golden.match", if ok { 1.0 } else { 0.0 });
    }
    drop(report_phase);
    crate::finish_manifest(manifest);
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_depends_on_seed() {
        assert_ne!(trace_fingerprint(1), trace_fingerprint(2));
        assert_eq!(trace_fingerprint(5), trace_fingerprint(5));
    }

    #[test]
    fn diff_reports_structured_outcomes() {
        // Self-comparison via a temp results copy is overkill; instead
        // exercise the pure line-diff logic against the committed fig10
        // golden, whose values may or may not be comparable here.
        let fresh = ablation_golden();
        match diff_against_committed("fig10_golden.txt", &fresh) {
            GoldenOutcome::Match | GoldenOutcome::FingerprintSkip { .. } => {}
            other => panic!("committed fig10 golden should match or skip, got {other:?}"),
        }
        // A doctored render with the right fingerprint but wrong rows
        // must report Drift (or skip when fingerprints differ here).
        let committed = std::fs::read_to_string(results_path("fig10_golden.txt")).unwrap();
        let doctored: String = committed
            .lines()
            .map(|l| {
                if l.starts_with('#') || l.starts_with("fingerprint") {
                    format!("{l}\n")
                } else {
                    format!("{l}-doctored\n")
                }
            })
            .collect();
        match diff_against_committed("fig10_golden.txt", &doctored) {
            GoldenOutcome::Drift(lines) => assert!(!lines.is_empty()),
            GoldenOutcome::FingerprintSkip { .. } => {
                unreachable!("doctored render copies the committed fingerprint")
            }
            other => panic!("doctored render must drift, got {other:?}"),
        }
        assert!(matches!(
            diff_against_committed("no_such_golden.txt", &fresh),
            GoldenOutcome::Missing(_)
        ));
    }

    #[test]
    fn renderers_emit_fingerprint_and_rows() {
        let a = ablation_golden();
        assert!(a.contains("fingerprint "));
        assert!(a.contains("(original) "));
        let t = table3_golden();
        assert!(t.contains("fingerprint "));
        // 16 features => 16 data rows after the fingerprint line.
        let rows = t
            .lines()
            .filter(|l| !l.starts_with('#') && !l.starts_with("fingerprint"))
            .count();
        assert_eq!(rows, 16);
    }
}

//! Uniform feature-associativity sweep (Figure 9).
//!
//! "For the 900 multi-programmed workloads, we fix the A parameter for
//! each feature from 1 through 18 and observe the resulting performance"
//! (§6.4). The original variable-associativity feature set is the final
//! reference point.

use mrp_cache::HierarchyConfig;
use mrp_core::mpppb::{Mpppb, MpppbConfig};
use mrp_core::Feature;
use mrp_cpu::metrics::geometric_mean;
use mrp_trace::{workloads, MixBuilder};

use crate::policies::PolicyKind;
use crate::runner::{mix_standalone, run_mix_kind, run_mix_policy, standalone_ipcs, MpParams};

/// Result of the sweep.
#[derive(Debug, Clone)]
pub struct AssocSweep {
    /// Geomean weighted speedup for each uniform A in 1..=18.
    pub uniform: Vec<(u8, f64)>,
    /// Geomean weighted speedup of the original variable-A feature set.
    pub original: f64,
}

/// Applies a uniform associativity to every feature of a set.
pub fn with_uniform_assoc(features: &[Feature], assoc: u8) -> Vec<Feature> {
    features
        .iter()
        .map(|f| Feature::new(assoc, f.kind, f.xor_pc))
        .collect()
}

/// Runs the sweep over `mix_count` mixes; `assoc_step` lets reduced runs
/// sample every k-th associativity.
pub fn run(params: MpParams, mix_count: usize, assoc_step: usize, seed: u64) -> AssocSweep {
    let suite = workloads::suite();
    let builder = MixBuilder::new(seed);
    let standalone = standalone_ipcs(&suite, params, seed);
    let config = HierarchyConfig::multi_core();
    let base = MpppbConfig::multi_core(&config.llc);

    let mixes: Vec<_> = (0..mix_count.max(1))
        .map(|i| builder.mix(100 + i))
        .collect();
    let bases: Vec<Vec<f64>> = mixes
        .iter()
        .map(|m| mix_standalone(m, &standalone))
        .collect();
    // LRU baselines per mix.
    let lru_weighted: Vec<f64> = mrp_runtime::map_indexed(mixes.len(), |mi| {
        run_mix_kind(&mixes[mi], PolicyKind::Lru, params).weighted_ipc(&bases[mi])
    });

    // Candidate feature sets: each sampled uniform associativity, then
    // the original variable-A set last. One job per (set × mix) cell;
    // each set's geomean reduces its cells in mix order.
    let assocs: Vec<u8> = (1..=18u8).step_by(assoc_step.max(1)).collect();
    let mut sets: Vec<Vec<Feature>> = assocs
        .iter()
        .map(|&a| with_uniform_assoc(&base.features, a))
        .collect();
    sets.push(base.features.clone());

    let n_mixes = mixes.len();
    let cells: Vec<f64> = mrp_runtime::map_indexed(sets.len() * n_mixes, |job| {
        let (si, mi) = (job / n_mixes, job % n_mixes);
        let policy_config = base.clone().with_features(sets[si].clone());
        let policy = Box::new(Mpppb::new(policy_config, &config.llc));
        run_mix_policy(&mixes[mi], policy, params).weighted_ipc(&bases[mi]) / lru_weighted[mi]
    });
    let geomean_of = |si: usize| geometric_mean(&cells[si * n_mixes..(si + 1) * n_mixes]);

    let uniform = assocs
        .iter()
        .enumerate()
        .map(|(i, &a)| (a, geomean_of(i)))
        .collect();
    let original = geomean_of(assocs.len());

    AssocSweep { uniform, original }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_core::feature_sets;

    #[test]
    fn uniform_assoc_rewrites_every_feature() {
        let set = feature_sets::table_2();
        let uniform = with_uniform_assoc(&set, 5);
        assert!(uniform.iter().all(|f| f.assoc == 5));
        assert_eq!(uniform.len(), set.len());
        // Kinds are preserved.
        for (a, b) in set.iter().zip(&uniform) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.xor_pc, b.xor_pc);
        }
    }

    #[test]
    fn sweep_produces_points() {
        let params = MpParams {
            warmup: 15_000,
            measure: 60_000,
        };
        let sweep = run(params, 1, 9, 5);
        assert_eq!(sweep.uniform.len(), 2); // A = 1, 10
        assert!(sweep.original > 0.0);
        for (_, s) in &sweep.uniform {
            assert!(*s > 0.0);
        }
    }
}

//! Shared run orchestration: single-thread runs (including Belady MIN's
//! two passes), multi-programmed runs, and the standalone-IPC baseline
//! needed for weighted speedup.

use std::collections::HashSet;
use std::sync::OnceLock;

use mrp_baselines::MinPolicy;
use mrp_cache::replay::LlcRecording;
use mrp_cache::{CacheConfig, HierarchyConfig, ReplacementPolicy};
use mrp_core::{EngineConfig, PredictionEngine};
use mrp_cpu::{replay_single, MulticoreResult, MulticoreSim, SingleCoreResult, SingleCoreSim};
use mrp_trace::{Mix, Workload};

use crate::policies::PolicyKind;
use crate::recording;

/// Unified run-scale parameters for every experiment driver.
///
/// One type covers both the single-thread and multi-programmed runners:
/// `cores == 1` means a single-thread run (the paper warms 500M and
/// measures 1B instructions per simpoint; the presets here are
/// laptop-scale with the same warm/measure ratio), `cores > 1` a shared-
/// LLC co-simulation where `warmup`/`measure` are per core. The legacy
/// [`StParams`]/[`MpParams`] views convert losslessly in both directions
/// (`From` impls), so call sites migrate mechanically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Warmup instructions (per core), not measured.
    pub warmup: u64,
    /// Measured instructions (per core).
    pub measure: u64,
    /// Trace seed (single-thread traces) or mix seed (multi-core).
    pub seed: u64,
    /// Simulated core count: 1 = single-thread, 4 = the paper's mixes.
    pub cores: u32,
}

impl RunScale {
    /// The single-thread preset (Figures 6/7/9/10, Table 3).
    pub fn single_thread() -> Self {
        RunScale {
            warmup: 4_000_000,
            measure: 20_000_000,
            seed: 1,
            cores: 1,
        }
    }

    /// The 4-core multi-programmed preset (Figures 4/5).
    pub fn multi_core() -> Self {
        RunScale {
            warmup: 2_000_000,
            measure: 8_000_000,
            seed: 42,
            cores: 4,
        }
    }

    /// Replaces the warmup instruction count.
    pub fn warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Replaces the measured instruction count.
    pub fn measure(mut self, measure: u64) -> Self {
        self.measure = measure;
        self
    }

    /// Replaces the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the core count.
    pub fn cores(mut self, cores: u32) -> Self {
        self.cores = cores;
        self
    }

    /// This scale's single-thread view.
    pub fn st(&self) -> StParams {
        StParams {
            warmup: self.warmup,
            measure: self.measure,
            seed: self.seed,
        }
    }

    /// This scale's multi-programmed view.
    pub fn mp(&self) -> MpParams {
        MpParams {
            warmup: self.warmup,
            measure: self.measure,
        }
    }
}

impl Default for RunScale {
    fn default() -> Self {
        RunScale::single_thread()
    }
}

impl From<RunScale> for StParams {
    fn from(scale: RunScale) -> Self {
        scale.st()
    }
}

impl From<RunScale> for MpParams {
    fn from(scale: RunScale) -> Self {
        scale.mp()
    }
}

impl From<StParams> for RunScale {
    fn from(p: StParams) -> Self {
        RunScale::single_thread()
            .warmup(p.warmup)
            .measure(p.measure)
            .seed(p.seed)
    }
}

impl From<MpParams> for RunScale {
    fn from(p: MpParams) -> Self {
        RunScale::multi_core().warmup(p.warmup).measure(p.measure)
    }
}

/// Scale parameters for single-thread runs (the single-thread view of
/// [`RunScale`]).
#[derive(Debug, Clone, Copy)]
pub struct StParams {
    /// Warmup instructions (not measured).
    pub warmup: u64,
    /// Measured instructions.
    pub measure: u64,
    /// Trace seed.
    pub seed: u64,
}

impl Default for StParams {
    fn default() -> Self {
        RunScale::single_thread().st()
    }
}

/// Scale parameters for 4-core runs (the multi-programmed view of
/// [`RunScale`]).
#[derive(Debug, Clone, Copy)]
pub struct MpParams {
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Measured instructions per core.
    pub measure: u64,
}

impl Default for MpParams {
    fn default() -> Self {
        RunScale::multi_core().mp()
    }
}

/// Runs one workload on the single-thread hierarchy with a given policy.
///
/// By default this replays the workload's shared [`crate::recording`]
/// stream (recorded once per `(workload, seed, warmup, measure)`) into
/// the policy under test — bit-identical to full simulation and much
/// cheaper once a second policy asks for the same workload. Pass
/// `--no-replay` (see [`recording::set_replay_enabled`]) to force full
/// simulation per cell.
pub fn run_single(
    workload: &Workload,
    policy: Box<dyn ReplacementPolicy + Send>,
    params: StParams,
) -> SingleCoreResult {
    let config = HierarchyConfig::single_thread();
    let mut engine = single_engine(config.llc, workload, policy);
    if recording::replay_enabled() {
        let rec = recording::recording_for(workload, params.seed, params.warmup, params.measure);
        let _phase = mrp_obs::phase("replay");
        return replay_single(&rec, engine.cache_mut(), &config.latencies);
    }
    let _phase = mrp_obs::phase("simulate");
    let mut sim = SingleCoreSim::with_llc(config, engine.into_llc(), workload.trace(params.seed));
    sim.run(params.warmup, params.measure)
}

/// Builds the facade engine every single-thread run drives: the policy
/// under test over the LLC geometry, labelled with the workload.
fn single_engine(
    llc: CacheConfig,
    workload: &Workload,
    policy: Box<dyn ReplacementPolicy + Send>,
) -> PredictionEngine {
    EngineConfig::new(llc)
        .policy(policy)
        .label(workload.name())
        .build()
}

/// Runs one workload under a named policy.
pub fn run_single_kind(
    workload: &Workload,
    kind: PolicyKind,
    params: StParams,
) -> SingleCoreResult {
    let config = HierarchyConfig::single_thread();
    run_single(workload, kind.build(&config.llc), params)
}

/// Runs one workload under Hawkeye.
pub fn run_single_hawkeye(workload: &Workload, params: StParams) -> SingleCoreResult {
    let config = HierarchyConfig::single_thread();
    run_single(workload, PolicyKind::hawkeye(&config.llc), params)
}

/// Builds the cross-validated MPPPB policy for a workload: workloads in
/// tuning half A get the configuration tuned on half B, and vice versa,
/// so no workload is reported with features developed on it (§5.2).
///
/// The policy is wrapped in the set-dueling guard
/// ([`mrp_core::AdaptiveMpppb`]): the paper's parameters were co-tuned
/// with ~10 CPU-years of search and generalize across its 99 segments;
/// at this repository's search budget, cross-half generalization
/// occasionally misfires catastrophically, and the guard clamps those
/// cases to default-policy behavior (see DESIGN.md).
pub fn mpppb_cv_policy(workload: &Workload) -> Box<dyn ReplacementPolicy + Send> {
    use mrp_core::mpppb::MpppbConfig;
    use mrp_core::AdaptiveMpppb;
    let llc = HierarchyConfig::single_thread().llc;
    let config = if in_tuning_half_a(workload) {
        MpppbConfig::single_thread_alt(&llc)
    } else {
        MpppbConfig::single_thread(&llc)
    };
    Box::new(AdaptiveMpppb::new(config, &llc))
}

/// Whether `workload` belongs to tuning half A of the fixed
/// cross-validation split ([`crate::SPLIT_SEED`]). The single source of
/// the half-membership rule shared by the headline and CV policy
/// builders.
///
/// The split is a pure function of the fixed seed, so the half-A id set
/// is computed once and memoized: rebuilding the 33-workload suite and
/// re-running the shuffle on every policy construction was measurable
/// overhead on the headline matrix.
pub fn in_tuning_half_a(workload: &Workload) -> bool {
    static HALF_A_IDS: OnceLock<HashSet<usize>> = OnceLock::new();
    let ids = HALF_A_IDS.get_or_init(|| {
        let suite = mrp_trace::workloads::suite();
        let (half_a, _) = mrp_search::crossval::split(&suite, crate::SPLIT_SEED);
        half_a.iter().map(|w| w.id().0).collect()
    });
    ids.contains(&workload.id().0)
}

/// Runs one workload under the cross-validated MPPPB configuration.
pub fn run_single_mpppb_cv(workload: &Workload, params: StParams) -> SingleCoreResult {
    run_single(workload, mpppb_cv_policy(workload), params)
}

/// Builds the headline MPPPB policy: the configuration co-tuned on the
/// workload's own suite half. This matches the common practice of the
/// baselines the paper compares against (SHiP, DRRIP, Hawkeye were all
/// tuned on their evaluation benchmarks); the stricter cross-validated
/// assignment is available via [`mpppb_cv_policy`] as a sensitivity
/// check (see DESIGN.md on why the paper's CV does not transfer to a
/// 33-workload heterogeneous suite at this search budget).
pub fn mpppb_headline_policy(workload: &Workload) -> Box<dyn ReplacementPolicy + Send> {
    use mrp_core::mpppb::{Mpppb, MpppbConfig};
    let llc = HierarchyConfig::single_thread().llc;
    let config = if in_tuning_half_a(workload) {
        MpppbConfig::single_thread(&llc)
    } else {
        MpppbConfig::single_thread_alt(&llc)
    };
    Box::new(Mpppb::new(config, &llc))
}

/// Runs one workload under the headline MPPPB configuration.
pub fn run_single_mpppb(workload: &Workload, params: StParams) -> SingleCoreResult {
    run_single(workload, mpppb_headline_policy(workload), params)
}

/// Runs one workload under Belady MIN with optimal bypass: pass 1 is the
/// workload's shared recording (the LLC stream is policy-independent, so
/// MIN's lookahead pass is the same recording every other policy replays),
/// pass 2 replays under MIN. With `--no-replay`, pass 2 re-runs full
/// simulation instead; pass 1 still needs a recording, taken off-cache.
pub fn run_single_min(workload: &Workload, params: StParams) -> SingleCoreResult {
    let config = HierarchyConfig::single_thread();
    if recording::replay_enabled() {
        let rec = recording::recording_for(workload, params.seed, params.warmup, params.measure);
        let _phase = mrp_obs::phase("replay");
        let min = MinPolicy::new(&config.llc, &rec.llc_blocks());
        let mut engine = single_engine(config.llc, workload, Box::new(min));
        return replay_single(&rec, engine.cache_mut(), &config.latencies);
    }
    let _phase = mrp_obs::phase("simulate");
    let rec = LlcRecording::record(
        workload.name(),
        workload.trace(params.seed),
        &config,
        params.warmup,
        params.measure,
    );
    let min = MinPolicy::new(&config.llc, &rec.llc_blocks());
    let engine = single_engine(config.llc, workload, Box::new(min));
    let mut sim = SingleCoreSim::with_llc(config, engine.into_llc(), workload.trace(params.seed));
    sim.run(params.warmup, params.measure)
}

/// Runs a mix under a named policy on the shared 8MB LLC.
pub fn run_mix_kind(mix: &Mix, kind: PolicyKind, params: MpParams) -> MulticoreResult {
    let config = HierarchyConfig::multi_core();
    run_mix_policy(mix, kind.build(&config.llc), params)
}

/// Runs a mix under Hawkeye.
pub fn run_mix_hawkeye(mix: &Mix, params: MpParams) -> MulticoreResult {
    let config = HierarchyConfig::multi_core();
    run_mix_policy(mix, PolicyKind::hawkeye(&config.llc), params)
}

/// Runs a mix under an arbitrary prebuilt policy (ablation experiments).
pub fn run_mix_policy(
    mix: &Mix,
    policy: Box<dyn ReplacementPolicy + Send>,
    params: MpParams,
) -> MulticoreResult {
    let _phase = mrp_obs::phase("simulate");
    let config = HierarchyConfig::multi_core();
    let engine = EngineConfig::new(config.llc)
        .policy(policy)
        .label(mix.label())
        .build();
    let mut sim = MulticoreSim::with_llc(config, engine.into_llc(), mix);
    sim.run(params.warmup, params.measure)
}

/// Standalone-IPC baseline: each workload alone on the 8MB LLC with LRU
/// (§4.5 "SingleIPC_i ... running in isolation with a 8MB cache with LRU
/// replacement"). Returns IPC per suite index.
pub fn standalone_ipcs(workloads: &[Workload], params: MpParams, seed: u64) -> Vec<f64> {
    mrp_runtime::par_map(workloads, |w| {
        let config = HierarchyConfig::multi_core();
        if recording::replay_enabled() {
            // Recordings are LLC-geometry-independent, so the same cached
            // stream the single-thread figures replay against the 2MB LLC
            // replays here against the standalone 8MB LLC.
            let rec = recording::recording_for(w, seed, params.warmup, params.measure);
            let _phase = mrp_obs::phase("replay");
            let mut engine = PolicyKind::Lru.engine(config.llc).label(w.name()).build();
            return replay_single(&rec, engine.cache_mut(), &config.latencies).ipc;
        }
        let _phase = mrp_obs::phase("simulate");
        let engine = PolicyKind::Lru.engine(config.llc).label(w.name()).build();
        let mut sim = SingleCoreSim::with_llc(config, engine.into_llc(), w.trace(seed));
        sim.run(params.warmup, params.measure).ipc
    })
}

/// Looks up the standalone IPCs for a mix's members.
pub fn mix_standalone(mix: &Mix, all_ipcs: &[f64]) -> Vec<f64> {
    mix.members().iter().map(|id| all_ipcs[id.0]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_trace::{workloads, MixBuilder};

    fn tiny() -> StParams {
        StParams {
            warmup: 50_000,
            measure: 200_000,
            seed: 1,
        }
    }

    #[test]
    fn run_scale_round_trips_through_legacy_params() {
        let scale = RunScale::single_thread().warmup(123).measure(456).seed(7);
        let st: StParams = scale.into();
        assert_eq!((st.warmup, st.measure, st.seed), (123, 456, 7));
        let back: RunScale = st.into();
        assert_eq!(back, scale);

        let mp_scale = RunScale::multi_core().warmup(11).measure(22);
        let mp: MpParams = mp_scale.into();
        assert_eq!((mp.warmup, mp.measure), (11, 22));
        let back: RunScale = mp.into();
        assert_eq!(back, mp_scale);
        assert_eq!(back.cores, 4);

        // Presets mirror the legacy defaults exactly.
        let st_default = StParams::default();
        assert_eq!(RunScale::from(st_default), RunScale::single_thread());
        let mp_default = MpParams::default();
        assert_eq!(
            (mp_default.warmup, mp_default.measure),
            (
                RunScale::multi_core().warmup,
                RunScale::multi_core().measure
            )
        );
    }

    #[test]
    fn min_beats_lru_on_thrash_loop() {
        let suite = workloads::suite();
        let loop_edge = &suite[4];
        let lru = run_single_kind(loop_edge, PolicyKind::Lru, tiny());
        let min = run_single_min(loop_edge, tiny());
        assert!(
            min.mpki < lru.mpki,
            "MIN ({}) should beat LRU ({}) on loop.edge",
            min.mpki,
            lru.mpki
        );
        assert!(min.ipc >= lru.ipc);
    }

    #[test]
    fn all_headline_policies_run_on_one_workload() {
        let suite = workloads::suite();
        let w = &suite[14]; // scanhot.protect
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Perceptron,
            PolicyKind::MpppbSingle,
        ] {
            let r = run_single_kind(w, kind, tiny());
            assert!(r.ipc > 0.0, "{:?} produced zero IPC", kind);
        }
        let h = run_single_hawkeye(w, tiny());
        assert!(h.ipc > 0.0);
    }

    #[test]
    fn facade_replay_matches_legacy_cache_construction_bit_for_bit() {
        // The PredictionEngine facade must be a zero-cost re-plumbing of
        // the legacy driver path: same recording replayed through an
        // engine-built cache and through a hand-built `Cache` must agree
        // on every counter, for a fig6 baseline and the MPPPB row alike.
        let suite = workloads::suite();
        let params = tiny();
        let config = HierarchyConfig::single_thread();
        let w = suite
            .iter()
            .find(|w| w.name() == "loop.edge")
            .expect("fig6 fingerprint workload");
        let rec = recording::recording_for(w, params.seed, params.warmup, params.measure);
        for kind in [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::MpppbSingle] {
            let facade = run_single(w, kind.build(&config.llc), params);
            let mut cache = mrp_cache::Cache::new(config.llc, kind.build(&config.llc));
            let legacy = replay_single(&rec, &mut cache, &config.latencies);
            assert_eq!(facade.stats, legacy.stats, "{kind:?} stats diverge");
            assert_eq!(facade.instructions, legacy.instructions, "{kind:?}");
            assert_eq!(facade.cycles, legacy.cycles, "{kind:?}");
            assert_eq!(facade.ipc.to_bits(), legacy.ipc.to_bits(), "{kind:?}");
            assert_eq!(facade.mpki.to_bits(), legacy.mpki.to_bits(), "{kind:?}");
        }
    }

    #[test]
    fn mix_runner_produces_weighted_speedup_near_one_for_lru() {
        let suite = workloads::suite();
        let mix = MixBuilder::new(5).mix(0);
        let params = MpParams {
            warmup: 30_000,
            measure: 150_000,
        };
        let standalone = standalone_ipcs(&suite, params, mix.seed());
        let result = run_mix_kind(&mix, PolicyKind::Lru, params);
        let ws = result.weighted_ipc(&mix_standalone(&mix, &standalone));
        // Four programs sharing a cache are at most as fast as standalone.
        assert!(ws > 0.5 && ws <= 4.2, "weighted IPC {ws}");
    }
}

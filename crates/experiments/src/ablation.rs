//! Leave-one-feature-out ablation (Figure 10).
//!
//! "Each bar shows the speedup obtained over the 900 multi-programmed
//! workloads when a given feature is removed from the set" (§6.4). The
//! paper ablates the Table 1(a) single-thread set on the multi-programmed
//! workloads; we do the same.

use mrp_cache::HierarchyConfig;
use mrp_core::mpppb::{Mpppb, MpppbConfig};
use mrp_core::{feature_sets, Feature};
use mrp_cpu::metrics::geometric_mean;
use mrp_trace::{workloads, MixBuilder};

use crate::policies::PolicyKind;
use crate::runner::{mix_standalone, run_mix_kind, run_mix_policy, standalone_ipcs, MpParams};

/// Result of the ablation study.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// Geomean weighted speedup with the full feature set.
    pub original: f64,
    /// (feature notation, geomean speedup with that feature omitted).
    pub omitted: Vec<(String, f64)>,
}

impl Ablation {
    /// The feature whose removal hurts most (largest speedup drop).
    pub fn most_valuable(&self) -> &(String, f64) {
        self.omitted
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("nonempty ablation")
    }
}

/// Returns `features` with element `index` removed.
pub fn without(features: &[Feature], index: usize) -> Vec<Feature> {
    let mut out = features.to_vec();
    out.remove(index);
    out
}

/// Runs the ablation of the Table 1(a) set over `mix_count` mixes,
/// ablating only the first `feature_limit` features (16 = full study).
pub fn run(params: MpParams, mix_count: usize, feature_limit: usize, seed: u64) -> Ablation {
    let suite = workloads::suite();
    let builder = MixBuilder::new(seed);
    let standalone = standalone_ipcs(&suite, params, seed);
    let config = HierarchyConfig::multi_core();
    // Fig. 10 uses the single-thread Table 1(a) features over the
    // multi-programmed setup (SRRIP default).
    let base = MpppbConfig::multi_core(&config.llc).with_features(feature_sets::table_1a());

    let mixes: Vec<_> = (0..mix_count.max(1))
        .map(|i| builder.mix(100 + i))
        .collect();
    let bases: Vec<Vec<f64>> = mixes
        .iter()
        .map(|m| mix_standalone(m, &standalone))
        .collect();
    let lru_weighted: Vec<f64> = mrp_runtime::map_indexed(mixes.len(), |mi| {
        run_mix_kind(&mixes[mi], PolicyKind::Lru, params).weighted_ipc(&bases[mi])
    });

    // Candidate feature sets: the full set first, then each leave-one-out
    // set. One job per (set × mix) cell; each set's geomean reduces its
    // cells in mix order, exactly as the serial loop did.
    let limit = feature_limit.max(1).min(base.features.len());
    let mut sets: Vec<Vec<Feature>> = vec![base.features.clone()];
    sets.extend((0..limit).map(|i| without(&base.features, i)));

    let n_mixes = mixes.len();
    let cells: Vec<f64> = mrp_runtime::map_indexed(sets.len() * n_mixes, |job| {
        let (si, mi) = (job / n_mixes, job % n_mixes);
        let policy_config = base.clone().with_features(sets[si].clone());
        let policy = Box::new(Mpppb::new(policy_config, &config.llc));
        run_mix_policy(&mixes[mi], policy, params).weighted_ipc(&bases[mi]) / lru_weighted[mi]
    });
    let geomean_of = |si: usize| geometric_mean(&cells[si * n_mixes..(si + 1) * n_mixes]);

    let original = geomean_of(0);
    let omitted = base
        .features
        .iter()
        .take(limit)
        .enumerate()
        .map(|(i, f)| (f.to_string(), geomean_of(i + 1)))
        .collect();

    Ablation { original, omitted }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn without_removes_exactly_one() {
        let set = feature_sets::table_1a();
        let reduced = without(&set, 3);
        assert_eq!(reduced.len(), set.len() - 1);
        assert_eq!(reduced[0], set[0]);
        assert_eq!(reduced[3], set[4]);
    }

    #[test]
    fn ablation_produces_one_entry_per_feature() {
        let params = MpParams {
            warmup: 10_000,
            measure: 50_000,
        };
        let a = run(params, 1, 2, 5);
        assert_eq!(a.omitted.len(), 2);
        assert!(a.original > 0.0);
        let _ = a.most_valuable();
    }
}

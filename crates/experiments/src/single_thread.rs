//! Single-thread comparison matrix: Figures 6 (speedup) and 7 (MPKI).

use mrp_cpu::metrics::{arithmetic_mean, geometric_mean};
use mrp_trace::workloads;

use crate::policies::PolicyKind;
use crate::runner::{
    run_single_hawkeye, run_single_kind, run_single_min, run_single_mpppb, run_single_mpppb_cv,
    StParams,
};

/// Per-workload results for all compared policies.
#[derive(Debug, Clone)]
pub struct StRow {
    /// Workload name.
    pub workload: String,
    /// LRU baseline IPC / MPKI.
    pub lru_ipc: f64,
    /// LRU MPKI.
    pub lru_mpki: f64,
    /// (policy name, ipc, mpki) for Hawkeye, Perceptron, MPPPB, MIN.
    pub policies: Vec<(String, f64, f64)>,
}

impl StRow {
    /// Speedup of policy `name` over LRU.
    pub fn speedup(&self, name: &str) -> f64 {
        self.policies
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, ipc, _)| ipc / self.lru_ipc)
            .unwrap_or_else(|| panic!("no policy {name}"))
    }

    /// MPKI of policy `name`.
    pub fn mpki(&self, name: &str) -> f64 {
        self.policies
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, mpki)| *mpki)
            .unwrap_or_else(|| panic!("no policy {name}"))
    }
}

/// Aggregate of a full single-thread comparison.
#[derive(Debug, Clone)]
pub struct StMatrix {
    /// One row per workload.
    pub rows: Vec<StRow>,
    /// Policy names in column order.
    pub policy_names: Vec<String>,
}

impl StMatrix {
    /// Geometric-mean speedup over LRU for `name`.
    pub fn geomean_speedup(&self, name: &str) -> f64 {
        geometric_mean(
            &self
                .rows
                .iter()
                .map(|r| r.speedup(name))
                .collect::<Vec<_>>(),
        )
    }

    /// Arithmetic-mean MPKI for `name` (`"LRU"` included).
    pub fn mean_mpki(&self, name: &str) -> f64 {
        if name == "LRU" {
            arithmetic_mean(&self.rows.iter().map(|r| r.lru_mpki).collect::<Vec<_>>())
        } else {
            arithmetic_mean(&self.rows.iter().map(|r| r.mpki(name)).collect::<Vec<_>>())
        }
    }
}

/// Runs the headline single-thread comparison (LRU, Hawkeye, Perceptron,
/// MPPPB, MIN) over `workload_count` workloads of the suite.
///
/// MPPPB uses the default suite-tuned configuration. For the strict
/// cross-validated variant (each workload reported with features tuned
/// on the other half, plus the dueling guard — a sensitivity check on
/// feature generalization) use [`run_cv`].
pub fn run(params: StParams, workload_count: usize, include_min: bool) -> StMatrix {
    run_inner(params, workload_count, include_min, false)
}

/// The cross-validated sensitivity variant of [`run`].
pub fn run_cv(params: StParams, workload_count: usize, include_min: bool) -> StMatrix {
    run_inner(params, workload_count, include_min, true)
}

fn run_inner(params: StParams, workload_count: usize, include_min: bool, cv: bool) -> StMatrix {
    let suite = workloads::suite();
    let count = workload_count.min(suite.len()).max(1);
    let selected = &suite[..count];

    // Record every workload's LLC stream up front, in parallel: the cell
    // fan-out below has `cols` cells per workload, and without this the
    // first cell to touch a workload would record it while its siblings
    // block on the memo.
    if crate::recording::replay_enabled() {
        crate::recording::prerecord(selected, params.seed, params.warmup, params.measure);
    }

    // One job per (workload × policy) cell: every cell owns its own trace
    // stream and policy instance, and cells are collected by index, so
    // the parallel schedule cannot affect row contents or order.
    let cols = if include_min { 5 } else { 4 };
    let cells = mrp_runtime::map_indexed(count * cols, |job| {
        let w = &selected[job / cols];
        match job % cols {
            0 => run_single_kind(w, PolicyKind::Lru, params),
            1 => run_single_hawkeye(w, params),
            2 => run_single_kind(w, PolicyKind::Perceptron, params),
            3 => {
                if cv {
                    run_single_mpppb_cv(w, params)
                } else {
                    run_single_mpppb(w, params)
                }
            }
            _ => run_single_min(w, params),
        }
    });

    let mut rows = Vec::with_capacity(count);
    for (wi, w) in selected.iter().enumerate() {
        let cell = |policy: usize| &cells[wi * cols + policy];
        let mut policies = vec![
            ("Hawkeye".to_string(), cell(1).ipc, cell(1).mpki),
            ("Perceptron".to_string(), cell(2).ipc, cell(2).mpki),
            ("MPPPB".to_string(), cell(3).ipc, cell(3).mpki),
        ];
        if include_min {
            policies.push(("MIN".to_string(), cell(4).ipc, cell(4).mpki));
        }
        rows.push(StRow {
            workload: w.name().to_string(),
            lru_ipc: cell(0).ipc,
            lru_mpki: cell(0).mpki,
            policies,
        });
    }
    let mut policy_names = vec![
        "Hawkeye".to_string(),
        "Perceptron".to_string(),
        "MPPPB".to_string(),
    ];
    if include_min {
        policy_names.push("MIN".to_string());
    }
    StMatrix { rows, policy_names }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_requested_shape() {
        let params = StParams {
            warmup: 20_000,
            measure: 100_000,
            seed: 1,
        };
        let m = run(params, 2, true);
        assert_eq!(m.rows.len(), 2);
        assert_eq!(m.policy_names.len(), 4);
        for row in &m.rows {
            assert!(row.lru_ipc > 0.0);
            let _ = row.speedup("MPPPB");
            let _ = row.mpki("MIN");
        }
    }

    #[test]
    #[should_panic(expected = "no policy")]
    fn unknown_policy_name_panics() {
        let params = StParams {
            warmup: 10_000,
            measure: 50_000,
            seed: 1,
        };
        let m = run(params, 1, false);
        let _ = m.rows[0].speedup("Nonexistent");
    }
}

//! Table/series output helpers shared by the experiment binaries.

use std::fmt::Write as _;

/// Renders an aligned text table: `header` then `rows`, all columns
/// left-padded to the widest cell.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), columns, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>width$}", width = widths[i]);
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    render(&header_cells, &widths, &mut out);
    let rule: usize = widths.iter().sum::<usize>() + 2 * (columns - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        render(row, &widths, &mut out);
    }
    out
}

/// Formats a sorted S-curve (as the paper's Figures 4/5 plot) as
/// `index value` pairs, downsampled to at most `points` lines.
pub fn s_curve(label: &str, mut values: Vec<f64>, ascending: bool, points: usize) -> String {
    if ascending {
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    } else {
        values.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    }
    let mut out = format!("# s-curve: {label} ({} workloads)\n", values.len());
    let step = (values.len() / points.max(1)).max(1);
    for (i, v) in values.iter().enumerate() {
        if i % step == 0 || i == values.len() - 1 {
            let _ = writeln!(out, "{i:4}  {v:.4}");
        }
    }
    out
}

/// Formats a percentage speedup like the paper's prose ("9.0%").
pub fn pct(speedup: f64) -> String {
    format!("{:+.1}%", (speedup - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "mpki"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["longer".into(), "12.34".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("12.34"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn table_rejects_ragged_rows() {
        let _ = table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn s_curve_sorts_and_downsamples() {
        let s = s_curve("test", vec![3.0, 1.0, 2.0], true, 10);
        let body: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(body.len(), 3);
        assert!(body[0].contains("1.0000"));
        assert!(body[2].contains("3.0000"));
    }

    #[test]
    fn pct_formats_signed() {
        assert_eq!(pct(1.09), "+9.0%");
        assert_eq!(pct(0.95), "-5.0%");
    }
}

//! Typed report emission shared by the experiment binaries.
//!
//! Drivers used to hand-roll `println!` formatting; they now describe
//! their report as typed items — comments, tables, series, scalars —
//! against the [`ReportSink`] trait, and the sink decides rendering:
//!
//! * [`TextSink`] — the historical human-readable output (aligned
//!   tables, paper-style percentages),
//! * [`TsvSink`] — tab-separated records for awk/cut pipelines,
//! * [`JsonlSink`] — one JSON object per item for `jq`.
//!
//! Pick a sink with the shared `--format text|tsv|jsonl` flag (see
//! [`crate::Args::report_sink`]). The low-level [`table`], [`s_curve`]
//! and [`pct`] formatters remain available for tests and ad-hoc tools.

use std::fmt::Write as _;

use mrp_obs::Json;

/// Renders an aligned text table: `header` then `rows`, all columns
/// left-padded to the widest cell.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), columns, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>width$}", width = widths[i]);
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    render(&header_cells, &widths, &mut out);
    let rule: usize = widths.iter().sum::<usize>() + 2 * (columns - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        render(row, &widths, &mut out);
    }
    out
}

/// Formats a sorted S-curve (as the paper's Figures 4/5 plot) as
/// `index value` pairs, downsampled to at most `points` lines.
pub fn s_curve(label: &str, mut values: Vec<f64>, ascending: bool, points: usize) -> String {
    if ascending {
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    } else {
        values.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    }
    let mut out = format!("# s-curve: {label} ({} workloads)\n", values.len());
    let step = (values.len() / points.max(1)).max(1);
    for (i, v) in values.iter().enumerate() {
        if i % step == 0 || i == values.len() - 1 {
            let _ = writeln!(out, "{i:4}  {v:.4}");
        }
    }
    out
}

/// Formats a percentage speedup like the paper's prose ("9.0%").
pub fn pct(speedup: f64) -> String {
    format!("{:+.1}%", (speedup - 1.0) * 100.0)
}

/// Output encodings the drivers' shared `--format` flag selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Human-readable text (default; the historical output).
    Text,
    /// Tab-separated records, one per line.
    Tsv,
    /// One JSON object per line.
    Jsonl,
}

impl ReportFormat {
    /// Parses a `--format` operand.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on an unknown format name.
    pub fn parse(name: &str) -> ReportFormat {
        match name {
            "text" => ReportFormat::Text,
            "tsv" => ReportFormat::Tsv,
            "jsonl" => ReportFormat::Jsonl,
            other => panic!("--format expects text|tsv|jsonl, got {other:?}"),
        }
    }

    /// A sink of this format writing to `out`.
    pub fn sink_to<W: std::io::Write + 'static>(self, out: W) -> Box<dyn ReportSink> {
        match self {
            ReportFormat::Text => Box::new(TextSink::new(out)),
            ReportFormat::Tsv => Box::new(TsvSink::new(out)),
            ReportFormat::Jsonl => Box::new(JsonlSink::new(out)),
        }
    }

    /// A sink of this format writing to stdout.
    pub fn stdout_sink(self) -> Box<dyn ReportSink> {
        self.sink_to(std::io::stdout())
    }
}

/// A typed destination for driver reports.
///
/// Items arrive in presentation order; sinks render them immediately
/// (no buffering contract), so interleaving with `eprintln!` progress
/// messages behaves like the old direct printing.
pub trait ReportSink {
    /// Free-form context for human readers (headers, paper references).
    fn comment(&mut self, text: &str);

    /// A named table with one row per entity.
    fn table(&mut self, title: &str, header: &[&str], rows: &[Vec<String>]);

    /// A sorted/sampled series, e.g. an S-curve, as `(index, value)`.
    fn series(&mut self, label: &str, points: &[(usize, f64)]);

    /// A named summary number. `rendered` is the human formatting
    /// (e.g. `+9.0%`); structured sinks emit the raw `value` instead.
    fn scalar(&mut self, name: &str, value: f64, rendered: &str);
}

/// Downsamples sorted `values` to at most `points` `(index, value)`
/// pairs — the series-shaped equivalent of [`s_curve`].
pub fn series_points(mut values: Vec<f64>, ascending: bool, points: usize) -> Vec<(usize, f64)> {
    if ascending {
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    } else {
        values.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    }
    let step = (values.len() / points.max(1)).max(1);
    values
        .iter()
        .enumerate()
        .filter(|(i, _)| i % step == 0 || *i == values.len() - 1)
        .map(|(i, v)| (i, *v))
        .collect()
}

/// Human-readable rendering (the historical driver output).
pub struct TextSink<W: std::io::Write> {
    out: W,
}

impl<W: std::io::Write> TextSink<W> {
    /// A text sink writing to `out`.
    pub fn new(out: W) -> Self {
        TextSink { out }
    }
}

impl<W: std::io::Write> ReportSink for TextSink<W> {
    fn comment(&mut self, text: &str) {
        let _ = writeln!(self.out, "{text}");
    }

    fn table(&mut self, _title: &str, header: &[&str], rows: &[Vec<String>]) {
        let _ = writeln!(self.out, "{}", table(header, rows));
    }

    fn series(&mut self, label: &str, points: &[(usize, f64)]) {
        let _ = writeln!(self.out, "# s-curve: {label}");
        for (i, v) in points {
            let _ = writeln!(self.out, "{i:4}  {v:.4}");
        }
    }

    fn scalar(&mut self, name: &str, _value: f64, rendered: &str) {
        let _ = writeln!(self.out, "  {name:<12} {rendered}");
    }
}

/// Tab-separated records: `kind<TAB>...` per line, `#`-prefixed
/// comments, so `cut -f`/`awk -F'\t'` consume driver output directly.
pub struct TsvSink<W: std::io::Write> {
    out: W,
}

impl<W: std::io::Write> TsvSink<W> {
    /// A TSV sink writing to `out`.
    pub fn new(out: W) -> Self {
        TsvSink { out }
    }
}

impl<W: std::io::Write> ReportSink for TsvSink<W> {
    fn comment(&mut self, text: &str) {
        let _ = writeln!(self.out, "# {text}");
    }

    fn table(&mut self, title: &str, header: &[&str], rows: &[Vec<String>]) {
        let _ = writeln!(self.out, "table\t{title}\t{}", header.join("\t"));
        for row in rows {
            let _ = writeln!(self.out, "row\t{title}\t{}", row.join("\t"));
        }
    }

    fn series(&mut self, label: &str, points: &[(usize, f64)]) {
        for (i, v) in points {
            let _ = writeln!(self.out, "series\t{label}\t{i}\t{v}");
        }
    }

    fn scalar(&mut self, name: &str, value: f64, _rendered: &str) {
        let _ = writeln!(self.out, "scalar\t{name}\t{value}");
    }
}

/// One JSON object per item, for `jq`-style post-processing.
pub struct JsonlSink<W: std::io::Write> {
    out: W,
}

impl<W: std::io::Write> JsonlSink<W> {
    /// A JSONL sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink { out }
    }

    fn emit(&mut self, line: Json) {
        let _ = writeln!(self.out, "{}", line.render());
    }
}

impl<W: std::io::Write> ReportSink for JsonlSink<W> {
    fn comment(&mut self, text: &str) {
        self.emit(Json::Obj(vec![
            ("type".into(), Json::Str("comment".into())),
            ("text".into(), Json::Str(text.into())),
        ]));
    }

    fn table(&mut self, title: &str, header: &[&str], rows: &[Vec<String>]) {
        for row in rows {
            assert_eq!(row.len(), header.len(), "ragged table row");
            let mut obj = vec![
                ("type".into(), Json::Str("row".into())),
                ("table".into(), Json::Str(title.into())),
            ];
            for (col, cell) in header.iter().zip(row) {
                // Numeric cells stay numbers; annotated ones ("1.23x")
                // stay strings.
                let value = match cell.parse::<f64>() {
                    Ok(v) if v.is_finite() => Json::F64(v),
                    _ => Json::Str(cell.clone()),
                };
                obj.push((col.to_string(), value));
            }
            self.emit(Json::Obj(obj));
        }
    }

    fn series(&mut self, label: &str, points: &[(usize, f64)]) {
        let values = points
            .iter()
            .map(|(i, v)| Json::Arr(vec![Json::U64(*i as u64), Json::F64(*v)]))
            .collect();
        self.emit(Json::Obj(vec![
            ("type".into(), Json::Str("series".into())),
            ("label".into(), Json::Str(label.into())),
            ("points".into(), Json::Arr(values)),
        ]));
    }

    fn scalar(&mut self, name: &str, value: f64, rendered: &str) {
        self.emit(Json::Obj(vec![
            ("type".into(), Json::Str("scalar".into())),
            ("name".into(), Json::Str(name.into())),
            ("value".into(), Json::F64(value)),
            ("rendered".into(), Json::Str(rendered.into())),
        ]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "mpki"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["longer".into(), "12.34".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("12.34"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn table_rejects_ragged_rows() {
        let _ = table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn s_curve_sorts_and_downsamples() {
        let s = s_curve("test", vec![3.0, 1.0, 2.0], true, 10);
        let body: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(body.len(), 3);
        assert!(body[0].contains("1.0000"));
        assert!(body[2].contains("3.0000"));
    }

    #[test]
    fn series_points_match_s_curve_sampling() {
        let pts = series_points(vec![3.0, 1.0, 2.0], true, 10);
        assert_eq!(pts, vec![(0, 1.0), (1, 2.0), (2, 3.0)]);
        let descending = series_points(vec![3.0, 1.0, 2.0], false, 10);
        assert_eq!(descending[0], (0, 3.0));
    }

    #[test]
    fn pct_formats_signed() {
        assert_eq!(pct(1.09), "+9.0%");
        assert_eq!(pct(0.95), "-5.0%");
    }

    fn collect<F: FnOnce(&mut dyn ReportSink)>(format: ReportFormat, emit: F) -> String {
        let buf: Vec<u8> = Vec::new();
        let shared = std::sync::Arc::new(std::sync::Mutex::new(buf));
        struct SharedWriter(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl std::io::Write for SharedWriter {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = format.sink_to(SharedWriter(std::sync::Arc::clone(&shared)));
        emit(sink.as_mut());
        drop(sink);
        let bytes = shared.lock().unwrap().clone();
        String::from_utf8(bytes).expect("utf8 report")
    }

    fn emit_sample(sink: &mut dyn ReportSink) {
        sink.comment("hello");
        sink.table(
            "t",
            &["name", "ipc"],
            &[
                vec!["a".into(), "1.5".into()],
                vec!["b".into(), "2x".into()],
            ],
        );
        sink.series("s", &[(0, 1.0), (1, 2.0)]);
        sink.scalar("geo", 1.09, "+9.0%");
    }

    #[test]
    fn text_sink_keeps_human_formatting() {
        let out = collect(ReportFormat::Text, emit_sample);
        assert!(out.contains("hello"));
        assert!(out.contains("name"));
        assert!(out.contains("+9.0%"));
    }

    #[test]
    fn tsv_sink_is_tab_separated() {
        let out = collect(ReportFormat::Tsv, emit_sample);
        assert!(out.contains("# hello"));
        assert!(out.contains("row\tt\ta\t1.5"));
        assert!(out.contains("series\ts\t1\t2"));
        assert!(out.contains("scalar\tgeo\t1.09"));
    }

    #[test]
    fn jsonl_sink_lines_parse_and_type_cells() {
        let out = collect(ReportFormat::Jsonl, emit_sample);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5, "comment + 2 rows + series + scalar");
        for line in &lines {
            let parsed = Json::parse(line).expect("every line is JSON");
            assert!(parsed.get("type").is_some());
        }
        let row = Json::parse(lines[1]).unwrap();
        assert_eq!(row.get("ipc").and_then(Json::as_f64), Some(1.5));
        let row_b = Json::parse(lines[2]).unwrap();
        assert_eq!(row_b.get("ipc").and_then(Json::as_str), Some("2x"));
    }

    #[test]
    #[should_panic(expected = "expects text|tsv|jsonl")]
    fn unknown_format_panics() {
        let _ = ReportFormat::parse("xml");
    }
}

//! Multi-programmed comparison: Figures 4 (weighted speedup) and 5 (MPKI).

use mrp_cpu::metrics::{arithmetic_mean, geometric_mean};
use mrp_trace::{workloads, MixBuilder};

use crate::policies::PolicyKind;
use crate::runner::{mix_standalone, run_mix_hawkeye, run_mix_kind, standalone_ipcs, MpParams};

/// Per-mix results of the multi-programmed comparison.
#[derive(Debug, Clone)]
pub struct MpRow {
    /// Mix label (member workload names).
    pub label: String,
    /// Normalized weighted speedup per policy, LRU-normalized.
    pub speedups: Vec<(String, f64)>,
    /// MPKI per policy (LRU included by name).
    pub mpkis: Vec<(String, f64)>,
}

/// Aggregate results across mixes.
#[derive(Debug, Clone)]
pub struct MpMatrix {
    /// One row per mix.
    pub rows: Vec<MpRow>,
    /// Policy column order (not including LRU for speedups).
    pub policy_names: Vec<String>,
}

impl MpMatrix {
    /// Speedup values of `name` across mixes (for S-curves).
    pub fn speedups(&self, name: &str) -> Vec<f64> {
        self.rows
            .iter()
            .map(|r| {
                r.speedups
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap_or_else(|| panic!("no policy {name}"))
            })
            .collect()
    }

    /// MPKI values of `name` across mixes.
    pub fn mpkis(&self, name: &str) -> Vec<f64> {
        self.rows
            .iter()
            .map(|r| {
                r.mpkis
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap_or_else(|| panic!("no policy {name}"))
            })
            .collect()
    }

    /// Geometric-mean normalized weighted speedup of `name`.
    pub fn geomean_speedup(&self, name: &str) -> f64 {
        geometric_mean(&self.speedups(name))
    }

    /// Arithmetic-mean MPKI of `name`.
    pub fn mean_mpki(&self, name: &str) -> f64 {
        arithmetic_mean(&self.mpkis(name))
    }

    /// How many mixes run slower than LRU under `name` (the paper notes
    /// 18 for Hawkeye, 201 for Perceptron, 115 for MPPPB of 900).
    pub fn below_lru(&self, name: &str) -> usize {
        self.speedups(name).iter().filter(|&&s| s < 1.0).count()
    }
}

/// Runs the multi-programmed comparison over `mix_count` test mixes.
///
/// Mixes are drawn after `train_skip` training mixes (the paper trains on
/// the first 100 of 1000 and reports the remaining 900).
pub fn run(params: MpParams, mix_count: usize, train_skip: usize, seed: u64) -> MpMatrix {
    let suite = workloads::suite();
    let builder = MixBuilder::new(seed);
    let standalone = standalone_ipcs(&suite, params, seed);

    // One job per (mix × policy) cell, collected by index; the weighted
    // speedups are normalized against each mix's LRU cell afterward.
    let mixes: Vec<_> = (0..mix_count)
        .map(|i| builder.mix(train_skip + i))
        .collect();
    const COLS: usize = 4;
    let cells = mrp_runtime::map_indexed(mixes.len() * COLS, |job| {
        let mix = &mixes[job / COLS];
        match job % COLS {
            0 => run_mix_kind(mix, PolicyKind::Lru, params),
            1 => run_mix_hawkeye(mix, params),
            2 => run_mix_kind(mix, PolicyKind::Perceptron, params),
            _ => run_mix_kind(mix, PolicyKind::MpppbMulti, params),
        }
    });

    let mut rows = Vec::with_capacity(mixes.len());
    for (mi, mix) in mixes.iter().enumerate() {
        let base = mix_standalone(mix, &standalone);
        let cell = |policy: usize| &cells[mi * COLS + policy];
        let lru_weighted = cell(0).weighted_ipc(&base);

        let named = [(1, "Hawkeye"), (2, "Perceptron"), (3, "MPPPB")];
        let speedups = named
            .iter()
            .map(|&(p, name)| (name.to_string(), cell(p).weighted_ipc(&base) / lru_weighted))
            .collect();
        let mut mpkis = vec![("LRU".to_string(), cell(0).mpki)];
        mpkis.extend(
            named
                .iter()
                .map(|&(p, name)| (name.to_string(), cell(p).mpki)),
        );

        rows.push(MpRow {
            label: mix.label(),
            speedups,
            mpkis,
        });
    }
    MpMatrix {
        rows,
        policy_names: vec![
            "Hawkeye".to_string(),
            "Perceptron".to_string(),
            "MPPPB".to_string(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shape_and_metrics() {
        let params = MpParams {
            warmup: 20_000,
            measure: 100_000,
        };
        let m = run(params, 2, 1, 5);
        assert_eq!(m.rows.len(), 2);
        assert_eq!(m.speedups("MPPPB").len(), 2);
        assert_eq!(m.mpkis("LRU").len(), 2);
        assert!(m.mean_mpki("LRU") >= 0.0);
        assert!(m.below_lru("Hawkeye") <= 2);
    }
}

//! Process-global memoized recording cache for record-once/replay-many.
//!
//! Every single-thread experiment cell is `(workload, policy)` at some
//! `(seed, warmup, measure)`. The stream reaching the LLC is independent
//! of the LLC policy *and* geometry, so the first cell to ask for a
//! workload's stream records it once (trace generation + L1/L2 +
//! prefetcher) and every other cell — any policy, any figure driver,
//! any LLC size — replays the shared recording. Keys deliberately omit
//! the LLC geometry: `standalone_ipcs` replays the same recordings
//! against the 8MB multi-core LLC that Fig. 6/7 replay against the 2MB
//! single-thread LLC.
//!
//! Concurrency: fan-outs from `mrp_runtime` hit the cache from many
//! workers; [`mrp_runtime::Memo`] guarantees exactly one worker records
//! a given key while the rest block for the result.
//!
//! Debugging escape hatch: `--no-replay` on the figure drivers (or
//! [`set_replay_enabled`]`(false)`) routes every run back through full
//! simulation. Results are bit-identical either way — the flag exists to
//! *demonstrate* that, and to keep full simulation reachable when
//! bisecting the replay layer itself.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use mrp_cache::replay::LlcRecording;
use mrp_cache::HierarchyConfig;
use mrp_runtime::Memo;
use mrp_search::{FastEvaluator, LlcTrace};
use mrp_trace::Workload;

/// Recording identity: (workload id, seed, warmup, measure). LLC
/// geometry is deliberately absent — recordings are geometry-independent.
type Key = (usize, u64, u64, u64);

static RECORDINGS: OnceLock<Memo<Key, Arc<LlcRecording>>> = OnceLock::new();

/// Default bound on cached recordings. Generous relative to any single
/// driver (suite size × the handful of scale presets it touches), so
/// eviction only engages in long sweeps that would otherwise grow the
/// cache without bound.
pub const DEFAULT_RECORDING_CAP: usize = 64;

/// Current recording-cache bound; 0 means unbounded.
static RECORDING_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_RECORDING_CAP);

/// Least-recently-used order over cached keys (front = coldest).
static LRU_ORDER: OnceLock<Mutex<VecDeque<Key>>> = OnceLock::new();

/// Memo telemetry handles, resolved once.
struct MemoTelemetry {
    hits: mrp_obs::Counter,
    misses: mrp_obs::Counter,
    evictions: mrp_obs::Counter,
}

fn memo_telemetry() -> &'static MemoTelemetry {
    static TELEMETRY: OnceLock<MemoTelemetry> = OnceLock::new();
    TELEMETRY.get_or_init(|| MemoTelemetry {
        hits: mrp_obs::counter("recording.memo.hits"),
        misses: mrp_obs::counter("recording.memo.misses"),
        evictions: mrp_obs::counter("recording.memo.evictions"),
    })
}

fn lru_order() -> &'static Mutex<VecDeque<Key>> {
    LRU_ORDER.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Whether drivers replay recordings (default) or re-run full
/// simulation per cell (`--no-replay`).
static REPLAY_DISABLED: AtomicBool = AtomicBool::new(false);

/// True when experiment runners should use the replay fast path.
pub fn replay_enabled() -> bool {
    !REPLAY_DISABLED.load(Ordering::Relaxed)
}

/// Enables or disables the replay fast path process-wide (the figure
/// drivers wire their `--no-replay` flag here).
pub fn set_replay_enabled(enabled: bool) {
    REPLAY_DISABLED.store(!enabled, Ordering::Relaxed);
}

fn memo() -> &'static Memo<Key, Arc<LlcRecording>> {
    RECORDINGS.get_or_init(Memo::new)
}

/// The recording-cache bound (number of recordings); 0 = unbounded.
pub fn recording_cap() -> usize {
    RECORDING_CAP.load(Ordering::Relaxed)
}

/// Sets the recording-cache bound. `0` disables eviction. Shrinking the
/// cap evicts the coldest entries on the next [`recording_for`] call,
/// not immediately.
pub fn set_recording_cap(cap: usize) {
    RECORDING_CAP.store(cap, Ordering::Relaxed);
}

/// Marks `key` most-recently-used and evicts the coldest keys beyond
/// the cap. Returns the number of evictions performed.
fn touch_and_evict(key: Key) -> u64 {
    let cap = recording_cap();
    let mut order = lru_order().lock().expect("recording LRU poisoned");
    if let Some(pos) = order.iter().position(|k| *k == key) {
        order.remove(pos);
    }
    order.push_back(key);
    let mut evicted = 0;
    if cap > 0 {
        while order.len() > cap {
            let coldest = order.pop_front().expect("len > cap > 0");
            if memo().remove(&coldest) {
                evicted += 1;
            }
        }
    }
    evicted
}

/// The shared recording of `workload` at `(seed, warmup, measure)`,
/// recorded on first request and memoized for every later caller.
///
/// The cache is LRU-bounded by [`recording_cap`]; hits, misses, and
/// evictions are surfaced through `mrp_obs` as
/// `recording.memo.{hits,misses,evictions}` when telemetry is enabled.
pub fn recording_for(
    workload: &Workload,
    seed: u64,
    warmup: u64,
    measure: u64,
) -> Arc<LlcRecording> {
    let key = (workload.id().0, seed, warmup, measure);
    let (recording, hit) = memo().get_or_compute_tracked(key, || {
        let _phase = mrp_obs::phase("record");
        Arc::new(LlcRecording::record(
            workload.name(),
            workload.trace(seed),
            &HierarchyConfig::single_thread(),
            warmup,
            measure,
        ))
    });
    let tel = memo_telemetry();
    if hit {
        tel.hits.incr();
    } else {
        tel.misses.incr();
    }
    tel.evictions.add(touch_and_evict(key));
    recording
}

/// Pre-records a set of workloads in parallel through the runtime, so a
/// following (workload × policy) fan-out replays from the first cell
/// instead of serializing all recordings behind whichever worker asked
/// first.
pub fn prerecord(workloads: &[Workload], seed: u64, warmup: u64, measure: u64) {
    mrp_runtime::par_map(workloads, |w| {
        recording_for(w, seed, warmup, measure);
    });
}

/// Builds a [`FastEvaluator`] whose traces come from the shared
/// recording cache (warmup 0, matching the fast simulator's cold
/// recording), so the search loops and the figure drivers never record
/// the same `(workload, seed, instructions)` stream twice. Falls back
/// to the evaluator's own recording pass under `--no-replay`.
pub fn fast_evaluator(workloads: &[Workload], seed: u64, instructions: u64) -> FastEvaluator {
    if !replay_enabled() {
        return FastEvaluator::new(workloads, seed, instructions);
    }
    prerecord(workloads, seed, 0, instructions);
    let traces = workloads
        .iter()
        .map(|w| LlcTrace::from_recording(recording_for(w, seed, 0, instructions)))
        .collect();
    FastEvaluator::from_traces(traces)
}

/// Number of recordings currently cached (diagnostics).
pub fn cached_recordings() -> usize {
    memo().len()
}

/// Drops every cached recording (e.g. between sweeps over disjoint
/// parameter sets).
pub fn clear_recordings() {
    memo().clear();
    lru_order().lock().expect("recording LRU poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_trace::workloads;

    #[test]
    fn recordings_are_memoized_per_key() {
        let suite = workloads::suite();
        // Unusual parameters so no other test shares the key.
        let a = recording_for(&suite[0], 0xDEAD, 1_000, 3_000);
        let b = recording_for(&suite[0], 0xDEAD, 1_000, 3_000);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one recording");
        let c = recording_for(&suite[0], 0xDEAD, 1_000, 4_000);
        assert!(!Arc::ptr_eq(&a, &c), "different measure must re-record");
        assert!(cached_recordings() >= 2);
    }

    #[test]
    fn replay_toggle_round_trips() {
        // Sole owner of the global toggle among tests, to avoid races.
        assert!(replay_enabled(), "replay defaults to on");
        set_replay_enabled(false);
        assert!(!replay_enabled());
        set_replay_enabled(true);
        assert!(replay_enabled());
        // The drivers' `--no-replay` flag wires through `Args::init_replay`.
        let args = crate::Args::from_args(["--no-replay".to_string()]);
        assert!(!args.init_replay());
        assert!(!replay_enabled());
        assert!(crate::Args::from_args(std::iter::empty()).init_replay());
        assert!(replay_enabled());
    }
}

//! Experiment harness for the multiperspective reuse prediction
//! reproduction.
//!
//! One module per evaluation artifact in the paper; each has a matching
//! binary in `src/bin/` and a reduced-scale criterion bench in
//! `crates/bench`:
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Fig. 1 / Fig. 8 (ROC curves) | [`roc`] | `fig_roc` |
//! | Fig. 3 (feature search) | [`search_curve`] | `fig3_search` |
//! | Fig. 4 (MP weighted speedup) | [`multi`] | `fig4_mp_speedup` |
//! | Fig. 5 (MP MPKI) | [`multi`] | `fig5_mp_mpki` |
//! | Fig. 6 (ST speedup) | [`single_thread`] | `fig6_st_speedup` |
//! | Fig. 7 (ST MPKI) | [`single_thread`] | `fig7_st_mpki` |
//! | Fig. 9 (associativity sweep) | [`assoc_sweep`] | `fig9_assoc` |
//! | Fig. 10 (feature ablation) | [`ablation`] | `fig10_ablation` |
//! | Tables 1 & 2 (feature sets) | [`mrp_core::feature_sets`] | `tables_features` |
//! | Table 3 (feature contributions) | [`feature_table`] | `table3_contrib` |
//!
//! All experiments are deterministic given their seed; every binary takes
//! `--instructions`, `--mixes`, `--workloads`, `--candidates` style
//! overrides (see [`cli`]) so runs scale from smoke test to paper scale.

pub mod ablation;
pub mod assoc_sweep;
pub mod cli;
pub mod feature_table;
pub mod golden;
pub mod jobspec;
pub mod multi;
pub mod output;
pub mod policies;
pub mod recording;
pub mod roc;
pub mod runner;
pub mod search_curve;
pub mod single_thread;

pub use cli::{finish_manifest, Args};
pub use jobspec::{FullScale, JobSpec, SELF_BIN};
pub use output::{ReportFormat, ReportSink};
pub use policies::PolicyKind;
pub use runner::{MpParams, RunScale, StParams};

/// The fixed cross-validation split seed shared by the feature-tuning
/// binaries (`co_tune`, `derive_features`) and the reporting experiments:
/// features tuned on one half of [`mrp_trace::workloads::suite`] are only
/// used to report the other half (§5.2).
pub const SPLIT_SEED: u64 = 17;

//! Per-workload feature-contribution analysis (Table 3).
//!
//! The paper runs the leave-one-out experiment per SPEC CPU 2017 simpoint
//! — a *fresh* testing set unused during feature design — and reports, for
//! each feature, a workload where it contributes the most MPKI reduction.
//! We reproduce the analysis on the workload suite with a fresh seed
//! (producing different concrete traces than any tuning run), using the
//! Table 1(b) feature set as the paper does, on the fast MPKI evaluator.

use mrp_core::{feature_sets, Feature};
use mrp_search::LlcTrace;
use mrp_trace::workloads;

use mrp_cache::CacheConfig;
use mrp_core::mpppb::{Mpppb, MpppbConfig};
use mrp_core::EngineConfig;

/// One row of the Table 3 reproduction.
#[derive(Debug, Clone)]
pub struct ContributionRow {
    /// Feature in the paper's notation.
    pub feature: String,
    /// The workload where this feature helps most.
    pub workload: String,
    /// MPKI with the feature removed.
    pub mpki_without: f64,
    /// MPKI with the full feature set.
    pub mpki_with: f64,
    /// Percent MPKI increase when the feature is removed.
    pub percent_increase: f64,
}

/// Runs the analysis: for every feature of Table 1(b), find the workload
/// (among the first `workload_count`) where removing it hurts most.
pub fn run(workload_count: usize, instructions: u64, seed: u64) -> Vec<ContributionRow> {
    let suite = workloads::suite();
    let count = workload_count.min(suite.len()).max(1);
    let features = feature_sets::table_1b();
    let llc = CacheConfig::llc_single();
    let base = MpppbConfig::single_thread(&llc).with_features(features.clone());

    // Record each workload's LLC stream once (fresh seed = fresh traces),
    // through the shared recording cache so any other driver at the same
    // parameters reuses the streams; recordings are independent
    // simulations, so they run in parallel either way.
    let selected = &suite[..count];
    let traces: Vec<LlcTrace> = if crate::recording::replay_enabled() {
        crate::recording::prerecord(selected, seed, 0, instructions);
        selected
            .iter()
            .map(|w| {
                LlcTrace::from_recording(crate::recording::recording_for(w, seed, 0, instructions))
            })
            .collect()
    } else {
        mrp_runtime::par_map(selected, |w| LlcTrace::record(w, seed, instructions))
    };

    let evaluate = |features: &[Feature], trace: &LlcTrace| -> f64 {
        let config = base.clone().with_features(features.to_vec());
        let mut engine = EngineConfig::new(llc)
            .policy_with(move |llc| Box::new(Mpppb::new(config, llc)))
            .label("table3")
            .build();
        trace.replay(engine.cache_mut())
    };

    // MPKI with the full set, per workload.
    let full: Vec<f64> = mrp_runtime::par_map(&traces, |t| evaluate(&features, t));

    // One replay job per (feature × workload) leave-one-out cell.
    let cells: Vec<f64> = mrp_runtime::map_indexed(features.len() * count, |job| {
        let (fi, ti) = (job / count, job % count);
        let mut reduced = features.clone();
        reduced.remove(fi);
        evaluate(&reduced, &traces[ti])
    });

    features
        .iter()
        .enumerate()
        .map(|(i, f)| {
            // Find the workload with the largest relative MPKI increase.
            let mut best: Option<ContributionRow> = None;
            for (ti, (t, &with)) in traces.iter().zip(&full).enumerate() {
                let without = cells[i * count + ti];
                let percent = if with > 0.0 {
                    (without - with) / with * 100.0
                } else {
                    0.0
                };
                let candidate = ContributionRow {
                    feature: f.to_string(),
                    workload: t.name().to_string(),
                    mpki_without: without,
                    mpki_with: with,
                    percent_increase: percent,
                };
                if best
                    .as_ref()
                    .map(|b| candidate.percent_increase > b.percent_increase)
                    .unwrap_or(true)
                {
                    best = Some(candidate);
                }
            }
            best.expect("at least one workload")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_row_per_feature() {
        let rows = run(2, 150_000, 99);
        assert_eq!(rows.len(), 16);
        for row in &rows {
            assert!(!row.feature.is_empty());
            assert!(!row.workload.is_empty());
            assert!(row.mpki_with.is_finite());
            assert!(row.mpki_without.is_finite());
        }
    }
}

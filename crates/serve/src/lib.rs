//! Sharded online prediction service over the `PredictionEngine` facade.
//!
//! The ROADMAP's production framing is a reuse-prediction service in
//! front of many users' cache state. This crate is that serving layer,
//! in simulation:
//!
//! * [`traffic`] — the multi-tenant load model: each simulated tenant
//!   draws an infinite access stream from one of the 33 suite
//!   workloads, fleet volume follows Zipf tenant popularity, and
//!   per-tenant burst phases make the load non-stationary.
//! * [`fleet`] — the serving fleet: one `PredictionEngine` (LLC +
//!   predictor) per tenant, tenants routed round-robin across shard
//!   workers, rounds drained in parallel via `mrp-runtime` with
//!   `HIERARCHY_BATCH`-sized delivery into each engine.
//!
//! Telemetry is two-plane: live `mrp-obs` counters/gauges
//! (`serve.accesses`, `serve.rounds`, `serve.queue_depth`) and the
//! periodic schema-versioned fleet manifest
//! (`mrp_obs::fleet`, schema `mrp-fleet-manifest-v1`) that the `status`
//! subcommand and `manifest_check --fleet` read.
//!
//! The core guarantee: per-tenant results are bit-identical across
//! shard counts, because shards are worker groups only — every tenant
//! owns its full microarchitectural state and its traffic is a pure
//! function of `(config, tenant, round)`.

pub mod fleet;
pub mod traffic;

pub use fleet::{Fleet, FleetConfig};
pub use traffic::{TenantSpec, TenantTraffic, TrafficConfig};

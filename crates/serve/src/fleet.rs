//! The sharded serving fleet: per-tenant `PredictionEngine`s behind
//! per-core shard workers.
//!
//! # Shard ownership and determinism
//!
//! Every tenant owns a complete engine — its own LLC and predictor
//! state — so tenants never share microarchitectural state. A shard is
//! purely a *worker grouping*: tenant `t` is routed to shard
//! `t % shards`, and each round the shards drain their tenants' traffic
//! in parallel (`mrp_runtime::map_indexed`, one job per shard). Because
//! tenant quotas are pure functions of `(config, tenant, round)`
//! (`crate::traffic`) and engines are tenant-private, per-tenant results
//! are bit-identical for any shard count — resharding a fleet is a pure
//! performance decision, never a results decision. The
//! `resharding_is_bit_identical` test holds the fleet to this.
//!
//! # Delivery
//!
//! Within a shard, each tenant's round traffic is delivered to its
//! engine in [`HIERARCHY_BATCH`]-sized submissions — the same grouped
//! drain the hierarchy's LLC front-end uses — and `submit_batch`
//! announces each batch's accesses ahead of consumption through the
//! advisory-window hook, so the predictor's batched kernels see serving
//! traffic exactly the way they see simulator traffic.

use std::sync::Mutex;
use std::time::Instant;

use mrp_baselines::PolicyKind;
use mrp_cache::{CacheConfig, HIERARCHY_BATCH};
use mrp_core::mpppb::CONFIDENCE_BINS;
use mrp_core::{Decisions, EngineStats, PredictionEngine, RuntimeOptions};
use mrp_obs::{FleetManifest, ShardTelemetry};
use mrp_trace::MemoryAccess;

use crate::traffic::{TenantTraffic, TrafficConfig};

/// Fleet construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Traffic model (tenant count, seed, round volume).
    pub traffic: TrafficConfig,
    /// Shard (worker) count; tenants are routed `tenant % shards`.
    pub shards: usize,
    /// Policy every tenant engine runs.
    pub policy: PolicyKind,
    /// Per-tenant LLC geometry.
    pub llc: CacheConfig,
    /// Process-wide execution knobs, installed at fleet construction.
    pub options: RuntimeOptions,
    /// Whether engines keep per-decision confidence histograms.
    pub track_confidence: bool,
}

impl FleetConfig {
    /// A small default fleet: `tenants` tenants over the single-thread
    /// LLC geometry under MPPPB, seeded traffic, telemetry on.
    pub fn new(tenants: usize, shards: usize, seed: u64) -> Self {
        FleetConfig {
            traffic: TrafficConfig {
                tenants,
                seed,
                round_quota: 64 * 1024,
            },
            shards,
            policy: PolicyKind::MpppbSingle,
            llc: CacheConfig::llc_single(),
            options: RuntimeOptions::default(),
            track_confidence: true,
        }
    }
}

/// One tenant's serving state: traffic source plus its private engine.
struct TenantState {
    traffic: TenantTraffic,
    engine: PredictionEngine,
}

/// One shard: the tenants it owns plus drain scratch and counters.
struct ShardState {
    tenants: Vec<TenantState>,
    /// Scratch ingest queue, refilled and drained every round.
    queue: Vec<MemoryAccess>,
    /// Largest ingest backlog any round enqueued on this shard.
    queue_depth_peak: u64,
    /// Outcome totals across all tenants (mirrors the engines' own
    /// tallies; kept here so telemetry needs no tenant walk).
    totals: Decisions,
    /// Time spent in the serving drain (`submit_batch`), excluding the
    /// simulated clients' traffic generation: the shard's service clock.
    busy_ns: u64,
    /// Accesses drained before the current measurement window opened
    /// ([`Fleet::reset_drain_window`]); throughput is computed over the
    /// window only, cumulative totals are untouched.
    drained_offset: u64,
}

impl ShardState {
    fn run_round(&mut self, traffic: &TrafficConfig, round: u64) -> u64 {
        let mut processed = 0;
        for tenant in &mut self.tenants {
            // Ingest: the simulated clients produce the round's traffic.
            // This half is client work — it is deliberately outside the
            // busy clock so shard throughput measures the service.
            self.queue.clear();
            tenant.traffic.fill(traffic, round, &mut self.queue);
            self.queue_depth_peak = self.queue_depth_peak.max(self.queue.len() as u64);
            // Drain: the service consumes the queue. Only this half is
            // billed to `busy_ns` (the serving drain rate).
            let start = Instant::now();
            for batch in self.queue.chunks(HIERARCHY_BATCH) {
                let decisions = tenant.engine.submit_batch(batch);
                self.totals.merge(&decisions);
                processed += decisions.processed;
            }
            self.busy_ns += start.elapsed().as_nanos() as u64;
        }
        processed
    }

    fn telemetry(&self, shard: u64) -> ShardTelemetry {
        let mut confidence = vec![0u64; CONFIDENCE_BINS];
        let mut tracked = false;
        for tenant in &self.tenants {
            if let Some(hist) = tenant.engine.cache().policy().confidence_histogram() {
                tracked = true;
                for (total, bin) in confidence.iter_mut().zip(hist) {
                    *total += bin;
                }
            }
        }
        ShardTelemetry {
            shard,
            tenants: self.tenants.len() as u64,
            processed: self.totals.processed,
            hits: self.totals.hits,
            misses: self.totals.misses,
            bypassed: self.totals.bypassed,
            queue_depth_peak: self.queue_depth_peak,
            accesses_per_sec: if self.busy_ns == 0 {
                0.0
            } else {
                (self.totals.processed - self.drained_offset) as f64 * 1e9 / self.busy_ns as f64
            },
            confidence: if tracked { confidence } else { Vec::new() },
        }
    }
}

/// The running fleet.
pub struct Fleet {
    config: FleetConfig,
    /// Shard states behind mutexes so the per-round fan-out can borrow
    /// them mutably through `&self` (one job per shard, no contention).
    shards: Vec<Mutex<ShardState>>,
    rounds: u64,
    processed: u64,
    started: Instant,
    obs_accesses: mrp_obs::Counter,
    obs_rounds: mrp_obs::Counter,
    obs_queue_depth: mrp_obs::Gauge,
}

impl Fleet {
    /// Builds the fleet: installs the runtime options, opens every
    /// tenant's stream, and constructs one engine per tenant through the
    /// `PredictionEngine` facade.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero tenants or zero shards.
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.traffic.tenants > 0, "fleet needs at least 1 tenant");
        assert!(config.shards > 0, "fleet needs at least 1 shard");
        config.options.install();
        let mut shards: Vec<ShardState> = (0..config.shards)
            .map(|_| ShardState {
                tenants: Vec::new(),
                queue: Vec::new(),
                queue_depth_peak: 0,
                totals: Decisions::default(),
                busy_ns: 0,
                drained_offset: 0,
            })
            .collect();
        for spec in config.traffic.tenant_specs() {
            let engine = config
                .policy
                .engine(config.llc)
                .label(format!("tenant-{}", spec.tenant))
                .track_confidence(config.track_confidence)
                .build();
            shards[spec.tenant % config.shards]
                .tenants
                .push(TenantState {
                    traffic: TenantTraffic::open(spec),
                    engine,
                });
        }
        Fleet {
            config,
            shards: shards.into_iter().map(Mutex::new).collect(),
            rounds: 0,
            processed: 0,
            started: Instant::now(),
            obs_accesses: mrp_obs::counter("serve.accesses"),
            obs_rounds: mrp_obs::counter("serve.rounds"),
            obs_queue_depth: mrp_obs::gauge("serve.queue_depth"),
        }
    }

    /// The fleet's construction parameters.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Rounds completed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Accesses processed across all shards.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Aggregate wall throughput since construction: processed accesses
    /// over wall-clock time. This includes the simulated clients'
    /// traffic generation — the cost of hosting the load generator in
    /// the same process — so it is a lower bound on the service rate.
    pub fn wall_accesses_per_sec(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.processed as f64 / secs
        }
    }

    /// Aggregate fleet drain throughput: processed accesses over total
    /// shard busy time (time inside the engine drain only). This is the
    /// service-side sustained rate — what the fleet serves per second of
    /// serving work — and the number the bench snapshot gates on; in a
    /// real deployment traffic generation happens on the clients.
    pub fn drain_accesses_per_sec(&self) -> f64 {
        let (mut busy_ns, mut drained) = (0u64, 0u64);
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            busy_ns += shard.busy_ns;
            drained += shard.totals.processed - shard.drained_offset;
        }
        if busy_ns == 0 {
            0.0
        } else {
            drained as f64 * 1e9 / busy_ns as f64
        }
    }

    /// Reopens the drain measurement window: throughput (per shard and
    /// aggregate) is reported from this point on, so warmup rounds —
    /// where every tenant's cold LLC misses and trains on everything —
    /// don't dilute the steady-state rate. Cumulative outcome totals and
    /// the wall clock are unaffected.
    pub fn reset_drain_window(&mut self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("shard poisoned");
            shard.busy_ns = 0;
            shard.drained_offset = shard.totals.processed;
        }
    }

    /// Runs one round: every shard drains its tenants' round traffic in
    /// parallel. Returns accesses processed this round.
    pub fn run_round(&mut self) -> u64 {
        let round = self.rounds;
        let traffic = self.config.traffic;
        let counts = mrp_runtime::map_indexed(self.shards.len(), |i| {
            let mut shard = self.shards[i].lock().expect("shard poisoned");
            shard.run_round(&traffic, round)
        });
        let processed: u64 = counts.iter().sum();
        self.rounds += 1;
        self.processed += processed;
        self.obs_accesses.add(processed);
        self.obs_rounds.add(1);
        for shard in &self.shards {
            let depth = shard.lock().expect("shard poisoned").queue_depth_peak;
            self.obs_queue_depth.set(depth as i64);
        }
        processed
    }

    /// Runs `rounds` rounds; returns total accesses processed.
    pub fn run_rounds(&mut self, rounds: u64) -> u64 {
        (0..rounds).map(|_| self.run_round()).sum()
    }

    /// Point-in-time snapshot of every tenant engine, tenant-id order —
    /// the per-tenant results surface the determinism guarantee is
    /// stated over.
    pub fn tenant_snapshots(&self) -> Vec<EngineStats> {
        let mut snapshots: Vec<(usize, EngineStats)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            for tenant in &shard.tenants {
                snapshots.push((tenant.traffic.spec().tenant, tenant.engine.snapshot()));
            }
        }
        snapshots.sort_by_key(|(t, _)| *t);
        snapshots.into_iter().map(|(_, s)| s).collect()
    }

    /// The schema-versioned fleet manifest for the current state.
    pub fn manifest(&self) -> FleetManifest {
        FleetManifest {
            seed: self.config.traffic.seed,
            rounds: self.rounds,
            tenants: self.config.traffic.tenants as u64,
            policy: self.config.policy.name().to_string(),
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| s.lock().expect("shard poisoned").telemetry(i as u64))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(tenants: usize, shards: usize) -> Fleet {
        let mut config = FleetConfig::new(tenants, shards, 7);
        config.traffic.round_quota = 4096;
        Fleet::new(config)
    }

    #[test]
    fn resharding_is_bit_identical_per_tenant() {
        // The tentpole determinism guarantee: the same tenant mix on 1
        // and 4 shards yields bit-identical per-tenant stats.
        let mut one = fleet(6, 1);
        let mut four = fleet(6, 4);
        one.run_rounds(20);
        four.run_rounds(20);
        let a = one.tenant_snapshots();
        let b = four.tenant_snapshots();
        assert_eq!(a.len(), 6);
        assert_eq!(a, b);
        // And the streams actually exercised the caches.
        assert!(a.iter().all(|s| s.processed > 0));
        assert!(a.iter().any(|s| s.llc.demand_hits > 0));
    }

    #[test]
    fn manifest_validates_and_matches_fleet_state() {
        let mut f = fleet(5, 2);
        f.run_rounds(8);
        let manifest = f.manifest();
        let parsed = mrp_obs::fleet::validate(&manifest.render()).expect("valid manifest");
        assert_eq!(parsed, manifest);
        assert_eq!(parsed.processed(), f.processed());
        assert_eq!(parsed.rounds, 8);
        assert_eq!(parsed.shards.len(), 2);
        // Confidence tracking is on by default: MPPPB histograms are
        // present and account for every prediction.
        for shard in &parsed.shards {
            assert_eq!(shard.confidence.len(), CONFIDENCE_BINS);
            assert_eq!(shard.confidence.iter().sum::<u64>(), shard.processed);
            assert!(shard.queue_depth_peak > 0);
        }
    }

    #[test]
    fn tenants_route_round_robin_and_totals_add_up() {
        let mut f = fleet(5, 2);
        f.run_rounds(4);
        let manifest = f.manifest();
        // 5 tenants over 2 shards: 3 + 2.
        assert_eq!(manifest.shards[0].tenants, 3);
        assert_eq!(manifest.shards[1].tenants, 2);
        let tenant_total: u64 = f.tenant_snapshots().iter().map(|s| s.processed).sum();
        assert_eq!(tenant_total, f.processed());
        assert_eq!(manifest.processed(), f.processed());
    }
}

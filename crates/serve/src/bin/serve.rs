//! The serving daemon: `serve [run] ...` drives a sharded fleet,
//! `serve status ...` renders the latest fleet manifest.
//!
//! ```text
//! serve run --tenants 16 --shards 4 --rounds 200 --quota 65536 \
//!           --policy mpppb --seed 42 --manifest-path runs/fleet.json
//! serve status --manifest-path runs/fleet.json
//! serve run --smoke            # bounded CI run, validates its own manifest
//! ```
//!
//! `run` executes `--warmup` cache-warming rounds (excluded from the
//! reported drain throughput), then rounds until `--rounds` more are
//! done (default: until `--duration` seconds of wall clock), rewriting
//! the fleet manifest every `--manifest-every` rounds (atomic
//! temp-file-then-rename, so `status` never reads a torn snapshot).
//! The shared
//! runtime knobs (`--no-simd`, `--no-window`, `--threads`) resolve
//! through the typed `RuntimeOptions` with the legacy environment
//! variables as fallback. The final stdout line is machine-readable:
//! `<drain accesses/sec> <wall accesses/sec>`.

use std::path::Path;
use std::process::ExitCode;

use mrp_baselines::PolicyKind;
use mrp_core::RuntimeOptions;
use mrp_runtime::Args;
use mrp_serve::{Fleet, FleetConfig};

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let command = if argv.first().is_some_and(|a| !a.starts_with("--")) {
        argv.remove(0)
    } else {
        "run".to_string()
    };
    let args = Args::from_args(argv);
    match command.as_str() {
        "run" => run(&args),
        "status" => status(&args),
        other => {
            eprintln!("unknown subcommand {other:?} (expected `run` or `status`)");
            ExitCode::FAILURE
        }
    }
}

fn manifest_path(args: &Args) -> String {
    args.get_str("manifest-path", "runs/fleet.json")
}

fn run(args: &Args) -> ExitCode {
    let smoke = args.get_flag("smoke", false);
    let options = RuntimeOptions::from_env().with_cli(
        args.get_flag("no-simd", false),
        args.get_flag("no-window", false),
        args.get_usize("threads", 0),
    );
    mrp_runtime::set_threads(options.thread_request());
    if args.get_flag("metrics", smoke) {
        mrp_obs::set_enabled(true);
    }

    let policy_name = args.get_str("policy", "mpppb");
    let Some(policy) = PolicyKind::from_name(&policy_name) else {
        eprintln!("unknown policy {policy_name:?}");
        return ExitCode::FAILURE;
    };
    let mut config = FleetConfig::new(
        args.get_usize("tenants", if smoke { 8 } else { 16 }),
        args.get_usize("shards", if smoke { 2 } else { 4 }),
        args.get_u64("seed", 42),
    );
    config.policy = policy;
    config.options = options;
    config.traffic.round_quota = args.get_u64("quota", if smoke { 16 * 1024 } else { 64 * 1024 });
    config.track_confidence = args.get_flag("confidence", true);
    let rounds = args.get_u64("rounds", if smoke { 64 } else { 0 });
    let warmup = args.get_u64("warmup", if smoke { 0 } else { 8 });
    let duration_s = args.get_u64("duration", 10);
    let manifest_every = args.get_u64("manifest-every", 16).max(1);
    let path = manifest_path(args);

    eprintln!(
        "serve: {} tenants on {} shards, policy {}, quota {}/round, {} workers",
        config.traffic.tenants,
        config.shards,
        config.policy.name(),
        config.traffic.round_quota,
        mrp_runtime::threads(),
    );

    let mut fleet = Fleet::new(config);
    // Warmup rounds fill the cold LLCs and predictor tables, then the
    // drain window reopens so reported throughput is the sustained
    // steady-state rate (the wall rate still covers the whole run).
    fleet.run_rounds(warmup);
    fleet.reset_drain_window();
    let started = std::time::Instant::now();
    loop {
        fleet.run_round();
        if fleet.rounds().is_multiple_of(manifest_every) {
            if let Err(err) = write_manifest(&fleet, &path) {
                eprintln!("error: could not write fleet manifest: {err}");
                return ExitCode::FAILURE;
            }
        }
        let done = if rounds > 0 {
            fleet.rounds() >= warmup + rounds
        } else {
            started.elapsed().as_secs() >= duration_s
        };
        if done {
            break;
        }
    }
    if let Err(err) = write_manifest(&fleet, &path) {
        eprintln!("error: could not write fleet manifest: {err}");
        return ExitCode::FAILURE;
    }

    let manifest = fleet.manifest();
    eprintln!(
        "serve: {} rounds, {} accesses, {:.1}M/s drain aggregate ({:.1}M/s wall incl. traffic gen)",
        fleet.rounds(),
        fleet.processed(),
        fleet.drain_accesses_per_sec() / 1e6,
        fleet.wall_accesses_per_sec() / 1e6,
    );
    for shard in &manifest.shards {
        eprintln!(
            "  shard {}: {} tenants, {} accesses, hit rate {:.3}, {:.1}M/s busy",
            shard.shard,
            shard.tenants,
            shard.processed,
            shard.hit_rate(),
            shard.accesses_per_sec / 1e6,
        );
    }
    // Machine-readable result line: the aggregate drain rate (the bench
    // snapshot's number) then the wall rate including traffic generation.
    println!(
        "{} {}",
        fleet.drain_accesses_per_sec(),
        fleet.wall_accesses_per_sec()
    );

    if smoke {
        // The smoke contract: the written manifest must validate and
        // every shard must have made progress.
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("smoke: cannot re-read {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let parsed = match mrp_obs::fleet::validate(&text) {
            Ok(parsed) => parsed,
            Err(err) => {
                eprintln!("smoke: emitted manifest is invalid: {err}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(idle) = parsed.shards.iter().find(|s| s.processed == 0) {
            eprintln!("smoke: shard {} processed nothing", idle.shard);
            return ExitCode::FAILURE;
        }
        eprintln!(
            "smoke: manifest valid, all {} shards active",
            parsed.shards.len()
        );
    }
    ExitCode::SUCCESS
}

fn write_manifest(fleet: &Fleet, path: &str) -> std::io::Result<()> {
    let path = Path::new(path);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, fleet.manifest().render())?;
    std::fs::rename(&tmp, path)
}

fn status(args: &Args) -> ExitCode {
    let path = manifest_path(args);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("status: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let manifest = match mrp_obs::fleet::validate(&text) {
        Ok(manifest) => manifest,
        Err(err) => {
            eprintln!("status: {path} is not a valid fleet manifest: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "fleet: {} tenants / {} shards, policy {}, {} rounds, {} accesses, {:.1}M/s aggregate",
        manifest.tenants,
        manifest.shards.len(),
        manifest.policy,
        manifest.rounds,
        manifest.processed(),
        manifest.accesses_per_sec() / 1e6,
    );
    println!(
        "shard  tenants  processed     hit-rate  queue-peak  M-acc/s  confidence (reuse→bypass)"
    );
    for shard in &manifest.shards {
        println!(
            "{:>5}  {:>7}  {:>12}  {:>8.3}  {:>10}  {:>7.1}  {}",
            shard.shard,
            shard.tenants,
            shard.processed,
            shard.hit_rate(),
            shard.queue_depth_peak,
            shard.accesses_per_sec / 1e6,
            sparkline(&shard.confidence),
        );
    }
    ExitCode::SUCCESS
}

/// Renders a histogram as a compact unicode sparkline (`·` for empty
/// bins, `▁`–`█` scaled to the largest bin); `-` when tracking was off.
fn sparkline(bins: &[u64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let Some(&max) = bins.iter().max() else {
        return "-".to_string();
    };
    if max == 0 {
        return "·".repeat(bins.len());
    }
    bins.iter()
        .map(|&b| {
            if b == 0 {
                '·'
            } else {
                LEVELS[((b * (LEVELS.len() as u64 - 1)) / max) as usize]
            }
        })
        .collect()
}

//! Multi-tenant traffic model for the serving fleet.
//!
//! Tenants are simulated users of the prediction service. Each tenant is
//! pinned to one of the 33 suite workloads (its "application") and draws
//! an infinite access stream from it under a tenant-private seed, so two
//! tenants on the same workload still produce distinct streams.
//!
//! Two fleet phenomena the traffic model reproduces deliberately:
//!
//! * **Zipf-distributed popularity** — tenant `t`'s share of the fleet's
//!   round volume is `1/(t+1)^α` normalized (α = 1), the standard model
//!   of skewed service traffic: tenant 0 is the whale, the tail is thin.
//! * **Bursty phases** — per tenant, whole phases of rounds run at a
//!   burst multiplier, driven by a hash of `(tenant, phase, seed)`, so
//!   load is non-stationary the way per-tenant drift studies observe.
//!
//! Everything is a pure function of `(config, tenant, round)` — quotas
//! never depend on shard assignment or on other tenants' progress —
//! which is what makes per-tenant results bit-identical across shard
//! counts (the determinism test in `crate::fleet` holds the fleet to
//! this).

use mrp_trace::workloads::{self, Trace, Workload};
use mrp_trace::MemoryAccess;

/// Zipf exponent for tenant popularity.
const ZIPF_ALPHA: f64 = 1.0;

/// Rounds per burst phase: a tenant keeps one burst state for this many
/// consecutive rounds before re-rolling.
const BURST_PHASE_ROUNDS: u64 = 16;

/// Volume multiplier while a tenant is bursting.
const BURST_FACTOR: u64 = 4;

/// Probability (out of 8) that a phase is a burst phase.
const BURST_NUMERATOR: u64 = 2;

/// Fleet-level traffic parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficConfig {
    /// Number of simulated tenants.
    pub tenants: usize,
    /// Base seed for tenant streams and burst phases.
    pub seed: u64,
    /// Average total accesses per round across the fleet (Zipf shares
    /// and burst multipliers modulate the per-tenant slice).
    pub round_quota: u64,
}

impl TrafficConfig {
    /// The tenant specs this config induces, tenant-id order.
    pub fn tenant_specs(&self) -> Vec<TenantSpec> {
        let suite = workloads::suite();
        let norm: f64 = (0..self.tenants)
            .map(|t| 1.0 / ((t + 1) as f64).powf(ZIPF_ALPHA))
            .sum();
        (0..self.tenants)
            .map(|t| {
                // Workload assignment hashes the tenant id so neighbors
                // in popularity rank don't all land on suite neighbors.
                let workload =
                    (splitmix(self.seed ^ (t as u64).wrapping_mul(0x9e37)) as usize) % suite.len();
                let share = 1.0 / ((t + 1) as f64).powf(ZIPF_ALPHA) / norm;
                TenantSpec {
                    tenant: t,
                    workload,
                    base_quota: ((self.round_quota as f64 * share).round() as u64).max(1),
                    seed: self.seed.wrapping_add(0x5eed_0000).wrapping_add(t as u64),
                }
            })
            .collect()
    }

    /// Accesses tenant `tenant` submits in `round` — pure in
    /// `(self, tenant, round)`.
    pub fn quota(&self, spec: &TenantSpec, round: u64) -> u64 {
        let phase = round / BURST_PHASE_ROUNDS;
        let roll = splitmix(
            self.seed
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(spec.tenant as u64)
                .wrapping_add(phase.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        if roll % 8 < BURST_NUMERATOR {
            spec.base_quota * BURST_FACTOR
        } else {
            spec.base_quota
        }
    }
}

/// One tenant's static assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant id (also its popularity rank: 0 is most popular).
    pub tenant: usize,
    /// Suite index of the workload backing this tenant's stream.
    pub workload: usize,
    /// Per-round access quota before burst modulation.
    pub base_quota: u64,
    /// Seed of the tenant's private stream.
    pub seed: u64,
}

impl TenantSpec {
    /// The workload backing this tenant.
    pub fn workload(&self) -> Workload {
        workloads::suite()[self.workload].clone()
    }
}

/// A tenant's live traffic source: its spec plus the open stream.
pub struct TenantTraffic {
    spec: TenantSpec,
    stream: Trace,
}

impl TenantTraffic {
    /// Opens the stream for `spec`.
    pub fn open(spec: TenantSpec) -> Self {
        TenantTraffic {
            stream: spec.workload().trace(spec.seed),
            spec,
        }
    }

    /// The tenant's static assignment.
    pub fn spec(&self) -> &TenantSpec {
        &self.spec
    }

    /// Appends this tenant's accesses for `round` to `out`; returns how
    /// many were produced.
    pub fn fill(&mut self, config: &TrafficConfig, round: u64, out: &mut Vec<MemoryAccess>) -> u64 {
        let quota = config.quota(&self.spec, round);
        self.stream.fill(quota as usize, out);
        quota
    }
}

/// SplitMix64 finalizer: the repo's standard cheap stateless hash.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TrafficConfig {
        TrafficConfig {
            tenants: 8,
            seed: 42,
            round_quota: 1000,
        }
    }

    #[test]
    fn popularity_is_zipf_ordered() {
        let specs = config().tenant_specs();
        assert_eq!(specs.len(), 8);
        for pair in specs.windows(2) {
            assert!(pair[0].base_quota >= pair[1].base_quota);
        }
        // Tenant 0 holds the Zipf head: its base quota is ~1/H(8) of the
        // round total, several times the tail tenant's.
        assert!(specs[0].base_quota >= 4 * specs[7].base_quota);
        // Every tenant gets at least one access per round.
        assert!(specs.iter().all(|s| s.base_quota >= 1));
    }

    #[test]
    fn quotas_are_pure_and_bursty() {
        let c = config();
        let specs = c.tenant_specs();
        for spec in &specs {
            let a: Vec<u64> = (0..256).map(|r| c.quota(spec, r)).collect();
            let b: Vec<u64> = (0..256).map(|r| c.quota(spec, r)).collect();
            assert_eq!(a, b);
            // Quota is constant within a burst phase...
            for r in 0..256u64 {
                assert_eq!(c.quota(spec, r), c.quota(spec, (r / 16) * 16));
            }
        }
        // ...and at least one tenant sees both burst and baseline phases
        // over a modest horizon.
        let spec = &specs[0];
        let quotas: Vec<u64> = (0..1024).map(|r| c.quota(spec, r)).collect();
        assert!(quotas.contains(&spec.base_quota));
        assert!(quotas.contains(&(spec.base_quota * 4)));
    }

    #[test]
    fn streams_are_tenant_private_and_deterministic() {
        let specs = config().tenant_specs();
        let take = |spec: TenantSpec| -> Vec<MemoryAccess> {
            TenantTraffic::open(spec).stream.by_ref().take(64).collect()
        };
        assert_eq!(take(specs[0]), take(specs[0]));
        // Different tenants differ even when mapped to the same workload
        // (tenant-private seeds).
        for pair in specs.windows(2) {
            assert_ne!(take(pair[0]), take(pair[1]));
        }
    }

    #[test]
    fn fill_produces_exactly_the_quota() {
        let c = config();
        let mut t = TenantTraffic::open(c.tenant_specs()[2]);
        let mut buf = Vec::new();
        let n = t.fill(&c, 7, &mut buf);
        assert_eq!(buf.len() as u64, n);
        assert_eq!(n, c.quota(t.spec(), 7));
    }
}

//! Process-level fan-out: the OS-process sibling of [`map_indexed`].
//!
//! The thread pool in the crate root parallelizes jobs *inside* one
//! simulator process. The orchestration layer (`mrp-orchestrate`) needs
//! the next level up: running whole driver binaries as **worker OS
//! processes**, so a crashed or killed worker cannot take the control
//! plane down with it, and so campaigns survive `SIGKILL` of any
//! participant. [`run_processes`] is that primitive — a bounded-width
//! process pool with the same index-ordered result contract as
//! [`map_indexed`].
//!
//! Scheduling is deliberately simple: keep up to `workers` children
//! alive, poll them with [`Child::try_wait`] every few milliseconds,
//! and refill each slot from the queue as it frees. The caller observes
//! every lifecycle transition through the `on_event` callback
//! ([`ProcessEvent::Spawned`] / [`ProcessEvent::Exited`]), which is how
//! the orchestrator journals `running` entries with real pids before
//! the child has a chance to finish.
//!
//! Telemetry (when `mrp-obs` is enabled): `runtime.procs.spawned`,
//! `runtime.procs.exited`, `runtime.procs.spawn_failed` counters and
//! the `runtime.procs.active` gauge (peak = max concurrent children).
//!
//! [`map_indexed`]: crate::map_indexed

use std::process::{Child, Command, ExitStatus};
use std::sync::OnceLock;
use std::time::Duration;

/// Cached telemetry handles (registry lookups once per process).
struct ProcTelemetry {
    spawned: mrp_obs::Counter,
    exited: mrp_obs::Counter,
    spawn_failed: mrp_obs::Counter,
    active: mrp_obs::Gauge,
}

fn telemetry() -> &'static ProcTelemetry {
    static TELEMETRY: OnceLock<ProcTelemetry> = OnceLock::new();
    TELEMETRY.get_or_init(|| ProcTelemetry {
        spawned: mrp_obs::counter("runtime.procs.spawned"),
        exited: mrp_obs::counter("runtime.procs.exited"),
        spawn_failed: mrp_obs::counter("runtime.procs.spawn_failed"),
        active: mrp_obs::gauge("runtime.procs.active"),
    })
}

/// One queued worker process: a caller-chosen id plus the fully
/// configured [`Command`] to spawn (args, env, stdio already set).
pub struct ProcessJob {
    /// Caller-chosen identifier, echoed back in events and errors.
    pub id: String,
    /// The command to spawn; consumed by the pool.
    pub command: Command,
}

/// A lifecycle notification from [`run_processes`].
#[derive(Debug)]
pub enum ProcessEvent<'a> {
    /// Job `index` started as OS process `pid`.
    Spawned {
        /// Queue index of the job.
        index: usize,
        /// The job's caller-chosen id.
        id: &'a str,
        /// OS process id of the spawned child.
        pid: u32,
    },
    /// Job `index` exited (any status, including signals).
    Exited {
        /// Queue index of the job.
        index: usize,
        /// The job's caller-chosen id.
        id: &'a str,
        /// The child's exit status.
        status: ExitStatus,
    },
}

/// How often sleeping between [`Child::try_wait`] sweeps. Worker
/// processes run for seconds-to-minutes, so 10ms of scheduling latency
/// is invisible while keeping the control plane off the CPU.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Runs every job as a child OS process, at most `workers` alive at a
/// time, and returns exit statuses in **queue index order**.
///
/// A job whose spawn fails (missing binary, exec error) yields
/// `Err(description)` in its slot without aborting the rest of the
/// queue; a job that spawns always yields `Ok(status)`, even when the
/// status is a crash or signal — interpreting statuses is the caller's
/// job. `on_event` fires on the control thread, immediately after each
/// spawn and after each reaped exit, in real time (not batched), so
/// callers can persist progress between events.
pub fn run_processes(
    jobs: Vec<ProcessJob>,
    workers: usize,
    mut on_event: impl FnMut(ProcessEvent),
) -> Vec<Result<ExitStatus, String>> {
    let total = jobs.len();
    let workers = workers.max(1);
    let tel = mrp_obs::enabled().then(telemetry);
    let mut results: Vec<Option<Result<ExitStatus, String>>> = Vec::with_capacity(total);
    results.resize_with(total, || None);
    // Live children: (queue index, id, child handle).
    let mut running: Vec<(usize, String, Child)> = Vec::new();
    let mut queue = jobs.into_iter().enumerate();
    let mut done = 0usize;

    while done < total {
        // Fill free slots from the queue.
        while running.len() < workers {
            let Some((index, mut job)) = queue.next() else {
                break;
            };
            match job.command.spawn() {
                Ok(child) => {
                    if let Some(tel) = tel {
                        tel.spawned.incr();
                        tel.active.set(running.len() as i64 + 1);
                    }
                    on_event(ProcessEvent::Spawned {
                        index,
                        id: &job.id,
                        pid: child.id(),
                    });
                    running.push((index, job.id, child));
                }
                Err(e) => {
                    if let Some(tel) = tel {
                        tel.spawn_failed.incr();
                    }
                    results[index] = Some(Err(format!("spawn failed for job {}: {e}", job.id)));
                    done += 1;
                }
            }
        }
        if running.is_empty() {
            // Queue drained and nothing alive: only spawn failures left.
            debug_assert_eq!(done, total);
            break;
        }
        // Reap every finished child, then sleep one poll interval.
        let mut reaped_any = false;
        let mut slot = 0;
        while slot < running.len() {
            match running[slot].2.try_wait() {
                Ok(Some(status)) => {
                    let (index, id, _) = running.swap_remove(slot);
                    if let Some(tel) = tel {
                        tel.exited.incr();
                        tel.active.set(running.len() as i64);
                    }
                    on_event(ProcessEvent::Exited {
                        index,
                        id: &id,
                        status,
                    });
                    results[index] = Some(Ok(status));
                    done += 1;
                    reaped_any = true;
                }
                Ok(None) => slot += 1,
                Err(e) => {
                    let (index, id, _) = running.swap_remove(slot);
                    results[index] = Some(Err(format!("wait failed for job {id}: {e}")));
                    done += 1;
                    reaped_any = true;
                }
            }
        }
        if !reaped_any {
            std::thread::sleep(POLL_INTERVAL);
        }
    }
    results
        .into_iter()
        .map(|slot| slot.expect("every queued job produces a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering};

    fn sh(id: &str, script: &str) -> ProcessJob {
        let mut command = Command::new("sh");
        command
            .arg("-c")
            .arg(script)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
        ProcessJob {
            id: id.to_string(),
            command,
        }
    }

    #[test]
    fn statuses_come_back_in_queue_order() {
        // Job 0 sleeps past job 1's exit; index order must hold anyway.
        let jobs = vec![
            sh("slow-ok", "sleep 0.05; exit 0"),
            sh("fast-fail", "exit 3"),
            sh("fast-ok", "exit 0"),
        ];
        let statuses = run_processes(jobs, 3, |_| {});
        assert_eq!(statuses.len(), 3);
        assert!(statuses[0].as_ref().unwrap().success());
        assert_eq!(statuses[1].as_ref().unwrap().code(), Some(3));
        assert!(statuses[2].as_ref().unwrap().success());
    }

    #[test]
    fn worker_width_bounds_concurrency() {
        let active = AtomicI64::new(0);
        let peak = AtomicI64::new(0);
        let jobs: Vec<ProcessJob> = (0..6).map(|i| sh(&format!("j{i}"), "sleep 0.03")).collect();
        run_processes(jobs, 2, |event| match event {
            ProcessEvent::Spawned { .. } => {
                let now = active.fetch_add(1, Ordering::Relaxed) + 1;
                peak.fetch_max(now, Ordering::Relaxed);
            }
            ProcessEvent::Exited { .. } => {
                active.fetch_sub(1, Ordering::Relaxed);
            }
        });
        assert!(
            peak.load(Ordering::Relaxed) <= 2,
            "pool exceeded 2 concurrent workers"
        );
    }

    #[test]
    fn spawn_failure_fills_its_slot_without_sinking_the_queue() {
        let missing = ProcessJob {
            id: "ghost".into(),
            command: Command::new("/nonexistent/mrp-no-such-binary"),
        };
        let jobs = vec![missing, sh("survivor", "exit 0")];
        let statuses = run_processes(jobs, 1, |_| {});
        assert!(statuses[0].as_ref().is_err());
        assert!(statuses[1].as_ref().unwrap().success());
    }

    #[test]
    fn events_carry_ids_pids_and_statuses() {
        let mut log = Vec::new();
        let jobs = vec![sh("only", "exit 7")];
        run_processes(jobs, 1, |event| match event {
            ProcessEvent::Spawned { index, id, pid } => {
                assert!(pid > 0);
                log.push(format!("spawn {index} {id}"));
            }
            ProcessEvent::Exited { index, id, status } => {
                assert_eq!(status.code(), Some(7));
                log.push(format!("exit {index} {id}"));
            }
        });
        assert_eq!(log, vec!["spawn 0 only", "exit 0 only"]);
    }

    #[cfg(unix)]
    #[test]
    fn killed_worker_reports_its_signal_status() {
        // `kill -9 $$` SIGKILLs the shell itself: the pool must reap it
        // as a non-success status, not hang or error.
        let jobs = vec![sh("suicide", "kill -9 $$")];
        let statuses = run_processes(jobs, 1, |_| {});
        let status = statuses[0].as_ref().unwrap();
        assert!(!status.success());
        assert_eq!(status.code(), None, "signal deaths have no exit code");
    }
}

//! Minimal `--key value` command-line parsing, shared by every binary.
//!
//! Lived in `mrp-experiments` originally; hoisted here so binaries below
//! the experiments layer (the serving fleet, standalone tools) parse
//! identically without depending on the experiment stack. Crates layer
//! their own convenience methods over [`Args`] via a wrapper struct
//! (`mrp-experiments` adds run-scale/report/telemetry resolution).

use std::collections::HashMap;

/// Parsed `--key value` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses the process arguments. Arguments are `--key value` pairs; a
    /// `--key` followed by another `--key` (or by nothing) is a valueless
    /// flag and reads as `true`, so switches like `--bless` need no
    /// operand. Negative numbers (`--delta -5`) still parse as values.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed or duplicated arguments.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (tests).
    pub fn from_args<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut values = HashMap::new();
        let mut iter = iter.into_iter().peekable();
        while let Some(key) = iter.next() {
            let stripped = key
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --key, got {key:?}"));
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => iter.next().expect("peeked"),
                _ => "true".to_string(),
            };
            if values.insert(stripped.to_string(), value).is_some() {
                panic!("duplicate argument --{stripped}");
            }
        }
        Args { values }
    }

    /// Integer argument with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// usize argument with default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get_u64(key, default as u64) as usize
    }

    /// String argument with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Boolean argument with default. Accepts `1`/`0`, `true`/`false`,
    /// `yes`/`no`, and `on`/`off`.
    pub fn get_flag(&self, key: &str, default: bool) -> bool {
        self.values
            .get(key)
            .map(|v| match v.as_str() {
                "1" | "true" | "yes" | "on" => true,
                "0" | "false" | "no" | "off" => false,
                other => panic!("--{key} expects a boolean (1/0/true/false), got {other:?}"),
            })
            .unwrap_or(default)
    }

    /// Resolves the shared `--threads` option and installs it as the
    /// global worker count for parallel execution. `0` or absent defers
    /// to the `MRP_THREADS` environment variable, then to the machine's
    /// available parallelism. Returns the resolved count.
    pub fn init_threads(&self) -> usize {
        crate::set_threads(self.get_usize("threads", 0));
        crate::threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::from_args(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = args(&["--instructions", "5000", "--mode", "fast"]);
        assert_eq!(a.get_u64("instructions", 1), 5000);
        assert_eq!(a.get_str("mode", "slow"), "fast");
    }

    #[test]
    fn missing_keys_use_defaults() {
        let a = args(&[]);
        assert_eq!(a.get_u64("instructions", 42), 42);
        assert_eq!(a.get_usize("mixes", 7), 7);
        assert_eq!(a.get_str("mode", "x"), "x");
    }

    #[test]
    #[should_panic(expected = "expected --key")]
    fn rejects_positional_arguments() {
        let _ = args(&["oops"]);
    }

    #[test]
    #[should_panic(expected = "duplicate argument --seed")]
    fn rejects_duplicate_keys() {
        let _ = args(&["--seed", "1", "--workloads", "4", "--seed", "2"]);
    }

    #[test]
    fn parses_boolean_flags() {
        let a = args(&["--min", "0", "--cv", "true", "--strict", "yes"]);
        assert!(!a.get_flag("min", true));
        assert!(a.get_flag("cv", false));
        assert!(a.get_flag("strict", false));
        assert!(a.get_flag("absent", true));
        assert!(!a.get_flag("absent", false));
    }

    #[test]
    #[should_panic(expected = "expects a boolean")]
    fn rejects_non_boolean_flag_values() {
        let a = args(&["--min", "maybe"]);
        let _ = a.get_flag("min", true);
    }

    #[test]
    fn valueless_flags_read_as_true() {
        let a = args(&["--bless", "--seed", "7"]);
        assert!(a.get_flag("bless", false));
        assert_eq!(a.get_u64("seed", 0), 7);
        let b = args(&["--seed", "7", "--bless"]);
        assert!(b.get_flag("bless", false));
    }

    #[test]
    fn negative_numbers_still_parse_as_values() {
        let a = args(&["--delta", "-5", "--strict"]);
        assert_eq!(a.get_str("delta", "0"), "-5");
        assert!(a.get_flag("strict", false));
    }

    #[test]
    fn threads_flag_resolves_and_installs_globally() {
        let a = args(&["--threads", "2"]);
        assert_eq!(a.init_threads(), 2);
        assert_eq!(crate::threads(), 2);
        // Absent flag resets to automatic resolution.
        let auto = args(&[]).init_threads();
        assert!(auto >= 1);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn rejects_non_integer() {
        let a = args(&["--n", "abc"]);
        let _ = a.get_u64("n", 0);
    }
}

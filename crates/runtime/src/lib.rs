//! Std-only parallel execution for independent simulation jobs.
//!
//! Every experiment in this repository is embarrassingly parallel: each
//! (workload × policy) simulation cell and each feature-search candidate
//! is an independent run that owns its own trace stream and policy
//! instance. This crate provides the one fan-out primitive they all
//! share — [`map_indexed`] — built on [`std::thread::scope`] with an
//! atomic work-queue cursor, so no external dependencies are needed.
//!
//! # Determinism
//!
//! Results are **bit-identical and order-stable vs. the serial path**:
//! job `i` computes exactly what `(0..jobs).map(f)` would compute at
//! position `i` (jobs share no mutable state), and results are collected
//! *by index*, never by completion order. Callers that reduce floating
//! point across jobs must fold the returned `Vec` in index order to keep
//! the reduction order identical to a serial run; [`map_indexed`]
//! guarantees the vector itself is index-ordered.
//!
//! # Thread-count resolution
//!
//! The worker count is a process-global resolved in this order:
//!
//! 1. [`set_threads`] with a nonzero value (the experiment binaries wire
//!    their `--threads N` flag here),
//! 2. the `MRP_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! # Nesting
//!
//! Calls to [`map_indexed`] from *inside* a pool worker run serially on
//! that worker. Outer-level fan-out already owns every core; nested
//! fan-out would multiply thread counts without adding parallelism.
//!
//! # Telemetry
//!
//! When [`mrp_obs`] is enabled (the drivers' `--metrics` flag), every
//! fan-out reports into the registry: `runtime.fanouts` / `runtime.jobs`
//! counters, per-job busy time in `runtime.job_ns`, fan-out wall-clock
//! in `runtime.fanout_ns` (utilization = `job_ns / (fanout_ns ×
//! workers)`), and the `runtime.queue_depth` gauge whose peak is the
//! largest job batch any fan-out enqueued. All of it is no-op atomics
//! when telemetry is off, so the scheduling and results are untouched
//! either way.

pub mod cli;
pub mod process;

pub use cli::Args;
pub use process::{run_processes, ProcessEvent, ProcessJob};

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Cached telemetry handles (registry lookups once per process).
struct Telemetry {
    fanouts: mrp_obs::Counter,
    jobs: mrp_obs::Counter,
    job_ns: mrp_obs::Counter,
    fanout_ns: mrp_obs::Counter,
    queue_depth: mrp_obs::Gauge,
    workers: mrp_obs::Gauge,
}

fn telemetry() -> &'static Telemetry {
    static TELEMETRY: OnceLock<Telemetry> = OnceLock::new();
    TELEMETRY.get_or_init(|| Telemetry {
        fanouts: mrp_obs::counter("runtime.fanouts"),
        jobs: mrp_obs::counter("runtime.jobs"),
        job_ns: mrp_obs::counter("runtime.job_ns"),
        fanout_ns: mrp_obs::counter("runtime.fanout_ns"),
        queue_depth: mrp_obs::gauge("runtime.queue_depth"),
        workers: mrp_obs::gauge("runtime.workers"),
    })
}

/// Global worker-count override: 0 = unset (fall back to env/hardware).
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Cached env/hardware resolution (so a malformed `MRP_THREADS` warns
/// once, not once per fan-out).
static RESOLVED: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Whether the current thread is a pool worker (nested fan-out guard).
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// The machine's available parallelism, defaulting to 1 if unknown.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn env_threads() -> Option<usize> {
    let raw = std::env::var("MRP_THREADS").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            eprintln!(
                "warning: ignoring MRP_THREADS={raw:?} (expected a positive integer); \
                 using available parallelism"
            );
            None
        }
    }
}

/// Sets the global worker count. `0` resets to automatic resolution
/// (`MRP_THREADS`, then available parallelism).
pub fn set_threads(threads: usize) {
    THREADS.store(threads, Ordering::Relaxed);
}

/// The worker count fan-outs will use right now.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => *RESOLVED.get_or_init(|| env_threads().unwrap_or_else(available_parallelism)),
        n => n,
    }
}

/// Runs `f(0), f(1), …, f(jobs - 1)` across the configured worker count
/// (see [`threads`]) and returns the results in index order.
///
/// Jobs must be independent: `f` is shared by reference across workers,
/// so it can only capture `Sync` state. Results are identical to
/// `(0..jobs).map(f).collect()` regardless of the worker count or
/// scheduling.
///
/// # Panics
///
/// If a job panics, the panic is propagated to the caller after all
/// workers have drained (matching [`std::thread::scope`] semantics).
pub fn map_indexed<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_indexed_with(jobs, threads(), f)
}

/// [`map_indexed`] with an explicit worker count (benchmarks and tests).
pub fn map_indexed_with<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = threads.clamp(1, jobs);
    let serial = workers == 1 || IN_POOL.with(Cell::get);
    let tel = mrp_obs::enabled().then(telemetry);
    if let Some(tel) = tel {
        tel.fanouts.incr();
        tel.jobs.add(jobs as u64);
        tel.queue_depth.set(jobs as i64);
        tel.workers.set(if serial { 1 } else { workers as i64 });
    }
    let started = tel.map(|_| Instant::now());
    // Per-job busy time; `tel` is None when telemetry is off, so the
    // instrumented path costs nothing in normal runs.
    let run = |i: usize| -> T {
        match tel {
            Some(tel) => {
                let t0 = Instant::now();
                let out = f(i);
                tel.job_ns.add(t0.elapsed().as_nanos() as u64);
                out
            }
            None => f(i),
        }
    };

    let out = if serial {
        (0..jobs).map(run).collect()
    } else {
        // Work queue: an atomic cursor over 0..jobs. Each worker pulls
        // the next unclaimed index, computes it, and records
        // (index, result) locally; results are merged by index after the
        // scope joins, so completion order cannot affect the output.
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = Vec::with_capacity(jobs);
        slots.resize_with(jobs, || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        IN_POOL.with(|flag| flag.set(true));
                        let mut completed = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= jobs {
                                break;
                            }
                            completed.push((i, run(i)));
                        }
                        completed
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(completed) => {
                        for (i, value) in completed {
                            slots[i] = Some(value);
                        }
                    }
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("work queue visits every index exactly once"))
            .collect()
    };
    if let (Some(tel), Some(t0)) = (tel, started) {
        tel.fanout_ns.add(t0.elapsed().as_nanos() as u64);
        tel.queue_depth.set(0);
    }
    out
}

/// Maps `f` over `items` in parallel, preserving input order.
pub fn par_map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    map_indexed(items.len(), |i| f(&items[i]))
}

/// A concurrent compute-once cache for expensive, pure, keyed work.
///
/// Built for the record-once/replay-many layer: many pool workers may
/// ask for the same workload recording simultaneously, and exactly one
/// must compute it while the rest block on the result instead of
/// duplicating minutes of work. The map lock is held only to resolve
/// the per-key cell, never across `compute`, so distinct keys build
/// concurrently.
pub struct Memo<K, V> {
    map: std::sync::Mutex<std::collections::HashMap<K, std::sync::Arc<OnceLock<V>>>>,
}

impl<K, V> Default for Memo<K, V> {
    fn default() -> Self {
        Memo::new()
    }
}

impl<K, V> Memo<K, V> {
    /// Creates an empty memo.
    pub fn new() -> Self {
        Memo {
            map: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Number of keys resolved or being resolved.
    pub fn len(&self) -> usize {
        self.map.lock().expect("memo map poisoned").len()
    }

    /// True when no key has been requested yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached value (e.g. between parameter sweeps whose
    /// keys will never be requested again).
    pub fn clear(&self) {
        self.map.lock().expect("memo map poisoned").clear();
    }
}

impl<K, V> Memo<K, V>
where
    K: std::hash::Hash + Eq,
    V: Clone,
{
    /// Returns the cached value for `key`, computing it with `compute`
    /// on first request. Concurrent requests for the same key block
    /// until the single computation finishes; requests for other keys
    /// proceed independently.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        self.get_or_compute_tracked(key, compute).0
    }

    /// [`Memo::get_or_compute`] plus whether the value was already
    /// resolved (`true` = cache hit). A request that joins a computation
    /// already in flight counts as a hit: it did not pay the compute.
    pub fn get_or_compute_tracked(&self, key: K, compute: impl FnOnce() -> V) -> (V, bool) {
        let cell = {
            let mut map = self.map.lock().expect("memo map poisoned");
            std::sync::Arc::clone(map.entry(key).or_default())
        };
        let mut computed = false;
        let value = cell
            .get_or_init(|| {
                computed = true;
                compute()
            })
            .clone();
        (value, !computed)
    }

    /// Drops `key`'s cached value (or in-flight cell), returning whether
    /// it was present. Callers already blocked on an in-flight compute
    /// still receive their value; only future lookups miss.
    pub fn remove(&self, key: &K) -> bool {
        self.map
            .lock()
            .expect("memo map poisoned")
            .remove(key)
            .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_index_ordered_for_any_worker_count() {
        let serial: Vec<usize> = (0..97).map(|i| i * i + 1).collect();
        for workers in [1, 2, 3, 4, 9] {
            let parallel = map_indexed_with(97, workers, |i| i * i + 1);
            assert_eq!(parallel, serial, "{workers} workers reordered results");
        }
    }

    #[test]
    fn zero_jobs_yield_empty_vec() {
        let out: Vec<u32> = map_indexed_with(0, 4, |_| unreachable!("no jobs"));
        assert!(out.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let runs = AtomicUsize::new(0);
        let out = map_indexed_with(64, 4, |i| {
            runs.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(runs.load(Ordering::Relaxed), 64);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            map_indexed_with(16, 4, |i| {
                if i == 5 {
                    panic!("job 5 exploded");
                }
                i
            })
        }));
        let panic = result.expect_err("worker panic must propagate");
        let message = panic
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        assert!(message.contains("job 5 exploded"), "got panic {message:?}");
    }

    #[test]
    fn nested_fan_out_runs_serially_on_the_worker() {
        // A nested map_indexed inside a pool job must not spawn its own
        // pool: every nested job runs on the worker thread itself.
        let out = map_indexed_with(4, 4, |outer| {
            let worker = std::thread::current().id();
            map_indexed_with(8, 8, move |inner| {
                assert_eq!(
                    std::thread::current().id(),
                    worker,
                    "nested job escaped its worker thread"
                );
                outer * 8 + inner
            })
        });
        for (outer, inner_results) in out.iter().enumerate() {
            let expected: Vec<usize> = (0..8).map(|i| outer * 8 + i).collect();
            assert_eq!(*inner_results, expected);
        }
    }

    #[test]
    fn memo_computes_each_key_once_under_contention() {
        let memo = Memo::new();
        let computed = AtomicUsize::new(0);
        let out = map_indexed_with(32, 4, |i| {
            memo.get_or_compute(i % 4, || {
                computed.fetch_add(1, Ordering::Relaxed);
                (i % 4) * 10
            })
        });
        assert_eq!(computed.load(Ordering::Relaxed), 4);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i % 4) * 10);
        }
        assert_eq!(memo.len(), 4);
        memo.clear();
        assert!(memo.is_empty());
    }

    #[test]
    fn memo_tracked_reports_hits_and_remove_forgets() {
        let memo = Memo::new();
        let (v, hit) = memo.get_or_compute_tracked(7, || 70);
        assert_eq!((v, hit), (70, false), "first request must compute");
        let (v, hit) = memo.get_or_compute_tracked(7, || unreachable!("must be cached"));
        assert_eq!((v, hit), (70, true), "second request must hit");
        assert!(memo.remove(&7), "remove must report the key was present");
        assert!(!memo.remove(&7), "second remove must report absence");
        let (v, hit) = memo.get_or_compute_tracked(7, || 71);
        assert_eq!((v, hit), (71, false), "removed key must recompute");
    }

    #[test]
    fn telemetry_records_fanouts_only_when_enabled() {
        // The only test in this binary that toggles the global obs flag;
        // concurrent tests may add to the counters while it is on, so
        // assertions are lower bounds.
        mrp_obs::set_enabled(true);
        let jobs_before = mrp_obs::counter("runtime.jobs").get();
        let fanouts_before = mrp_obs::counter("runtime.fanouts").get();
        let out = map_indexed_with(17, 4, |i| i);
        mrp_obs::set_enabled(false);
        assert_eq!(out, (0..17).collect::<Vec<_>>());
        assert!(mrp_obs::counter("runtime.jobs").get() >= jobs_before + 17);
        assert!(mrp_obs::counter("runtime.fanouts").get() > fanouts_before);
        assert!(mrp_obs::gauge("runtime.queue_depth").peak() >= 17);

        let disabled_before = mrp_obs::counter("runtime.jobs").get();
        map_indexed_with(8, 2, |i| i);
        assert_eq!(
            mrp_obs::counter("runtime.jobs").get(),
            disabled_before,
            "disabled fan-out must not record"
        );
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<String> = (0..20).map(|i| format!("w{i}")).collect();
        let lengths = par_map(&items, |s| s.len());
        let expected: Vec<usize> = items.iter().map(|s| s.len()).collect();
        assert_eq!(lengths, expected);
    }

    #[test]
    fn global_thread_count_round_trips() {
        // One test owns all global-state assertions so parallel test
        // execution cannot race on the THREADS override.
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1, "auto resolution must yield at least 1");
        let out = map_indexed(5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }
}

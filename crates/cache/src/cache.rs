//! A single set-associative cache with a pluggable policy.

use std::fmt;

use mrp_trace::MemoryAccess;

use crate::config::CacheConfig;
use crate::policy::{AccessInfo, ReplacementPolicy};
use crate::stats::CacheStats;

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The block was resident.
    Hit,
    /// The block missed and was filled, possibly evicting another block.
    Miss {
        /// Block evicted to make room, if the set was full.
        evicted: Option<u64>,
    },
    /// The block missed and the policy chose not to cache it.
    Bypassed,
}

impl AccessResult {
    /// Whether the access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit)
    }

    /// Whether the access missed (filled or bypassed).
    pub fn is_miss(&self) -> bool {
        !self.is_hit()
    }
}

/// One cache level: a tag array plus a replacement policy.
///
/// Tags are stored structure-of-arrays: a packed `u64` tag per slot plus
/// one validity bitmask per set, instead of `Vec<Option<u64>>`. This
/// halves tag-array memory traffic (no discriminant byte + padding per
/// way) and lets the hit scan run branch-light over a dense `u64` slice
/// once a set is full — the steady state for every warmed-up workload.
pub struct Cache {
    config: CacheConfig,
    /// `tags[set * assoc + way]` is the resident block's tag; meaningful
    /// only when bit `way` of `valid[set]` is set.
    tags: Vec<u64>,
    /// Per-set validity bitmask (bit `way` = slot holds a block).
    valid: Vec<u64>,
    /// `(1 << assoc) - 1`: the bitmask of a full set.
    full_mask: u64,
    policy: Box<dyn ReplacementPolicy + Send>,
    /// Cached [`ReplacementPolicy::uses_victim_occupants`] (the
    /// capability is constant); misses skip the occupant snapshot when
    /// the policy never reads it.
    policy_wants_occupants: bool,
    stats: CacheStats,
    /// Victim-scan scratch, reused across accesses so a full-set miss
    /// does not allocate. Only meaningful within one `access` call.
    occupants: Vec<u64>,
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache")
            .field("config", &self.config)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Cache {
    /// Creates the cache with the given geometry and policy.
    ///
    /// # Panics
    ///
    /// Panics if the associativity exceeds 64 (the per-set valid bitmask
    /// width).
    pub fn new(config: CacheConfig, policy: Box<dyn ReplacementPolicy + Send>) -> Self {
        let assoc = config.associativity();
        assert!(assoc <= 64, "associativity {assoc} exceeds valid bitmask");
        let slots = config.sets() as usize * assoc as usize;
        Cache {
            config,
            tags: vec![0; slots],
            valid: vec![0; config.sets() as usize],
            full_mask: if assoc == 64 {
                u64::MAX
            } else {
                (1u64 << assoc) - 1
            },
            policy_wants_occupants: policy.uses_victim_occupants(),
            policy,
            stats: CacheStats::default(),
            occupants: Vec::with_capacity(assoc as usize),
        }
    }

    /// Geometry of this cache.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The policy driving replacement (for experiment-side introspection).
    pub fn policy(&self) -> &(dyn ReplacementPolicy + Send) {
        self.policy.as_ref()
    }

    /// Mutable access to the policy.
    pub fn policy_mut(&mut self) -> &mut (dyn ReplacementPolicy + Send) {
        self.policy.as_mut()
    }

    #[inline]
    fn slot(&self, set: u32, way: u32) -> usize {
        set as usize * self.config.associativity() as usize + way as usize
    }

    /// The validity bitmask of `set` (bit `way` = slot holds a block).
    pub fn valid_mask(&self, set: u32) -> u64 {
        self.valid[set as usize]
    }

    /// The block resident in (`set`, `way`), if any.
    pub fn way_block(&self, set: u32, way: u32) -> Option<u64> {
        (self.valid[set as usize] & (1u64 << way) != 0).then(|| self.tags[self.slot(set, way)])
    }

    /// Software-prefetches the tag state an access to `block` will touch:
    /// the set's validity word and its packed tag row. Batched front-ends
    /// (the replay loops, the hierarchy's L1-miss path) call this a few
    /// events ahead of the serial update loop so the tag-array cache
    /// misses overlap with other work. Purely a memory-system hint — no
    /// architectural effect, and a no-op off x86_64.
    #[inline]
    pub fn prefetch_block(&self, block: u64) {
        #[cfg(target_arch = "x86_64")]
        {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let set = self.config.set_of(block);
            let base = self.slot(set, 0);
            let assoc = self.config.associativity() as usize;
            // SAFETY: `set < sets` and the tag row lies inside `tags`;
            // prefetch never faults regardless.
            unsafe {
                _mm_prefetch::<_MM_HINT_T0>(self.valid.as_ptr().add(set as usize) as *const i8);
                // One prefetch per cache line of the row (8 u64 tags).
                for line in (0..assoc).step_by(8) {
                    _mm_prefetch::<_MM_HINT_T0>(self.tags.as_ptr().add(base + line) as *const i8);
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = block;
        }
    }

    /// Looks a block up without touching policy or stats state.
    pub fn probe(&self, block: u64) -> bool {
        let set = self.config.set_of(block);
        let base = self.slot(set, 0);
        let mut vmask = self.valid[set as usize];
        while vmask != 0 {
            let way = vmask.trailing_zeros() as usize;
            if self.tags[base + way] == block {
                return true;
            }
            vmask &= vmask - 1;
        }
        false
    }

    /// Simulates one access. `is_prefetch` marks hardware prefetch
    /// requests, which fill with the fake prefetch PC and are not counted
    /// as demand traffic.
    pub fn access(&mut self, access: &MemoryAccess, is_prefetch: bool) -> AccessResult {
        let info = AccessInfo::from_access(access, &self.config, is_prefetch);
        self.policy.on_access(&info);

        // The hit scan splits on set fullness. A full set — the steady
        // state once warmed up — compares every packed tag with no
        // validity checks; the occupant snapshot for the victim scan is
        // the tag slice itself. A partially filled set walks only its
        // valid bits, and the first invalid way is a `trailing_zeros` of
        // the inverted mask. `occupants` aligns way-for-way with the set
        // only in the full case, which is the only case that reads it.
        let assoc = self.config.associativity();
        let base = self.slot(info.set, 0);
        let vmask = self.valid[info.set as usize];
        debug_assert_eq!(
            vmask & !self.full_mask,
            0,
            "valid bits beyond associativity in set {}",
            info.set
        );
        let set_tags = &self.tags[base..base + assoc as usize];
        let mut hit_way = None;
        let mut invalid_way = None;
        self.occupants.clear();
        if vmask == self.full_mask {
            for (way, &tag) in set_tags.iter().enumerate() {
                if tag == info.block {
                    hit_way = Some(way as u32);
                    break;
                }
            }
            if hit_way.is_none() && self.policy_wants_occupants {
                self.occupants.extend_from_slice(set_tags);
            }
        } else {
            invalid_way = Some((!vmask).trailing_zeros());
            let mut scan = vmask;
            while scan != 0 {
                let way = scan.trailing_zeros();
                if set_tags[way as usize] == info.block {
                    hit_way = Some(way);
                    break;
                }
                scan &= scan - 1;
            }
        }

        if let Some(way) = hit_way {
            if is_prefetch {
                self.stats.prefetch_hits += 1;
            } else {
                self.stats.demand_hits += 1;
            }
            self.policy.on_hit(&info, way);
            return AccessResult::Hit;
        }

        if is_prefetch {
            self.stats.prefetch_fills += 1;
        } else {
            self.stats.demand_misses += 1;
        }

        if self.policy.should_bypass(&info) {
            self.stats.bypasses += 1;
            return AccessResult::Bypassed;
        }

        // Prefer an invalid way; otherwise ask the policy for a victim.
        let mut evicted = None;
        let way = match invalid_way {
            Some(w) => w,
            None => {
                let victim = self.policy.choose_victim(&info, &self.occupants);
                assert!(victim < assoc, "policy chose way {victim} of {assoc}");
                let block = self.tags[base + victim as usize];
                self.policy.on_evict(info.set, victim, block);
                self.stats.evictions += 1;
                evicted = Some(block);
                victim
            }
        };
        debug_assert!(way < assoc, "fill way {way} of {assoc}");
        let slot = self.slot(info.set, way);
        self.tags[slot] = info.block;
        self.valid[info.set as usize] |= 1u64 << way;
        self.policy.on_fill(&info, way);
        debug_assert!(self.probe(info.block), "filled block not resident");
        AccessResult::Miss { evicted }
    }

    /// Number of resident blocks (for tests and invariant checks).
    pub fn resident_blocks(&self) -> usize {
        self.valid.iter().map(|v| v.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::Lru;

    fn small_cache() -> Cache {
        let config = CacheConfig::new(64 * 8, 4); // 2 sets x 4 ways
        Cache::new(
            config,
            Box::new(Lru::new(config.sets(), config.associativity())),
        )
    }

    fn load(block: u64) -> MemoryAccess {
        MemoryAccess::load(0x400000, block * 64)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache();
        assert!(c.access(&load(10), false).is_miss());
        assert!(c.access(&load(10), false).is_hit());
        assert_eq!(c.stats().demand_hits, 1);
        assert_eq!(c.stats().demand_misses, 1);
    }

    #[test]
    fn fills_use_invalid_ways_first() {
        let mut c = small_cache();
        // Four blocks in the same set: all fit without eviction.
        for i in 0..4u64 {
            let r = c.access(&load(i * 2), false);
            assert_eq!(r, AccessResult::Miss { evicted: None });
        }
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.resident_blocks(), 4);
    }

    #[test]
    fn full_set_evicts_lru() {
        let mut c = small_cache();
        for i in 0..4u64 {
            c.access(&load(i * 2), false);
        }
        // Fifth block in the same set evicts block 0 (the LRU).
        let r = c.access(&load(8 * 2), false);
        assert_eq!(r, AccessResult::Miss { evicted: Some(0) });
        assert!(!c.probe(0));
        assert!(c.probe(16));
    }

    #[test]
    fn hit_refreshes_recency() {
        let mut c = small_cache();
        for i in 0..4u64 {
            c.access(&load(i * 2), false);
        }
        c.access(&load(0), false); // touch block 0: now MRU
        let r = c.access(&load(8 * 2), false);
        assert_eq!(r, AccessResult::Miss { evicted: Some(2) });
        assert!(c.probe(0));
    }

    #[test]
    fn prefetches_do_not_count_as_demand() {
        let mut c = small_cache();
        c.access(&load(4), true);
        assert_eq!(c.stats().demand_misses, 0);
        assert_eq!(c.stats().prefetch_fills, 1);
        // Demand access to a prefetched block hits.
        assert!(c.access(&load(4), false).is_hit());
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = small_cache();
        c.access(&load(6), false);
        let before = *c.stats();
        assert!(c.probe(6));
        assert!(!c.probe(7));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = small_cache();
        for i in 0..100u64 {
            c.access(&load(i), false);
            assert!(c.resident_blocks() <= 8);
        }
        assert_eq!(c.resident_blocks(), 8);
    }
}

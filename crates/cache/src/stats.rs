//! Access statistics.

use std::fmt;

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub demand_hits: u64,
    /// Demand accesses that missed.
    pub demand_misses: u64,
    /// Misses that the policy chose to bypass (LLC only in practice).
    pub bypasses: u64,
    /// Prefetch accesses that hit (no fill needed).
    pub prefetch_hits: u64,
    /// Prefetch accesses that missed and filled.
    pub prefetch_fills: u64,
    /// Evictions performed to make room for fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Total demand accesses.
    pub fn demand_accesses(&self) -> u64 {
        self.demand_hits + self.demand_misses
    }

    /// Demand miss ratio in `[0, 1]`; 0 when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.demand_accesses();
        if total == 0 {
            0.0
        } else {
            self.demand_misses as f64 / total as f64
        }
    }

    /// Misses per kilo-instruction given a retired-instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.demand_misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Accumulates another stats block (used when aggregating cores).
    pub fn merge(&mut self, other: &CacheStats) {
        self.demand_hits += other.demand_hits;
        self.demand_misses += other.demand_misses;
        self.bypasses += other.bypasses;
        self.prefetch_hits += other.prefetch_hits;
        self.prefetch_fills += other.prefetch_fills;
        self.evictions += other.evictions;
    }

    /// Publishes this block into the [`mrp_obs`] registry under
    /// `<prefix>.<field>` counters. No-op while telemetry is disabled.
    pub fn publish(&self, prefix: &str) {
        if !mrp_obs::enabled() {
            return;
        }
        let fields: [(&str, u64); 6] = [
            ("demand_hits", self.demand_hits),
            ("demand_misses", self.demand_misses),
            ("bypasses", self.bypasses),
            ("prefetch_hits", self.prefetch_hits),
            ("prefetch_fills", self.prefetch_fills),
            ("evictions", self.evictions),
        ];
        for (field, value) in fields {
            mrp_obs::counter(&format!("{prefix}.{field}")).add(value);
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} bypasses={} miss_ratio={:.4}",
            self.demand_hits,
            self.demand_misses,
            self.bypasses,
            self.miss_ratio()
        )
    }
}

/// Statistics for the whole hierarchy plus instruction accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Last-level cache counters.
    pub llc: CacheStats,
    /// Retired instructions attributed to the simulated accesses.
    pub instructions: u64,
    /// Prefetch requests issued by the stream prefetcher.
    pub prefetches_issued: u64,
}

impl HierarchyStats {
    /// LLC demand misses per kilo-instruction — the paper's primary miss
    /// metric.
    pub fn llc_mpki(&self) -> f64 {
        self.llc.mpki(self.instructions)
    }

    /// Accumulates another hierarchy's stats.
    pub fn merge(&mut self, other: &HierarchyStats) {
        self.l1d.merge(&other.l1d);
        self.l2.merge(&other.l2);
        self.llc.merge(&other.llc);
        self.instructions += other.instructions;
        self.prefetches_issued += other.prefetches_issued;
    }

    /// Publishes every level's counters into the [`mrp_obs`] registry
    /// under `<prefix>.{l1d,l2,llc}.*`, plus `<prefix>.instructions` and
    /// `<prefix>.prefetches_issued`. No-op while telemetry is disabled.
    pub fn publish(&self, prefix: &str) {
        if !mrp_obs::enabled() {
            return;
        }
        self.l1d.publish(&format!("{prefix}.l1d"));
        self.l2.publish(&format!("{prefix}.l2"));
        self.llc.publish(&format!("{prefix}.llc"));
        mrp_obs::counter(&format!("{prefix}.instructions")).add(self.instructions);
        mrp_obs::counter(&format!("{prefix}.prefetches_issued")).add(self.prefetches_issued);
    }
}

impl fmt::Display for HierarchyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instructions={} L1[{}] L2[{}] LLC[{}] mpki={:.3}",
            self.instructions,
            self.l1d,
            self.l2,
            self.llc,
            self.llc_mpki()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_scales_with_instructions() {
        let stats = CacheStats {
            demand_misses: 50,
            ..CacheStats::default()
        };
        assert_eq!(stats.mpki(10_000), 5.0);
        assert_eq!(stats.mpki(0), 0.0);
    }

    #[test]
    fn miss_ratio_handles_empty() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
        let s = CacheStats {
            demand_hits: 3,
            demand_misses: 1,
            ..CacheStats::default()
        };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = CacheStats {
            demand_hits: 1,
            demand_misses: 2,
            bypasses: 3,
            prefetch_hits: 4,
            prefetch_fills: 5,
            evictions: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.demand_hits, 2);
        assert_eq!(a.evictions, 12);
    }

    #[test]
    fn hierarchy_mpki_uses_llc_misses() {
        let mut h = HierarchyStats::default();
        h.llc.demand_misses = 10;
        h.instructions = 1000;
        assert_eq!(h.llc_mpki(), 10.0);
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!format!("{}", CacheStats::default()).is_empty());
        assert!(!format!("{}", HierarchyStats::default()).is_empty());
    }

    #[test]
    fn publish_exports_counters_only_when_enabled() {
        // Sole flag-toggling test in this binary (the obs flag is
        // process-global).
        let mut h = HierarchyStats::default();
        h.llc.demand_misses = 42;
        h.instructions = 9000;

        h.publish("test.sim.off");
        mrp_obs::set_enabled(true);
        h.publish("test.sim.on");
        mrp_obs::set_enabled(false);

        let snap = mrp_obs::registry_snapshot();
        let get = |name: &str| snap.iter().find(|(n, _, _)| n == name).map(|(_, v, _)| *v);
        assert_eq!(get("test.sim.off.llc.demand_misses"), None);
        assert_eq!(get("test.sim.on.llc.demand_misses"), Some(42));
        assert_eq!(get("test.sim.on.instructions"), Some(9000));
    }
}

//! Access statistics.

use std::fmt;

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub demand_hits: u64,
    /// Demand accesses that missed.
    pub demand_misses: u64,
    /// Misses that the policy chose to bypass (LLC only in practice).
    pub bypasses: u64,
    /// Prefetch accesses that hit (no fill needed).
    pub prefetch_hits: u64,
    /// Prefetch accesses that missed and filled.
    pub prefetch_fills: u64,
    /// Evictions performed to make room for fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Total demand accesses.
    pub fn demand_accesses(&self) -> u64 {
        self.demand_hits + self.demand_misses
    }

    /// Demand miss ratio in `[0, 1]`; 0 when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.demand_accesses();
        if total == 0 {
            0.0
        } else {
            self.demand_misses as f64 / total as f64
        }
    }

    /// Misses per kilo-instruction given a retired-instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.demand_misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Accumulates another stats block (used when aggregating cores).
    pub fn merge(&mut self, other: &CacheStats) {
        self.demand_hits += other.demand_hits;
        self.demand_misses += other.demand_misses;
        self.bypasses += other.bypasses;
        self.prefetch_hits += other.prefetch_hits;
        self.prefetch_fills += other.prefetch_fills;
        self.evictions += other.evictions;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} bypasses={} miss_ratio={:.4}",
            self.demand_hits,
            self.demand_misses,
            self.bypasses,
            self.miss_ratio()
        )
    }
}

/// Statistics for the whole hierarchy plus instruction accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Last-level cache counters.
    pub llc: CacheStats,
    /// Retired instructions attributed to the simulated accesses.
    pub instructions: u64,
    /// Prefetch requests issued by the stream prefetcher.
    pub prefetches_issued: u64,
}

impl HierarchyStats {
    /// LLC demand misses per kilo-instruction — the paper's primary miss
    /// metric.
    pub fn llc_mpki(&self) -> f64 {
        self.llc.mpki(self.instructions)
    }

    /// Accumulates another hierarchy's stats.
    pub fn merge(&mut self, other: &HierarchyStats) {
        self.l1d.merge(&other.l1d);
        self.l2.merge(&other.l2);
        self.llc.merge(&other.llc);
        self.instructions += other.instructions;
        self.prefetches_issued += other.prefetches_issued;
    }
}

impl fmt::Display for HierarchyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instructions={} L1[{}] L2[{}] LLC[{}] mpki={:.3}",
            self.instructions,
            self.l1d,
            self.l2,
            self.llc,
            self.llc_mpki()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_scales_with_instructions() {
        let stats = CacheStats {
            demand_misses: 50,
            ..CacheStats::default()
        };
        assert_eq!(stats.mpki(10_000), 5.0);
        assert_eq!(stats.mpki(0), 0.0);
    }

    #[test]
    fn miss_ratio_handles_empty() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
        let s = CacheStats {
            demand_hits: 3,
            demand_misses: 1,
            ..CacheStats::default()
        };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = CacheStats {
            demand_hits: 1,
            demand_misses: 2,
            bypasses: 3,
            prefetch_hits: 4,
            prefetch_fills: 5,
            evictions: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.demand_hits, 2);
        assert_eq!(a.evictions, 12);
    }

    #[test]
    fn hierarchy_mpki_uses_llc_misses() {
        let mut h = HierarchyStats::default();
        h.llc.demand_misses = 10;
        h.instructions = 1000;
        assert_eq!(h.llc_mpki(), 10.0);
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!format!("{}", CacheStats::default()).is_empty());
        assert!(!format!("{}", HierarchyStats::default()).is_empty());
    }
}

//! Cache geometry.

use mrp_trace::BLOCK_BYTES;

/// Geometry of one cache level: capacity, associativity, and the derived
/// set count. Blocks are fixed at 64 bytes throughout the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size_bytes: u64,
    associativity: u32,
    sets: u32,
}

impl CacheConfig {
    /// Creates a configuration for a `size_bytes` cache with
    /// `associativity` ways of 64-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero size/ways) or the derived
    /// set count is not a power of two (required for bit-sliced indexing).
    pub fn new(size_bytes: u64, associativity: u32) -> Self {
        assert!(size_bytes > 0, "cache size must be nonzero");
        assert!(associativity > 0, "associativity must be nonzero");
        let blocks = size_bytes / BLOCK_BYTES;
        assert!(
            blocks.is_multiple_of(u64::from(associativity)),
            "capacity must be a whole number of sets"
        );
        let sets = blocks / u64::from(associativity);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(sets <= u64::from(u32::MAX));
        CacheConfig {
            size_bytes,
            associativity,
            sets: sets as u32,
        }
    }

    /// Capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Ways per set.
    pub fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// The set a block address maps to.
    #[inline]
    pub fn set_of(&self, block: u64) -> u32 {
        (block & u64::from(self.sets - 1)) as u32
    }

    /// The tag of a block address (bits above the set index).
    #[inline]
    pub fn tag_of(&self, block: u64) -> u64 {
        block >> self.sets.trailing_zeros()
    }

    /// Standard L1 data cache from the paper: 32KB, 8-way.
    pub fn l1d() -> Self {
        CacheConfig::new(32 * 1024, 8)
    }

    /// Standard unified L2 from the paper: 256KB, 8-way.
    pub fn l2() -> Self {
        CacheConfig::new(256 * 1024, 8)
    }

    /// Single-thread LLC from the paper: 2MB, 16-way.
    pub fn llc_single() -> Self {
        CacheConfig::new(2 * 1024 * 1024, 16)
    }

    /// 4-core shared LLC from the paper: 8MB, 16-way.
    pub fn llc_multi() -> Self {
        CacheConfig::new(8 * 1024 * 1024, 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheConfig::l1d().sets(), 64);
        assert_eq!(CacheConfig::l2().sets(), 512);
        assert_eq!(CacheConfig::llc_single().sets(), 2048);
        assert_eq!(CacheConfig::llc_multi().sets(), 8192);
    }

    #[test]
    fn set_and_tag_partition_block_address() {
        let c = CacheConfig::llc_single();
        for block in [0u64, 1, 2047, 2048, 0xdead_beef] {
            let set = c.set_of(block);
            let tag = c.tag_of(block);
            assert_eq!(tag << 11 | u64::from(set), block);
        }
    }

    #[test]
    fn same_set_different_tags_conflict() {
        let c = CacheConfig::l1d();
        let a = 0u64;
        let b = u64::from(c.sets());
        assert_eq!(c.set_of(a), c.set_of(b));
        assert_ne!(c.tag_of(a), c.tag_of(b));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = CacheConfig::new(3 * 64 * 5, 5);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn rejects_fractional_sets() {
        let _ = CacheConfig::new(64 * 7, 4);
    }
}

//! Tree-based pseudo-LRU.

use crate::policy::{AccessInfo, ReplacementPolicy};

/// Per-set binary-tree PLRU state, exposed so MDPP (and MPPPB over MDPP)
/// can drive placement into arbitrary tree positions.
///
/// For an `assoc`-way set (`assoc` a power of two) the tree has
/// `assoc - 1` internal nodes stored heap-style: node 0 is the root, node
/// `i` has children `2i+1` and `2i+2`. A bit value of `false` means the
/// *left* subtree is colder (victim side); `true` means the right is.
#[derive(Debug, Clone)]
pub struct PlruTree {
    bits: Vec<bool>,
    assoc: u32,
    levels: u32,
}

impl PlruTree {
    /// Creates state for `sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is not a power of two or is less than 2.
    pub fn new(sets: u32, assoc: u32) -> Self {
        assert!(
            assoc.is_power_of_two() && assoc >= 2,
            "assoc must be a power of two >= 2"
        );
        PlruTree {
            bits: vec![false; sets as usize * (assoc as usize - 1)],
            assoc,
            levels: assoc.trailing_zeros(),
        }
    }

    /// Ways per set.
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    #[inline]
    fn base(&self, set: u32) -> usize {
        set as usize * (self.assoc as usize - 1)
    }

    /// The victim way: follow the cold pointers from the root.
    pub fn victim(&self, set: u32) -> u32 {
        let base = self.base(set);
        let mut node = 0usize;
        for _ in 0..self.levels {
            let bit = self.bits[base + node];
            node = 2 * node + 1 + usize::from(bit);
        }
        (node + 1 - self.assoc as usize) as u32
    }

    /// Full promotion: point every node on `way`'s path away from it
    /// (classic PLRU MRU update).
    pub fn touch(&mut self, set: u32, way: u32) {
        self.set_position(set, way, 0);
    }

    /// Places `way` at pseudo-recency `position` (0 = most protected,
    /// `assoc - 1` = immediate victim).
    ///
    /// Each of the `log2(assoc)` path bits is written from the
    /// corresponding bit of `position` (MSB at the root): a 0 bit points
    /// the node away from the block (protecting it at that level), a 1 bit
    /// points at it. This is the placement mechanism of tree-based
    /// insertion/promotion policies (MDPP).
    ///
    /// # Panics
    ///
    /// Panics if `way` or `position` is out of range.
    pub fn set_position(&mut self, set: u32, way: u32, position: u32) {
        assert!(way < self.assoc, "way out of range");
        assert!(position < self.assoc, "position out of range");
        let base = self.base(set);
        let mut node = 0usize;
        for level in 0..self.levels {
            // Does the path to `way` go right at this level?
            let goes_right = (way >> (self.levels - 1 - level)) & 1 == 1;
            let pos_bit = (position >> (self.levels - 1 - level)) & 1 == 1;
            // bit == goes_right means the node points AT the block.
            self.bits[base + node] = if pos_bit { goes_right } else { !goes_right };
            node = 2 * node + 1 + usize::from(goes_right);
        }
    }

    /// Promotes `way` to `position` but only rewrites tree levels where
    /// the node currently points *at* the block (minimal disturbance, per
    /// MDPP): levels already protecting the block are left untouched.
    pub fn promote_minimal(&mut self, set: u32, way: u32, position: u32) {
        assert!(way < self.assoc, "way out of range");
        assert!(position < self.assoc, "position out of range");
        let base = self.base(set);
        let mut node = 0usize;
        for level in 0..self.levels {
            let goes_right = (way >> (self.levels - 1 - level)) & 1 == 1;
            let pos_bit = (position >> (self.levels - 1 - level)) & 1 == 1;
            let points_at_block = self.bits[base + node] == goes_right;
            if points_at_block && !pos_bit {
                self.bits[base + node] = !goes_right;
            }
            node = 2 * node + 1 + usize::from(goes_right);
        }
    }

    /// The pseudo-recency position of `way` implied by the current bits:
    /// each path level contributes a 1 where the node points at the block.
    pub fn position_of(&self, set: u32, way: u32) -> u32 {
        let base = self.base(set);
        let mut node = 0usize;
        let mut position = 0u32;
        for level in 0..self.levels {
            let goes_right = (way >> (self.levels - 1 - level)) & 1 == 1;
            let points_at_block = self.bits[base + node] == goes_right;
            if points_at_block {
                position |= 1 << (self.levels - 1 - level);
            }
            node = 2 * node + 1 + usize::from(goes_right);
        }
        position
    }
}

/// Plain tree PLRU as a standalone policy (insert and promote to MRU).
#[derive(Debug, Clone)]
pub struct TreePlru {
    tree: PlruTree,
}

impl TreePlru {
    /// Creates the policy for `sets` sets of `assoc` ways.
    pub fn new(sets: u32, assoc: u32) -> Self {
        TreePlru {
            tree: PlruTree::new(sets, assoc),
        }
    }
}

impl ReplacementPolicy for TreePlru {
    fn name(&self) -> &str {
        "tree-plru"
    }

    fn on_hit(&mut self, info: &AccessInfo, way: u32) {
        self.tree.touch(info.set, way);
    }

    fn choose_victim(&mut self, info: &AccessInfo, _occupants: &[u64]) -> u32 {
        self.tree.victim(info.set)
    }

    fn uses_victim_occupants(&self) -> bool {
        false
    }

    fn on_fill(&mut self, info: &AccessInfo, way: u32) {
        self.tree.touch(info.set, way);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touched_way_is_not_the_victim() {
        let mut t = PlruTree::new(1, 16);
        for way in 0..16 {
            t.touch(0, way);
            assert_ne!(t.victim(0), way);
        }
    }

    #[test]
    fn position_zero_is_max_protection() {
        let mut t = PlruTree::new(1, 16);
        t.set_position(0, 5, 0);
        assert_eq!(t.position_of(0, 5), 0);
        assert_ne!(t.victim(0), 5);
    }

    #[test]
    fn position_max_makes_way_the_victim() {
        let mut t = PlruTree::new(1, 16);
        t.set_position(0, 9, 15);
        assert_eq!(t.position_of(0, 9), 15);
        assert_eq!(t.victim(0), 9);
    }

    #[test]
    fn set_position_round_trips() {
        let mut t = PlruTree::new(1, 16);
        for pos in 0..16 {
            t.set_position(0, 3, pos);
            assert_eq!(t.position_of(0, 3), pos);
        }
    }

    #[test]
    fn minimal_promotion_only_improves() {
        let mut t = PlruTree::new(1, 16);
        t.set_position(0, 7, 13);
        t.promote_minimal(0, 7, 4);
        assert!(t.position_of(0, 7) <= 4);
        // Promoting to a worse position does nothing destructive:
        t.set_position(0, 7, 2);
        t.promote_minimal(0, 7, 10);
        assert!(t.position_of(0, 7) <= 10);
    }

    #[test]
    fn victim_walk_is_consistent_with_positions() {
        let mut t = PlruTree::new(1, 8);
        // Protect ways 0..7 in order; the last-protected is never victim.
        for way in 0..8 {
            t.touch(0, way);
        }
        let v = t.victim(0);
        assert_ne!(v, 7);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = PlruTree::new(1, 12);
    }
}

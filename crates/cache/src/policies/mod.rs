//! Classic replacement policies.
//!
//! These are the paper's baselines and default policies: true LRU (§4.5's
//! normalization baseline), random, tree-based pseudo-LRU, the RRIP family
//! (§3.7: SRRIP is the multi-core default), and static MDPP (§3.7: the
//! single-thread default). The RRIP and PLRU *state* types are exported so
//! `mrp-core` can drive the same structures with predictor-chosen
//! placement/promotion positions.

mod lru;
mod mdpp;
mod plru;
mod random;
mod rrip;

pub use lru::Lru;
pub use mdpp::{Mdpp, MdppConfig};
pub use plru::{PlruTree, TreePlru};
pub use random::RandomPolicy;
pub use rrip::{Brrip, Drrip, RripState, Srrip, RRIP_BITS, RRIP_MAX};

//! Random replacement.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::policy::{AccessInfo, ReplacementPolicy};

/// Uniform-random victim selection. Useful as a sanity floor in
/// experiments: any learned policy should beat it on reusable workloads.
#[derive(Debug)]
pub struct RandomPolicy {
    assoc: u32,
    rng: SmallRng,
}

impl RandomPolicy {
    /// Creates the policy for `assoc`-way sets; `seed` fixes the victim
    /// stream for reproducibility.
    pub fn new(assoc: u32, seed: u64) -> Self {
        RandomPolicy {
            assoc,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn name(&self) -> &str {
        "random"
    }

    fn on_hit(&mut self, _info: &AccessInfo, _way: u32) {}

    fn choose_victim(&mut self, _info: &AccessInfo, _occupants: &[u64]) -> u32 {
        self.rng.gen_range(0..self.assoc)
    }

    fn uses_victim_occupants(&self) -> bool {
        false
    }

    fn on_fill(&mut self, _info: &AccessInfo, _way: u32) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_trace::MemoryAccess;

    #[test]
    fn victims_cover_all_ways() {
        let config = crate::CacheConfig::new(64 * 16, 4);
        let info = AccessInfo::from_access(&MemoryAccess::load(1, 0), &config, false);
        let mut p = RandomPolicy::new(4, 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = p.choose_victim(&info, &[0, 1, 2, 3]);
            assert!(v < 4);
            seen.insert(v);
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn same_seed_same_victims() {
        let config = crate::CacheConfig::new(64 * 16, 4);
        let info = AccessInfo::from_access(&MemoryAccess::load(1, 0), &config, false);
        let mut a = RandomPolicy::new(4, 9);
        let mut b = RandomPolicy::new(4, 9);
        for _ in 0..50 {
            assert_eq!(
                a.choose_victim(&info, &[0, 1, 2, 3]),
                b.choose_victim(&info, &[0, 1, 2, 3])
            );
        }
    }
}

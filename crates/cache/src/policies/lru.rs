//! True least-recently-used replacement.

use crate::policy::{AccessInfo, ReplacementPolicy};

/// True LRU: victims are the least-recently-touched way.
///
/// Implemented with monotonic timestamps (no per-access list shuffling);
/// the paper normalizes every result to this policy.
#[derive(Debug, Clone)]
pub struct Lru {
    stamps: Vec<u64>,
    assoc: u32,
    clock: u64,
}

impl Lru {
    /// Creates LRU state for `sets` sets of `assoc` ways.
    pub fn new(sets: u32, assoc: u32) -> Self {
        Lru {
            stamps: vec![0; sets as usize * assoc as usize],
            assoc,
            clock: 0,
        }
    }

    #[inline]
    fn slot(&self, set: u32, way: u32) -> usize {
        set as usize * self.assoc as usize + way as usize
    }

    fn touch(&mut self, set: u32, way: u32) {
        self.clock += 1;
        let slot = self.slot(set, way);
        self.stamps[slot] = self.clock;
    }

    /// The way that would be chosen as victim in `set` (least recent).
    pub fn lru_way(&self, set: u32) -> u32 {
        let base = self.slot(set, 0);
        let slice = &self.stamps[base..base + self.assoc as usize];
        slice
            .iter()
            .enumerate()
            .min_by_key(|(_, &s)| s)
            .map(|(w, _)| w as u32)
            .expect("associativity is nonzero")
    }

    /// Recency rank of `way` within `set` (0 = MRU).
    pub fn stack_position(&self, set: u32, way: u32) -> u32 {
        let base = self.slot(set, 0);
        let slice = &self.stamps[base..base + self.assoc as usize];
        let mine = slice[way as usize];
        slice.iter().filter(|&&s| s > mine).count() as u32
    }
}

impl ReplacementPolicy for Lru {
    fn name(&self) -> &str {
        "lru"
    }

    fn on_hit(&mut self, info: &AccessInfo, way: u32) {
        self.touch(info.set, way);
    }

    fn choose_victim(&mut self, info: &AccessInfo, _occupants: &[u64]) -> u32 {
        self.lru_way(info.set)
    }

    fn uses_victim_occupants(&self) -> bool {
        false
    }

    fn on_fill(&mut self, info: &AccessInfo, way: u32) {
        self.touch(info.set, way);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_trace::MemoryAccess;

    fn info(set: u32) -> AccessInfo {
        let config = crate::CacheConfig::new(64 * 16, 4);
        AccessInfo::from_access(&MemoryAccess::load(1, u64::from(set) * 64), &config, false)
    }

    #[test]
    fn victim_is_least_recent() {
        let mut lru = Lru::new(4, 4);
        for way in 0..4 {
            lru.on_fill(&info(0), way);
        }
        assert_eq!(lru.lru_way(0), 0);
        lru.on_hit(&info(0), 0);
        assert_eq!(lru.lru_way(0), 1);
    }

    #[test]
    fn stack_positions_are_a_permutation() {
        let mut lru = Lru::new(1, 8);
        for way in 0..8 {
            lru.on_fill(&info(0), way);
        }
        let mut positions: Vec<u32> = (0..8).map(|w| lru.stack_position(0, w)).collect();
        positions.sort();
        assert_eq!(positions, (0..8).collect::<Vec<_>>());
        // Most recent fill is MRU.
        assert_eq!(lru.stack_position(0, 7), 0);
    }

    #[test]
    fn sets_are_independent() {
        let mut lru = Lru::new(2, 2);
        lru.on_fill(&info(0), 0);
        lru.on_fill(&info(0), 1);
        // Set 1 untouched: victim is way 0.
        assert_eq!(lru.lru_way(1), 0);
    }
}

//! Static minimal-disturbance placement and promotion (MDPP).

use crate::policies::plru::PlruTree;
use crate::policy::{AccessInfo, ReplacementPolicy};

/// Static MDPP parameters: fixed tree positions for insertion and
/// promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdppConfig {
    /// Tree position newly inserted blocks receive (0 = most protected).
    pub insert_position: u32,
    /// Tree position hits promote to (with minimal disturbance).
    pub promote_position: u32,
}

impl Default for MdppConfig {
    /// Positions tuned on the workload suite: insertion near (but not at)
    /// the eviction end so dead streams leave quickly, promotion close to
    /// protected so reused blocks survive.
    fn default() -> Self {
        MdppConfig {
            insert_position: 11,
            promote_position: 1,
        }
    }
}

/// Static MDPP over tree-based pseudo-LRU (Teran et al., HPCA 2016): the
/// paper's default single-thread replacement policy (§3.7). Uses 15 tree
/// bits per 16-way set; placement and promotion write a block's path bits
/// from a position value, and promotion disturbs only the levels that
/// currently point at the block.
#[derive(Debug, Clone)]
pub struct Mdpp {
    tree: PlruTree,
    config: MdppConfig,
}

impl Mdpp {
    /// Creates the policy for `sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if a configured position is outside `0..assoc`.
    pub fn new(sets: u32, assoc: u32, config: MdppConfig) -> Self {
        assert!(
            config.insert_position < assoc,
            "insert position out of range"
        );
        assert!(
            config.promote_position < assoc,
            "promote position out of range"
        );
        Mdpp {
            tree: PlruTree::new(sets, assoc),
            config,
        }
    }

    /// The configured positions.
    pub fn config(&self) -> MdppConfig {
        self.config
    }

    /// Shared tree state (used by MPPPB, which layers predictor-chosen
    /// positions over the same structure).
    pub fn tree_mut(&mut self) -> &mut PlruTree {
        &mut self.tree
    }
}

impl ReplacementPolicy for Mdpp {
    fn name(&self) -> &str {
        "mdpp"
    }

    fn on_hit(&mut self, info: &AccessInfo, way: u32) {
        self.tree
            .promote_minimal(info.set, way, self.config.promote_position);
    }

    fn choose_victim(&mut self, info: &AccessInfo, _occupants: &[u64]) -> u32 {
        self.tree.victim(info.set)
    }

    fn uses_victim_occupants(&self) -> bool {
        false
    }

    fn on_fill(&mut self, info: &AccessInfo, way: u32) {
        self.tree
            .set_position(info.set, way, self.config.insert_position);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_trace::MemoryAccess;

    fn info(block: u64) -> AccessInfo {
        let config = crate::CacheConfig::new(64 * 16, 16); // 1 set x 16 ways
        AccessInfo::from_access(&MemoryAccess::load(1, block * 64), &config, false)
    }

    #[test]
    fn inserted_blocks_sit_near_eviction_end() {
        let mut p = Mdpp::new(1, 16, MdppConfig::default());
        p.on_fill(&info(0), 3);
        assert_eq!(p.tree.position_of(0, 3), 11);
    }

    #[test]
    fn promotion_protects_reused_blocks() {
        let mut p = Mdpp::new(1, 16, MdppConfig::default());
        p.on_fill(&info(0), 3);
        p.on_hit(&info(0), 3);
        assert!(p.tree.position_of(0, 3) <= 1);
        assert_ne!(p.choose_victim(&info(1), &[0; 16]), 3);
    }

    #[test]
    fn unpromoted_inserts_are_evicted_before_promoted_blocks() {
        let mut p = Mdpp::new(1, 16, MdppConfig::default());
        for way in 0..16 {
            p.on_fill(&info(u64::from(way)), way);
        }
        p.on_hit(&info(5), 5);
        let victim = p.choose_victim(&info(99), &[0; 16]);
        assert_ne!(victim, 5);
    }

    #[test]
    #[should_panic(expected = "insert position out of range")]
    fn rejects_bad_insert_position() {
        let _ = Mdpp::new(
            1,
            16,
            MdppConfig {
                insert_position: 16,
                promote_position: 0,
            },
        );
    }
}

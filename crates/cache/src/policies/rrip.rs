//! Re-reference interval prediction (SRRIP / BRRIP / DRRIP).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::policy::{AccessInfo, ReplacementPolicy};

/// RRPV counter width used throughout (the paper: "SRRIP with two-bit
/// re-reference interval values", §2).
pub const RRIP_BITS: u32 = 2;

/// Maximum RRPV (the "distant" value that marks a victim candidate).
pub const RRIP_MAX: u8 = (1 << RRIP_BITS) - 1;

/// Per-block RRPV state shared by the RRIP policies and by MPPPB's
/// multi-core variant, which places blocks at predictor-chosen RRPVs.
#[derive(Debug, Clone)]
pub struct RripState {
    rrpv: Vec<u8>,
    assoc: u32,
}

impl RripState {
    /// Creates state for `sets` sets of `assoc` ways, all blocks distant.
    pub fn new(sets: u32, assoc: u32) -> Self {
        RripState {
            rrpv: vec![RRIP_MAX; sets as usize * assoc as usize],
            assoc,
        }
    }

    /// Ways per set.
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    #[inline]
    fn slot(&self, set: u32, way: u32) -> usize {
        set as usize * self.assoc as usize + way as usize
    }

    /// Reads a block's RRPV.
    pub fn get(&self, set: u32, way: u32) -> u8 {
        let v = self.rrpv[self.slot(set, way)];
        debug_assert!(v <= RRIP_MAX, "RRPV {v} exceeds {RRIP_MAX}");
        v
    }

    /// Writes a block's RRPV (clamped to [`RRIP_MAX`]).
    pub fn set(&mut self, set: u32, way: u32, value: u8) {
        let slot = self.slot(set, way);
        self.rrpv[slot] = value.min(RRIP_MAX);
    }

    /// Finds a victim: the first way at [`RRIP_MAX`], aging the whole set
    /// (incrementing every RRPV) until one exists.
    pub fn victim(&mut self, set: u32) -> u32 {
        loop {
            let base = self.slot(set, 0);
            for way in 0..self.assoc {
                if self.rrpv[base + way as usize] == RRIP_MAX {
                    return way;
                }
            }
            for way in 0..self.assoc {
                debug_assert!(
                    self.rrpv[base + way as usize] < RRIP_MAX,
                    "aging a set that already has a distant block"
                );
                self.rrpv[base + way as usize] += 1;
            }
        }
    }
}

/// Static RRIP: insert at `RRIP_MAX - 1` (long), promote to 0 on hit.
#[derive(Debug, Clone)]
pub struct Srrip {
    state: RripState,
}

impl Srrip {
    /// Creates the policy for `sets` sets of `assoc` ways.
    pub fn new(sets: u32, assoc: u32) -> Self {
        Srrip {
            state: RripState::new(sets, assoc),
        }
    }
}

impl ReplacementPolicy for Srrip {
    fn name(&self) -> &str {
        "srrip"
    }

    fn on_hit(&mut self, info: &AccessInfo, way: u32) {
        self.state.set(info.set, way, 0);
    }

    fn choose_victim(&mut self, info: &AccessInfo, _occupants: &[u64]) -> u32 {
        self.state.victim(info.set)
    }

    fn uses_victim_occupants(&self) -> bool {
        false
    }

    fn on_fill(&mut self, info: &AccessInfo, way: u32) {
        self.state.set(info.set, way, RRIP_MAX - 1);
    }
}

/// Bimodal RRIP: insert distant, with a 1/32 chance of long.
#[derive(Debug)]
pub struct Brrip {
    state: RripState,
    rng: SmallRng,
}

/// Probability denominator for BRRIP's occasional long insertion.
const BRRIP_LONG_CHANCE: u32 = 32;

impl Brrip {
    /// Creates the policy for `sets` sets of `assoc` ways.
    pub fn new(sets: u32, assoc: u32, seed: u64) -> Self {
        Brrip {
            state: RripState::new(sets, assoc),
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl ReplacementPolicy for Brrip {
    fn name(&self) -> &str {
        "brrip"
    }

    fn on_hit(&mut self, info: &AccessInfo, way: u32) {
        self.state.set(info.set, way, 0);
    }

    fn choose_victim(&mut self, info: &AccessInfo, _occupants: &[u64]) -> u32 {
        self.state.victim(info.set)
    }

    fn uses_victim_occupants(&self) -> bool {
        false
    }

    fn on_fill(&mut self, info: &AccessInfo, way: u32) {
        let rrpv = if self.rng.gen_range(0..BRRIP_LONG_CHANCE) == 0 {
            RRIP_MAX - 1
        } else {
            RRIP_MAX
        };
        self.state.set(info.set, way, rrpv);
    }
}

/// Dynamic RRIP: set-dueling between SRRIP and BRRIP insertion.
#[derive(Debug)]
pub struct Drrip {
    state: RripState,
    rng: SmallRng,
    sets: u32,
    /// Saturating selector; >= 0 favors SRRIP insertion.
    psel: i32,
    psel_max: i32,
}

/// Number of leader sets per dueling team.
const LEADERS: u32 = 32;

impl Drrip {
    /// Creates the policy for `sets` sets of `assoc` ways.
    pub fn new(sets: u32, assoc: u32, seed: u64) -> Self {
        Drrip {
            state: RripState::new(sets, assoc),
            rng: SmallRng::seed_from_u64(seed),
            sets,
            psel: 0,
            psel_max: 512,
        }
    }

    /// Leader-set classification: a stride of sets leads for SRRIP,
    /// another for BRRIP. The stride is floored at 4 so small caches keep
    /// follower sets.
    fn leader(&self, set: u32) -> Option<bool> {
        let stride = (self.sets / LEADERS).max(4);
        if set.is_multiple_of(stride) {
            Some(true) // SRRIP leader
        } else if set % stride == 1 {
            Some(false) // BRRIP leader
        } else {
            None
        }
    }

    fn use_srrip(&self, set: u32) -> bool {
        match self.leader(set) {
            Some(srrip_leader) => srrip_leader,
            None => self.psel >= 0,
        }
    }
}

impl ReplacementPolicy for Drrip {
    fn name(&self) -> &str {
        "drrip"
    }

    fn on_access(&mut self, info: &AccessInfo) {
        let _ = info;
    }

    fn on_hit(&mut self, info: &AccessInfo, way: u32) {
        self.state.set(info.set, way, 0);
    }

    fn choose_victim(&mut self, info: &AccessInfo, _occupants: &[u64]) -> u32 {
        // A miss in a leader set votes against that leader's policy.
        match self.leader(info.set) {
            Some(true) => self.psel = (self.psel - 1).max(-self.psel_max),
            Some(false) => self.psel = (self.psel + 1).min(self.psel_max),
            None => {}
        }
        self.state.victim(info.set)
    }

    fn on_fill(&mut self, info: &AccessInfo, way: u32) {
        // Short-circuit keeps the RNG stream untouched in SRRIP sets.
        let long = self.use_srrip(info.set) || self.rng.gen_range(0..BRRIP_LONG_CHANCE) == 0;
        let rrpv = if long { RRIP_MAX - 1 } else { RRIP_MAX };
        self.state.set(info.set, way, rrpv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_trace::MemoryAccess;

    fn info(set_addr: u64) -> AccessInfo {
        let config = crate::CacheConfig::new(64 * 64, 4); // 16 sets x 4 ways
        AccessInfo::from_access(&MemoryAccess::load(1, set_addr * 64), &config, false)
    }

    #[test]
    fn victim_prefers_distant_blocks() {
        let mut s = RripState::new(1, 4);
        s.set(0, 0, 0);
        s.set(0, 1, 1);
        s.set(0, 2, RRIP_MAX);
        s.set(0, 3, 2);
        assert_eq!(s.victim(0), 2);
    }

    #[test]
    fn victim_ages_set_when_no_distant_block() {
        let mut s = RripState::new(1, 2);
        s.set(0, 0, 0);
        s.set(0, 1, 1);
        assert_eq!(s.victim(0), 1);
        // Aging happened: way 0 advanced too.
        assert_eq!(s.get(0, 0), RRIP_MAX - 1);
    }

    #[test]
    fn rrpv_writes_saturate() {
        let mut s = RripState::new(1, 2);
        s.set(0, 0, 200);
        assert_eq!(s.get(0, 0), RRIP_MAX);
    }

    #[test]
    fn srrip_hit_promotes_to_zero() {
        let mut p = Srrip::new(16, 4);
        p.on_fill(&info(0), 1);
        assert_eq!(p.state.get(0, 1), RRIP_MAX - 1);
        p.on_hit(&info(0), 1);
        assert_eq!(p.state.get(0, 1), 0);
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut p = Brrip::new(16, 4, 3);
        let mut distant = 0;
        for _ in 0..320 {
            p.on_fill(&info(0), 0);
            if p.state.get(0, 0) == RRIP_MAX {
                distant += 1;
            }
        }
        assert!(distant > 280, "only {distant}/320 distant inserts");
    }

    #[test]
    fn drrip_followers_follow_psel() {
        let mut p = Drrip::new(16, 4, 3);
        // Force PSEL negative: misses in SRRIP leader sets (set 0).
        for _ in 0..600 {
            let _ = p.choose_victim(&info(0), &[0, 1, 2, 3]);
        }
        assert!(p.psel < 0);
        // Follower set (set 2: stride 4 makes sets 0/1 the leaders) now
        // inserts BRRIP-style (usually max).
        assert_eq!(p.leader(2), None);
        let mut distant = 0;
        for _ in 0..64 {
            p.on_fill(&info(2), 0);
            if p.state.get(2, 0) == RRIP_MAX {
                distant += 1;
            }
        }
        assert!(distant > 48);
    }
}

//! The replacement-policy interface.

use mrp_trace::{AccessKind, MemoryAccess};

use crate::config::CacheConfig;

/// Everything a policy may observe about one cache access.
///
/// Built by [`crate::Cache`] from the trace record plus the cache geometry;
/// prefetches carry the fake PC the paper prescribes ("A 'fake' PC address
/// is used for all hardware prefetches", §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessInfo {
    /// PC of the memory instruction (or the fake prefetch PC).
    pub pc: u64,
    /// Full byte address.
    pub address: u64,
    /// Block address (`address >> 6`).
    pub block: u64,
    /// Set index in this cache.
    pub set: u32,
    /// Issuing core.
    pub core: u8,
    /// Load or store.
    pub kind: AccessKind,
    /// True for hardware prefetch fills.
    pub is_prefetch: bool,
}

/// The fake PC attributed to hardware prefetches.
pub const PREFETCH_PC: u64 = 0xffff_ffff_f000;

/// One LLC-bound access a batched front-end announces ahead of time
/// through [`ReplacementPolicy::on_upcoming_accesses`].
///
/// Carries exactly the stream-derivable facts: PC (already substituted
/// with [`PREFETCH_PC`] for prefetches, matching what
/// [`AccessInfo::from_access`] will later present), address, core, and
/// the prefetch flag. Outcome-dependent state (MRU/insert/last-miss) is
/// *not* known ahead of time; policies that precompute from the window
/// must patch those in at access time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpcomingAccess {
    /// PC of the instruction (or [`PREFETCH_PC`] for prefetches).
    pub pc: u64,
    /// Full byte address.
    pub address: u64,
    /// Issuing core.
    pub core: u8,
    /// Whether this will arrive as a hardware prefetch.
    pub is_prefetch: bool,
}

impl UpcomingAccess {
    /// Builds the announcement for `access`, applying the prefetch-PC
    /// substitution.
    #[inline]
    pub fn new(access: &MemoryAccess, is_prefetch: bool) -> Self {
        UpcomingAccess {
            pc: if is_prefetch { PREFETCH_PC } else { access.pc },
            address: access.address,
            core: access.core,
            is_prefetch,
        }
    }
}

impl AccessInfo {
    /// Builds the info for `access` against geometry `config`.
    pub fn from_access(access: &MemoryAccess, config: &CacheConfig, is_prefetch: bool) -> Self {
        let block = access.block();
        AccessInfo {
            pc: if is_prefetch { PREFETCH_PC } else { access.pc },
            address: access.address,
            block,
            set: config.set_of(block),
            core: access.core,
            kind: access.kind,
            is_prefetch,
        }
    }
}

/// A cache replacement (and bypass) policy.
///
/// The cache drives the policy through five hooks. For every access the
/// cache first calls [`ReplacementPolicy::on_access`]; then exactly one of:
///
/// * hit — [`ReplacementPolicy::on_hit`];
/// * miss — [`ReplacementPolicy::should_bypass`]; if `false` and the set is
///   full, [`ReplacementPolicy::choose_victim`] then
///   [`ReplacementPolicy::on_evict`]; finally
///   [`ReplacementPolicy::on_fill`].
///
/// Policies are constructed for a fixed geometry; implementations keep
/// per-set recency state sized accordingly.
pub trait ReplacementPolicy {
    /// Short display name (e.g. `"lru"`, `"mpppb-mdpp"`).
    fn name(&self) -> &str;

    /// Observes every access (hit or miss), before the outcome is known.
    /// Default: no-op.
    fn on_access(&mut self, info: &AccessInfo) {
        let _ = info;
    }

    /// Observes every *core* demand access, including those that hit in
    /// levels above this cache. The paper's predictor keeps a per-core
    /// vector of feature values "updated on every memory access" (§3.4),
    /// which requires visibility beyond the filtered LLC stream. Default:
    /// no-op.
    fn on_core_access(&mut self, access: &MemoryAccess) {
        let _ = access;
    }

    /// Whether [`ReplacementPolicy::on_core_access`] does anything. Must
    /// return `true` for any policy that overrides (or forwards) the
    /// hook; replay fast paths skip the per-access call — and the access
    /// reconstruction feeding it — when this is `false`. The replay
    /// equivalence suite (`mrp-verify`) catches a stale override.
    fn uses_core_accesses(&self) -> bool {
        false
    }

    /// Announces the next LLC-bound accesses, in the exact order they
    /// will subsequently be presented to this policy. Batched front-ends
    /// (the hierarchy's grouped LLC drain and both replay loops) deliver
    /// one window at a time; a policy may precompute whatever is
    /// stream-derivable (e.g. batched feature-index computation) and
    /// consume it as the real accesses arrive. The window is purely
    /// advisory: a policy must produce bit-identical results whether or
    /// not (and how often) it is called. Default: no-op.
    fn on_upcoming_accesses(&mut self, window: &[UpcomingAccess]) {
        let _ = window;
    }

    /// Whether [`ReplacementPolicy::on_upcoming_accesses`] does anything.
    /// Must return `true` for any policy that overrides (or forwards) the
    /// hook; front-ends skip building the window when this is `false`.
    fn uses_upcoming_accesses(&self) -> bool {
        false
    }

    /// Switches per-decision confidence accounting on or off. Predictive
    /// policies that can attribute a confidence value to each decision
    /// (MPPPB, perceptron-family) may maintain a histogram when enabled;
    /// the default is a no-op, and tracking must default to *off* so the
    /// hot path pays nothing unless a serving/telemetry front-end asks.
    fn set_confidence_tracking(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// The per-decision confidence histogram accumulated since tracking
    /// was enabled ([`ReplacementPolicy::set_confidence_tracking`]), in
    /// fixed bins from strongly-reuse-predicted to strongly-bypass-
    /// predicted. `None` when the policy has no confidence notion or
    /// tracking is off.
    fn confidence_histogram(&self) -> Option<Vec<u64>> {
        None
    }

    /// The access hit in `way`.
    fn on_hit(&mut self, info: &AccessInfo, way: u32);

    /// The access missed; returning `true` skips the fill entirely
    /// (bypass). Default: never bypass.
    fn should_bypass(&mut self, info: &AccessInfo) -> bool {
        let _ = info;
        false
    }

    /// Chooses the victim way for a fill into a full set. `occupants[w]` is
    /// the block currently in way `w`; every way is valid when this is
    /// called. When [`ReplacementPolicy::uses_victim_occupants`] is
    /// `false`, the cache may pass an empty slice instead.
    fn choose_victim(&mut self, info: &AccessInfo, occupants: &[u64]) -> u32;

    /// Whether [`ReplacementPolicy::choose_victim`] reads its `occupants`
    /// argument. Policies that pick victims purely from their own state
    /// (recency trees, RRPV arrays, predictor metadata) return `false`
    /// so the cache can skip snapshotting the set's tags on every miss —
    /// a measurable saving on the per-access serving path. Must be
    /// constant for the lifetime of the policy. Default: `true`
    /// (conservative).
    fn uses_victim_occupants(&self) -> bool {
        true
    }

    /// `block` is being evicted from (`set`, `way`). Default: no-op.
    fn on_evict(&mut self, set: u32, way: u32, block: u64) {
        let _ = (set, way, block);
    }

    /// The missing block was filled into `way`.
    fn on_fill(&mut self, info: &AccessInfo, way: u32);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_info_uses_fake_pc_for_prefetches() {
        let c = CacheConfig::l1d();
        let a = MemoryAccess::load(0x400100, 0x8040);
        let demand = AccessInfo::from_access(&a, &c, false);
        let prefetch = AccessInfo::from_access(&a, &c, true);
        assert_eq!(demand.pc, 0x400100);
        assert_eq!(prefetch.pc, PREFETCH_PC);
        assert_eq!(demand.block, prefetch.block);
    }

    #[test]
    fn access_info_derives_set_from_geometry() {
        let c = CacheConfig::llc_single();
        let a = MemoryAccess::load(1, 0x1_0000);
        let info = AccessInfo::from_access(&a, &c, false);
        assert_eq!(info.set, c.set_of(a.block()));
    }
}

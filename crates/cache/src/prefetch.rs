//! Stream prefetcher.
//!
//! Models the paper's prefetcher (§4.1): "It starts a stream on a L1 cache
//! miss and waits for at most two misses to decide on the direction of the
//! stream. After that it starts to generate and send prefetch requests. It
//! can track 16 separate streams. The replacement policy for the streams is
//! LRU."

/// Maximum simultaneously tracked streams.
pub const MAX_STREAMS: usize = 16;

/// How far (in blocks) a miss may land from a stream's head and still be
/// matched to it.
const MATCH_WINDOW: i64 = 16;

/// Prefetch degree: blocks issued per confirmed-stream advance.
const DEGREE: usize = 4;

/// Prefetch distance: how far ahead of the stream head requests run.
/// Must outrun the in-flight fill delay modeled by the hierarchy.
const DISTANCE: i64 = 16;

#[derive(Debug, Clone, Copy)]
struct StreamEntry {
    /// Most recent miss block in this stream.
    head: i64,
    /// +1 / -1 once confirmed; 0 while training.
    direction: i64,
    /// Misses observed while training (direction decided at 2).
    training_misses: u32,
    /// Furthest block already requested, so requests are not re-issued.
    issued_until: i64,
    /// LRU stamp.
    last_used: u64,
}

/// A 16-entry stream prefetcher trained on L1 miss blocks.
#[derive(Debug, Default)]
pub struct StreamPrefetcher {
    streams: Vec<StreamEntry>,
    clock: u64,
    issued: u64,
}

impl StreamPrefetcher {
    /// Creates an empty prefetcher.
    pub fn new() -> Self {
        StreamPrefetcher::default()
    }

    /// Total prefetch requests issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Observes an L1 miss to `block`; returns the prefetch block
    /// addresses to issue (possibly empty).
    pub fn on_l1_miss(&mut self, block: u64) -> Vec<u64> {
        self.clock += 1;
        let block = block as i64;

        // Match against an existing stream.
        let mut best: Option<usize> = None;
        for (i, s) in self.streams.iter().enumerate() {
            let delta = block - s.head;
            if delta != 0 && delta.abs() <= MATCH_WINDOW {
                // Prefer the stream whose direction agrees.
                let agrees = s.direction == 0 || delta.signum() == s.direction;
                if agrees {
                    best = Some(i);
                    break;
                }
            }
        }

        if let Some(i) = best {
            let s = &mut self.streams[i];
            s.last_used = self.clock;
            let delta = block - s.head;
            if s.direction == 0 {
                s.training_misses += 1;
                if s.training_misses >= 2 {
                    s.direction = delta.signum();
                    s.issued_until = block;
                }
                s.head = block;
                return Vec::new();
            }
            s.head = block;
            // Confirmed stream: run requests up to DISTANCE ahead,
            // starting strictly beyond both the current miss and anything
            // already issued.
            let target = block + s.direction * DISTANCE;
            let mut requests = Vec::new();
            let mut next = if s.direction > 0 {
                (s.issued_until + 1).max(block + 1)
            } else {
                (s.issued_until - 1).min(block - 1)
            };
            while requests.len() < DEGREE
                && (s.direction > 0 && next <= target || s.direction < 0 && next >= target)
            {
                if next >= 0 {
                    requests.push(next as u64);
                }
                s.issued_until = if s.direction > 0 {
                    s.issued_until.max(next)
                } else {
                    s.issued_until.min(next)
                };
                next += s.direction;
            }
            self.issued += requests.len() as u64;
            return requests;
        }

        // Allocate a new stream (LRU replacement among the 16).
        let entry = StreamEntry {
            head: block,
            direction: 0,
            training_misses: 1,
            issued_until: block,
            last_used: self.clock,
        };
        if self.streams.len() < MAX_STREAMS {
            self.streams.push(entry);
        } else {
            let lru = self
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .expect("streams nonempty");
            self.streams[lru] = entry;
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_two_misses_to_confirm_direction() {
        let mut p = StreamPrefetcher::new();
        assert!(p.on_l1_miss(100).is_empty()); // allocate
        assert!(p.on_l1_miss(101).is_empty()); // second miss: direction set
        let reqs = p.on_l1_miss(102); // confirmed: prefetching starts
        assert!(!reqs.is_empty(), "confirmed stream should prefetch");
        assert!(reqs.iter().all(|&b| b > 102));
        let more = p.on_l1_miss(103);
        assert!(more.iter().all(|&b| b > 103));
    }

    #[test]
    fn descending_streams_prefetch_downward() {
        let mut p = StreamPrefetcher::new();
        p.on_l1_miss(1000);
        p.on_l1_miss(999);
        p.on_l1_miss(998);
        let reqs = p.on_l1_miss(997);
        assert!(!reqs.is_empty());
        assert!(reqs.iter().all(|&b| b < 997));
    }

    #[test]
    fn random_misses_never_prefetch() {
        let mut p = StreamPrefetcher::new();
        let mut total = 0;
        for i in 0..100u64 {
            // Jumps of 1000 blocks never match the window.
            total += p.on_l1_miss(i * 1000).len();
        }
        assert_eq!(total, 0);
    }

    #[test]
    fn requests_are_not_reissued() {
        let mut p = StreamPrefetcher::new();
        for b in 0..20u64 {
            p.on_l1_miss(b);
        }
        let mut seen = std::collections::HashSet::new();
        let mut p2 = StreamPrefetcher::new();
        for b in 0..40u64 {
            for r in p2.on_l1_miss(b) {
                assert!(seen.insert(r), "block {r} prefetched twice");
            }
        }
    }

    #[test]
    fn tracks_at_most_16_streams() {
        let mut p = StreamPrefetcher::new();
        for i in 0..40u64 {
            p.on_l1_miss(i * 10_000);
        }
        assert!(p.streams.len() <= MAX_STREAMS);
    }

    #[test]
    fn issued_counter_matches_requests() {
        let mut p = StreamPrefetcher::new();
        let mut total = 0u64;
        for b in 0..50u64 {
            total += p.on_l1_miss(b).len() as u64;
        }
        assert_eq!(p.issued(), total);
        assert!(total > 0);
    }
}

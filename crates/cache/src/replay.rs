//! Record-once / replay-many LLC streams.
//!
//! The stream of accesses reaching the LLC depends only on the trace and
//! the levels above it (L1D, L2, stream prefetcher) — never on the LLC
//! policy *or* geometry, because the private levels neither consult the
//! LLC nor observe its contents. [`LlcRecording`] exploits this: it
//! drives one pass of a workload through the private levels **with no
//! LLC at all**, logging every event an LLC (and the timing model) could
//! observe:
//!
//! * every demand access, tagged with the level that serviced it
//!   ([`ServiceLevel`]), carrying its full CPU metadata
//!   (`non_memory_before`, `dependent`) so IPC can be reconstructed;
//! * every prefetch fill that missed the L2 and would therefore reach
//!   the LLC.
//!
//! The recording then replays into any [`ReplacementPolicy`] at any LLC
//! geometry: [`LlcRecording::replay_llc`] walks only the LLC-bound
//! events (the MPKI-only fast path used by `mrp-search`), while
//! `mrp-cpu`'s full replay walks all events through the core timing
//! model for bit-identical MPKI *and* IPC versus full simulation.
//!
//! Recording is single-threaded and lock-free: events append to plain
//! `Vec`s owned by the recording (no `Arc<Mutex<…>>` side channels).
//! Recordings persist via the v2 `MRPT` stream codec plus an `MRPR`
//! trailer carrying the window snapshots that are not reconstructible
//! from the event log alone (L1/L2 counters, prefetches issued).

use std::io::{self, Read, Write};

use mrp_trace::codec::{self, FLAG_PREFETCH, LEVEL_MASK, LEVEL_SHIFT};
use mrp_trace::{AccessKind, MemoryAccess, ServiceLevel, StreamEvent};

use crate::cache::Cache;
use crate::hierarchy::{CorePrivate, HierarchyConfig};
use crate::policy::UpcomingAccess;
use crate::stats::{CacheStats, HierarchyStats};

/// Magic of the recording trailer that follows the v2 event stream.
pub const TRAILER_MAGIC: [u8; 4] = *b"MRPR";

/// Snapshot of the recorded private-level state at a window edge
/// (warmup/measure boundary or end of recording).
///
/// L1/L2 counters and prefetch accounting cannot be reconstructed from
/// the event log (e.g. L2 prefetch hits never produce an event), so the
/// recording carries these snapshots; replay diffs them to rebuild the
/// measure-window [`HierarchyStats`] exactly as full simulation would.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecordedWindow {
    /// L1 data cache counters at the snapshot point.
    pub l1d: CacheStats,
    /// L2 counters at the snapshot point.
    pub l2: CacheStats,
    /// Instructions retired by the recorded core at the snapshot point.
    pub instructions: u64,
    /// Prefetch requests issued at the snapshot point.
    pub prefetches_issued: u64,
}

impl RecordedWindow {
    fn from_stats(stats: &HierarchyStats) -> Self {
        RecordedWindow {
            l1d: stats.l1d,
            l2: stats.l2,
            instructions: stats.instructions,
            prefetches_issued: stats.prefetches_issued,
        }
    }
}

/// One workload's recorded upper-hierarchy stream.
///
/// Events are stored in structure-of-arrays form in *emission* order: a
/// demand access is logged when the core issues it (before its level is
/// known; the level is patched once the private probes resolve), and the
/// prefetch fills draining during that access follow it. A separate
/// index list ([`LlcRecording::replay_llc`] walks it) holds the events
/// that reach the LLC in true LLC-access order: the drains of access
/// *i* precede the demand of access *i*, which precedes the drains of
/// access *i + 1*.
pub struct LlcRecording {
    name: String,
    pcs: Vec<u64>,
    addresses: Vec<u64>,
    cores: Vec<u8>,
    flags: Vec<u8>,
    gaps: Vec<u8>,
    /// Indices of LLC-reaching events, in LLC-access order.
    llc_events: Vec<u32>,
    /// Number of leading events that belong to the warmup window.
    warmup_events: usize,
    /// Private-level snapshot at the warmup/measure boundary.
    boundary: RecordedWindow,
    /// Private-level snapshot at the end of the recording.
    end: RecordedWindow,
}

impl std::fmt::Debug for LlcRecording {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LlcRecording")
            .field("name", &self.name)
            .field("events", &self.len())
            .field("llc_events", &self.llc_events.len())
            .field("warmup_events", &self.warmup_events)
            .finish()
    }
}

impl LlcRecording {
    fn empty(name: &str) -> Self {
        LlcRecording {
            name: name.to_string(),
            pcs: Vec::new(),
            addresses: Vec::new(),
            cores: Vec::new(),
            flags: Vec::new(),
            gaps: Vec::new(),
            llc_events: Vec::new(),
            warmup_events: 0,
            boundary: RecordedWindow::default(),
            end: RecordedWindow::default(),
        }
    }

    /// Records `warmup` then `measure` retired instructions of `trace`
    /// through the private levels of `config` (its LLC geometry is
    /// ignored — the recording is LLC-independent).
    ///
    /// The two windows mirror `SingleCoreSim::run`'s advance loops
    /// exactly, including their per-window instruction overshoot, so a
    /// full replay reproduces the simulation bit for bit.
    pub fn record(
        name: &str,
        mut trace: impl Iterator<Item = MemoryAccess>,
        config: &HierarchyConfig,
        warmup: u64,
        measure: u64,
    ) -> Self {
        let mut private = CorePrivate::new(config);
        let mut rec = LlcRecording::empty(name);
        // Rough sizing: one event per few accesses once the L1 warms up.
        let hint = ((warmup + measure) / 8) as usize;
        rec.pcs.reserve(hint);
        rec.addresses.reserve(hint);
        rec.cores.reserve(hint);
        rec.flags.reserve(hint);
        rec.gaps.reserve(hint);

        let mut retired = 0u64;
        while retired < warmup {
            let access = trace.next().expect("workload traces are infinite");
            private.access_recorded(&access, &mut rec);
            retired += access.instructions();
        }
        rec.warmup_events = rec.pcs.len();
        rec.boundary = RecordedWindow::from_stats(&private.stats());

        let mut retired = 0u64;
        while retired < measure {
            let access = trace.next().expect("workload traces are infinite");
            private.access_recorded(&access, &mut rec);
            retired += access.instructions();
        }
        rec.end = RecordedWindow::from_stats(&private.stats());
        rec
    }

    /// Workload name the recording was made from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of recorded events (demand accesses + LLC-bound
    /// prefetch fills).
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// Number of events that reach the LLC.
    pub fn llc_len(&self) -> usize {
        self.llc_events.len()
    }

    /// Number of leading events belonging to the warmup window.
    pub fn warmup_events(&self) -> usize {
        self.warmup_events
    }

    /// Private-level snapshot at the warmup/measure boundary.
    pub fn boundary(&self) -> &RecordedWindow {
        &self.boundary
    }

    /// Private-level snapshot at the end of the recording.
    pub fn end(&self) -> &RecordedWindow {
        &self.end
    }

    /// Total instructions retired over both recorded windows.
    pub fn instructions(&self) -> u64 {
        self.end.instructions
    }

    /// Instructions retired in the measure window alone.
    pub fn measured_instructions(&self) -> u64 {
        self.end.instructions - self.boundary.instructions
    }

    /// Reconstructs the access of event `index`.
    #[inline]
    pub fn access_at(&self, index: usize) -> MemoryAccess {
        let flags = self.flags[index];
        MemoryAccess {
            pc: self.pcs[index],
            address: self.addresses[index],
            core: self.cores[index],
            kind: if flags & codec::FLAG_STORE != 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            },
            non_memory_before: self.gaps[index],
            dependent: flags & codec::FLAG_DEPENDENT != 0,
        }
    }

    /// True when event `index` is a prefetch fill.
    #[inline]
    pub fn is_prefetch(&self, index: usize) -> bool {
        self.flags[index] & FLAG_PREFETCH != 0
    }

    /// Instructions event `index` retires (the access plus its preceding
    /// non-memory gap) — the timing model's input, without paying for a
    /// full [`MemoryAccess`] reconstruction.
    #[inline]
    pub fn instructions_at(&self, index: usize) -> u32 {
        u32::from(self.gaps[index]) + 1
    }

    /// Dependent flag of event `index`, without reconstructing the
    /// access.
    #[inline]
    pub fn dependent_at(&self, index: usize) -> bool {
        self.flags[index] & codec::FLAG_DEPENDENT != 0
    }

    /// Servicing level of event `index` (always `Llc` for prefetches).
    #[inline]
    pub fn level_at(&self, index: usize) -> ServiceLevel {
        ServiceLevel::decode((self.flags[index] & LEVEL_MASK) >> LEVEL_SHIFT)
            .expect("recordings only store valid levels")
    }

    /// Reconstructs event `index` in codec form.
    pub fn event_at(&self, index: usize) -> StreamEvent {
        StreamEvent {
            access: self.access_at(index),
            is_prefetch: self.is_prefetch(index),
            level: self.level_at(index),
        }
    }

    /// Block addresses of the LLC-reaching events, in LLC-access order —
    /// the stream the MIN oracle's second pass consumes.
    pub fn llc_blocks(&self) -> Vec<u64> {
        self.llc_events
            .iter()
            .map(|&i| self.addresses[i as usize] >> mrp_trace::BLOCK_OFFSET_BITS)
            .collect()
    }

    /// Replays only the LLC-reaching events into `cache` — the MPKI-only
    /// fast path (no timing model, no L1/L2 work).
    ///
    /// Demand accesses are forwarded to the policy's `on_core_access`
    /// hook first, substituting the filtered LLC stream for the full
    /// core-access stream; for every shipped policy this is exact
    /// because only the perceptron baseline implements the hook (and the
    /// fast path is not used to evaluate it). Use `mrp-cpu`'s full
    /// replay when hook exactness or timing matters.
    /// Replay loops run this many LLC events ahead of the serial update
    /// loop, software-prefetching each upcoming access's tag row
    /// ([`Cache::prefetch_block`]) and delivering the same span as the
    /// policy's [`ReplacementPolicy::on_upcoming_accesses`] window.
    /// Sized (via [`crate::LLC_LOOKAHEAD`]) to cover the tag-array fetch
    /// latency without thrashing L1: at 4–8 events the row arrives
    /// before the update loop needs it (see DESIGN.md "Hot-path
    /// layout").
    pub const REPLAY_LOOKAHEAD: usize = crate::LLC_LOOKAHEAD;

    /// Builds the [`UpcomingAccess`] window starting at LLC-event
    /// position `llc_pos` (up to [`crate::LLC_LOOKAHEAD`] entries) into
    /// `out`. Shared by both replay loops so every batching front-end
    /// announces the exact same stream the policy subsequently observes.
    pub fn upcoming_window(&self, llc_pos: usize, out: &mut Vec<UpcomingAccess>) {
        out.clear();
        let end = (llc_pos + crate::LLC_LOOKAHEAD).min(self.llc_events.len());
        for &i in &self.llc_events[llc_pos..end] {
            let i = i as usize;
            let is_prefetch = self.flags[i] & FLAG_PREFETCH != 0;
            out.push(UpcomingAccess {
                pc: if is_prefetch {
                    crate::policy::PREFETCH_PC
                } else {
                    self.pcs[i]
                },
                address: self.addresses[i],
                core: self.cores[i],
                is_prefetch,
            });
        }
    }

    pub fn replay_llc(&self, cache: &mut Cache) {
        let batched = cache.policy_mut().uses_upcoming_accesses();
        let mut window = Vec::with_capacity(crate::LLC_LOOKAHEAD);
        for (n, &i) in self.llc_events.iter().enumerate() {
            if batched && n % crate::LLC_LOOKAHEAD == 0 {
                self.upcoming_window(n, &mut window);
                cache.policy_mut().on_upcoming_accesses(&window);
            }
            if let Some(&ahead) = self.llc_events.get(n + Self::REPLAY_LOOKAHEAD) {
                cache.prefetch_block(self.block_at(ahead as usize));
            }
            let i = i as usize;
            let access = self.access_at(i);
            if self.flags[i] & FLAG_PREFETCH != 0 {
                let _ = cache.access(&access, true);
            } else {
                cache.policy_mut().on_core_access(&access);
                let _ = cache.access(&access, false);
            }
        }
    }

    /// The cache block event `index` addresses, without reconstructing
    /// the full [`MemoryAccess`] (the prefetch front-end's lookahead
    /// reads only this).
    #[inline]
    pub fn block_at(&self, index: usize) -> u64 {
        self.addresses[index] >> mrp_trace::BLOCK_OFFSET_BITS
    }

    /// Whether event `index` reaches the LLC (a demand access serviced
    /// there, or a prefetch fill) — one flag-byte read, for lookahead
    /// scans over emission order.
    #[inline]
    pub fn reaches_llc(&self, index: usize) -> bool {
        (self.flags[index] & LEVEL_MASK) >> LEVEL_SHIFT == ServiceLevel::Llc.encode()
    }

    // --- recording hooks driven by `CorePrivate::access_recorded` ---

    /// Appends a demand access (level patched later); returns its index.
    pub(crate) fn push_core(&mut self, access: &MemoryAccess) -> usize {
        let index = self.pcs.len();
        self.push_raw(access, 0);
        index
    }

    /// Appends an LLC-bound prefetch fill.
    pub(crate) fn push_prefetch(&mut self, access: &MemoryAccess) {
        let index = self.pcs.len();
        self.push_raw(
            access,
            FLAG_PREFETCH | (ServiceLevel::Llc.encode() << LEVEL_SHIFT),
        );
        self.llc_events.push(index as u32);
    }

    /// Patches the servicing level of demand event `index`; LLC-bound
    /// events join the LLC-order index list (after any prefetch drains
    /// logged during the same access, matching the order a real LLC
    /// would see).
    pub(crate) fn set_level(&mut self, index: usize, level: ServiceLevel) {
        self.flags[index] = (self.flags[index] & !LEVEL_MASK) | (level.encode() << LEVEL_SHIFT);
        if level == ServiceLevel::Llc {
            self.llc_events.push(index as u32);
        }
    }

    fn push_raw(&mut self, access: &MemoryAccess, extra_flags: u8) {
        self.pcs.push(access.pc);
        self.addresses.push(access.address);
        self.cores.push(access.core);
        let mut flags = extra_flags;
        if access.kind == AccessKind::Store {
            flags |= codec::FLAG_STORE;
        }
        if access.dependent {
            flags |= codec::FLAG_DEPENDENT;
        }
        self.flags.push(flags);
        self.gaps.push(access.non_memory_before);
    }

    // --- persistence ---

    /// Serializes the recording: the v2 `MRPT` event stream followed by
    /// the `MRPR` trailer (warmup split, window snapshots, name).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        writer.write_all(&codec::MAGIC)?;
        writer.write_all(&codec::VERSION_V2.to_le_bytes())?;
        writer.write_all(&0u16.to_le_bytes())?;
        writer.write_all(&(self.len() as u64).to_le_bytes())?;
        for i in 0..self.len() {
            writer.write_all(&self.pcs[i].to_le_bytes())?;
            writer.write_all(&self.addresses[i].to_le_bytes())?;
            writer.write_all(&[self.cores[i], self.flags[i]])?;
            writer.write_all(&u16::from(self.gaps[i]).to_le_bytes())?;
        }
        writer.write_all(&TRAILER_MAGIC)?;
        writer.write_all(&(self.warmup_events as u64).to_le_bytes())?;
        write_window(writer, &self.boundary)?;
        write_window(writer, &self.end)?;
        let name = self.name.as_bytes();
        writer.write_all(&(name.len() as u32).to_le_bytes())?;
        writer.write_all(name)?;
        Ok(())
    }

    /// Reads a recording written by [`LlcRecording::write_to`]. The
    /// event section accepts v1 streams too (mapped to non-prefetch
    /// LLC-bound events), keeping old exports readable.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on malformed sections and
    /// propagates underlying I/O errors.
    pub fn read_from<R: Read>(reader: &mut R) -> io::Result<Self> {
        let events = codec::read_stream(reader)?;
        let mut trailer = [0u8; 12];
        reader.read_exact(&mut trailer)?;
        if trailer[0..4] != TRAILER_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad recording trailer magic",
            ));
        }
        let warmup_events =
            u64::from_le_bytes(trailer[4..12].try_into().expect("8 bytes")) as usize;
        let boundary = read_window(reader)?;
        let end = read_window(reader)?;
        let mut name_len = [0u8; 4];
        reader.read_exact(&mut name_len)?;
        let mut name = vec![0u8; u32::from_le_bytes(name_len) as usize];
        reader.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 recording name"))?;

        if warmup_events > events.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "warmup split exceeds event count",
            ));
        }
        let mut rec = LlcRecording::empty(&name);
        rec.warmup_events = warmup_events;
        rec.boundary = boundary;
        rec.end = end;
        // Rebuild the LLC-order index list: a demand's LLC access happens
        // after the prefetch drains logged during the same core access,
        // i.e. at the next demand event (or end of stream).
        let mut pending: Option<u32> = None;
        for (i, event) in events.iter().enumerate() {
            if event.is_prefetch {
                rec.push_raw(
                    &event.access,
                    FLAG_PREFETCH | (ServiceLevel::Llc.encode() << LEVEL_SHIFT),
                );
                rec.llc_events.push(i as u32);
            } else {
                if let Some(p) = pending.take() {
                    rec.llc_events.push(p);
                }
                rec.push_raw(&event.access, event.level.encode() << LEVEL_SHIFT);
                if event.level == ServiceLevel::Llc {
                    pending = Some(i as u32);
                }
            }
        }
        if let Some(p) = pending {
            rec.llc_events.push(p);
        }
        Ok(rec)
    }
}

fn write_cache_stats<W: Write>(writer: &mut W, stats: &CacheStats) -> io::Result<()> {
    for v in [
        stats.demand_hits,
        stats.demand_misses,
        stats.bypasses,
        stats.prefetch_hits,
        stats.prefetch_fills,
        stats.evictions,
    ] {
        writer.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_cache_stats<R: Read>(reader: &mut R) -> io::Result<CacheStats> {
    let mut buf = [0u8; 48];
    reader.read_exact(&mut buf)?;
    let v = |i: usize| u64::from_le_bytes(buf[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
    Ok(CacheStats {
        demand_hits: v(0),
        demand_misses: v(1),
        bypasses: v(2),
        prefetch_hits: v(3),
        prefetch_fills: v(4),
        evictions: v(5),
    })
}

fn write_window<W: Write>(writer: &mut W, window: &RecordedWindow) -> io::Result<()> {
    write_cache_stats(writer, &window.l1d)?;
    write_cache_stats(writer, &window.l2)?;
    writer.write_all(&window.instructions.to_le_bytes())?;
    writer.write_all(&window.prefetches_issued.to_le_bytes())
}

fn read_window<R: Read>(reader: &mut R) -> io::Result<RecordedWindow> {
    let l1d = read_cache_stats(reader)?;
    let l2 = read_cache_stats(reader)?;
    let mut buf = [0u8; 16];
    reader.read_exact(&mut buf)?;
    Ok(RecordedWindow {
        l1d,
        l2,
        instructions: u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes")),
        prefetches_issued: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::hierarchy::Hierarchy;
    use crate::policies::Lru;
    use crate::policy::{AccessInfo, ReplacementPolicy};
    use mrp_trace::workloads;
    use std::sync::{Arc, Mutex};

    /// LLC policy wrapper logging `(block, is_prefetch)` of every access
    /// reaching the LLC during a *full* simulation, to check recordings
    /// against ground truth. (Prefetch accesses are recognizable by
    /// their substituted fake PC. `Hierarchy` wants `Send` policies, so
    /// the test log is shared; production recording has no such channel.)
    struct LoggingLru {
        inner: Lru,
        log: Arc<Mutex<Vec<(u64, bool)>>>,
    }

    impl ReplacementPolicy for LoggingLru {
        fn name(&self) -> &str {
            "logging-lru"
        }
        fn on_access(&mut self, info: &AccessInfo) {
            self.log
                .lock()
                .expect("test log")
                .push((info.block, info.pc == crate::policy::PREFETCH_PC));
            self.inner.on_access(info);
        }
        fn on_hit(&mut self, info: &AccessInfo, way: u32) {
            self.inner.on_hit(info, way);
        }
        fn choose_victim(&mut self, info: &AccessInfo, occupants: &[u64]) -> u32 {
            self.inner.choose_victim(info, occupants)
        }
        fn on_fill(&mut self, info: &AccessInfo, way: u32) {
            self.inner.on_fill(info, way);
        }
    }

    fn full_sim_llc_log(workload_index: usize, seed: u64, instructions: u64) -> Vec<(u64, bool)> {
        let config = HierarchyConfig::single_thread();
        let log = Arc::new(Mutex::new(Vec::new()));
        let policy = LoggingLru {
            inner: Lru::new(config.llc.sets(), config.llc.associativity()),
            log: log.clone(),
        };
        let mut h = Hierarchy::new(config, Box::new(policy));
        let mut retired = 0u64;
        let mut trace = workloads::suite()[workload_index].trace(seed);
        while retired < instructions {
            let access = trace.next().expect("infinite");
            h.access(&access);
            retired += access.instructions();
        }
        let log = log.lock().expect("test log");
        log.clone()
    }

    fn small_recording(workload_index: usize) -> LlcRecording {
        let suite = workloads::suite();
        let w = &suite[workload_index];
        LlcRecording::record(
            w.name(),
            w.trace(3),
            &HierarchyConfig::single_thread(),
            0,
            40_000,
        )
    }

    #[test]
    fn recorded_llc_stream_matches_full_simulation() {
        for workload_index in [0, 4, 10] {
            let rec = {
                let suite = workloads::suite();
                let w = &suite[workload_index];
                LlcRecording::record(
                    w.name(),
                    w.trace(3),
                    &HierarchyConfig::single_thread(),
                    0,
                    40_000,
                )
            };
            let truth = full_sim_llc_log(workload_index, 3, 40_000);
            let recorded: Vec<(u64, bool)> = rec
                .llc_events
                .iter()
                .map(|&i| {
                    let i = i as usize;
                    (rec.access_at(i).block(), rec.is_prefetch(i))
                })
                .collect();
            assert_eq!(
                recorded, truth,
                "workload {workload_index}: recorded LLC stream diverged from full simulation"
            );
        }
    }

    #[test]
    fn recording_is_llc_geometry_independent() {
        // Same private levels, so the recording must not depend on which
        // LLC geometry the config names.
        let suite = workloads::suite();
        let w = &suite[2];
        let single = LlcRecording::record(
            w.name(),
            w.trace(9),
            &HierarchyConfig::single_thread(),
            5_000,
            20_000,
        );
        let multi = LlcRecording::record(
            w.name(),
            w.trace(9),
            &HierarchyConfig::multi_core(),
            5_000,
            20_000,
        );
        assert_eq!(single.len(), multi.len());
        assert_eq!(single.llc_events, multi.llc_events);
        assert_eq!(single.boundary, multi.boundary);
        assert_eq!(single.end, multi.end);
    }

    #[test]
    fn replay_llc_reproduces_lru_misses() {
        // Fast replay against LRU must see exactly the misses the logged
        // full simulation saw (same stream, same policy, same geometry).
        let rec = small_recording(0);
        let config = CacheConfig::llc_single();
        let mut cache = Cache::new(
            config,
            Box::new(Lru::new(config.sets(), config.associativity())),
        );
        rec.replay_llc(&mut cache);
        let log = full_sim_llc_log(0, 3, 40_000);
        assert_eq!(
            cache.stats().demand_accesses()
                + cache.stats().prefetch_hits
                + cache.stats().prefetch_fills,
            log.len() as u64
        );
    }

    #[test]
    fn warmup_split_points_at_first_measure_event() {
        let suite = workloads::suite();
        let w = &suite[1];
        let rec = LlcRecording::record(
            w.name(),
            w.trace(7),
            &HierarchyConfig::single_thread(),
            10_000,
            10_000,
        );
        assert!(rec.warmup_events > 0);
        assert!(rec.warmup_events < rec.len());
        assert!(rec.boundary.instructions >= 10_000);
        assert_eq!(
            rec.measured_instructions(),
            rec.end.instructions - rec.boundary.instructions
        );
    }

    #[test]
    fn persistence_round_trips() {
        let suite = workloads::suite();
        let w = &suite[5];
        let rec = LlcRecording::record(
            w.name(),
            w.trace(11),
            &HierarchyConfig::single_thread(),
            4_000,
            12_000,
        );
        let mut buffer = Vec::new();
        rec.write_to(&mut buffer).expect("write");
        let back = LlcRecording::read_from(&mut buffer.as_slice()).expect("read");
        assert_eq!(back.name(), rec.name());
        assert_eq!(back.len(), rec.len());
        assert_eq!(back.warmup_events, rec.warmup_events);
        assert_eq!(back.boundary, rec.boundary);
        assert_eq!(back.end, rec.end);
        assert_eq!(back.llc_events, rec.llc_events);
        for i in 0..rec.len() {
            assert_eq!(back.event_at(i), rec.event_at(i), "event {i}");
        }
    }

    #[test]
    fn read_rejects_bad_trailer() {
        let rec = small_recording(3);
        let mut buffer = Vec::new();
        rec.write_to(&mut buffer).expect("write");
        let trailer_at = 16 + rec.len() * 20;
        buffer[trailer_at] = b'X';
        let err = LlcRecording::read_from(&mut buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn llc_blocks_follow_llc_order() {
        let rec = small_recording(0);
        let blocks = rec.llc_blocks();
        assert_eq!(blocks.len(), rec.llc_len());
        let truth: Vec<u64> = full_sim_llc_log(0, 3, 40_000)
            .iter()
            .map(|&(b, _)| b)
            .collect();
        assert_eq!(blocks, truth);
    }
}

//! Set-associative cache simulation substrate.
//!
//! This crate implements the memory-hierarchy model the paper's evaluation
//! rests on (§4.1): a three-level hierarchy (32KB/8-way L1D, 256KB/8-way
//! unified L2, configurable LLC), a 16-stream prefetcher, and a family of
//! replacement policies behind one [`ReplacementPolicy`] trait:
//!
//! * [`policies::Lru`] — true LRU (the paper's baseline),
//! * [`policies::RandomPolicy`] — random replacement,
//! * [`policies::TreePlru`] — tree-based pseudo-LRU,
//! * [`policies::Srrip`] / [`policies::Brrip`] / [`policies::Drrip`] —
//!   re-reference interval prediction with set dueling,
//! * [`policies::Mdpp`] — static minimal-disturbance placement & promotion.
//!
//! The paper's own contribution (MPPPB, in `mrp-core`) and the comparison
//! predictors (`mrp-baselines`) implement the same trait, so every
//! experiment in `mrp-experiments` is a policy swap on an identical
//! hierarchy.
//!
//! # Example
//!
//! ```
//! use mrp_cache::{Cache, CacheConfig};
//! use mrp_cache::policies::Lru;
//! use mrp_trace::MemoryAccess;
//!
//! let config = CacheConfig::new(2 * 1024 * 1024, 16); // 2MB, 16-way
//! let mut cache = Cache::new(config, Box::new(Lru::new(config.sets(), config.associativity())));
//! let access = MemoryAccess::load(0x400000, 0x1000);
//! assert!(!cache.access(&access, false).is_hit()); // cold miss
//! assert!(cache.access(&access, false).is_hit()); // now resident
//! ```

pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod policies;
pub mod policy;
pub mod prefetch;
pub mod replay;
pub mod stats;

pub use cache::{AccessResult, Cache};
pub use config::CacheConfig;
pub use hierarchy::{Hierarchy, HierarchyConfig, LevelLatencies};
pub use policy::{AccessInfo, ReplacementPolicy, UpcomingAccess};
pub use prefetch::StreamPrefetcher;
pub use replay::{LlcRecording, RecordedWindow};
pub use stats::{CacheStats, HierarchyStats};

/// The LLC lookahead window, in LLC-bound events.
///
/// Every batched front-end shares this one constant: the replay loops'
/// tag-row software-prefetch depth, the [`UpcomingAccess`] window handed
/// to policies via [`ReplacementPolicy::on_upcoming_accesses`], and the
/// hierarchy's grouped access drain. Unifying them here keeps batch
/// width and prefetch depth from silently diverging (they were two
/// hardcoded `8`s before).
pub const LLC_LOOKAHEAD: usize = 8;

/// Trace accesses pulled per hierarchy batch group
/// ([`Hierarchy::access_batch`]).
///
/// Deliberately decoupled from [`LLC_LOOKAHEAD`]: that constant counts
/// *LLC-bound events*, but most trace accesses hit the private levels
/// and never reach the LLC (the suite's LLC-bound fraction is roughly
/// 1/6), so a group must span several times more trace accesses than
/// the window it feeds. 64 trace accesses yield `UpcomingAccess`
/// windows of about 8–16 LLC events — wide enough to amortize the
/// batched index kernel's fixed cost. Grouping is latency-invisible:
/// per-access outcomes and statistics are bit-identical for any group
/// size (see `access_batch_is_bit_identical_to_sequential`).
pub const HIERARCHY_BATCH: usize = 64;

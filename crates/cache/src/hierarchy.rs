//! Three-level cache hierarchy with a stream prefetcher.

use std::fmt;

use mrp_trace::{MemoryAccess, ServiceLevel};

use crate::cache::Cache;
use crate::config::CacheConfig;
use crate::policies::Lru;
use crate::policy::{ReplacementPolicy, UpcomingAccess};
use crate::prefetch::StreamPrefetcher;
use crate::replay::LlcRecording;
use crate::stats::HierarchyStats;

/// Access latencies (cycles) per level, matching the paper's parameters
/// where given (DRAM: 200 cycles, §4.1). L1/L2/LLC latencies follow
/// typical contemporaneous designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelLatencies {
    /// L1 data hit latency.
    pub l1: u64,
    /// Additional cycles for an L2 hit.
    pub l2: u64,
    /// Additional cycles for an LLC hit.
    pub llc: u64,
    /// Additional cycles for a DRAM access.
    pub dram: u64,
}

impl Default for LevelLatencies {
    fn default() -> Self {
        LevelLatencies {
            l1: 4,
            l2: 12,
            llc: 38,
            dram: 200,
        }
    }
}

/// Configuration of the full hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Last-level cache geometry.
    pub llc: CacheConfig,
    /// Latencies per level.
    pub latencies: LevelLatencies,
    /// Whether the stream prefetcher is active.
    pub prefetch: bool,
}

impl HierarchyConfig {
    /// The paper's single-thread configuration: 32KB/8w L1D, 256KB/8w L2,
    /// 2MB/16w LLC, prefetching on (§6.2 "Prefetching is enabled").
    pub fn single_thread() -> Self {
        HierarchyConfig {
            l1d: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            llc: CacheConfig::llc_single(),
            latencies: LevelLatencies::default(),
            prefetch: true,
        }
    }

    /// Per-core configuration for the 4-core experiments (8MB shared LLC).
    pub fn multi_core() -> Self {
        HierarchyConfig {
            llc: CacheConfig::llc_multi(),
            ..HierarchyConfig::single_thread()
        }
    }
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicedBy {
    /// Hit in the L1 data cache.
    L1,
    /// Hit in the unified L2.
    L2,
    /// Hit in the last-level cache.
    Llc,
    /// Satisfied from DRAM.
    Dram,
}

/// Result of one demand access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyAccess {
    /// Level that satisfied the access.
    pub serviced_by: ServicedBy,
    /// Total latency in cycles.
    pub latency: u64,
}

/// A private L1D + L2 in front of an LLC with a pluggable policy.
///
/// For single-core runs this owns all three levels. For multi-core runs,
/// use [`CorePrivate`] per core against a shared [`Cache`] LLC (see
/// `mrp-cpu`).
pub struct Hierarchy {
    private: CorePrivate,
    llc: Cache,
    latencies: LevelLatencies,
    /// Scratch: deferred LLC operations of the current access group.
    batch_ops: Vec<LlcOp>,
    /// Scratch: the group's LLC-bound accesses, announced to the policy.
    batch_window: Vec<UpcomingAccess>,
}

impl fmt::Debug for Hierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hierarchy")
            .field("llc_policy", &self.llc.policy().name())
            .finish()
    }
}

impl Hierarchy {
    /// Builds the hierarchy; `llc_policy` manages the last level.
    pub fn new(config: HierarchyConfig, llc_policy: Box<dyn ReplacementPolicy + Send>) -> Self {
        Hierarchy::with_llc(config, Cache::new(config.llc, llc_policy))
    }

    /// Builds the hierarchy around an already-constructed LLC — the
    /// facade route (`PredictionEngine::into_llc`), which keeps policy
    /// construction in one place while the hierarchy drives the cache.
    ///
    /// # Panics
    ///
    /// Panics if `llc`'s geometry differs from `config.llc`.
    pub fn with_llc(config: HierarchyConfig, llc: Cache) -> Self {
        assert_eq!(
            llc.config(),
            &config.llc,
            "LLC geometry must match the hierarchy config"
        );
        Hierarchy {
            private: CorePrivate::new(&config),
            llc,
            latencies: config.latencies,
            batch_ops: Vec::new(),
            batch_window: Vec::new(),
        }
    }

    /// Simulates one demand access; returns where it was serviced and the
    /// latency charged.
    pub fn access(&mut self, access: &MemoryAccess) -> HierarchyAccess {
        self.private
            .access_with_llc(access, &mut self.llc, &self.latencies)
    }

    /// Simulates a group of consecutive demand accesses, batching the
    /// LLC work. Bit-identical to calling [`Hierarchy::access`] once per
    /// access (results land in `out` in access order):
    ///
    /// 1. the private levels run for the whole group first — valid
    ///    because L1/L2/prefetcher never consult the LLC (the invariant
    ///    record/replay is built on) — queueing every LLC operation in
    ///    the exact order the fused path would execute it;
    /// 2. the group's LLC-bound accesses are announced through
    ///    [`ReplacementPolicy::on_upcoming_accesses`], letting policies
    ///    like MPPPB batch their prediction stage;
    /// 3. the queued LLC operations drain in order, resolving each
    ///    LLC-bound access's hit/miss and hence its latency.
    pub fn access_batch(&mut self, accesses: &[MemoryAccess], out: &mut Vec<HierarchyAccess>) {
        out.clear();
        self.batch_ops.clear();
        let lat = self.latencies;
        // Policies that ignore `on_core_access` (the default) get no
        // `CoreAccess` ops queued at all — they dominate the op stream
        // (every trace access queues one, vs. ~1 in 6 reaching the
        // LLC), and draining them into a no-op hook is pure overhead.
        let core_hook = self.llc.policy().uses_core_accesses();
        // Phase 1: private levels, deferring all LLC operations.
        for (slot, access) in accesses.iter().enumerate() {
            let serviced = self.private.access_deferred(
                access,
                slot as u32,
                core_hook,
                &self.llc,
                &mut self.batch_ops,
            );
            out.push(match serviced {
                Some(ServicedBy::L1) => HierarchyAccess {
                    serviced_by: ServicedBy::L1,
                    latency: lat.l1,
                },
                Some(_) => HierarchyAccess {
                    serviced_by: ServicedBy::L2,
                    latency: lat.l1 + lat.l2,
                },
                // LLC-bound: placeholder, overwritten by the drain.
                None => HierarchyAccess {
                    serviced_by: ServicedBy::Dram,
                    latency: 0,
                },
            });
        }
        // Phase 2: announce the group's LLC accesses (fills + demands,
        // in drain order) to window-consuming policies.
        if self.llc.policy_mut().uses_upcoming_accesses() {
            self.batch_window.clear();
            for op in &self.batch_ops {
                match op {
                    LlcOp::PrefetchFill(pf) => {
                        self.batch_window.push(UpcomingAccess::new(pf, true));
                    }
                    LlcOp::Demand(_, a) => {
                        self.batch_window.push(UpcomingAccess::new(a, false));
                    }
                    LlcOp::CoreAccess(_) => {}
                }
            }
            self.llc
                .policy_mut()
                .on_upcoming_accesses(&self.batch_window);
        }
        // Phase 3: drain the LLC operations in fused order.
        for op in &self.batch_ops {
            match op {
                LlcOp::CoreAccess(a) => self.llc.policy_mut().on_core_access(a),
                LlcOp::PrefetchFill(pf) => {
                    let _ = self.llc.access(pf, true);
                }
                LlcOp::Demand(slot, a) => {
                    out[*slot as usize] = if self.llc.access(a, false).is_hit() {
                        HierarchyAccess {
                            serviced_by: ServicedBy::Llc,
                            latency: lat.l1 + lat.l2 + lat.llc,
                        }
                    } else {
                        HierarchyAccess {
                            serviced_by: ServicedBy::Dram,
                            latency: lat.l1 + lat.l2 + lat.llc + lat.dram,
                        }
                    };
                }
            }
        }
    }

    /// Statistics, combining the private levels and the LLC.
    pub fn stats(&self) -> HierarchyStats {
        let mut stats = self.private.stats();
        stats.llc = *self.llc.stats();
        stats
    }

    /// The LLC (for policy introspection in experiments).
    pub fn llc(&self) -> &Cache {
        &self.llc
    }

    /// Mutable LLC access.
    pub fn llc_mut(&mut self) -> &mut Cache {
        &mut self.llc
    }
}

/// Demand accesses a prefetch fill stays "in flight" before becoming
/// visible. Models the DRAM round trip a prefetch needs: without it, a
/// zero-latency prefetcher perfectly covers any stream, which no real
/// memory system does.
const PREFETCH_FILL_DELAY_ACCESSES: u64 = 6;

/// One deferred LLC operation, queued by the private-level phase of a
/// grouped access drain ([`Hierarchy::access_batch`]) and replayed
/// against the LLC in the exact order the fused path would execute it.
pub(crate) enum LlcOp {
    /// `on_core_access` position of a demand access.
    CoreAccess(MemoryAccess),
    /// A prefetch fill whose L2 probe missed.
    PrefetchFill(MemoryAccess),
    /// The demand LLC access of group slot `.0`.
    Demand(u32, MemoryAccess),
}

/// The per-core private levels (L1D, L2, prefetcher), decoupled from the
/// LLC so four cores can share one.
pub struct CorePrivate {
    l1d: Cache,
    l2: Cache,
    prefetcher: Option<StreamPrefetcher>,
    /// Prefetch fills waiting out their memory latency: (due, request).
    in_flight: std::collections::VecDeque<(u64, MemoryAccess)>,
    accesses: u64,
    instructions: u64,
    prefetches_issued: u64,
}

impl fmt::Debug for CorePrivate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CorePrivate")
            .field("instructions", &self.instructions)
            .finish()
    }
}

impl CorePrivate {
    /// Builds the private levels from `config` (LLC geometry ignored).
    pub fn new(config: &HierarchyConfig) -> Self {
        CorePrivate {
            l1d: Cache::new(
                config.l1d,
                Box::new(Lru::new(config.l1d.sets(), config.l1d.associativity())),
            ),
            l2: Cache::new(
                config.l2,
                Box::new(Lru::new(config.l2.sets(), config.l2.associativity())),
            ),
            prefetcher: config.prefetch.then(StreamPrefetcher::new),
            in_flight: std::collections::VecDeque::new(),
            accesses: 0,
            instructions: 0,
            prefetches_issued: 0,
        }
    }

    /// L1/L2 statistics plus instruction and prefetch accounting (the
    /// `llc` field is left zeroed; the caller owns the LLC).
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
            llc: Default::default(),
            instructions: self.instructions,
            prefetches_issued: self.prefetches_issued,
        }
    }

    /// Retired instructions attributed to this core's accesses.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Simulates one demand access against these private levels backed by
    /// `llc`.
    pub fn access_with_llc(
        &mut self,
        access: &MemoryAccess,
        llc: &mut Cache,
        latencies: &LevelLatencies,
    ) -> HierarchyAccess {
        self.instructions += access.instructions();
        self.accesses += 1;
        llc.policy_mut().on_core_access(access);

        // Complete prefetches whose memory latency has elapsed: fill them
        // into L2 + LLC (not L1, as a stream prefetcher typically fills
        // beyond the core cache).
        while let Some(&(due, pf)) = self.in_flight.front() {
            if due > self.accesses {
                break;
            }
            self.in_flight.pop_front();
            if self.l2.access(&pf, true).is_miss() {
                let _ = llc.access(&pf, true);
            }
        }

        if self.l1d.access(access, false).is_hit() {
            return HierarchyAccess {
                serviced_by: ServicedBy::L1,
                latency: latencies.l1,
            };
        }

        // Train the prefetcher on the L1 miss stream; issued requests
        // spend PREFETCH_FILL_DELAY_ACCESSES in flight before filling.
        if let Some(prefetcher) = &mut self.prefetcher {
            let requests = prefetcher.on_l1_miss(access.block());
            self.prefetches_issued += requests.len() as u64;
            for block in requests {
                let pf = MemoryAccess {
                    address: block * mrp_trace::BLOCK_BYTES,
                    ..*access
                };
                self.in_flight
                    .push_back((self.accesses + PREFETCH_FILL_DELAY_ACCESSES, pf));
            }
        }

        // The L1 miss may reach the LLC; start pulling its tag row in
        // while the L2 probe runs.
        llc.prefetch_block(access.block());

        if self.l2.access(access, false).is_hit() {
            return HierarchyAccess {
                serviced_by: ServicedBy::L2,
                latency: latencies.l1 + latencies.l2,
            };
        }

        if llc.access(access, false).is_hit() {
            return HierarchyAccess {
                serviced_by: ServicedBy::Llc,
                latency: latencies.l1 + latencies.l2 + latencies.llc,
            };
        }

        HierarchyAccess {
            serviced_by: ServicedBy::Dram,
            latency: latencies.l1 + latencies.l2 + latencies.llc + latencies.dram,
        }
    }

    /// The private-level phase of a grouped access drain: runs L1, L2,
    /// and the prefetcher for one demand access, queueing every LLC
    /// operation into `ops` instead of executing it. Returns the
    /// servicing level when the access resolves privately (L1/L2 hit),
    /// `None` when it is LLC-bound (a [`LlcOp::Demand`] was queued).
    ///
    /// Mirrors [`CorePrivate::access_with_llc`] step for step; the
    /// queued operation order — core-access hook, due prefetch fills,
    /// then the demand access — is exactly the fused execution order.
    /// When `core_hook` is false the caller's policy ignores
    /// `on_core_access`, so the `CoreAccess` op is elided instead of
    /// queued and drained into a no-op.
    pub(crate) fn access_deferred(
        &mut self,
        access: &MemoryAccess,
        slot: u32,
        core_hook: bool,
        llc: &Cache,
        ops: &mut Vec<LlcOp>,
    ) -> Option<ServicedBy> {
        self.instructions += access.instructions();
        self.accesses += 1;
        if core_hook {
            ops.push(LlcOp::CoreAccess(*access));
        }

        while let Some(&(due, pf)) = self.in_flight.front() {
            if due > self.accesses {
                break;
            }
            self.in_flight.pop_front();
            if self.l2.access(&pf, true).is_miss() {
                ops.push(LlcOp::PrefetchFill(pf));
            }
        }

        if self.l1d.access(access, false).is_hit() {
            return Some(ServicedBy::L1);
        }

        if let Some(prefetcher) = &mut self.prefetcher {
            let requests = prefetcher.on_l1_miss(access.block());
            self.prefetches_issued += requests.len() as u64;
            for block in requests {
                let pf = MemoryAccess {
                    address: block * mrp_trace::BLOCK_BYTES,
                    ..*access
                };
                self.in_flight
                    .push_back((self.accesses + PREFETCH_FILL_DELAY_ACCESSES, pf));
            }
        }

        // Start pulling the tag row in ahead of the (deferred) LLC work.
        llc.prefetch_block(access.block());

        if self.l2.access(access, false).is_hit() {
            return Some(ServicedBy::L2);
        }

        ops.push(LlcOp::Demand(slot, *access));
        None
    }

    /// Simulates one demand access against the private levels with *no*
    /// LLC, logging into `recording` every event an LLC would observe.
    ///
    /// Mirrors [`CorePrivate::access_with_llc`] step for step — the
    /// private levels never consult the LLC, so the logged stream is
    /// exactly what any LLC policy at any geometry would see: the demand
    /// access (in `on_core_access` position, its servicing level patched
    /// once the L1/L2 probes resolve), then the prefetch fills whose
    /// delay elapsed and which missed the L2.
    pub fn access_recorded(&mut self, access: &MemoryAccess, recording: &mut LlcRecording) {
        self.instructions += access.instructions();
        self.accesses += 1;
        let event = recording.push_core(access);

        while let Some(&(due, pf)) = self.in_flight.front() {
            if due > self.accesses {
                break;
            }
            self.in_flight.pop_front();
            if self.l2.access(&pf, true).is_miss() {
                recording.push_prefetch(&pf);
            }
        }

        if self.l1d.access(access, false).is_hit() {
            recording.set_level(event, ServiceLevel::L1);
            return;
        }

        if let Some(prefetcher) = &mut self.prefetcher {
            let requests = prefetcher.on_l1_miss(access.block());
            self.prefetches_issued += requests.len() as u64;
            for block in requests {
                let pf = MemoryAccess {
                    address: block * mrp_trace::BLOCK_BYTES,
                    ..*access
                };
                self.in_flight
                    .push_back((self.accesses + PREFETCH_FILL_DELAY_ACCESSES, pf));
            }
        }

        if self.l2.access(access, false).is_hit() {
            recording.set_level(event, ServiceLevel::L2);
            return;
        }

        recording.set_level(event, ServiceLevel::Llc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy(prefetch: bool) -> Hierarchy {
        let mut config = HierarchyConfig::single_thread();
        config.prefetch = prefetch;
        let policy = Lru::new(config.llc.sets(), config.llc.associativity());
        Hierarchy::new(config, Box::new(policy))
    }

    fn load(block: u64) -> MemoryAccess {
        MemoryAccess::load(0x400000, block * 64)
    }

    #[test]
    fn cold_access_goes_to_dram_then_l1_hits() {
        let mut h = hierarchy(false);
        let first = h.access(&load(42));
        assert_eq!(first.serviced_by, ServicedBy::Dram);
        assert_eq!(first.latency, 4 + 12 + 38 + 200);
        let second = h.access(&load(42));
        assert_eq!(second.serviced_by, ServicedBy::L1);
    }

    #[test]
    fn levels_fill_on_miss_path() {
        let mut h = hierarchy(false);
        h.access(&load(7));
        // Immediately re-accessing hits L1 (all levels filled).
        let r = h.access(&load(7));
        assert_eq!(r.serviced_by, ServicedBy::L1);
        assert_eq!(r.latency, 4);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = hierarchy(false);
        h.access(&load(0));
        // Evict block 0 from L1 (64 sets x 8 ways => 512 blocks): stream
        // enough same-set blocks through L1.
        for i in 1..=8u64 {
            h.access(&load(i * 64)); // same L1 set as block 0
        }
        let r = h.access(&load(0));
        assert_eq!(r.serviced_by, ServicedBy::L2);
    }

    #[test]
    fn instruction_counting_accumulates() {
        let mut h = hierarchy(false);
        let a = load(1);
        h.access(&a);
        h.access(&a);
        assert_eq!(h.stats().instructions, 2 * a.instructions());
    }

    #[test]
    fn sequential_stream_triggers_prefetches_that_hit() {
        let mut with = hierarchy(true);
        let mut without = hierarchy(false);
        let mut latency_with = 0u64;
        let mut latency_without = 0u64;
        for b in 0..4096u64 {
            latency_with += with.access(&load(b)).latency;
            latency_without += without.access(&load(b)).latency;
        }
        let s = with.stats();
        assert!(
            s.prefetches_issued > 1000,
            "prefetches: {}",
            s.prefetches_issued
        );
        assert!(
            latency_with < latency_without,
            "prefetching should reduce stream latency ({latency_with} vs {latency_without})"
        );
    }

    #[test]
    fn access_batch_is_bit_identical_to_sequential() {
        use crate::policies::Srrip;
        // Mixed stream (reuse + streaming) with prefetching on, so the
        // deferred path sees fills, L1/L2 hits, LLC hits, and misses.
        for group_len in [1usize, 3, 8, crate::HIERARCHY_BATCH] {
            let mut config = HierarchyConfig::single_thread();
            config.prefetch = true;
            let mk = |config: &HierarchyConfig| {
                Box::new(Srrip::new(config.llc.sets(), config.llc.associativity()))
            };
            let mut fused = Hierarchy::new(config, mk(&config));
            let mut batched = Hierarchy::new(config, mk(&config));
            let mut x = 0x9e37_79b9u64;
            let accesses: Vec<MemoryAccess> = (0..30_000u64)
                .map(|i| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let block = match x % 3 {
                        0 => (x >> 33) % 700,
                        1 => i, // stream
                        _ => (x >> 40) % 40_000,
                    };
                    load(block)
                })
                .collect();
            let mut out = Vec::new();
            for group in accesses.chunks(group_len) {
                batched.access_batch(group, &mut out);
                for (a, b) in group.iter().zip(&out) {
                    assert_eq!(fused.access(a), *b, "group_len={group_len}");
                }
            }
            assert_eq!(fused.stats(), batched.stats(), "group_len={group_len}");
        }
    }

    #[test]
    fn stats_combine_all_levels() {
        let mut h = hierarchy(false);
        for b in 0..100u64 {
            h.access(&load(b));
        }
        let s = h.stats();
        assert_eq!(s.l1d.demand_misses, 100);
        assert_eq!(s.l2.demand_misses, 100);
        assert_eq!(s.llc.demand_misses, 100);
        assert!(s.llc_mpki() > 0.0);
    }
}

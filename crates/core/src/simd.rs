//! Runtime SIMD dispatch and the shared i8 gather-sum kernel.
//!
//! The predictor hot path has two data-parallel inner loops: the 16-lane
//! feature-index computation ([`crate::plan::FeaturePlan`]) and the
//! 16-weight confidence gather-sum ([`crate::tables::WeightTables`], and
//! the perceptron baseline's smaller arena). Both have a branch-free
//! scalar form that LLVM autovectorizes on stable Rust, plus an explicit
//! AVX2 form behind runtime feature detection. Which one runs is decided
//! **once per process** here:
//!
//! * `MRP_NO_SIMD=1` (any value other than `0`/empty) forces the scalar
//!   kernels, so the fallback path stays exercised on AVX2 machines (CI
//!   runs one leg with this set);
//! * otherwise the widest of `avx512f`+`avx512bw` and `avx2` the
//!   hardware reports wins (AVX-512 needs both: the lane kernel's
//!   64-bit permutes/shifts are F, the 512-bit `cvtepu16_epi32` widen
//!   in the gather-sum is BW).
//!
//! Every kernel pair is bit-identical by construction (same integer
//! operations, no floating point); `mrp-verify`'s kernel-identity pass
//! and the property tests in `tests/properties.rs` hold them to that.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which kernel family the hot paths dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Branch-free scalar kernels (autovectorized by LLVM).
    Scalar,
    /// Explicit `core::arch::x86_64` AVX2 kernels.
    Avx2,
    /// Explicit `core::arch::x86_64` AVX-512 kernels (requires
    /// `avx512f` + `avx512bw`).
    Avx512,
}

impl SimdLevel {
    /// Stable lowercase name (`"scalar"` / `"avx2"` / `"avx512"`), for
    /// telemetry and the `bench_snapshot` report.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

/// Whether the `MRP_NO_SIMD` environment variable asks for scalar-only
/// operation (set to anything except `0` or the empty string).
fn simd_disabled_by_env() -> bool {
    match std::env::var("MRP_NO_SIMD") {
        Ok(v) => !(v.is_empty() || v == "0"),
        Err(_) => false,
    }
}

/// Levels the hardware can run, scalar first (for exhaustive kernel
/// equivalence sweeps in tests and `mrp-verify`). Ignores `MRP_NO_SIMD`:
/// the env var constrains *dispatch*, not *capability*.
pub fn available_levels() -> &'static [SimdLevel] {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
        {
            return &[SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512];
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return &[SimdLevel::Scalar, SimdLevel::Avx2];
        }
    }
    &[SimdLevel::Scalar]
}

/// Typed override installed by `RuntimeOptions::install`
/// (`crate::options`): `0` = unset (the environment decides), `1` =
/// force scalar, `2` = dispatch to the widest hardware level regardless
/// of `MRP_NO_SIMD`.
static SCALAR_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Installs (or with `None` clears) the typed scalar-dispatch override.
/// `Some(true)` pins [`level`] to scalar, `Some(false)` to the widest
/// hardware level; `None` restores the `MRP_NO_SIMD` fallback.
pub fn set_scalar_override(force_scalar: Option<bool>) {
    let encoded = match force_scalar {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    SCALAR_OVERRIDE.store(encoded, Ordering::Relaxed);
}

/// The level `MRP_NO_SIMD` and hardware detection alone would pick
/// (cached once per process; the typed override is layered on top by
/// [`level`]).
pub fn env_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if simd_disabled_by_env() {
            return SimdLevel::Scalar;
        }
        hardware_level()
    })
}

fn hardware_level() -> SimdLevel {
    *available_levels().last().expect("at least scalar")
}

/// The level the hot paths dispatch to: the typed override when one is
/// installed ([`set_scalar_override`]), otherwise the once-per-process
/// `MRP_NO_SIMD`-plus-hardware decision.
#[inline]
pub fn level() -> SimdLevel {
    match SCALAR_OVERRIDE.load(Ordering::Relaxed) {
        1 => SimdLevel::Scalar,
        2 => hardware_level(),
        _ => env_level(),
    }
}

/// Extra zeroed entries every i8 weight arena allocates past its logical
/// length, so the AVX2 gather (which reads 4 bytes per lane and keeps the
/// low byte) never reads past the allocation for any in-arena offset.
pub const GATHER_PAD: usize = 4;

/// Sums the `i8` weights selected by `offsets`, dispatching to the AVX2
/// or AVX-512 gather when `level` asks for it and every offset leaves
/// [`GATHER_PAD`] readable bytes (callers allocate arenas with the pad;
/// anything else falls back to the scalar sum, which bounds-checks
/// normally).
#[inline]
pub fn gather_sum_i8(weights: &[i8], offsets: &[u16], level: SimdLevel) -> i32 {
    #[cfg(target_arch = "x86_64")]
    {
        // Branchless bounds proof: one max-reduce over the offsets (LLVM
        // lowers it to vector max) and a single compare, instead of the
        // early-exit `all()` scan this used to burn ~n branches on for
        // every confidence gather.
        if level != SimdLevel::Scalar
            && usize::from(offsets.iter().copied().max().unwrap_or(0)) + GATHER_PAD <= weights.len()
        {
            // SAFETY: the feature set is detected before the matching
            // level is ever produced, and the bound above keeps every
            // 4-byte gather inside `weights`.
            return match level {
                SimdLevel::Avx512 => unsafe { gather_sum_i8_avx512(weights, offsets) },
                _ => unsafe { gather_sum_i8_avx2(weights, offsets) },
            };
        }
    }
    let _ = level;
    gather_sum_i8_scalar(weights, offsets)
}

/// The scalar gather-sum (also the tail loop of the AVX2 kernel).
#[inline]
fn gather_sum_i8_scalar(weights: &[i8], offsets: &[u16]) -> i32 {
    offsets
        .iter()
        .map(|&o| i32::from(weights[usize::from(o)]))
        .sum()
}

/// AVX2 gather-sum: widens 8 offsets at a time to i32 lanes, gathers one
/// 32-bit word per weight at byte granularity, and sign-extends the low
/// byte of each before accumulating.
///
/// # Safety
///
/// Requires AVX2, and `usize::from(o) + 4 <= weights.len()` for every
/// offset (each lane reads 4 bytes starting at its offset).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather_sum_i8_avx2(weights: &[i8], offsets: &[u16]) -> i32 {
    use core::arch::x86_64::*;

    let base = weights.as_ptr() as *const i32;
    let mut acc = _mm256_setzero_si256();
    let chunks = offsets.len() / 8;
    for c in 0..chunks {
        let o = _mm_loadu_si128(offsets.as_ptr().add(c * 8) as *const __m128i);
        let vindex = _mm256_cvtepu16_epi32(o);
        // scale = 1: offsets address individual bytes of the i8 arena.
        let words = _mm256_i32gather_epi32(base, vindex, 1);
        let signed = _mm256_srai_epi32(_mm256_slli_epi32(words, 24), 24);
        acc = _mm256_add_epi32(acc, signed);
    }
    let mut lanes = [0i32; 8];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut sum: i32 = lanes.iter().sum();
    for &o in &offsets[chunks * 8..] {
        sum += i32::from(weights[usize::from(o)]);
    }
    sum
}

/// AVX-512 gather-sum: widens 16 offsets at a time to i32 lanes, gathers
/// one 32-bit word per weight at byte granularity, and sign-extends the
/// low byte of each before accumulating.
///
/// # Safety
///
/// Requires AVX-512 F+BW, and `usize::from(o) + 4 <= weights.len()` for
/// every offset (each lane reads 4 bytes starting at its offset).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn gather_sum_i8_avx512(weights: &[i8], offsets: &[u16]) -> i32 {
    use core::arch::x86_64::*;

    let base = weights.as_ptr() as *const i32;
    let mut acc = _mm512_setzero_si512();
    let chunks = offsets.len() / 16;
    for c in 0..chunks {
        let o = _mm256_loadu_si256(offsets.as_ptr().add(c * 16) as *const __m256i);
        let vindex = _mm512_cvtepu16_epi32(o);
        // scale = 1: offsets address individual bytes of the i8 arena.
        let words = _mm512_i32gather_epi32(vindex, base, 1);
        let signed = _mm512_srai_epi32(_mm512_slli_epi32(words, 24), 24);
        acc = _mm512_add_epi32(acc, signed);
    }
    let mut sum = _mm512_reduce_add_epi32(acc);
    for &o in &offsets[chunks * 16..] {
        sum += i32::from(weights[usize::from(o)]);
    }
    sum
}

/// Events below this count take the sequential scalar fold: the
/// sort-coalesce setup of the vector path costs more than it saves on
/// the handful of events a single sampler access emits.
pub const APPLY_VECTOR_MIN_EVENTS: usize = 16;

/// Events are coalesced in chunks of this size so the original sequence
/// index fits in the low 12 bits of a `u32` sort key (offset in the high
/// 16). Chunks apply in order, which preserves the sequential semantics
/// across the boundary.
const APPLY_CHUNK: usize = 4096;

/// Reusable buffers for the vectorized weight-update path, owned by the
/// caller so steady-state applies never allocate.
#[derive(Debug, Default, Clone)]
pub struct ApplyScratch {
    /// `(offset << 12) | sequence` sort keys.
    keys: Vec<u32>,
    /// Unique offsets after coalescing (same-sign groups only).
    offsets: Vec<u16>,
    /// Net signed delta per unique offset.
    nets: Vec<i32>,
}

/// Applies one packed training event — `(index << 1) | sign` in the low
/// 17 bits, sign 1 = decrement — with saturating arithmetic. The shared
/// scalar reference for every apply kernel.
#[inline]
fn apply_one_event(weights: &mut [i8], event: u32, min: i8, max: i8) {
    let w = &mut weights[(event >> 1) as usize & 0xffff];
    *w = if event & 1 == 1 {
        (*w).saturating_sub(1).max(min)
    } else {
        (*w).saturating_add(1).min(max)
    };
}

/// The sequential scalar weight-update fold: events applied one at a
/// time in buffer order, each a saturating ±1 clamped to `[min, max]`.
/// This is the semantic reference the vector path must match bit-exactly.
pub fn apply_events_i8_scalar(weights: &mut [i8], events: &[u32], min: i8, max: i8) {
    for &e in events {
        apply_one_event(weights, e, min, max);
    }
}

/// Applies a packed SoA event buffer to an i8 weight arena with
/// saturating ±1 updates clamped to `[min, max]`, dispatching to the
/// AVX2/AVX-512 batched form when `level` asks for it and the buffer is
/// big enough to amortize the setup. Returns `true` when the vector path
/// ran (for the dispatch-regression telemetry counters).
///
/// Correctness of the batched form (every weight must end bit-identical
/// to the sequential fold, which callers' debug builds and `mrp-verify`'s
/// train-kernel pass hold it to):
///
/// * Events on **distinct offsets** commute — each touches one weight.
/// * A **same-sign run** of `k` events on one offset collapses to
///   `clamp(w ± k)`: starting from `w ∈ [min, max]`, `k` saturating +1
///   steps produce `min(w + k, max)`, and since `w ≥ min` the two-sided
///   clamp agrees (symmetrically for decrements). The run is coalesced to
///   one `(offset, net)` pair.
/// * A **mixed-sign run** is order-dependent under saturation (e.g.
///   `max, +1, -1` ends at `max - 1` but `-1, +1` at `max`), so it is
///   replayed sequentially in original event order — the sort key carries
///   the sequence number precisely so the replay order survives the sort.
///
/// Requires every weight to already lie within `[min, max]` (the arena
/// invariant [`crate::tables::WeightTables`] maintains); the collapse
/// argument above does not hold for out-of-range starting weights.
pub fn apply_events_i8(
    weights: &mut [i8],
    events: &[u32],
    min: i8,
    max: i8,
    level: SimdLevel,
    scratch: &mut ApplyScratch,
) -> bool {
    if level == SimdLevel::Scalar || events.len() < APPLY_VECTOR_MIN_EVENTS {
        apply_events_i8_scalar(weights, events, min, max);
        return false;
    }
    let mut vectorized = false;
    for chunk in events.chunks(APPLY_CHUNK) {
        vectorized |= apply_chunk_i8(weights, chunk, min, max, level, scratch);
    }
    vectorized
}

/// Sort-coalesce + batched apply of one bounded chunk (see
/// [`apply_events_i8`] for the correctness argument).
fn apply_chunk_i8(
    weights: &mut [i8],
    events: &[u32],
    min: i8,
    max: i8,
    level: SimdLevel,
    scratch: &mut ApplyScratch,
) -> bool {
    debug_assert!(events.len() <= APPLY_CHUNK);
    scratch.keys.clear();
    scratch.keys.extend(
        events
            .iter()
            .enumerate()
            .map(|(seq, &e)| ((e & 0x1fffe) << 11) | seq as u32),
    );
    // Unstable sort is order-preserving here: keys are unique (distinct
    // sequence bits), and within an offset they sort by sequence.
    scratch.keys.sort_unstable();

    scratch.offsets.clear();
    scratch.nets.clear();
    let mut max_offset = 0u16;
    let mut i = 0;
    while i < scratch.keys.len() {
        let offset = (scratch.keys[i] >> 12) as u16;
        let mut j = i + 1;
        while j < scratch.keys.len() && (scratch.keys[j] >> 12) as u16 == offset {
            j += 1;
        }
        let first_sign = events[(scratch.keys[i] & 0xfff) as usize] & 1;
        let mut net = 0i32;
        let mut mixed = false;
        for &key in &scratch.keys[i..j] {
            let e = events[(key & 0xfff) as usize];
            mixed |= (e & 1) != first_sign;
            net += 1 - 2 * (e & 1) as i32;
        }
        if mixed {
            // Order-dependent under saturation: replay sequentially in
            // original order (keys within the run are sequence-sorted).
            for &key in &scratch.keys[i..j] {
                apply_one_event(weights, events[(key & 0xfff) as usize], min, max);
            }
        } else {
            // Same-sign run: net is +count (increments) or -count
            // (decrements), and clamp(w + net) matches the fold.
            scratch.offsets.push(offset);
            scratch.nets.push(net);
            max_offset = max_offset.max(offset);
        }
        i = j;
    }
    if scratch.offsets.is_empty() {
        return false;
    }

    #[cfg(target_arch = "x86_64")]
    {
        // Same pad contract as the gather-sum: each lane reads 4 bytes at
        // its offset. Unpadded arenas take the scalar net apply.
        if usize::from(max_offset) + GATHER_PAD <= weights.len() {
            // SAFETY: level implies the feature set was detected, and the
            // bound above keeps every 4-byte gather inside `weights`.
            match level {
                SimdLevel::Avx512 => unsafe {
                    apply_nets_avx512(weights, &scratch.offsets, &scratch.nets, min, max);
                },
                _ => unsafe {
                    apply_nets_avx2(weights, &scratch.offsets, &scratch.nets, min, max);
                },
            }
            return true;
        }
    }
    let _ = max_offset;
    apply_nets_scalar(weights, &scratch.offsets, &scratch.nets, min, max);
    false
}

/// Scalar form of the coalesced net apply: `w = clamp(w + net)` per
/// unique offset.
fn apply_nets_scalar(weights: &mut [i8], offsets: &[u16], nets: &[i32], min: i8, max: i8) {
    for (&o, &net) in offsets.iter().zip(nets) {
        let w = &mut weights[usize::from(o)];
        *w = (i32::from(*w) + net).clamp(i32::from(min), i32::from(max)) as i8;
    }
}

/// AVX2 coalesced net apply: gathers 8 weights as i32 lanes, adds the
/// net deltas, clamps to `[min, max]`, and stores the low byte of each
/// lane back. Offsets are unique after coalescing, so lane stores cannot
/// conflict.
///
/// # Safety
///
/// Requires AVX2, and `usize::from(o) + 4 <= weights.len()` for every
/// offset (each lane reads 4 bytes starting at its offset).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn apply_nets_avx2(weights: &mut [i8], offsets: &[u16], nets: &[i32], min: i8, max: i8) {
    use core::arch::x86_64::*;

    let base = weights.as_ptr() as *const i32;
    let minv = _mm256_set1_epi32(i32::from(min));
    let maxv = _mm256_set1_epi32(i32::from(max));
    let chunks = offsets.len() / 8;
    for c in 0..chunks {
        let o = _mm_loadu_si128(offsets.as_ptr().add(c * 8) as *const __m128i);
        let vindex = _mm256_cvtepu16_epi32(o);
        let words = _mm256_i32gather_epi32(base, vindex, 1);
        let w = _mm256_srai_epi32(_mm256_slli_epi32(words, 24), 24);
        let net = _mm256_loadu_si256(nets.as_ptr().add(c * 8) as *const __m256i);
        let clamped = _mm256_min_epi32(_mm256_max_epi32(_mm256_add_epi32(w, net), minv), maxv);
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, clamped);
        for (lane, &off) in offsets[c * 8..c * 8 + 8].iter().enumerate() {
            *weights.get_unchecked_mut(usize::from(off)) = lanes[lane] as i8;
        }
    }
    apply_nets_scalar(
        weights,
        &offsets[chunks * 8..],
        &nets[chunks * 8..],
        min,
        max,
    );
}

/// AVX-512 coalesced net apply: 16 lanes per iteration, same structure
/// as the AVX2 form (there is no byte scatter in AVX-512, so lane
/// write-back narrows via `vpmovdb` and stores per unique offset).
///
/// # Safety
///
/// Requires AVX-512 F+BW, and `usize::from(o) + 4 <= weights.len()` for
/// every offset.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn apply_nets_avx512(weights: &mut [i8], offsets: &[u16], nets: &[i32], min: i8, max: i8) {
    use core::arch::x86_64::*;

    let base = weights.as_ptr() as *const i32;
    let minv = _mm512_set1_epi32(i32::from(min));
    let maxv = _mm512_set1_epi32(i32::from(max));
    let chunks = offsets.len() / 16;
    for c in 0..chunks {
        let o = _mm256_loadu_si256(offsets.as_ptr().add(c * 16) as *const __m256i);
        let vindex = _mm512_cvtepu16_epi32(o);
        let words = _mm512_i32gather_epi32(vindex, base, 1);
        let w = _mm512_srai_epi32(_mm512_slli_epi32(words, 24), 24);
        let net = _mm512_loadu_si512(nets.as_ptr().add(c * 16) as *const __m512i);
        let clamped = _mm512_min_epi32(_mm512_max_epi32(_mm512_add_epi32(w, net), minv), maxv);
        let mut bytes = [0i8; 16];
        _mm_storeu_si128(
            bytes.as_mut_ptr() as *mut __m128i,
            _mm512_cvtepi32_epi8(clamped),
        );
        for (lane, &off) in offsets[c * 16..c * 16 + 16].iter().enumerate() {
            *weights.get_unchecked_mut(usize::from(off)) = bytes[lane];
        }
    }
    apply_nets_scalar(
        weights,
        &offsets[chunks * 16..],
        &nets[chunks * 16..],
        min,
        max,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_is_stable_and_available() {
        let l = level();
        assert_eq!(l, level(), "dispatch decision must be cached");
        assert!(available_levels().contains(&l) || l == SimdLevel::Scalar);
        assert_eq!(available_levels()[0], SimdLevel::Scalar);
    }

    #[test]
    fn gather_sum_matches_scalar_on_every_available_level() {
        // 67 weights + pad, offsets hitting the extremes and interior.
        let mut weights = vec![0i8; 67 + GATHER_PAD];
        for (i, w) in weights.iter_mut().take(67).enumerate() {
            *w = ((i as i32 * 37 % 64) - 32) as i8;
        }
        let offsets: Vec<u16> = (0..23).map(|i| (i * 29 % 67) as u16).collect();
        let expected = gather_sum_i8_scalar(&weights, &offsets);
        for &l in available_levels() {
            assert_eq!(gather_sum_i8(&weights, &offsets, l), expected, "{l:?}");
        }
    }

    #[test]
    fn gather_sum_without_pad_falls_back_to_scalar() {
        // Offsets reaching the last element of an unpadded slice must not
        // take the AVX2 path (it would read out of bounds); the safe
        // dispatch falls back and still returns the right sum.
        let weights = vec![5i8; 16];
        let offsets = vec![15u16; 16];
        for &l in available_levels() {
            assert_eq!(gather_sum_i8(&weights, &offsets, l), 80, "{l:?}");
        }
    }

    #[test]
    fn gather_sum_handles_empty_and_tail() {
        let weights = vec![1i8; 8 + GATHER_PAD];
        assert_eq!(gather_sum_i8(&weights, &[], level()), 0);
        // 9 offsets: one full AVX2 chunk plus a scalar tail.
        let offsets = vec![3u16; 9];
        for &l in available_levels() {
            assert_eq!(gather_sum_i8(&weights, &offsets, l), 9, "{l:?}");
        }
    }

    /// Packs `(offset << 1) | sign` the way the sampler emits events
    /// (feature bits don't matter to the apply kernels).
    fn ev(offset: u16, decrement: bool) -> u32 {
        (u32::from(offset) << 1) | u32::from(decrement)
    }

    #[test]
    fn apply_events_matches_scalar_on_every_level() {
        let (min, max) = (-32i8, 31i8);
        // 97 weights + pad, spread across the range including the bounds.
        let mut init = vec![0i8; 97 + GATHER_PAD];
        for (i, w) in init.iter_mut().take(97).enumerate() {
            *w = ((i as i32 * 23 % 64) - 32) as i8;
        }
        // Events with heavy duplication: offsets drawn from a pool of 13,
        // mixed signs, enough to cross the vector threshold.
        let events: Vec<u32> = (0..240)
            .map(|i| ev((i * 31 % 13 * 7) as u16, i % 3 == 0))
            .collect();
        let mut expected = init.clone();
        apply_events_i8_scalar(&mut expected, &events, min, max);
        for &l in available_levels() {
            let mut got = init.clone();
            let mut scratch = ApplyScratch::default();
            apply_events_i8(&mut got, &events, min, max, l, &mut scratch);
            assert_eq!(got, expected, "{l:?}");
        }
    }

    #[test]
    fn mixed_sign_duplicates_replay_in_event_order() {
        // At the saturation bound, `inc, dec` ends one below the bound
        // while `dec, inc` ends at it — net coalescing would get both
        // wrong (net 0 => unchanged). The kernel must replay mixed-sign
        // groups in original order at every level.
        let (min, max) = (-32i8, 31i8);
        let mut init = vec![0i8; 64 + GATHER_PAD];
        init[0] = max;
        init[1] = max;
        let mut events = vec![ev(0, false), ev(0, true), ev(1, true), ev(1, false)];
        // Pad past the vector threshold with unique-offset events.
        events.extend((2..40u16).map(|o| ev(o, false)));
        let mut expected = init.clone();
        apply_events_i8_scalar(&mut expected, &events, min, max);
        assert_eq!(expected[0], max - 1);
        assert_eq!(expected[1], max);
        for &l in available_levels() {
            let mut got = init.clone();
            let mut scratch = ApplyScratch::default();
            apply_events_i8(&mut got, &events, min, max, l, &mut scratch);
            assert_eq!(got, expected, "{l:?}");
        }
    }

    #[test]
    fn apply_saturates_at_pinned_bounds() {
        let (min, max) = (-32i8, 31i8);
        let mut init = vec![0i8; 32 + GATHER_PAD];
        init[3] = max;
        init[4] = min;
        // 20 increments at a pinned max, 20 decrements at a pinned min.
        let mut events: Vec<u32> = (0..20).map(|_| ev(3, false)).collect();
        events.extend((0..20).map(|_| ev(4, true)));
        for &l in available_levels() {
            let mut got = init.clone();
            let mut scratch = ApplyScratch::default();
            apply_events_i8(&mut got, &events, min, max, l, &mut scratch);
            assert_eq!(got[3], max, "{l:?}");
            assert_eq!(got[4], min, "{l:?}");
        }
    }

    #[test]
    fn apply_without_pad_stays_correct() {
        // Offsets reaching the last element of an unpadded arena must not
        // take the gather path; the coalesced scalar fallback still
        // produces the sequential result.
        let (min, max) = (-8i8, 7i8);
        let init = vec![0i8; 24];
        let events: Vec<u32> = (0..24).map(|o| ev(o as u16, o % 2 == 1)).collect();
        let mut expected = init.clone();
        apply_events_i8_scalar(&mut expected, &events, min, max);
        for &l in available_levels() {
            let mut got = init.clone();
            let mut scratch = ApplyScratch::default();
            let vectorized = apply_events_i8(&mut got, &events, min, max, l, &mut scratch);
            assert!(!vectorized, "{l:?} must not gather an unpadded arena");
            assert_eq!(got, expected, "{l:?}");
        }
    }

    #[test]
    fn apply_small_batches_take_the_scalar_fold() {
        let (min, max) = (-32i8, 31i8);
        let mut weights = vec![0i8; 16 + GATHER_PAD];
        let events = vec![ev(2, false); APPLY_VECTOR_MIN_EVENTS - 1];
        let mut scratch = ApplyScratch::default();
        let vectorized = apply_events_i8(&mut weights, &events, min, max, level(), &mut scratch);
        assert!(!vectorized);
        assert_eq!(weights[2], (APPLY_VECTOR_MIN_EVENTS - 1) as i8);
    }
}

//! Runtime SIMD dispatch and the shared i8 gather-sum kernel.
//!
//! The predictor hot path has two data-parallel inner loops: the 16-lane
//! feature-index computation ([`crate::plan::FeaturePlan`]) and the
//! 16-weight confidence gather-sum ([`crate::tables::WeightTables`], and
//! the perceptron baseline's smaller arena). Both have a branch-free
//! scalar form that LLVM autovectorizes on stable Rust, plus an explicit
//! AVX2 form behind runtime feature detection. Which one runs is decided
//! **once per process** here:
//!
//! * `MRP_NO_SIMD=1` (any value other than `0`/empty) forces the scalar
//!   kernels, so the fallback path stays exercised on AVX2 machines (CI
//!   runs one leg with this set);
//! * otherwise the widest of `avx512f`+`avx512bw` and `avx2` the
//!   hardware reports wins (AVX-512 needs both: the lane kernel's
//!   64-bit permutes/shifts are F, the 512-bit `cvtepu16_epi32` widen
//!   in the gather-sum is BW).
//!
//! Every kernel pair is bit-identical by construction (same integer
//! operations, no floating point); `mrp-verify`'s kernel-identity pass
//! and the property tests in `tests/properties.rs` hold them to that.

use std::sync::OnceLock;

/// Which kernel family the hot paths dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Branch-free scalar kernels (autovectorized by LLVM).
    Scalar,
    /// Explicit `core::arch::x86_64` AVX2 kernels.
    Avx2,
    /// Explicit `core::arch::x86_64` AVX-512 kernels (requires
    /// `avx512f` + `avx512bw`).
    Avx512,
}

impl SimdLevel {
    /// Stable lowercase name (`"scalar"` / `"avx2"` / `"avx512"`), for
    /// telemetry and the `bench_snapshot` report.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

/// Whether the `MRP_NO_SIMD` environment variable asks for scalar-only
/// operation (set to anything except `0` or the empty string).
fn simd_disabled_by_env() -> bool {
    match std::env::var("MRP_NO_SIMD") {
        Ok(v) => !(v.is_empty() || v == "0"),
        Err(_) => false,
    }
}

/// Levels the hardware can run, scalar first (for exhaustive kernel
/// equivalence sweeps in tests and `mrp-verify`). Ignores `MRP_NO_SIMD`:
/// the env var constrains *dispatch*, not *capability*.
pub fn available_levels() -> &'static [SimdLevel] {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
        {
            return &[SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512];
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return &[SimdLevel::Scalar, SimdLevel::Avx2];
        }
    }
    &[SimdLevel::Scalar]
}

/// The level the hot paths dispatch to, decided once per process from
/// hardware detection and `MRP_NO_SIMD`.
pub fn level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if simd_disabled_by_env() {
            return SimdLevel::Scalar;
        }
        *available_levels().last().expect("at least scalar")
    })
}

/// Extra zeroed entries every i8 weight arena allocates past its logical
/// length, so the AVX2 gather (which reads 4 bytes per lane and keeps the
/// low byte) never reads past the allocation for any in-arena offset.
pub const GATHER_PAD: usize = 4;

/// Sums the `i8` weights selected by `offsets`, dispatching to the AVX2
/// or AVX-512 gather when `level` asks for it and every offset leaves
/// [`GATHER_PAD`] readable bytes (callers allocate arenas with the pad;
/// anything else falls back to the scalar sum, which bounds-checks
/// normally).
#[inline]
pub fn gather_sum_i8(weights: &[i8], offsets: &[u16], level: SimdLevel) -> i32 {
    #[cfg(target_arch = "x86_64")]
    {
        if level != SimdLevel::Scalar
            && offsets
                .iter()
                .all(|&o| usize::from(o) + GATHER_PAD <= weights.len())
        {
            // SAFETY: the feature set is detected before the matching
            // level is ever produced, and the bound above keeps every
            // 4-byte gather inside `weights`.
            return match level {
                SimdLevel::Avx512 => unsafe { gather_sum_i8_avx512(weights, offsets) },
                _ => unsafe { gather_sum_i8_avx2(weights, offsets) },
            };
        }
    }
    let _ = level;
    gather_sum_i8_scalar(weights, offsets)
}

/// The scalar gather-sum (also the tail loop of the AVX2 kernel).
#[inline]
fn gather_sum_i8_scalar(weights: &[i8], offsets: &[u16]) -> i32 {
    offsets
        .iter()
        .map(|&o| i32::from(weights[usize::from(o)]))
        .sum()
}

/// AVX2 gather-sum: widens 8 offsets at a time to i32 lanes, gathers one
/// 32-bit word per weight at byte granularity, and sign-extends the low
/// byte of each before accumulating.
///
/// # Safety
///
/// Requires AVX2, and `usize::from(o) + 4 <= weights.len()` for every
/// offset (each lane reads 4 bytes starting at its offset).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather_sum_i8_avx2(weights: &[i8], offsets: &[u16]) -> i32 {
    use core::arch::x86_64::*;

    let base = weights.as_ptr() as *const i32;
    let mut acc = _mm256_setzero_si256();
    let chunks = offsets.len() / 8;
    for c in 0..chunks {
        let o = _mm_loadu_si128(offsets.as_ptr().add(c * 8) as *const __m128i);
        let vindex = _mm256_cvtepu16_epi32(o);
        // scale = 1: offsets address individual bytes of the i8 arena.
        let words = _mm256_i32gather_epi32(base, vindex, 1);
        let signed = _mm256_srai_epi32(_mm256_slli_epi32(words, 24), 24);
        acc = _mm256_add_epi32(acc, signed);
    }
    let mut lanes = [0i32; 8];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut sum: i32 = lanes.iter().sum();
    for &o in &offsets[chunks * 8..] {
        sum += i32::from(weights[usize::from(o)]);
    }
    sum
}

/// AVX-512 gather-sum: widens 16 offsets at a time to i32 lanes, gathers
/// one 32-bit word per weight at byte granularity, and sign-extends the
/// low byte of each before accumulating.
///
/// # Safety
///
/// Requires AVX-512 F+BW, and `usize::from(o) + 4 <= weights.len()` for
/// every offset (each lane reads 4 bytes starting at its offset).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn gather_sum_i8_avx512(weights: &[i8], offsets: &[u16]) -> i32 {
    use core::arch::x86_64::*;

    let base = weights.as_ptr() as *const i32;
    let mut acc = _mm512_setzero_si512();
    let chunks = offsets.len() / 16;
    for c in 0..chunks {
        let o = _mm256_loadu_si256(offsets.as_ptr().add(c * 16) as *const __m256i);
        let vindex = _mm512_cvtepu16_epi32(o);
        // scale = 1: offsets address individual bytes of the i8 arena.
        let words = _mm512_i32gather_epi32(vindex, base, 1);
        let signed = _mm512_srai_epi32(_mm512_slli_epi32(words, 24), 24);
        acc = _mm512_add_epi32(acc, signed);
    }
    let mut sum = _mm512_reduce_add_epi32(acc);
    for &o in &offsets[chunks * 16..] {
        sum += i32::from(weights[usize::from(o)]);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_is_stable_and_available() {
        let l = level();
        assert_eq!(l, level(), "dispatch decision must be cached");
        assert!(available_levels().contains(&l) || l == SimdLevel::Scalar);
        assert_eq!(available_levels()[0], SimdLevel::Scalar);
    }

    #[test]
    fn gather_sum_matches_scalar_on_every_available_level() {
        // 67 weights + pad, offsets hitting the extremes and interior.
        let mut weights = vec![0i8; 67 + GATHER_PAD];
        for (i, w) in weights.iter_mut().take(67).enumerate() {
            *w = ((i as i32 * 37 % 64) - 32) as i8;
        }
        let offsets: Vec<u16> = (0..23).map(|i| (i * 29 % 67) as u16).collect();
        let expected = gather_sum_i8_scalar(&weights, &offsets);
        for &l in available_levels() {
            assert_eq!(gather_sum_i8(&weights, &offsets, l), expected, "{l:?}");
        }
    }

    #[test]
    fn gather_sum_without_pad_falls_back_to_scalar() {
        // Offsets reaching the last element of an unpadded slice must not
        // take the AVX2 path (it would read out of bounds); the safe
        // dispatch falls back and still returns the right sum.
        let weights = vec![5i8; 16];
        let offsets = vec![15u16; 16];
        for &l in available_levels() {
            assert_eq!(gather_sum_i8(&weights, &offsets, l), 80, "{l:?}");
        }
    }

    #[test]
    fn gather_sum_handles_empty_and_tail() {
        let weights = vec![1i8; 8 + GATHER_PAD];
        assert_eq!(gather_sum_i8(&weights, &[], level()), 0);
        // 9 offsets: one full AVX2 chunk plus a scalar tail.
        let offsets = vec![3u16; 9];
        for &l in available_levels() {
            assert_eq!(gather_sum_i8(&weights, &offsets, l), 9, "{l:?}");
        }
    }
}

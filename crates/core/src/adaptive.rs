//! Adaptive MPPPB: set-dueling between the full MPPPB optimization and
//! the plain default policy.
//!
//! The paper's conclusion proposes exploring further optimizations driven
//! by multiperspective prediction (§7), and its evaluation notes the one
//! weakness of aggressive prediction-driven management: MPPPB runs below
//! LRU on a minority of workloads (115 of 900 mixes, §6.1.1) where the
//! predictor misfires. This extension guards against those pathologies
//! with the DIP/DRRIP dueling mechanism applied to the whole MPPPB
//! decision set: a few leader sets always use MPPPB, a few always use the
//! plain default policy (static MDPP or SRRIP), and a saturating selector
//! steers the follower sets to whichever leader class misses less. The
//! predictor trains continuously either way, so switching back is
//! instant.

use mrp_cache::{AccessInfo, CacheConfig, ReplacementPolicy, UpcomingAccess};
use mrp_trace::MemoryAccess;

use crate::mpppb::{Mpppb, MpppbConfig};

/// Sets between leader sets of each class.
const LEADER_STRIDE: u32 = 32;

/// Saturation bound for the policy selector.
const PSEL_MAX: i32 = 1024;

/// MPPPB with set-dueled optimization control.
#[derive(Debug)]
pub struct AdaptiveMpppb {
    inner: Mpppb,
    /// Positive: MPPPB leaders are missing less -> enable MPPPB in
    /// follower sets.
    psel: i32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetClass {
    /// Always runs full MPPPB.
    MpppbLeader,
    /// Always runs the plain default policy.
    DefaultLeader,
    /// Follows the selector.
    Follower,
}

fn classify(set: u32) -> SetClass {
    match set % LEADER_STRIDE {
        0 => SetClass::MpppbLeader,
        1 => SetClass::DefaultLeader,
        _ => SetClass::Follower,
    }
}

impl AdaptiveMpppb {
    /// Creates the adaptive policy over an inner MPPPB configuration.
    pub fn new(config: MpppbConfig, llc: &CacheConfig) -> Self {
        AdaptiveMpppb {
            inner: Mpppb::new(config, llc),
            psel: 0,
        }
    }

    /// Current selector value (tests / introspection). Positive favors
    /// MPPPB.
    pub fn psel(&self) -> i32 {
        self.psel
    }

    /// The wrapped MPPPB policy.
    pub fn inner(&self) -> &Mpppb {
        &self.inner
    }

    /// Whether `set` runs the full MPPPB optimization right now.
    pub fn mpppb_active(&self, set: u32) -> bool {
        match classify(set) {
            SetClass::MpppbLeader => true,
            SetClass::DefaultLeader => false,
            SetClass::Follower => self.psel >= 0,
        }
    }

    /// A miss occurred in `set`: leaders vote against their own class.
    fn vote(&mut self, set: u32) {
        match classify(set) {
            SetClass::MpppbLeader => self.psel = (self.psel - 1).max(-PSEL_MAX),
            SetClass::DefaultLeader => self.psel = (self.psel + 1).min(PSEL_MAX),
            SetClass::Follower => {}
        }
    }

    fn apply_mode(&mut self, set: u32) {
        let neutral = !self.mpppb_active(set);
        self.inner.set_neutral(neutral);
    }
}

impl ReplacementPolicy for AdaptiveMpppb {
    fn name(&self) -> &str {
        "mpppb-adaptive"
    }

    fn on_core_access(&mut self, access: &MemoryAccess) {
        self.inner.on_core_access(access);
    }

    fn uses_core_accesses(&self) -> bool {
        self.inner.uses_core_accesses()
    }

    fn on_access(&mut self, info: &AccessInfo) {
        self.inner.on_access(info);
    }

    fn on_upcoming_accesses(&mut self, window: &[UpcomingAccess]) {
        self.inner.on_upcoming_accesses(window);
    }

    fn uses_upcoming_accesses(&self) -> bool {
        self.inner.uses_upcoming_accesses()
    }

    fn set_confidence_tracking(&mut self, enabled: bool) {
        self.inner.set_confidence_tracking(enabled);
    }

    fn confidence_histogram(&self) -> Option<Vec<u64>> {
        self.inner.confidence_histogram()
    }

    fn on_hit(&mut self, info: &AccessInfo, way: u32) {
        self.apply_mode(info.set);
        self.inner.on_hit(info, way);
    }

    fn should_bypass(&mut self, info: &AccessInfo) -> bool {
        self.vote(info.set);
        self.apply_mode(info.set);
        self.inner.should_bypass(info)
    }

    fn choose_victim(&mut self, info: &AccessInfo, occupants: &[u64]) -> u32 {
        self.inner.choose_victim(info, occupants)
    }

    fn uses_victim_occupants(&self) -> bool {
        self.inner.uses_victim_occupants()
    }

    fn on_evict(&mut self, set: u32, way: u32, block: u64) {
        self.inner.on_evict(set, way, block);
    }

    fn on_fill(&mut self, info: &AccessInfo, way: u32) {
        // Mode for this access was set in should_bypass.
        self.inner.on_fill(info, way);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_cache::{AccessResult, Cache};
    use mrp_trace::MemoryAccess;

    fn cache() -> Cache {
        let llc = CacheConfig::new(64 * 16 * 64, 16);
        let mut config = MpppbConfig::single_thread(&llc);
        config.sampler_sets = 16;
        Cache::new(llc, Box::new(AdaptiveMpppb::new(config, &llc)))
    }

    fn load(pc: u64, block: u64) -> MemoryAccess {
        MemoryAccess::load(pc, block * 64)
    }

    #[test]
    fn set_classes_partition_sets() {
        assert_eq!(classify(0), SetClass::MpppbLeader);
        assert_eq!(classify(1), SetClass::DefaultLeader);
        assert_eq!(classify(2), SetClass::Follower);
        assert_eq!(classify(32), SetClass::MpppbLeader);
    }

    #[test]
    fn basic_cache_behavior_is_preserved() {
        let mut c = cache();
        let a = load(0x400000, 5);
        assert!(c.access(&a, false).is_miss());
        assert!(c.access(&a, false).is_hit());
    }

    #[test]
    fn default_leader_sets_never_bypass() {
        let mut c = cache();
        // Stream through set 1 (a default-policy leader in a 64-set cache).
        for i in 0..50_000u64 {
            let block = i * 64 + 1; // always set 1
            let r = c.access(&load(0x400000, block), false);
            assert_ne!(r, AccessResult::Bypassed, "default leader bypassed");
        }
    }

    #[test]
    fn psel_saturates() {
        let llc = CacheConfig::new(64 * 16 * 64, 16);
        let mut config = MpppbConfig::single_thread(&llc);
        config.sampler_sets = 16;
        let mut p = AdaptiveMpppb::new(config, &llc);
        for _ in 0..5000 {
            p.vote(1); // default leader missing -> +1 (toward MPPPB)
        }
        assert_eq!(p.psel(), PSEL_MAX);
        for _ in 0..5000 {
            p.vote(0);
        }
        assert_eq!(p.psel(), -PSEL_MAX);
    }

    #[test]
    fn followers_track_the_selector() {
        let llc = CacheConfig::new(64 * 16 * 64, 16);
        let mut config = MpppbConfig::single_thread(&llc);
        config.sampler_sets = 16;
        let mut p = AdaptiveMpppb::new(config, &llc);
        for _ in 0..100 {
            p.vote(0); // MPPPB leaders miss -> psel negative
        }
        assert!(!p.mpppb_active(5));
        for _ in 0..300 {
            p.vote(1);
        }
        assert!(p.mpppb_active(5));
    }

    #[test]
    fn adaptive_never_much_worse_than_lru_on_mpppb_pathology() {
        // A pattern that makes raw MPPPB lose: exact-fit cyclic reuse
        // (distance == associativity) where any disturbance of the LRU
        // stack breaks an all-hit equilibrium. The dueling guard must
        // keep the adaptive variant near LRU parity.
        use mrp_cache::policies::Lru;
        let llc = CacheConfig::new(64 * 16 * 64, 16); // 64 sets
        let mut config = MpppbConfig::single_thread(&llc);
        config.sampler_sets = 16;
        // Deliberately hostile thresholds: place everything distantly.
        config.place_thresholds = [-1000, -1000, -1000];
        config.positions = [15, 15, 15];
        config.bypass_threshold = 5;
        let mut adaptive = Cache::new(llc, Box::new(AdaptiveMpppb::new(config, &llc)));
        let mut lru = Cache::new(llc, Box::new(Lru::new(llc.sets(), llc.associativity())));
        // 16 blocks per set, cyclic.
        let mut accesses = 0u64;
        for round in 0..400u64 {
            for b in 0..1024u64 {
                let a = load(0x400000 + (b % 8) * 4, b);
                let _ = adaptive.access(&a, false);
                let _ = lru.access(&a, false);
                accesses += 1;
            }
            let _ = round;
        }
        let a_miss = adaptive.stats().demand_misses;
        let l_miss = lru.stats().demand_misses;
        // The guard cannot protect the 2-of-32 MPPPB leader sets — that
        // residual is the price of dueling. Everything else must match
        // LRU: bound = LRU + leader-set share of accesses + slack for the
        // pre-convergence window.
        let leader_share = accesses * 2 / 32;
        assert!(
            a_miss <= l_miss + leader_share + 4096,
            "adaptive ({a_miss}) must stay near LRU ({l_miss}) + leader cost ({leader_share})"
        );
        // And the follower sets must dwarf raw MPPPB's damage: with the
        // hostile thresholds every set would thrash (~every access a
        // miss) without the guard.
        assert!(
            a_miss < accesses / 2,
            "guard failed to engage: {a_miss} misses of {accesses} accesses"
        );
    }
}

//! Multiperspective Placement, Promotion, and Bypass (MPPPB).
//!
//! The policy consults the predictor on every LLC access (§3.5) and uses
//! the confidence sum to drive three decisions (§3.6):
//!
//! * **miss**: confidence > τ₀ → bypass; otherwise place in position πᵢ
//!   where τᵢ is the tightest exceeded threshold; below τ₃ → place MRU.
//! * **hit**: confidence > τ₄ → do not promote; otherwise promote per the
//!   default policy.
//!
//! Two default replacement policies are supported (§3.7): static MDPP
//! (tree PLRU positions, single-thread configuration) and SRRIP (RRPV
//! levels, multi-core configuration).

use std::fmt;

use mrp_cache::policies::{MdppConfig, PlruTree, RripState, RRIP_MAX};
use mrp_cache::{AccessInfo, CacheConfig, ReplacementPolicy, UpcomingAccess};

use crate::context::{FeatureContext, PcHistory, SetState, HISTORY_DEPTH};
use crate::feature::Feature;
use crate::feature_sets;
use crate::plan::MAX_BATCH;
use crate::predictor::MultiperspectivePredictor;

/// Typed override for announced-window delivery, installed by
/// `RuntimeOptions::install` (`crate::options`): `0` = unset (the
/// `MRP_NO_WINDOW` environment variable decides), `1` = disabled, `2` =
/// enabled.
static WINDOW_OVERRIDE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Installs (or with `None` clears) the typed window-delivery override.
/// `Some(false)` disables the announced-window pipeline (the fused
/// per-access fallback runs instead); `Some(true)` forces it on; `None`
/// restores the `MRP_NO_WINDOW` fallback. Purely a throughput knob —
/// results are bit-identical either way (the window hook is advisory).
pub fn set_window_override(enabled: Option<bool>) {
    let encoded = match enabled {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    WINDOW_OVERRIDE.store(encoded, std::sync::atomic::Ordering::Relaxed);
}

/// Whether MPPPB policies subscribe to announced windows right now: the
/// typed override when installed, otherwise the once-per-process
/// `MRP_NO_WINDOW` decision.
pub fn window_delivery_enabled() -> bool {
    match WINDOW_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            static DISABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
            !*DISABLED.get_or_init(
                || matches!(std::env::var("MRP_NO_WINDOW"), Ok(v) if !v.is_empty() && v != "0"),
            )
        }
    }
}

/// Number of fixed bins in the per-decision confidence histogram
/// ([`ReplacementPolicy::confidence_histogram`]).
pub const CONFIDENCE_BINS: usize = 16;

/// Maps a confidence sum to its histogram bin: the span `[-128, 127]`
/// (which covers the thresholds both paper configurations use) split
/// into [`CONFIDENCE_BINS`] equal bins, saturating at the ends. Bin 0 is
/// strongly reuse-predicted, the last bin strongly bypass-predicted.
pub fn confidence_bin(confidence: i32) -> usize {
    ((confidence.clamp(-128, 127) + 128) >> 4) as usize
}

/// Which default replacement policy backs MPPPB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefaultPolicyKind {
    /// Static minimal-disturbance placement & promotion over tree PLRU
    /// (single-thread configuration; positions are tree positions 0..16).
    Mdpp,
    /// Static RRIP (multi-core configuration; positions are RRPV values
    /// 0..=3).
    Srrip,
}

/// Full MPPPB configuration.
#[derive(Debug, Clone)]
pub struct MpppbConfig {
    /// The parameterized feature set (16 features in the paper).
    pub features: Vec<Feature>,
    /// τ₀: bypass when the miss confidence exceeds this.
    pub bypass_threshold: i32,
    /// τ₁ ≥ τ₂ ≥ τ₃: placement thresholds.
    pub place_thresholds: [i32; 3],
    /// π₁, π₂, π₃: placement positions (tree positions for MDPP, RRPVs
    /// for SRRIP), matched to the thresholds.
    pub positions: [u32; 3],
    /// τ₄: on a hit, suppress promotion above this confidence.
    pub promote_threshold: i32,
    /// Perceptron training threshold θ.
    pub training_threshold: i32,
    /// Number of sampled sets (64 per core in the paper).
    pub sampler_sets: u32,
    /// Default replacement policy.
    pub default_policy: DefaultPolicyKind,
    /// Allow bypass (disable to get a pure placement/promotion policy).
    pub bypass_enabled: bool,
    /// Measure-only mode: predictions are computed and the sampler
    /// trains, but bypass/placement/promotion fall back to the default
    /// policy (used for the ROC accuracy experiments, §6.3).
    pub measure_only: bool,
}

impl MpppbConfig {
    /// The single-thread configuration: suite-tuned features over static
    /// MDPP with 64 sampled sets.
    ///
    /// Thresholds/positions come from the §5.5 search reproduced by the
    /// `tune_thresholds` binary; the feature set from the §5.2 search
    /// reproduced by `derive_features` (the paper's published Table 1
    /// sets are available as [`feature_sets::table_1a`]/[`table_1b`] and
    /// were developed for SPEC, not this suite — see DESIGN.md).
    ///
    /// [`table_1b`]: feature_sets::table_1b
    pub fn single_thread(llc: &CacheConfig) -> Self {
        MpppbConfig {
            features: feature_sets::suite_tuned_a(),
            bypass_threshold: 292,
            place_thresholds: [247, 185, -76],
            positions: [15, 13, 4],
            promote_threshold: 191,
            training_threshold: 18,
            sampler_sets: 64.min(llc.sets()),
            default_policy: DefaultPolicyKind::Mdpp,
            bypass_enabled: true,
            measure_only: false,
        }
    }

    /// The cross-validation counterpart of [`MpppbConfig::single_thread`]:
    /// [`feature_sets::suite_tuned_b`] with its own tuned parameters.
    /// Workloads that were in tuning half A are reported with this
    /// configuration (and vice versa), so no workload is evaluated with
    /// features developed on it (§5.2).
    pub fn single_thread_alt(llc: &CacheConfig) -> Self {
        MpppbConfig {
            features: feature_sets::suite_tuned_b(),
            bypass_threshold: 440,
            place_thresholds: [212, -4, -246],
            positions: [15, 10, 6],
            promote_threshold: 462,
            training_threshold: 119,
            ..MpppbConfig::single_thread(llc)
        }
    }

    /// The 4-core configuration: suite-tuned features over SRRIP with 256
    /// sampled sets (§4.4 scales the sampler by the core count).
    ///
    /// The single-thread feature set transfers to the multi-programmed
    /// setting (the paper observes its ST set reaches 8.0% vs. 8.3% for
    /// the MP-specific set, §6.4); thresholds are shared with the ST
    /// configuration and the positions map to SRRIP's four RRPV levels.
    pub fn multi_core(llc: &CacheConfig) -> Self {
        MpppbConfig {
            features: feature_sets::suite_tuned_a(),
            bypass_threshold: 292,
            place_thresholds: [247, 185, -76],
            positions: [3, 2, 1],
            promote_threshold: 191,
            training_threshold: 18,
            sampler_sets: 256.min(llc.sets()),
            default_policy: DefaultPolicyKind::Srrip,
            bypass_enabled: true,
            measure_only: false,
        }
    }

    /// Replaces the feature set, keeping everything else (used by the
    /// feature search and the ablation experiments).
    pub fn with_features(mut self, features: Vec<Feature>) -> Self {
        self.features = features;
        self
    }
}

enum DefaultState {
    Mdpp { tree: PlruTree, config: MdppConfig },
    Srrip(RripState),
}

/// Whether the announced entry `u` is the access that actually arrived —
/// checked before a precomputed entry is consumed so the window stays
/// purely advisory.
#[inline]
fn announced_matches(u: &UpcomingAccess, info: &AccessInfo) -> bool {
    u.pc == info.pc
        && u.address == info.address
        && u.core == info.core
        && u.is_prefetch == info.is_prefetch
}

/// The predict stage's output queue: feature-index offsets precomputed
/// from an announced window
/// ([`ReplacementPolicy::on_upcoming_accesses`]), consumed front to back
/// as the real accesses arrive.
///
/// Offsets are computed with the outcome-dependent flags zeroed; the
/// consumer patches them via [`crate::plan::FeaturePlan::patch_flags`]
/// once hit/miss state is known, which is bit-identical to computing
/// them fused (see that method's proof).
#[derive(Debug, Default)]
struct PredictedWindow {
    /// Announced identity of each entry, for validation on consumption
    /// (one bulk copy of the delivered window).
    announced: Vec<UpcomingAccess>,
    /// Flag-zeroed arena offsets, `plan.len()` per entry, back to back.
    offsets: Vec<u16>,
    /// Next unconsumed entry.
    cursor: usize,
}

impl PredictedWindow {
    fn clear(&mut self) {
        self.announced.clear();
        self.offsets.clear();
        self.cursor = 0;
    }
}

/// The MPPPB replacement policy. Implements
/// [`ReplacementPolicy`], so it plugs into any `mrp-cache` cache or
/// hierarchy.
pub struct Mpppb {
    config: MpppbConfig,
    predictor: MultiperspectivePredictor,
    histories: Vec<PcHistory>,
    set_state: SetState,
    default_state: DefaultState,
    /// Confidence + indices computed in `should_bypass`, consumed by
    /// `on_fill` for the same access.
    pending_fill: Option<i32>,
    /// Precomputed offsets for announced upcoming accesses (the predict
    /// stage of the decoupled predict/train pipeline).
    window: PredictedWindow,
    /// Scratch: per-core flat history buffers for the announced window.
    /// The committed history sits at the tail and speculative window PCs
    /// are written right-to-left in front of it, so every entry's
    /// most-recent-first history is a plain subslice — no per-entry
    /// `PcHistory` clones on the delivery path.
    spec_bufs: Vec<Vec<u64>>,
    /// Scratch: per-core (write cursor, recorded depth) into `spec_bufs`;
    /// cursor `usize::MAX` marks a core not yet seen in this window.
    spec_pos: Vec<(usize, usize)>,
    /// Scratch: one batch's offsets before they join the window queue.
    batch_buf: Vec<u16>,
    /// Confidence of the most recent prediction (for ROC measurement).
    last_confidence: i32,
    /// Per-decision confidence histogram ([`CONFIDENCE_BINS`] fixed
    /// bins), allocated only while tracking is enabled through
    /// [`ReplacementPolicy::set_confidence_tracking`] so the default hot
    /// path pays a single `Option` test.
    confidence_hist: Option<Box<[u64]>>,
    /// Neutral mode: predict and train, but manage the cache exactly as
    /// the default policy would (no bypass, default placement/promotion).
    /// Toggled per access by [`crate::adaptive::AdaptiveMpppb`].
    neutral: bool,
    name: String,
}

impl fmt::Debug for Mpppb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mpppb")
            .field("default_policy", &self.config.default_policy)
            .field("predictor", &self.predictor)
            .finish()
    }
}

impl Mpppb {
    /// Creates the policy for the LLC geometry `llc`.
    ///
    /// # Panics
    ///
    /// Panics if a placement position is out of range for the default
    /// policy (`>= assoc` for MDPP, `> 3` for SRRIP).
    pub fn new(config: MpppbConfig, llc: &CacheConfig) -> Self {
        let default_state = match config.default_policy {
            DefaultPolicyKind::Mdpp => {
                assert!(
                    config.positions.iter().all(|&p| p < llc.associativity()),
                    "MDPP positions must be < associativity"
                );
                DefaultState::Mdpp {
                    tree: PlruTree::new(llc.sets(), llc.associativity()),
                    config: MdppConfig::default(),
                }
            }
            DefaultPolicyKind::Srrip => {
                assert!(
                    config.positions.iter().all(|&p| p <= u32::from(RRIP_MAX)),
                    "SRRIP positions must be RRPVs 0..=3"
                );
                DefaultState::Srrip(RripState::new(llc.sets(), llc.associativity()))
            }
        };
        let predictor = MultiperspectivePredictor::new(
            config.features.clone(),
            llc.sets(),
            config.sampler_sets,
            config.training_threshold,
        );
        let name = match config.default_policy {
            DefaultPolicyKind::Mdpp => "mpppb-mdpp",
            DefaultPolicyKind::Srrip => "mpppb-srrip",
        }
        .to_string();
        Mpppb {
            config,
            predictor,
            histories: Vec::new(),
            set_state: SetState::new(llc.sets()),
            default_state,
            pending_fill: None,
            window: PredictedWindow::default(),
            spec_bufs: Vec::new(),
            spec_pos: Vec::new(),
            batch_buf: Vec::new(),
            last_confidence: 0,
            confidence_hist: None,
            neutral: false,
            name,
        }
    }

    /// The confidence computed for the most recent LLC access (ROC
    /// experiments read this after each `Cache::access`).
    pub fn last_confidence(&self) -> i32 {
        self.last_confidence
    }

    /// Enables or disables the bypass optimization at runtime (used by
    /// [`crate::adaptive::AdaptiveMpppb`]'s set dueling).
    pub fn set_bypass_enabled(&mut self, enabled: bool) {
        self.config.bypass_enabled = enabled;
    }

    /// Switches neutral mode: the predictor keeps training but cache
    /// management falls back to the plain default policy (static MDPP or
    /// SRRIP). Used per access by the set-dueling wrapper.
    pub fn set_neutral(&mut self, neutral: bool) {
        self.neutral = neutral;
    }

    /// Predictor statistics.
    pub fn predictor(&self) -> &MultiperspectivePredictor {
        &self.predictor
    }

    /// The active configuration.
    pub fn config(&self) -> &MpppbConfig {
        &self.config
    }

    fn history(&mut self, core: u8) -> &mut PcHistory {
        let core = usize::from(core);
        while self.histories.len() <= core {
            self.histories.push(PcHistory::new());
        }
        &mut self.histories[core]
    }

    /// The decoupled predict/train pipeline's access stage: resolves the
    /// access's confidence (consuming a precomputed window entry when
    /// one matches, fused computation otherwise), trains the sampler,
    /// and records per-set state. Returns the confidence.
    fn predict_and_train(&mut self, info: &AccessInfo, is_insert: bool) -> i32 {
        // Record the PC into this core's history first, so history entry
        // 0 is the current access (the `W = 0` feature), *at LLC access
        // granularity*: the feature sets are tuned against the
        // LLC-filtered PC stream (see DESIGN.md), and demand accesses
        // that hit in L1/L2 carry no LLC-level reuse signal. Prefetches
        // carry the fake PC and are excluded from history.
        if !info.is_prefetch {
            self.history(info.core).push(info.pc);
        }
        let is_mru = self.set_state.is_mru(info.set, info.block);
        let last_miss = self.set_state.last_miss(info.set);
        let confidence = 'confidence: {
            // Predict stage, fast path: the next announced entry matches
            // this access, so its offsets are already computed — patch
            // the outcome-dependent flag lanes now that hit/miss state
            // is known and go straight to the gather-sum.
            if self.window.cursor < self.window.announced.len() {
                if announced_matches(&self.window.announced[self.window.cursor], info) {
                    let len = self.predictor.plan().len();
                    let start = self.window.cursor * len;
                    self.window.cursor += 1;
                    self.predictor.plan().patch_flags(
                        &mut self.window.offsets[start..start + len],
                        info.pc,
                        is_mru,
                        is_insert,
                        last_miss,
                    );
                    // One offsets pass serves both halves: the patched
                    // window slice feeds the confidence gather and is
                    // stored verbatim by the sampler for later training.
                    // Training defers into the predictor's SoA pending
                    // buffer and applies in one batched kernel invocation
                    // per drained window (flushed at the next announce,
                    // or earlier if a confidence read might observe a
                    // pending delta — see the predictor's overlap guard).
                    break 'confidence self.predictor.access_precomputed_deferred(
                        &self.window.offsets[start..start + len],
                        info.set,
                        info.block,
                    );
                }
                // An unannounced access desynchronized the window (the
                // hook is advisory); the remaining entries' history
                // snapshots are stale, so drop them and recompute fused.
                self.window.clear();
            }
            let core = usize::from(info.core);
            let empty: &[u64] = &[];
            let history = self
                .histories
                .get(core)
                .map(|h| h.as_slice())
                .unwrap_or(empty);
            let ctx = FeatureContext {
                pc: info.pc,
                address: info.address,
                pc_history: history,
                is_mru,
                is_insert,
                last_miss,
            };
            self.predictor.access(&ctx, info.set, info.block)
        };
        self.set_state.record(info.set, info.block, is_insert);
        self.last_confidence = confidence;
        if let Some(hist) = self.confidence_hist.as_deref_mut() {
            hist[confidence_bin(confidence)] += 1;
        }
        confidence
    }

    /// Maps a miss confidence to a placement position (tree position or
    /// RRPV), per §3.6.
    fn placement_position(&self, confidence: i32) -> u32 {
        let [tau1, tau2, tau3] = self.config.place_thresholds;
        let [pi1, pi2, pi3] = self.config.positions;
        if confidence > tau1 {
            pi1
        } else if confidence > tau2 {
            pi2
        } else if confidence > tau3 {
            pi3
        } else {
            0 // most-recently-used position
        }
    }
}

impl ReplacementPolicy for Mpppb {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_upcoming_accesses(&mut self, window: &[UpcomingAccess]) {
        // Predict stage, batch front-end: compute every announced
        // access's feature offsets ahead of time through the batched
        // kernel, with the outcome-dependent flags zeroed (patched at
        // consumption). Histories are advanced speculatively along the
        // window — exactly the pushes `predict_and_train` will replay.
        //
        // Each core's speculative history lives in one flat buffer: the
        // committed history is copied once to positions `n..`, and each
        // demand entry's PC is written one slot to the left of the
        // previous one, so entry k's most-recent-first history is simply
        // `buf[pos_k..pos_k + depth_k]` — no per-entry history clones.
        //
        // Window boundary: apply the previous window's deferred training
        // events in one batched kernel invocation before the new window
        // begins.
        self.predictor.flush_training();
        self.window.clear();
        self.window.announced.extend_from_slice(window);
        self.spec_pos.clear();
        let n = window.len();
        for chunk in window.chunks(MAX_BATCH) {
            // Pass 1: advance the speculative histories and record each
            // entry's (core, start, depth) view. A stack array, not a
            // field: views only live until the chunk's contexts are
            // built, and the buffer writes below would alias field-held
            // slices.
            let mut views = [(0usize, 0usize, 0usize); MAX_BATCH];
            for (view, u) in views.iter_mut().zip(chunk) {
                let core = usize::from(u.core);
                while self.spec_bufs.len() <= core {
                    self.spec_bufs.push(Vec::new());
                }
                while self.spec_pos.len() <= core {
                    self.spec_pos.push((usize::MAX, 0));
                }
                if self.spec_pos[core].0 == usize::MAX {
                    // First entry for this core: reserve n speculative
                    // slots up front, committed history behind them.
                    let committed = self
                        .histories
                        .get(core)
                        .map(|h| h.as_slice())
                        .unwrap_or(&[]);
                    let buf = &mut self.spec_bufs[core];
                    buf.clear();
                    buf.resize(n, 0);
                    buf.extend_from_slice(committed);
                    self.spec_pos[core] = (n, committed.len());
                }
                let (pos, depth) = &mut self.spec_pos[core];
                if !u.is_prefetch {
                    *pos -= 1;
                    *depth += 1;
                    self.spec_bufs[core][*pos] = u.pc;
                }
                *view = (core, *pos, (*depth).min(HISTORY_DEPTH));
            }
            // Pass 2: batched index computation over the chunk.
            let empty = FeatureContext {
                pc: 0,
                address: 0,
                pc_history: &[],
                is_mru: false,
                is_insert: false,
                last_miss: false,
            };
            let mut ctxs = [empty; MAX_BATCH];
            for (slot, (u, &(core, pos, len))) in
                ctxs.iter_mut().zip(chunk.iter().zip(&views[..chunk.len()]))
            {
                *slot = FeatureContext {
                    pc: u.pc,
                    address: u.address,
                    pc_history: &self.spec_bufs[core][pos..pos + len],
                    is_mru: false,
                    is_insert: false,
                    last_miss: false,
                };
            }
            self.predictor
                .plan()
                .compute_offsets_batch(&ctxs[..chunk.len()], &mut self.batch_buf);
            self.window.offsets.extend_from_slice(&self.batch_buf);
        }
    }

    fn uses_upcoming_accesses(&self) -> bool {
        // MRP_NO_WINDOW=1 (or the typed RuntimeOptions override) opts
        // out of window delivery for A/B perf comparison of the split
        // vs fused pipeline; results are bit-identical either way (the
        // hook is advisory).
        window_delivery_enabled()
    }

    fn set_confidence_tracking(&mut self, enabled: bool) {
        self.confidence_hist = if enabled {
            Some(vec![0; CONFIDENCE_BINS].into_boxed_slice())
        } else {
            None
        };
    }

    fn confidence_histogram(&self) -> Option<Vec<u64>> {
        self.confidence_hist.as_ref().map(|h| h.to_vec())
    }

    fn on_hit(&mut self, info: &AccessInfo, way: u32) {
        let confidence = self.predict_and_train(info, false);
        if self.config.measure_only || self.neutral {
            // Behave as the un-optimized baseline (LRU-like): in
            // measure-only mode so accuracy measurement is not colored by
            // placement, and in neutral (dueling-guard) mode because LRU
            // parity is the floor the guard must provide.
            match &mut self.default_state {
                DefaultState::Mdpp { tree, .. } => tree.touch(info.set, way),
                DefaultState::Srrip(state) => state.set(info.set, way, 0),
            }
            return;
        }
        let promote = confidence <= self.config.promote_threshold;
        match &mut self.default_state {
            DefaultState::Mdpp { tree, config } => {
                if promote {
                    tree.promote_minimal(info.set, way, config.promote_position);
                }
            }
            DefaultState::Srrip(state) => {
                if promote {
                    state.set(info.set, way, 0);
                }
            }
        }
    }

    fn should_bypass(&mut self, info: &AccessInfo) -> bool {
        let confidence = self.predict_and_train(info, true);
        self.pending_fill = Some(confidence);
        if self.neutral || self.config.measure_only || !self.config.bypass_enabled {
            return false;
        }
        let bypass = confidence > self.config.bypass_threshold;
        if bypass {
            self.pending_fill = None;
        }
        bypass
    }

    fn choose_victim(&mut self, info: &AccessInfo, _occupants: &[u64]) -> u32 {
        match &mut self.default_state {
            DefaultState::Mdpp { tree, .. } => tree.victim(info.set),
            DefaultState::Srrip(state) => state.victim(info.set),
        }
    }

    fn uses_victim_occupants(&self) -> bool {
        false
    }

    fn on_fill(&mut self, info: &AccessInfo, way: u32) {
        let confidence = self.pending_fill.take().unwrap_or(0);
        let position = if self.config.measure_only || self.neutral {
            // Un-optimized baseline behavior: MRU insertion under the
            // PLRU tree (LRU-like), standard long insertion under SRRIP.
            match self.config.default_policy {
                DefaultPolicyKind::Mdpp => 0,
                DefaultPolicyKind::Srrip => u32::from(RRIP_MAX - 1),
            }
        } else {
            self.placement_position(confidence)
        };
        match &mut self.default_state {
            DefaultState::Mdpp { tree, .. } => tree.set_position(info.set, way, position),
            DefaultState::Srrip(state) => state.set(info.set, way, position as u8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_cache::{AccessResult, Cache};
    use mrp_trace::MemoryAccess;

    fn llc() -> CacheConfig {
        CacheConfig::new(64 * 16 * 64, 16) // 64 sets x 16 ways
    }

    fn mpppb_cache(kind: DefaultPolicyKind) -> Cache {
        let llc = llc();
        let mut config = match kind {
            DefaultPolicyKind::Mdpp => MpppbConfig::single_thread(&llc),
            DefaultPolicyKind::Srrip => MpppbConfig::multi_core(&llc),
        };
        config.sampler_sets = 16;
        Cache::new(llc, Box::new(Mpppb::new(config, &llc)))
    }

    fn load(pc: u64, block: u64) -> MemoryAccess {
        MemoryAccess::load(pc, block * 64)
    }

    #[test]
    fn basic_hit_miss_behavior() {
        let mut c = mpppb_cache(DefaultPolicyKind::Mdpp);
        let a = load(0x400000, 5);
        assert!(c.access(&a, false).is_miss());
        assert!(c.access(&a, false).is_hit());
    }

    #[test]
    fn srrip_variant_works_too() {
        let mut c = mpppb_cache(DefaultPolicyKind::Srrip);
        let a = load(0x400000, 5);
        assert!(c.access(&a, false).is_miss());
        assert!(c.access(&a, false).is_hit());
    }

    #[test]
    fn streaming_pc_learns_to_bypass() {
        let mut c = mpppb_cache(DefaultPolicyKind::Mdpp);
        // One PC touching each block exactly once: pure stream. Drive many
        // blocks through so sampled sets train the tables.
        let mut bypassed = false;
        for i in 0..400_000u64 {
            let r = c.access(&load(0x400000, i), false);
            if r == AccessResult::Bypassed {
                bypassed = true;
            }
        }
        assert!(bypassed, "streaming blocks should eventually bypass");
        assert!(c.stats().bypasses > 0);
    }

    #[test]
    fn reused_working_set_is_not_bypassed() {
        let mut c = mpppb_cache(DefaultPolicyKind::Mdpp);
        // Working set smaller than the cache, revisited constantly.
        for round in 0..2000u64 {
            for b in 0..256u64 {
                let _ = c.access(&load(0x500000 + (b % 4) * 4, b), false);
            }
            let _ = round;
        }
        let stats = c.stats();
        let bypass_rate = stats.bypasses as f64 / stats.demand_accesses() as f64;
        assert!(
            bypass_rate < 0.01,
            "resident working set bypassed too often: {bypass_rate}"
        );
    }

    #[test]
    fn measure_only_never_bypasses() {
        let llc = llc();
        let mut config = MpppbConfig::single_thread(&llc);
        config.sampler_sets = 16;
        config.measure_only = true;
        let mut c = Cache::new(llc, Box::new(Mpppb::new(config, &llc)));
        for i in 0..100_000u64 {
            let r = c.access(&load(0x400000, i), false);
            assert_ne!(r, AccessResult::Bypassed);
        }
        assert_eq!(c.stats().bypasses, 0);
    }

    #[test]
    fn placement_position_respects_threshold_order() {
        let llc = llc();
        let config = MpppbConfig::single_thread(&llc);
        let p = Mpppb::new(config.clone(), &llc);
        assert_eq!(
            p.placement_position(config.place_thresholds[0] + 1),
            config.positions[0]
        );
        assert_eq!(
            p.placement_position(config.place_thresholds[1] + 1),
            config.positions[1]
        );
        assert_eq!(
            p.placement_position(config.place_thresholds[2] + 1),
            config.positions[2]
        );
        assert_eq!(p.placement_position(config.place_thresholds[2] - 1), 0);
    }

    #[test]
    fn scan_between_reuses_protects_hot_set_better_than_lru() {
        // The canonical MPPPB win: hot set + scan. Compare against plain
        // LRU on the same trace.
        use mrp_cache::policies::Lru;
        let llc = llc();
        let mut config = MpppbConfig::single_thread(&llc);
        config.sampler_sets = 16;
        let mut mp = Cache::new(llc, Box::new(Mpppb::new(config, &llc)));
        let mut lru = Cache::new(llc, Box::new(Lru::new(llc.sets(), llc.associativity())));

        let hot_blocks = 512u64; // half the cache
        let mut scan_cursor = 1_000_000u64;
        for round in 0..800u64 {
            for b in 0..hot_blocks {
                let a = load(0x600000, b);
                let _ = mp.access(&a, false);
                let _ = lru.access(&a, false);
            }
            // A burst of scan blocks (dead on arrival), large enough that
            // LRU thrashes the hot set out every round.
            for _ in 0..hot_blocks * 2 {
                let a = load(0x700000, scan_cursor);
                scan_cursor += 1;
                let _ = mp.access(&a, false);
                let _ = lru.access(&a, false);
            }
            let _ = round;
        }
        let mp_miss = mp.stats().demand_misses;
        let lru_miss = lru.stats().demand_misses;
        // The margin depends on the tuned default thresholds (aggressive
        // bypass would protect the whole hot set; the suite-tuned
        // defaults trade some of that for stability elsewhere).
        assert!(
            mp_miss < lru_miss * 9 / 10,
            "MPPPB ({mp_miss}) should clearly beat LRU ({lru_miss}) on scan+hot"
        );
    }

    #[test]
    fn announced_windows_are_bit_identical_to_fused() {
        use mrp_cache::{UpcomingAccess, LLC_LOOKAHEAD};
        for kind in [DefaultPolicyKind::Mdpp, DefaultPolicyKind::Srrip] {
            let mut plain = mpppb_cache(kind);
            let mut windowed = mpppb_cache(kind);
            // A mixed stream: hot reuse, medium footprint, pure stream,
            // and interleaved prefetches; stress both the matched-window
            // fast path and resync after deliberate desyncs below.
            let mut accesses = Vec::new();
            let mut x = 0x1234_5678_9abc_def0u64;
            for i in 0..20_000u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let pc = 0x400000 + ((x >> 48) % 16) * 4;
                let block = match x % 3 {
                    0 => (x >> 16) % 128,
                    1 => (x >> 20) % 4096,
                    _ => 1_000_000 + i,
                };
                accesses.push((MemoryAccess::load(pc, block * 64), x.is_multiple_of(7)));
            }
            for (i, (a, pf)) in accesses.iter().enumerate() {
                if i % LLC_LOOKAHEAD == 0 {
                    if (i / LLC_LOOKAHEAD) % 5 == 4 {
                        // Deliberately announce garbage: the consumer
                        // must detect the mismatch and stay fused.
                        let bogus = MemoryAccess::load(0xbad, 0xbad000);
                        windowed
                            .policy_mut()
                            .on_upcoming_accesses(&[UpcomingAccess::new(&bogus, false)]);
                    } else {
                        let window: Vec<UpcomingAccess> = accesses
                            [i..(i + LLC_LOOKAHEAD).min(accesses.len())]
                            .iter()
                            .map(|(a, pf)| UpcomingAccess::new(a, *pf))
                            .collect();
                        windowed.policy_mut().on_upcoming_accesses(&window);
                    }
                }
                let r1 = plain.access(a, *pf);
                let r2 = windowed.access(a, *pf);
                assert_eq!(r1, r2, "outcome diverged at access {i}");
            }
            assert_eq!(plain.stats(), windowed.stats(), "{kind:?}");
        }
    }

    #[test]
    fn last_confidence_updates_per_access() {
        let llc = llc();
        let mut config = MpppbConfig::single_thread(&llc);
        config.sampler_sets = 16;
        let policy = Mpppb::new(config, &llc);
        let mut c = Cache::new(llc, Box::new(policy));
        for i in 0..50_000u64 {
            let _ = c.access(&load(0x400000, i), false);
        }
        // Downcast via the known concrete policy to read confidence.
        // (Experiments keep their own handle instead; here we just check
        // the cache ran.)
        assert!(c.stats().demand_misses > 0);
    }
}

//! Multiperspective Placement, Promotion, and Bypass (MPPPB).
//!
//! The policy consults the predictor on every LLC access (§3.5) and uses
//! the confidence sum to drive three decisions (§3.6):
//!
//! * **miss**: confidence > τ₀ → bypass; otherwise place in position πᵢ
//!   where τᵢ is the tightest exceeded threshold; below τ₃ → place MRU.
//! * **hit**: confidence > τ₄ → do not promote; otherwise promote per the
//!   default policy.
//!
//! Two default replacement policies are supported (§3.7): static MDPP
//! (tree PLRU positions, single-thread configuration) and SRRIP (RRPV
//! levels, multi-core configuration).

use std::fmt;

use mrp_cache::policies::{MdppConfig, PlruTree, RripState, RRIP_MAX};
use mrp_cache::{AccessInfo, CacheConfig, ReplacementPolicy};

use crate::context::{FeatureContext, PcHistory, SetState};
use crate::feature::Feature;
use crate::feature_sets;
use crate::predictor::MultiperspectivePredictor;

/// Which default replacement policy backs MPPPB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefaultPolicyKind {
    /// Static minimal-disturbance placement & promotion over tree PLRU
    /// (single-thread configuration; positions are tree positions 0..16).
    Mdpp,
    /// Static RRIP (multi-core configuration; positions are RRPV values
    /// 0..=3).
    Srrip,
}

/// Full MPPPB configuration.
#[derive(Debug, Clone)]
pub struct MpppbConfig {
    /// The parameterized feature set (16 features in the paper).
    pub features: Vec<Feature>,
    /// τ₀: bypass when the miss confidence exceeds this.
    pub bypass_threshold: i32,
    /// τ₁ ≥ τ₂ ≥ τ₃: placement thresholds.
    pub place_thresholds: [i32; 3],
    /// π₁, π₂, π₃: placement positions (tree positions for MDPP, RRPVs
    /// for SRRIP), matched to the thresholds.
    pub positions: [u32; 3],
    /// τ₄: on a hit, suppress promotion above this confidence.
    pub promote_threshold: i32,
    /// Perceptron training threshold θ.
    pub training_threshold: i32,
    /// Number of sampled sets (64 per core in the paper).
    pub sampler_sets: u32,
    /// Default replacement policy.
    pub default_policy: DefaultPolicyKind,
    /// Allow bypass (disable to get a pure placement/promotion policy).
    pub bypass_enabled: bool,
    /// Measure-only mode: predictions are computed and the sampler
    /// trains, but bypass/placement/promotion fall back to the default
    /// policy (used for the ROC accuracy experiments, §6.3).
    pub measure_only: bool,
}

impl MpppbConfig {
    /// The single-thread configuration: suite-tuned features over static
    /// MDPP with 64 sampled sets.
    ///
    /// Thresholds/positions come from the §5.5 search reproduced by the
    /// `tune_thresholds` binary; the feature set from the §5.2 search
    /// reproduced by `derive_features` (the paper's published Table 1
    /// sets are available as [`feature_sets::table_1a`]/[`table_1b`] and
    /// were developed for SPEC, not this suite — see DESIGN.md).
    ///
    /// [`table_1b`]: feature_sets::table_1b
    pub fn single_thread(llc: &CacheConfig) -> Self {
        MpppbConfig {
            features: feature_sets::suite_tuned_a(),
            bypass_threshold: 292,
            place_thresholds: [247, 185, -76],
            positions: [15, 13, 4],
            promote_threshold: 191,
            training_threshold: 18,
            sampler_sets: 64.min(llc.sets()),
            default_policy: DefaultPolicyKind::Mdpp,
            bypass_enabled: true,
            measure_only: false,
        }
    }

    /// The cross-validation counterpart of [`MpppbConfig::single_thread`]:
    /// [`feature_sets::suite_tuned_b`] with its own tuned parameters.
    /// Workloads that were in tuning half A are reported with this
    /// configuration (and vice versa), so no workload is evaluated with
    /// features developed on it (§5.2).
    pub fn single_thread_alt(llc: &CacheConfig) -> Self {
        MpppbConfig {
            features: feature_sets::suite_tuned_b(),
            bypass_threshold: 440,
            place_thresholds: [212, -4, -246],
            positions: [15, 10, 6],
            promote_threshold: 462,
            training_threshold: 119,
            ..MpppbConfig::single_thread(llc)
        }
    }

    /// The 4-core configuration: suite-tuned features over SRRIP with 256
    /// sampled sets (§4.4 scales the sampler by the core count).
    ///
    /// The single-thread feature set transfers to the multi-programmed
    /// setting (the paper observes its ST set reaches 8.0% vs. 8.3% for
    /// the MP-specific set, §6.4); thresholds are shared with the ST
    /// configuration and the positions map to SRRIP's four RRPV levels.
    pub fn multi_core(llc: &CacheConfig) -> Self {
        MpppbConfig {
            features: feature_sets::suite_tuned_a(),
            bypass_threshold: 292,
            place_thresholds: [247, 185, -76],
            positions: [3, 2, 1],
            promote_threshold: 191,
            training_threshold: 18,
            sampler_sets: 256.min(llc.sets()),
            default_policy: DefaultPolicyKind::Srrip,
            bypass_enabled: true,
            measure_only: false,
        }
    }

    /// Replaces the feature set, keeping everything else (used by the
    /// feature search and the ablation experiments).
    pub fn with_features(mut self, features: Vec<Feature>) -> Self {
        self.features = features;
        self
    }
}

enum DefaultState {
    Mdpp { tree: PlruTree, config: MdppConfig },
    Srrip(RripState),
}

/// The MPPPB replacement policy. Implements
/// [`ReplacementPolicy`], so it plugs into any `mrp-cache` cache or
/// hierarchy.
pub struct Mpppb {
    config: MpppbConfig,
    predictor: MultiperspectivePredictor,
    histories: Vec<PcHistory>,
    set_state: SetState,
    default_state: DefaultState,
    /// Confidence + indices computed in `should_bypass`, consumed by
    /// `on_fill` for the same access.
    pending_fill: Option<i32>,
    /// Confidence of the most recent prediction (for ROC measurement).
    last_confidence: i32,
    /// Neutral mode: predict and train, but manage the cache exactly as
    /// the default policy would (no bypass, default placement/promotion).
    /// Toggled per access by [`crate::adaptive::AdaptiveMpppb`].
    neutral: bool,
    name: String,
}

impl fmt::Debug for Mpppb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mpppb")
            .field("default_policy", &self.config.default_policy)
            .field("predictor", &self.predictor)
            .finish()
    }
}

impl Mpppb {
    /// Creates the policy for the LLC geometry `llc`.
    ///
    /// # Panics
    ///
    /// Panics if a placement position is out of range for the default
    /// policy (`>= assoc` for MDPP, `> 3` for SRRIP).
    pub fn new(config: MpppbConfig, llc: &CacheConfig) -> Self {
        let default_state = match config.default_policy {
            DefaultPolicyKind::Mdpp => {
                assert!(
                    config.positions.iter().all(|&p| p < llc.associativity()),
                    "MDPP positions must be < associativity"
                );
                DefaultState::Mdpp {
                    tree: PlruTree::new(llc.sets(), llc.associativity()),
                    config: MdppConfig::default(),
                }
            }
            DefaultPolicyKind::Srrip => {
                assert!(
                    config.positions.iter().all(|&p| p <= u32::from(RRIP_MAX)),
                    "SRRIP positions must be RRPVs 0..=3"
                );
                DefaultState::Srrip(RripState::new(llc.sets(), llc.associativity()))
            }
        };
        let predictor = MultiperspectivePredictor::new(
            config.features.clone(),
            llc.sets(),
            config.sampler_sets,
            config.training_threshold,
        );
        let name = match config.default_policy {
            DefaultPolicyKind::Mdpp => "mpppb-mdpp",
            DefaultPolicyKind::Srrip => "mpppb-srrip",
        }
        .to_string();
        Mpppb {
            config,
            predictor,
            histories: Vec::new(),
            set_state: SetState::new(llc.sets()),
            default_state,
            pending_fill: None,
            last_confidence: 0,
            neutral: false,
            name,
        }
    }

    /// The confidence computed for the most recent LLC access (ROC
    /// experiments read this after each `Cache::access`).
    pub fn last_confidence(&self) -> i32 {
        self.last_confidence
    }

    /// Enables or disables the bypass optimization at runtime (used by
    /// [`crate::adaptive::AdaptiveMpppb`]'s set dueling).
    pub fn set_bypass_enabled(&mut self, enabled: bool) {
        self.config.bypass_enabled = enabled;
    }

    /// Switches neutral mode: the predictor keeps training but cache
    /// management falls back to the plain default policy (static MDPP or
    /// SRRIP). Used per access by the set-dueling wrapper.
    pub fn set_neutral(&mut self, neutral: bool) {
        self.neutral = neutral;
    }

    /// Predictor statistics.
    pub fn predictor(&self) -> &MultiperspectivePredictor {
        &self.predictor
    }

    /// The active configuration.
    pub fn config(&self) -> &MpppbConfig {
        &self.config
    }

    fn history(&mut self, core: u8) -> &mut PcHistory {
        let core = usize::from(core);
        while self.histories.len() <= core {
            self.histories.push(PcHistory::new());
        }
        &mut self.histories[core]
    }

    /// Computes indices + confidence for an access, trains the sampler,
    /// and records per-set state. Returns the confidence.
    fn predict_and_train(&mut self, info: &AccessInfo, is_insert: bool) -> i32 {
        // Record the PC into this core's history first, so history entry
        // 0 is the current access (the `W = 0` feature), *at LLC access
        // granularity*: the feature sets are tuned against the
        // LLC-filtered PC stream (see DESIGN.md), and demand accesses
        // that hit in L1/L2 carry no LLC-level reuse signal. Prefetches
        // carry the fake PC and are excluded from history.
        if !info.is_prefetch {
            self.history(info.core).push(info.pc);
        }
        let core = usize::from(info.core);
        let empty: &[u64] = &[];
        let history = self
            .histories
            .get(core)
            .map(|h| h.as_slice())
            .unwrap_or(empty);
        let ctx = FeatureContext {
            pc: info.pc,
            address: info.address,
            pc_history: history,
            is_mru: self.set_state.is_mru(info.set, info.block),
            is_insert,
            last_miss: self.set_state.last_miss(info.set),
        };
        let confidence = self.predictor.access(&ctx, info.set, info.block);
        self.set_state.record(info.set, info.block, is_insert);
        self.last_confidence = confidence;
        confidence
    }

    /// Maps a miss confidence to a placement position (tree position or
    /// RRPV), per §3.6.
    fn placement_position(&self, confidence: i32) -> u32 {
        let [tau1, tau2, tau3] = self.config.place_thresholds;
        let [pi1, pi2, pi3] = self.config.positions;
        if confidence > tau1 {
            pi1
        } else if confidence > tau2 {
            pi2
        } else if confidence > tau3 {
            pi3
        } else {
            0 // most-recently-used position
        }
    }
}

impl ReplacementPolicy for Mpppb {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_hit(&mut self, info: &AccessInfo, way: u32) {
        let confidence = self.predict_and_train(info, false);
        if self.config.measure_only || self.neutral {
            // Behave as the un-optimized baseline (LRU-like): in
            // measure-only mode so accuracy measurement is not colored by
            // placement, and in neutral (dueling-guard) mode because LRU
            // parity is the floor the guard must provide.
            match &mut self.default_state {
                DefaultState::Mdpp { tree, .. } => tree.touch(info.set, way),
                DefaultState::Srrip(state) => state.set(info.set, way, 0),
            }
            return;
        }
        let promote = confidence <= self.config.promote_threshold;
        match &mut self.default_state {
            DefaultState::Mdpp { tree, config } => {
                if promote {
                    tree.promote_minimal(info.set, way, config.promote_position);
                }
            }
            DefaultState::Srrip(state) => {
                if promote {
                    state.set(info.set, way, 0);
                }
            }
        }
    }

    fn should_bypass(&mut self, info: &AccessInfo) -> bool {
        let confidence = self.predict_and_train(info, true);
        self.pending_fill = Some(confidence);
        if self.neutral || self.config.measure_only || !self.config.bypass_enabled {
            return false;
        }
        let bypass = confidence > self.config.bypass_threshold;
        if bypass {
            self.pending_fill = None;
        }
        bypass
    }

    fn choose_victim(&mut self, info: &AccessInfo, _occupants: &[u64]) -> u32 {
        match &mut self.default_state {
            DefaultState::Mdpp { tree, .. } => tree.victim(info.set),
            DefaultState::Srrip(state) => state.victim(info.set),
        }
    }

    fn on_fill(&mut self, info: &AccessInfo, way: u32) {
        let confidence = self.pending_fill.take().unwrap_or(0);
        let position = if self.config.measure_only || self.neutral {
            // Un-optimized baseline behavior: MRU insertion under the
            // PLRU tree (LRU-like), standard long insertion under SRRIP.
            match self.config.default_policy {
                DefaultPolicyKind::Mdpp => 0,
                DefaultPolicyKind::Srrip => u32::from(RRIP_MAX - 1),
            }
        } else {
            self.placement_position(confidence)
        };
        match &mut self.default_state {
            DefaultState::Mdpp { tree, .. } => tree.set_position(info.set, way, position),
            DefaultState::Srrip(state) => state.set(info.set, way, position as u8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_cache::{AccessResult, Cache};
    use mrp_trace::MemoryAccess;

    fn llc() -> CacheConfig {
        CacheConfig::new(64 * 16 * 64, 16) // 64 sets x 16 ways
    }

    fn mpppb_cache(kind: DefaultPolicyKind) -> Cache {
        let llc = llc();
        let mut config = match kind {
            DefaultPolicyKind::Mdpp => MpppbConfig::single_thread(&llc),
            DefaultPolicyKind::Srrip => MpppbConfig::multi_core(&llc),
        };
        config.sampler_sets = 16;
        Cache::new(llc, Box::new(Mpppb::new(config, &llc)))
    }

    fn load(pc: u64, block: u64) -> MemoryAccess {
        MemoryAccess::load(pc, block * 64)
    }

    #[test]
    fn basic_hit_miss_behavior() {
        let mut c = mpppb_cache(DefaultPolicyKind::Mdpp);
        let a = load(0x400000, 5);
        assert!(c.access(&a, false).is_miss());
        assert!(c.access(&a, false).is_hit());
    }

    #[test]
    fn srrip_variant_works_too() {
        let mut c = mpppb_cache(DefaultPolicyKind::Srrip);
        let a = load(0x400000, 5);
        assert!(c.access(&a, false).is_miss());
        assert!(c.access(&a, false).is_hit());
    }

    #[test]
    fn streaming_pc_learns_to_bypass() {
        let mut c = mpppb_cache(DefaultPolicyKind::Mdpp);
        // One PC touching each block exactly once: pure stream. Drive many
        // blocks through so sampled sets train the tables.
        let mut bypassed = false;
        for i in 0..400_000u64 {
            let r = c.access(&load(0x400000, i), false);
            if r == AccessResult::Bypassed {
                bypassed = true;
            }
        }
        assert!(bypassed, "streaming blocks should eventually bypass");
        assert!(c.stats().bypasses > 0);
    }

    #[test]
    fn reused_working_set_is_not_bypassed() {
        let mut c = mpppb_cache(DefaultPolicyKind::Mdpp);
        // Working set smaller than the cache, revisited constantly.
        for round in 0..2000u64 {
            for b in 0..256u64 {
                let _ = c.access(&load(0x500000 + (b % 4) * 4, b), false);
            }
            let _ = round;
        }
        let stats = c.stats();
        let bypass_rate = stats.bypasses as f64 / stats.demand_accesses() as f64;
        assert!(
            bypass_rate < 0.01,
            "resident working set bypassed too often: {bypass_rate}"
        );
    }

    #[test]
    fn measure_only_never_bypasses() {
        let llc = llc();
        let mut config = MpppbConfig::single_thread(&llc);
        config.sampler_sets = 16;
        config.measure_only = true;
        let mut c = Cache::new(llc, Box::new(Mpppb::new(config, &llc)));
        for i in 0..100_000u64 {
            let r = c.access(&load(0x400000, i), false);
            assert_ne!(r, AccessResult::Bypassed);
        }
        assert_eq!(c.stats().bypasses, 0);
    }

    #[test]
    fn placement_position_respects_threshold_order() {
        let llc = llc();
        let config = MpppbConfig::single_thread(&llc);
        let p = Mpppb::new(config.clone(), &llc);
        assert_eq!(
            p.placement_position(config.place_thresholds[0] + 1),
            config.positions[0]
        );
        assert_eq!(
            p.placement_position(config.place_thresholds[1] + 1),
            config.positions[1]
        );
        assert_eq!(
            p.placement_position(config.place_thresholds[2] + 1),
            config.positions[2]
        );
        assert_eq!(p.placement_position(config.place_thresholds[2] - 1), 0);
    }

    #[test]
    fn scan_between_reuses_protects_hot_set_better_than_lru() {
        // The canonical MPPPB win: hot set + scan. Compare against plain
        // LRU on the same trace.
        use mrp_cache::policies::Lru;
        let llc = llc();
        let mut config = MpppbConfig::single_thread(&llc);
        config.sampler_sets = 16;
        let mut mp = Cache::new(llc, Box::new(Mpppb::new(config, &llc)));
        let mut lru = Cache::new(llc, Box::new(Lru::new(llc.sets(), llc.associativity())));

        let hot_blocks = 512u64; // half the cache
        let mut scan_cursor = 1_000_000u64;
        for round in 0..800u64 {
            for b in 0..hot_blocks {
                let a = load(0x600000, b);
                let _ = mp.access(&a, false);
                let _ = lru.access(&a, false);
            }
            // A burst of scan blocks (dead on arrival), large enough that
            // LRU thrashes the hot set out every round.
            for _ in 0..hot_blocks * 2 {
                let a = load(0x700000, scan_cursor);
                scan_cursor += 1;
                let _ = mp.access(&a, false);
                let _ = lru.access(&a, false);
            }
            let _ = round;
        }
        let mp_miss = mp.stats().demand_misses;
        let lru_miss = lru.stats().demand_misses;
        // The margin depends on the tuned default thresholds (aggressive
        // bypass would protect the whole hot set; the suite-tuned
        // defaults trade some of that for stability elsewhere).
        assert!(
            mp_miss < lru_miss * 9 / 10,
            "MPPPB ({mp_miss}) should clearly beat LRU ({lru_miss}) on scan+hot"
        );
    }

    #[test]
    fn last_confidence_updates_per_access() {
        let llc = llc();
        let mut config = MpppbConfig::single_thread(&llc);
        config.sampler_sets = 16;
        let policy = Mpppb::new(config, &llc);
        let mut c = Cache::new(llc, Box::new(policy));
        for i in 0..50_000u64 {
            let _ = c.access(&load(0x400000, i), false);
        }
        // Downcast via the known concrete policy to read confidence.
        // (Experiments keep their own handle instead; here we just check
        // the cache ran.)
        assert!(c.stats().demand_misses > 0);
    }
}

//! Multiperspective reuse prediction (Jiménez & Teran, MICRO 2017).
//!
//! This crate is the paper's primary contribution:
//!
//! * [`feature`] — the seven parameterized feature types (§3.2): `pc`,
//!   `address`, `bias`, `burst`, `insert`, `lastmiss`, `offset`, each with
//!   a per-feature associativity parameter *A* and an optional XOR with
//!   the current PC.
//! * [`context`] — the per-core/per-set runtime state features are
//!   evaluated against (PC history, last-block and last-miss tracking).
//! * [`tables`] — the hashed-perceptron weight tables (6-bit saturating
//!   weights, §3.4), stored as one flat arena.
//! * [`plan`] — construction-time lowering of feature sets into
//!   straight-line index programs emitting arena offsets, transposed into
//!   SoA lane arrays for the branch-free batch kernels (the hot path).
//! * [`simd`] — runtime kernel dispatch (scalar vs. AVX2, `MRP_NO_SIMD`
//!   override) and the shared i8 gather-sum kernel.
//! * [`sampler`] — the 18-way LRU sampler with per-feature associativity
//!   training (§3.3, §3.8).
//! * [`predictor`] — [`MultiperspectivePredictor`], tying the above into a
//!   confidence-producing reuse predictor.
//! * [`mpppb`] — Multiperspective Placement, Promotion, and Bypass: the
//!   cache management policy driven by the predictor (§3.6), over either
//!   a static-MDPP or an SRRIP default policy (§3.7).
//! * [`feature_sets`] — the published feature sets (Tables 1(a), 1(b), 2)
//!   and tuned threshold/position parameters.
//! * [`options`] — typed [`RuntimeOptions`] for the process-wide
//!   execution knobs (SIMD dispatch, window delivery, thread count),
//!   with the legacy environment variables as fallback.
//! * [`engine`] — the [`PredictionEngine`] facade: one typed front door
//!   ([`EngineConfig`] builder, batch submission, stats snapshots) that
//!   every driver, replay loop, and serving shard constructs through.
//!
//! # Example
//!
//! ```
//! use mrp_core::mpppb::{Mpppb, MpppbConfig};
//! use mrp_cache::{Cache, CacheConfig};
//! use mrp_trace::MemoryAccess;
//!
//! let llc = CacheConfig::llc_single();
//! let config = MpppbConfig::single_thread(&llc);
//! let mut cache = Cache::new(llc, Box::new(Mpppb::new(config, &llc)));
//! let access = MemoryAccess::load(0x400000, 0x1000);
//! cache.access(&access, false);
//! assert!(cache.access(&access, false).is_hit());
//! ```

pub mod adaptive;
pub mod context;
pub mod engine;
pub mod feature;
pub mod feature_sets;
pub mod mpppb;
pub mod options;
pub mod plan;
pub mod predictor;
pub mod sampler;
pub mod simd;
pub mod tables;

pub use adaptive::AdaptiveMpppb;
pub use engine::{Access, Decisions, EngineConfig, EngineStats, PredictionEngine};
pub use feature::{Feature, FeatureKind};
pub use mpppb::{DefaultPolicyKind, Mpppb, MpppbConfig};
pub use options::RuntimeOptions;
pub use plan::FeaturePlan;
pub use predictor::MultiperspectivePredictor;
pub use simd::SimdLevel;

//! The seven parameterized feature types (§3.2).

use std::fmt;

use crate::context::FeatureContext;

/// Maximum index width: "Features that use the PC, physical address, or
/// exclusive-OR with the PC generate 8-bit indices requiring 256 weights
/// per table" (§3.4).
pub const MAX_INDEX_BITS: u32 = 8;

/// Maximum table size implied by [`MAX_INDEX_BITS`].
pub const MAX_TABLE_SIZE: usize = 1 << MAX_INDEX_BITS;

/// Maximum associativity parameter: "Each set in the sampler has 18 ways"
/// (§3.3); a feature with `A = 18` never observes a demotion-eviction.
pub const MAX_ASSOC: u8 = 18;

/// The type-specific part of a feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    /// `pc(A, B, E, W, X)`: bits `B..=E` of the PC of the `W`-th most
    /// recent memory access instruction (`W = 0` is the current access).
    Pc {
        /// Low bit of the extracted field.
        begin: u8,
        /// High bit of the extracted field (inclusive).
        end: u8,
        /// Which history entry: 0 = current access's PC.
        which: u8,
    },
    /// `address(A, B, E, X)`: bits `B..=E` of the physical address.
    Address {
        /// Low bit of the extracted field.
        begin: u8,
        /// High bit of the extracted field (inclusive).
        end: u8,
    },
    /// `bias(A, X)`: the constant 0. Without XOR this is a single global
    /// up/down counter; with XOR it degenerates to a PC-indexed predictor
    /// like SDBP/SHiP.
    Bias,
    /// `burst(A, X)`: 1 iff this access is to the set's most-recently-used
    /// block.
    Burst,
    /// `insert(A, X)`: 1 iff this access is an insertion (a miss fill).
    Insert,
    /// `lastmiss(A, X)`: 1 iff the previous access to this set missed.
    LastMiss,
    /// `offset(A, B, E, X)`: bits `B..=E` of the 6-bit block offset.
    Offset {
        /// Low bit of the extracted field.
        begin: u8,
        /// High bit of the extracted field (inclusive).
        end: u8,
    },
}

/// One fully parameterized feature: a kind, the per-feature associativity
/// `A` (the recency position beyond which a block counts as dead for this
/// feature's table), and the XOR-with-PC flag `X`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Feature {
    /// Associativity parameter `A` in `1..=18`.
    pub assoc: u8,
    /// The parameterized feature body.
    pub kind: FeatureKind,
    /// `X`: XOR the feature bits with (a hash of) the current PC.
    pub xor_pc: bool,
}

/// Folds an arbitrary-width value down to `bits` bits by XOR-folding.
#[inline]
pub(crate) fn fold(mut value: u64, bits: u32) -> u64 {
    debug_assert!(bits > 0 && bits <= 32);
    let mask = (1u64 << bits) - 1;
    let mut out = 0u64;
    while value != 0 {
        out ^= value & mask;
        value >>= bits;
    }
    out
}

/// Extracts bits `begin..=end` of `value` (tolerates out-of-range fields
/// by masking against what exists).
#[inline]
fn field(value: u64, begin: u8, end: u8) -> u64 {
    debug_assert!(begin <= end);
    let width = u32::from(end - begin) + 1;
    let shifted = value >> begin.min(63);
    if width >= 64 {
        shifted
    } else {
        shifted & ((1u64 << width) - 1)
    }
}

impl Feature {
    /// Creates a feature, validating parameters.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is outside `1..=18` or a bit range is inverted.
    pub fn new(assoc: u8, kind: FeatureKind, xor_pc: bool) -> Self {
        assert!((1..=MAX_ASSOC).contains(&assoc), "assoc must be 1..=18");
        match kind {
            FeatureKind::Pc { begin, end, .. }
            | FeatureKind::Address { begin, end }
            | FeatureKind::Offset { begin, end } => {
                assert!(begin <= end, "bit range inverted: {begin}..={end}");
            }
            _ => {}
        }
        Feature {
            assoc,
            kind,
            xor_pc,
        }
    }

    /// Number of raw feature bits before folding/XOR (clamped to 8).
    pub fn raw_bits(&self) -> u32 {
        let bits = match self.kind {
            FeatureKind::Pc { begin, end, .. }
            | FeatureKind::Address { begin, end }
            | FeatureKind::Offset { begin, end } => u32::from(end - begin) + 1,
            FeatureKind::Bias => 0,
            FeatureKind::Burst | FeatureKind::Insert | FeatureKind::LastMiss => 1,
        };
        bits.min(MAX_INDEX_BITS)
    }

    /// Entries in this feature's weight table: 256 when the PC/address (or
    /// the XOR flag) is involved, `2^bits` otherwise, 1 for plain bias.
    pub fn table_size(&self) -> usize {
        if self.xor_pc {
            return MAX_TABLE_SIZE;
        }
        match self.kind {
            FeatureKind::Pc { .. } | FeatureKind::Address { .. } => MAX_TABLE_SIZE,
            FeatureKind::Offset { .. } => 1 << self.raw_bits(),
            FeatureKind::Burst | FeatureKind::Insert | FeatureKind::LastMiss => 2,
            FeatureKind::Bias => 1,
        }
    }

    /// How deep a PC history this feature requires.
    pub fn history_depth(&self) -> usize {
        match self.kind {
            FeatureKind::Pc { which, .. } => usize::from(which) + 1,
            _ => 0,
        }
    }

    /// Computes this feature's table index for an access context.
    pub fn index(&self, ctx: &FeatureContext<'_>) -> u16 {
        let raw = match self.kind {
            FeatureKind::Pc { begin, end, which } => {
                let pc = ctx.history_pc(usize::from(which));
                field(pc, begin, end)
            }
            FeatureKind::Address { begin, end } => field(ctx.address, begin, end),
            FeatureKind::Bias => 0,
            FeatureKind::Burst => u64::from(ctx.is_mru),
            FeatureKind::Insert => u64::from(ctx.is_insert),
            FeatureKind::LastMiss => u64::from(ctx.last_miss),
            FeatureKind::Offset { begin, end } => {
                let offset = ctx.address & 0x3f;
                field(offset, begin.min(5), end.min(5))
            }
        };
        let table_size = self.table_size();
        if table_size == 1 {
            return 0;
        }
        let bits = table_size.trailing_zeros();
        let mut value = fold(raw, bits);
        if self.xor_pc {
            value ^= fold(ctx.pc, bits);
        }
        (value & (table_size as u64 - 1)) as u16
    }
}

impl fmt::Display for Feature {
    /// Formats in the paper's notation, e.g. `pc(10,1,53,10,0)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let x = u8::from(self.xor_pc);
        match self.kind {
            FeatureKind::Pc { begin, end, which } => {
                write!(f, "pc({},{},{},{},{})", self.assoc, begin, end, which, x)
            }
            FeatureKind::Address { begin, end } => {
                write!(f, "address({},{},{},{})", self.assoc, begin, end, x)
            }
            FeatureKind::Bias => write!(f, "bias({},{})", self.assoc, x),
            FeatureKind::Burst => write!(f, "burst({},{})", self.assoc, x),
            FeatureKind::Insert => write!(f, "insert({},{})", self.assoc, x),
            FeatureKind::LastMiss => write!(f, "lastmiss({},{})", self.assoc, x),
            FeatureKind::Offset { begin, end } => {
                write!(f, "offset({},{},{},{})", self.assoc, begin, end, x)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FeatureContext;

    fn ctx(pc: u64, address: u64) -> FeatureContext<'static> {
        FeatureContext {
            pc,
            address,
            pc_history: &[],
            is_mru: false,
            is_insert: false,
            last_miss: false,
        }
    }

    #[test]
    fn fold_preserves_small_values() {
        assert_eq!(fold(5, 8), 5);
        assert_eq!(fold(0, 8), 0);
    }

    #[test]
    fn fold_mixes_high_bits() {
        assert_ne!(fold(0x1_00, 8), 0x1_00 & 0xff);
        assert_eq!(fold(0x1_01, 8), 0); // 0x01 ^ 0x01 == 0
    }

    #[test]
    fn field_extracts_inclusive_range() {
        assert_eq!(field(0b1111_0000, 4, 7), 0b1111);
        assert_eq!(field(0b1010_1010, 1, 3), 0b101);
    }

    #[test]
    fn bias_has_one_entry_without_xor() {
        let f = Feature::new(16, FeatureKind::Bias, false);
        assert_eq!(f.table_size(), 1);
        assert_eq!(f.index(&ctx(0x1234, 0)), 0);
    }

    #[test]
    fn bias_with_xor_is_pc_indexed() {
        let f = Feature::new(6, FeatureKind::Bias, true);
        assert_eq!(f.table_size(), 256);
        let a = f.index(&ctx(0x400000, 0));
        let b = f.index(&ctx(0x400004, 0));
        assert_ne!(a, b);
    }

    #[test]
    fn single_bit_features_have_two_entries() {
        for kind in [
            FeatureKind::Burst,
            FeatureKind::Insert,
            FeatureKind::LastMiss,
        ] {
            let f = Feature::new(9, kind, false);
            assert_eq!(f.table_size(), 2);
        }
    }

    #[test]
    fn insert_feature_reflects_context() {
        let f = Feature::new(16, FeatureKind::Insert, false);
        let mut c = ctx(1, 2);
        assert_eq!(f.index(&c), 0);
        c.is_insert = true;
        assert_eq!(f.index(&c), 1);
    }

    #[test]
    fn offset_feature_uses_block_offset_bits() {
        let f = Feature::new(15, FeatureKind::Offset { begin: 1, end: 5 }, false);
        assert_eq!(f.table_size(), 32);
        let a = f.index(&ctx(1, 0b10_0000));
        let b = f.index(&ctx(1, 0b00_0000));
        assert_ne!(a, b);
        // Bit 0 is outside the extracted field.
        assert_eq!(f.index(&ctx(1, 0b1)), f.index(&ctx(1, 0b0)));
    }

    #[test]
    fn pc_feature_uses_history() {
        let f = Feature::new(
            7,
            FeatureKind::Pc {
                begin: 0,
                end: 7,
                which: 1,
            },
            false,
        );
        let history = [0xaa, 0xbb];
        let c = FeatureContext {
            pc: 0xaa,
            address: 0,
            pc_history: &history,
            is_mru: false,
            is_insert: false,
            last_miss: false,
        };
        assert_eq!(f.index(&c), 0xbb);
    }

    #[test]
    fn wide_pc_fields_fold_to_table() {
        let f = Feature::new(
            10,
            FeatureKind::Pc {
                begin: 1,
                end: 53,
                which: 0,
            },
            false,
        );
        assert_eq!(f.table_size(), 256);
        for pc in [0u64, 0xdead_beef, u64::MAX] {
            assert!(f.index(&ctx(pc, 0)) < 256);
        }
    }

    #[test]
    fn xor_distributes_across_pcs() {
        let f = Feature::new(15, FeatureKind::Offset { begin: 1, end: 5 }, true);
        assert_eq!(f.table_size(), 256);
        let a = f.index(&ctx(0x400000, 0x10));
        let b = f.index(&ctx(0x400abc, 0x10));
        assert_ne!(a, b);
    }

    #[test]
    fn display_matches_paper_notation() {
        let f = Feature::new(
            10,
            FeatureKind::Pc {
                begin: 1,
                end: 53,
                which: 10,
            },
            false,
        );
        assert_eq!(f.to_string(), "pc(10,1,53,10,0)");
        let g = Feature::new(15, FeatureKind::Offset { begin: 1, end: 6 }, true);
        assert_eq!(g.to_string(), "offset(15,1,6,1)");
        let b = Feature::new(16, FeatureKind::Bias, false);
        assert_eq!(b.to_string(), "bias(16,0)");
    }

    #[test]
    #[should_panic(expected = "assoc must be 1..=18")]
    fn rejects_zero_assoc() {
        let _ = Feature::new(0, FeatureKind::Bias, false);
    }

    #[test]
    #[should_panic(expected = "assoc must be 1..=18")]
    fn rejects_large_assoc() {
        let _ = Feature::new(19, FeatureKind::Bias, false);
    }

    #[test]
    fn indices_always_fit_table() {
        let features = [
            Feature::new(
                1,
                FeatureKind::Pc {
                    begin: 0,
                    end: 63,
                    which: 3,
                },
                true,
            ),
            Feature::new(18, FeatureKind::Address { begin: 8, end: 19 }, false),
            Feature::new(5, FeatureKind::Offset { begin: 0, end: 5 }, false),
            Feature::new(9, FeatureKind::LastMiss, true),
        ];
        let history = [1u64, 2, 3, 4];
        for f in features {
            for seed in 0..50u64 {
                let c = FeatureContext {
                    pc: seed.wrapping_mul(0x9e37_79b9),
                    address: seed.wrapping_mul(0x2545_f491),
                    pc_history: &history,
                    is_mru: seed % 2 == 0,
                    is_insert: seed % 3 == 0,
                    last_miss: seed % 5 == 0,
                };
                assert!((f.index(&c) as usize) < f.table_size(), "{f}");
            }
        }
    }
}

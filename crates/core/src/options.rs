//! Typed runtime options replacing the environment-knob sprawl.
//!
//! Three process-wide knobs used to be reachable only through
//! environment variables read at scattered call sites:
//!
//! | knob | legacy env var | effect |
//! |---|---|---|
//! | SIMD dispatch | `MRP_NO_SIMD` | pin kernels to scalar |
//! | window delivery | `MRP_NO_WINDOW` | disable the announced-window pipeline |
//! | worker threads | `MRP_THREADS` | parallel fan-out width |
//!
//! [`RuntimeOptions`] is the typed front door: binaries parse explicit
//! flags (`--no-simd`, `--no-window`, `--threads`) into one struct,
//! [`RuntimeOptions::install`] publishes the SIMD and window choices to
//! the dispatchers in this crate, and callers that link `mrp-runtime`
//! pass [`RuntimeOptions::thread_request`] to its `set_threads`. Every
//! field is an `Option`: `None` defers to the environment variable, so
//! existing scripts, the CI kernel-dispatch matrix, and A/B recipes keep
//! working unchanged. An explicit option always wins over the
//! environment.
//!
//! All three knobs are throughput devices, never semantics: results are
//! bit-identical at every setting (held to that by `mrp-verify`'s
//! kernel-identity and lockstep passes).

use crate::{mpppb, simd};

/// Typed overrides for the process-wide execution knobs.
///
/// Construct with [`RuntimeOptions::from_env`] (pure env-var defaults)
/// or [`RuntimeOptions::default`] (all `None`, also env-deferring), then
/// refine with the builder methods and call [`install`].
///
/// [`install`]: RuntimeOptions::install
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeOptions {
    /// `Some(true)` pins every kernel to the scalar form;
    /// `Some(false)` dispatches to the widest level the hardware
    /// offers; `None` defers to `MRP_NO_SIMD`.
    pub no_simd: Option<bool>,
    /// `Some(true)` disables announced-window delivery (the fused
    /// per-access fallback runs instead); `Some(false)` forces it on;
    /// `None` defers to `MRP_NO_WINDOW`.
    pub no_window: Option<bool>,
    /// Requested worker-thread count; `None` or `Some(0)` defers to
    /// `MRP_THREADS`, then the machine's available parallelism.
    pub threads: Option<usize>,
}

impl RuntimeOptions {
    /// Options resolved purely from the legacy environment variables —
    /// the exact behavior of a binary that predates typed options.
    pub fn from_env() -> Self {
        RuntimeOptions::default()
    }

    /// Pins (or un-pins) kernel dispatch to scalar.
    pub fn no_simd(mut self, no_simd: bool) -> Self {
        self.no_simd = Some(no_simd);
        self
    }

    /// Disables (or re-enables) announced-window delivery.
    pub fn no_window(mut self, no_window: bool) -> Self {
        self.no_window = Some(no_window);
        self
    }

    /// Requests a worker-thread count (`0` = automatic).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Merges the shared command-line flags on top of the environment
    /// defaults: a present `--no-simd`/`--no-window` switch or a nonzero
    /// `--threads` overrides; absent flags leave the env fallback in
    /// place. One-liner glue for every driver:
    ///
    /// ```ignore
    /// RuntimeOptions::from_env().with_cli(
    ///     args.get_flag("no-simd", false),
    ///     args.get_flag("no-window", false),
    ///     args.get_usize("threads", 0),
    /// ).install();
    /// ```
    pub fn with_cli(mut self, no_simd: bool, no_window: bool, threads: usize) -> Self {
        if no_simd {
            self.no_simd = Some(true);
        }
        if no_window {
            self.no_window = Some(true);
        }
        if threads > 0 {
            self.threads = Some(threads);
        }
        self
    }

    /// The thread count to hand to `mrp_runtime::set_threads` (`0` keeps
    /// its own `MRP_THREADS`-then-hardware resolution).
    pub fn thread_request(&self) -> usize {
        self.threads.unwrap_or(0)
    }

    /// Publishes the SIMD and window choices to the in-crate
    /// dispatchers. `None` fields *clear* any previous override, so the
    /// environment variables decide again — installing
    /// [`RuntimeOptions::from_env`] restores legacy behavior exactly.
    ///
    /// Thread-count installation is the caller's job (this crate does
    /// not link the thread pool): pass [`Self::thread_request`] to
    /// `mrp_runtime::set_threads`.
    pub fn install(&self) -> &Self {
        simd::set_scalar_override(self.no_simd);
        mpppb::set_window_override(self.no_window.map(|off| !off));
        self
    }

    /// The SIMD level submissions will dispatch to once installed
    /// (introspection for logs and manifests).
    pub fn effective_simd(&self) -> simd::SimdLevel {
        match self.no_simd {
            Some(true) => simd::SimdLevel::Scalar,
            _ => simd::level(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_fields() {
        let o = RuntimeOptions::from_env()
            .no_simd(true)
            .no_window(true)
            .threads(3);
        assert_eq!(o.no_simd, Some(true));
        assert_eq!(o.no_window, Some(true));
        assert_eq!(o.thread_request(), 3);
        assert_eq!(RuntimeOptions::default().thread_request(), 0);
    }

    #[test]
    fn with_cli_only_overrides_present_flags() {
        let o = RuntimeOptions::from_env().with_cli(false, false, 0);
        assert_eq!(o, RuntimeOptions::default());
        let o = RuntimeOptions::from_env().with_cli(true, false, 2);
        assert_eq!(o.no_simd, Some(true));
        assert_eq!(o.no_window, None);
        assert_eq!(o.threads, Some(2));
    }

    #[test]
    fn install_round_trips_the_window_override() {
        // Sole owner of the process-global overrides in this test
        // binary's options tests: installing and clearing must leave
        // the env-deferred default behind.
        RuntimeOptions::from_env().no_window(true).install();
        assert!(!mpppb::window_delivery_enabled());
        RuntimeOptions::from_env().no_window(false).install();
        assert!(mpppb::window_delivery_enabled());
        RuntimeOptions::from_env().install();
        // Back to env fallback (unset in the test environment).
        assert!(mpppb::window_delivery_enabled());
    }

    #[test]
    fn install_pins_simd_to_scalar() {
        RuntimeOptions::from_env().no_simd(true).install();
        assert_eq!(simd::level(), simd::SimdLevel::Scalar);
        assert_eq!(
            RuntimeOptions::from_env().no_simd(true).effective_simd(),
            simd::SimdLevel::Scalar
        );
        RuntimeOptions::from_env().install();
        assert_eq!(simd::level(), simd::env_level());
    }
}

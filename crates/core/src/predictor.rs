//! The multiperspective reuse predictor.

use std::fmt;

use crate::context::FeatureContext;
use crate::feature::Feature;
use crate::plan::FeaturePlan;
use crate::sampler::{
    clamp_confidence, event_index, partial_tag, SampledSetFilter, Sampler, TrainingEvent,
};
use crate::tables::WeightTables;

/// Statistics about predictor activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Confidence computations performed.
    pub predictions: u64,
    /// Sampler accesses (accesses that mapped to a sampled set).
    pub sampler_accesses: u64,
    /// Sampler hits.
    pub sampler_hits: u64,
    /// Individual weight updates applied.
    pub weight_updates: u64,
}

/// The paper's predictor: a set of parameterized features, one hashed
/// weight table per feature, and a sampler that trains the tables with
/// per-feature associativity semantics.
///
/// The predictor is policy-agnostic: [`crate::mpppb::Mpppb`] drives it for
/// cache management, while experiments can also query it in measure-only
/// mode for ROC analysis.
pub struct MultiperspectivePredictor {
    features: Vec<Feature>,
    /// The feature set lowered to straight-line arena-offset programs.
    plan: FeaturePlan,
    tables: WeightTables,
    sampler: Sampler,
    /// LLC sets between consecutive sampled sets.
    sample_stride: u32,
    /// `(shift, mask)` when `sample_stride` is a power of two (the common
    /// configuration): turns the quotient computation on the sampled path
    /// into a shift.
    sample_pow2: Option<(u32, u32)>,
    /// One bit per LLC set: the O(1) membership test every access takes
    /// before any train-stage work.
    set_filter: SampledSetFilter,
    stats: PredictorStats,
    events_buf: Vec<TrainingEvent>,
    indices_buf: Vec<u16>,
    /// Training events deferred by the windowed pipeline
    /// ([`Self::access_precomputed_deferred`]), not yet applied to the
    /// weight tables. Grouped across a drained batch window and applied
    /// in one kernel invocation at the next flush point.
    pending: Vec<TrainingEvent>,
    /// 64-bit membership signature of the arena offsets in `pending`
    /// (bit `offset & 63`). A confidence read whose offsets all miss the
    /// signature provably does not observe any pending delta, so the
    /// deferral stays bit-identical to eager application; any possible
    /// overlap flushes first. No false negatives by construction.
    pending_sig: u64,
}

impl fmt::Debug for MultiperspectivePredictor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiperspectivePredictor")
            .field("features", &self.features.len())
            .field("sampled_sets", &self.sampler.sets())
            .field("stats", &self.stats)
            .finish()
    }
}

impl MultiperspectivePredictor {
    /// Creates the predictor.
    ///
    /// * `features` — the parameterized feature set (16 in the paper).
    /// * `llc_sets` — number of sets in the cache being managed.
    /// * `sampler_sets` — number of sampled sets (64/core in the paper).
    /// * `theta` — perceptron training threshold.
    ///
    /// # Panics
    ///
    /// Panics if `features` is empty or `sampler_sets` is 0 or exceeds
    /// `llc_sets`.
    pub fn new(features: Vec<Feature>, llc_sets: u32, sampler_sets: u32, theta: i32) -> Self {
        assert!(!features.is_empty(), "need at least one feature");
        assert!(
            sampler_sets > 0 && sampler_sets <= llc_sets,
            "sampler sets out of range"
        );
        let tables = WeightTables::new(&features);
        let plan = FeaturePlan::new(&features);
        debug_assert_eq!(
            plan.arena_len(),
            tables.arena_len(),
            "plan/arena layout drift"
        );
        let assocs: Vec<u8> = features.iter().map(|f| f.assoc).collect();
        let sample_stride = (llc_sets / sampler_sets).max(1);
        let sample_pow2 = sample_stride
            .is_power_of_two()
            .then(|| (sample_stride.trailing_zeros(), sample_stride - 1));
        MultiperspectivePredictor {
            features,
            plan,
            tables,
            sampler: Sampler::new(sampler_sets, assocs, theta),
            sample_stride,
            sample_pow2,
            set_filter: SampledSetFilter::new(llc_sets, sample_stride, sampler_sets),
            stats: PredictorStats::default(),
            events_buf: Vec::with_capacity(64),
            indices_buf: Vec::with_capacity(16),
            pending: Vec::with_capacity(128),
            pending_sig: 0,
        }
    }

    /// The feature set.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Activity counters.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    /// The sampler set `llc_set` maps to, if it is a sampled set. The
    /// fast path is one bit test in [`SampledSetFilter`]; the quotient is
    /// only computed for the rare sampled access.
    #[inline]
    fn sampler_set(&self, llc_set: u32) -> Option<u32> {
        if !self.set_filter.contains(llc_set) {
            return None;
        }
        Some(match self.sample_pow2 {
            Some((shift, _)) => llc_set >> shift,
            None => llc_set / self.sample_stride,
        })
    }

    /// Whether `llc_set` is a sampled set.
    #[inline]
    pub fn is_sampled(&self, llc_set: u32) -> bool {
        self.set_filter.contains(llc_set)
    }

    /// The sampled-set membership filter (shared with callers that gate
    /// their own deferred train stage, e.g. the MPPPB policy's split
    /// predict/train pipeline).
    pub fn set_filter(&self) -> &SampledSetFilter {
        &self.set_filter
    }

    /// Computes the per-feature weight-arena offsets for an access into
    /// `out` (cleared first). Allocation-free on the hot path; entries
    /// are precombined `base + index` offsets into the flat arena (see
    /// [`FeaturePlan`]), which is what [`Self::confidence`] and
    /// [`Self::train`] consume.
    pub fn compute_indices(&self, ctx: &FeatureContext<'_>, out: &mut Vec<u16>) {
        self.plan.compute_offsets(ctx, out);
    }

    /// Sums the weights selected by `indices`: the confidence that the
    /// block is dead (positive) or live (negative).
    pub fn confidence(&mut self, indices: &[u16]) -> i32 {
        self.flush_training();
        self.stats.predictions += 1;
        self.tables.confidence(indices)
    }

    /// Read-only confidence (no stats bump), for introspection. Both
    /// this and [`Self::confidence`] are the same batched gather-sum
    /// kernel ([`WeightTables::confidence`]); the stats bump is the only
    /// difference. Requires no deferred training to be pending (the
    /// eager entry points flush; only the windowed pipeline defers, and
    /// it owns its flush points).
    pub fn confidence_quiet(&self, indices: &[u16]) -> i32 {
        debug_assert!(
            self.pending.is_empty(),
            "confidence_quiet with deferred training pending"
        );
        self.tables.confidence(indices)
    }

    /// Fused predict + train for one access: computes the arena offsets,
    /// gathers the confidence sum, and trains the sampler from the *same*
    /// offset vector — one index pass and one gather where the unfused
    /// `compute_indices` / `confidence` / `train` sequence would make a
    /// caller thread the buffers through itself. Returns the confidence.
    pub fn access(&mut self, ctx: &FeatureContext<'_>, llc_set: u32, block: u64) -> i32 {
        self.flush_training();
        let mut indices = std::mem::take(&mut self.indices_buf);
        self.plan.compute_offsets(ctx, &mut indices);
        self.stats.predictions += 1;
        let confidence = self.tables.confidence(&indices);
        self.train_eager(llc_set, block, &indices, confidence);
        self.indices_buf = indices;
        confidence
    }

    /// The back half of [`Self::access`] for a batched front-end that
    /// already computed this access's arena offsets (through
    /// [`FeaturePlan::compute_offsets_batch`] over a lookahead window):
    /// gathers the confidence and trains from the supplied offsets.
    /// Bit-identical to [`Self::access`] given identical offsets — the
    /// fused path's own offsets pass produces exactly these values.
    pub fn access_precomputed(&mut self, indices: &[u16], llc_set: u32, block: u64) -> i32 {
        self.flush_training();
        self.stats.predictions += 1;
        let confidence = self.tables.confidence(indices);
        self.train_eager(llc_set, block, indices, confidence);
        confidence
    }

    /// [`Self::access_precomputed`] with training deferred across the
    /// batch window: sampler state updates eagerly, but the resulting
    /// weight deltas accumulate in a flat pending buffer and are applied
    /// in one batched kernel invocation at the next flush point instead
    /// of per access.
    ///
    /// Bit-exactness: the only reads the deferral could perturb are
    /// confidence gathers, and this entry point flushes first whenever
    /// any of its offsets *might* overlap a pending delta (checked
    /// against a conservative membership signature with no false
    /// negatives — see `pending_sig`). Disjoint updates commute with the
    /// gather, so every confidence this returns equals the eager
    /// sequence's, and flushes preserve event order. The eager entry
    /// points and [`Self::tables`] also flush, so no reader outside the
    /// windowed pipeline can observe a stale arena.
    pub fn access_precomputed_deferred(
        &mut self,
        indices: &[u16],
        llc_set: u32,
        block: u64,
    ) -> i32 {
        if self.pending_sig != 0 && self.overlaps_pending(indices) {
            self.flush_training();
        }
        self.stats.predictions += 1;
        let confidence = self.tables.confidence(indices);
        if let Some(sampler_set) = self.sampler_set(llc_set) {
            self.stats.sampler_accesses += 1;
            let before = self.pending.len();
            let outcome = self.sampler.access(
                sampler_set,
                partial_tag(block),
                indices,
                clamp_confidence(confidence),
                &mut self.pending,
            );
            if outcome.hit {
                self.stats.sampler_hits += 1;
            }
            self.stats.weight_updates += (self.pending.len() - before) as u64;
            for &e in &self.pending[before..] {
                self.pending_sig |= 1u64 << (event_index(e) & 63);
            }
        }
        confidence
    }

    /// Whether any of `indices` might address a weight with a pending
    /// deferred delta. Conservative: may report overlap for distinct
    /// offsets sharing a signature bit (a harmless early flush), never
    /// misses a true overlap.
    #[inline]
    fn overlaps_pending(&self, indices: &[u16]) -> bool {
        indices
            .iter()
            .any(|&o| self.pending_sig & (1u64 << (o & 63)) != 0)
    }

    /// Applies all deferred training events in one batched kernel
    /// invocation. Cheap no-op when nothing is pending; the windowed
    /// pipeline calls this at window boundaries, and every eager entry
    /// point calls it before touching the weight arena.
    #[inline]
    pub fn flush_training(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.tables.apply_events(&self.pending);
        self.pending.clear();
        self.pending_sig = 0;
    }

    /// The compiled feature plan (for batched front-ends that group index
    /// computation across accesses).
    pub fn plan(&self) -> &FeaturePlan {
        &self.plan
    }

    /// Presents an access to the sampler if its set is sampled, applying
    /// any resulting training to the weight tables. `confidence` must be
    /// the value just computed from `indices`.
    pub fn train(&mut self, llc_set: u32, block: u64, indices: &[u16], confidence: i32) {
        self.flush_training();
        self.train_eager(llc_set, block, indices, confidence);
    }

    /// The train stage proper, with the weight updates applied
    /// immediately. The sampler appends packed SoA event words —
    /// `(arena_offset << 1) | sign` in the low bits, since it stores and
    /// replays the precombined arena offsets it was given — straight
    /// into the reused flat buffer, and one batched kernel invocation
    /// applies them; no per-event enum dispatch, and no buffer
    /// take/restore round-trip (the SoA buffer and the sampler are
    /// disjoint fields).
    fn train_eager(&mut self, llc_set: u32, block: u64, indices: &[u16], confidence: i32) {
        let Some(sampler_set) = self.sampler_set(llc_set) else {
            return;
        };
        self.stats.sampler_accesses += 1;
        self.events_buf.clear();
        let outcome = self.sampler.access(
            sampler_set,
            partial_tag(block),
            indices,
            clamp_confidence(confidence),
            &mut self.events_buf,
        );
        if outcome.hit {
            self.stats.sampler_hits += 1;
        }
        self.stats.weight_updates += self.events_buf.len() as u64;
        self.tables.apply_events(&self.events_buf);
    }

    /// Direct table access for white-box tests and ablations. Requires
    /// no deferred training to be pending (only the windowed pipeline
    /// defers, and it flushes at window boundaries).
    pub fn tables(&self) -> &WeightTables {
        debug_assert!(
            self.pending.is_empty(),
            "tables() with deferred training pending"
        );
        &self.tables
    }

    /// The sampler (for invariant checks and white-box tests).
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::FeatureKind;

    fn predictor() -> MultiperspectivePredictor {
        let features = vec![
            Feature::new(4, FeatureKind::Bias, true), // PC-indexed
            Feature::new(2, FeatureKind::Insert, false),
        ];
        MultiperspectivePredictor::new(features, 2048, 64, 100)
    }

    fn ctx(pc: u64, insert: bool) -> FeatureContext<'static> {
        FeatureContext {
            pc,
            address: pc << 6,
            pc_history: &[],
            is_mru: false,
            is_insert: insert,
            last_miss: false,
        }
    }

    #[test]
    fn sampled_sets_are_evenly_spread() {
        let p = predictor();
        let sampled: Vec<u32> = (0..2048).filter(|&s| p.is_sampled(s)).collect();
        assert_eq!(sampled.len(), 64);
        assert_eq!(sampled[0], 0);
        assert_eq!(sampled[1], 32);
    }

    #[test]
    fn untrained_confidence_is_zero() {
        let mut p = predictor();
        let mut idx = Vec::new();
        p.compute_indices(&ctx(0x400000, false), &mut idx);
        assert_eq!(p.confidence(&idx), 0);
    }

    #[test]
    fn dead_blocks_drive_confidence_positive() {
        let mut p = predictor();
        let mut idx = Vec::new();
        // Stream distinct blocks through one sampled set with the same PC:
        // every insertion demotes previous blocks past feature assocs.
        for i in 0..200u64 {
            p.compute_indices(&ctx(0x400000, true), &mut idx);
            let c = p.confidence(&idx);
            p.train(0, i * 2048, &idx, c);
        }
        p.compute_indices(&ctx(0x400000, true), &mut idx);
        assert!(
            p.confidence_quiet(&idx) > 10,
            "streaming PC should look dead: {}",
            p.confidence_quiet(&idx)
        );
    }

    #[test]
    fn reused_blocks_drive_confidence_negative() {
        let mut p = predictor();
        let mut idx = Vec::new();
        // Alternate between two blocks: both are constantly reused at
        // positions 0/1, inside every feature's associativity.
        for i in 0..200u64 {
            let block = i % 2;
            p.compute_indices(&ctx(0x500000, false), &mut idx);
            let c = p.confidence(&idx);
            p.train(0, block, &idx, c);
        }
        p.compute_indices(&ctx(0x500000, false), &mut idx);
        assert!(
            p.confidence_quiet(&idx) < -10,
            "reused PC should look live: {}",
            p.confidence_quiet(&idx)
        );
    }

    #[test]
    fn non_sampled_sets_never_train() {
        let mut p = predictor();
        let mut idx = Vec::new();
        p.compute_indices(&ctx(0x400000, true), &mut idx);
        for i in 0..100u64 {
            p.train(3, i, &idx, 0); // set 3 is not sampled
        }
        assert_eq!(p.stats().sampler_accesses, 0);
        assert_eq!(p.confidence_quiet(&idx), 0);
    }

    #[test]
    fn stats_track_activity() {
        let mut p = predictor();
        let mut idx = Vec::new();
        p.compute_indices(&ctx(1, true), &mut idx);
        let c = p.confidence(&idx);
        p.train(0, 99, &idx, c);
        p.train(0, 99, &idx, c);
        let s = p.stats();
        assert_eq!(s.predictions, 1);
        assert_eq!(s.sampler_accesses, 2);
        assert_eq!(s.sampler_hits, 1);
    }

    #[test]
    fn fused_access_matches_unfused_sequence() {
        let mut fused = predictor();
        let mut unfused = predictor();
        let mut idx = Vec::new();
        for i in 0..300u64 {
            let c = ctx(0x400000 + (i % 5) * 4, i % 3 == 0);
            let set = (i % 3) as u32 * 32; // sampled and unsampled sets
            let block = i.wrapping_mul(0x9e37_79b9);
            unfused.compute_indices(&c, &mut idx);
            let conf_unfused = unfused.confidence(&idx);
            unfused.train(set, block, &idx, conf_unfused);
            let conf_fused = fused.access(&c, set, block);
            assert_eq!(conf_fused, conf_unfused, "access {i}");
        }
        assert_eq!(fused.stats(), unfused.stats());
    }

    #[test]
    fn deferred_access_is_bit_identical_to_eager() {
        let mut eager = predictor();
        let mut deferred = predictor();
        let mut idx = Vec::new();
        for i in 0..500u64 {
            let c = ctx(0x400000 + (i % 7) * 4, i % 3 == 0);
            let set = (i % 5) as u32 * 16; // mixes sampled and unsampled sets
            let block = i.wrapping_mul(0x9e37_79b9);
            eager.compute_indices(&c, &mut idx);
            let conf_eager = eager.access_precomputed(&idx, set, block);
            let conf_deferred = deferred.access_precomputed_deferred(&idx, set, block);
            assert_eq!(conf_deferred, conf_eager, "access {i}");
            if i % 64 == 63 {
                deferred.flush_training(); // window boundary
            }
        }
        assert_eq!(eager.stats(), deferred.stats());
        deferred.flush_training();
        // Full-arena sweep: the deferred side must land on the same
        // weights once flushed.
        eager.compute_indices(&ctx(0x400000, true), &mut idx);
        assert_eq!(
            eager.confidence_quiet(&idx),
            deferred.confidence_quiet(&idx)
        );
        for t in 0..eager.features().len() {
            let len = eager.features()[t].table_size();
            for i in 0..len as u16 {
                assert_eq!(
                    eager.tables().weight(t, i),
                    deferred.tables().weight(t, i),
                    "weight[{t}][{i}]"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "sampler sets out of range")]
    fn rejects_oversized_sampler() {
        let _ = MultiperspectivePredictor::new(
            vec![Feature::new(4, FeatureKind::Bias, false)],
            64,
            128,
            30,
        );
    }
}

//! The 18-way LRU sampler with per-feature associativity training.
//!
//! A small number of cache sets are sampled; each has a corresponding
//! sampler set holding partial tags, the last-computed confidence, the
//! vector of prediction-table indices used for that confidence, and an LRU
//! stack position (§3.3). Unlike prior work, *evictions from the sampler
//! have no special significance*: each feature has its own maximum recency
//! position `A`, and a block is trained dead for feature `i` at the moment
//! it is demoted to position `A_i` (§3.8).

/// Sampler associativity: "Each set in the sampler has 18 ways" (§3.3).
pub const SAMPLER_ASSOC: usize = 18;

/// Bits kept per partial tag (§3.3: 16 bits balances aliasing vs. area).
pub const PARTIAL_TAG_BITS: u32 = 16;

/// Confidence values are stored as 9-bit signed integers (§3.3).
pub const CONFIDENCE_MIN: i32 = -256;

/// Upper bound of the stored 9-bit confidence.
pub const CONFIDENCE_MAX: i32 = 255;

/// Computes the 16-bit partial tag for a block address.
#[inline]
pub fn partial_tag(block: u64) -> u16 {
    let folded = block ^ (block >> 16) ^ (block >> 32) ^ (block >> 48);
    (folded & 0xffff) as u16
}

/// Clamps a raw confidence sum into the stored 9-bit range.
#[inline]
pub fn clamp_confidence(sum: i32) -> i16 {
    sum.clamp(CONFIDENCE_MIN, CONFIDENCE_MAX) as i16
}

/// One table update requested by a sampler access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingEvent {
    /// Decrement (toward "live") the weight at `index` of `feature`'s
    /// table: the block was reused within that feature's associativity.
    Decrement {
        /// Feature whose table is trained.
        feature: u16,
        /// Stored table index for that feature.
        index: u16,
    },
    /// Increment (toward "dead"): the block was demoted to the feature's
    /// `A` position — an eviction from that feature's perspective.
    Increment {
        /// Feature whose table is trained.
        feature: u16,
        /// Stored table index for that feature.
        index: u16,
    },
}

#[derive(Debug, Clone)]
struct SamplerEntry {
    tag: u16,
    confidence: i16,
    indices: Box<[u16]>,
}

/// Outcome summary of one sampler access (for tests and statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerAccess {
    /// Whether the tag hit in the sampler set.
    pub hit: bool,
    /// Stack position of the hit (0 = MRU), if any.
    pub hit_position: Option<u32>,
}

/// The sampler structure: `sets` independent 18-way LRU-ordered sets.
#[derive(Debug)]
pub struct Sampler {
    /// Each set is kept in recency order: element 0 is MRU.
    sets: Vec<Vec<SamplerEntry>>,
    feature_assocs: Vec<u8>,
    theta: i32,
}

impl Sampler {
    /// Creates a sampler with `sets` sampled sets, the per-feature
    /// associativity parameters, and training threshold `theta` (weights
    /// are only updated when the stored confidence was wrong or within
    /// `theta` of the decision boundary — perceptron threshold training).
    ///
    /// # Panics
    ///
    /// Panics if `sets == 0` or any associativity is outside `1..=18`.
    pub fn new(sets: u32, feature_assocs: Vec<u8>, theta: i32) -> Self {
        assert!(sets > 0, "need at least one sampled set");
        assert!(
            feature_assocs
                .iter()
                .all(|&a| (1..=SAMPLER_ASSOC as u8).contains(&a)),
            "feature associativity out of range"
        );
        Sampler {
            sets: (0..sets)
                .map(|_| Vec::with_capacity(SAMPLER_ASSOC))
                .collect(),
            feature_assocs,
            theta,
        }
    }

    /// Number of sampled sets.
    pub fn sets(&self) -> u32 {
        self.sets.len() as u32
    }

    /// Simulates the sampler's response to an access: `tag` hit/placed in
    /// `set`, carrying the just-computed `indices` and `confidence`.
    /// Returns the (already threshold-gated) training events plus a hit
    /// summary.
    ///
    /// Demotion semantics: on a hit at position `p`, blocks above `p`
    /// demote by one; on a miss every block demotes by one and the
    /// position-17 block (if any) falls off the end — a demotion *to*
    /// position 18, which trains features with `A = 18`.
    pub fn access(
        &mut self,
        set: u32,
        tag: u16,
        indices: &[u16],
        confidence: i16,
        events: &mut Vec<TrainingEvent>,
    ) -> SamplerAccess {
        assert_eq!(
            indices.len(),
            self.feature_assocs.len(),
            "index vector arity mismatch"
        );
        let theta = self.theta;
        let entries = &mut self.sets[set as usize];
        let hit_position = entries.iter().position(|e| e.tag == tag);

        let outcome = match hit_position {
            Some(p) => {
                // Round 1: train the reused block. For each feature with
                // p < A the reuse is a hit at associativity A; gate on the
                // *stored* confidence (mispredicted dead, or within theta).
                let entry_confidence = i32::from(entries[p].confidence);
                for (f, &assoc) in self.feature_assocs.iter().enumerate() {
                    if (p as u32) < u32::from(assoc) && entry_confidence >= -theta {
                        events.push(TrainingEvent::Decrement {
                            feature: f as u16,
                            index: entries[p].indices[f],
                        });
                    }
                }
                // Round 2: the promotion of `p` demotes blocks 0..p by
                // one; a block moving from q to q+1 == A is an eviction
                // for that feature.
                for (q, entry) in entries.iter().enumerate().take(p) {
                    let new_position = q as u32 + 1;
                    let entry_confidence = i32::from(entry.confidence);
                    for (f, &assoc) in self.feature_assocs.iter().enumerate() {
                        if new_position == u32::from(assoc) && entry_confidence <= theta {
                            events.push(TrainingEvent::Increment {
                                feature: f as u16,
                                index: entry.indices[f],
                            });
                        }
                    }
                }
                // Update the entry and move it to MRU.
                let mut entry = entries.remove(p);
                entry.confidence = confidence;
                entry.indices.copy_from_slice(indices);
                entries.insert(0, entry);
                SamplerAccess {
                    hit: true,
                    hit_position: Some(p as u32),
                }
            }
            None => {
                // Every resident block demotes by one position.
                for (q, entry) in entries.iter().enumerate() {
                    let new_position = q as u32 + 1;
                    let entry_confidence = i32::from(entry.confidence);
                    for (f, &assoc) in self.feature_assocs.iter().enumerate() {
                        if new_position == u32::from(assoc) && entry_confidence <= theta {
                            events.push(TrainingEvent::Increment {
                                feature: f as u16,
                                index: entry.indices[f],
                            });
                        }
                    }
                }
                if entries.len() == SAMPLER_ASSOC {
                    entries.pop();
                }
                entries.insert(
                    0,
                    SamplerEntry {
                        tag,
                        confidence,
                        indices: indices.to_vec().into_boxed_slice(),
                    },
                );
                SamplerAccess {
                    hit: false,
                    hit_position: None,
                }
            }
        };
        debug_assert!(
            self.sets[set as usize].len() <= SAMPLER_ASSOC,
            "sampler set overfilled"
        );
        outcome
    }

    /// Occupancy of a sampler set (tests).
    pub fn set_len(&self, set: u32) -> usize {
        self.sets[set as usize].len()
    }

    /// Structural invariants: every set within [`SAMPLER_ASSOC`], unique
    /// partial tags within a set, and every stored index vector matching
    /// the feature arity. Returns `Err(detail)` on the first violation so
    /// verification can fold it into a divergence report.
    pub fn check_invariants(&self) -> Result<(), String> {
        let arity = self.feature_assocs.len();
        for (s, entries) in self.sets.iter().enumerate() {
            if entries.len() > SAMPLER_ASSOC {
                return Err(format!(
                    "sampler set {s}: occupancy {} exceeds associativity {SAMPLER_ASSOC}",
                    entries.len()
                ));
            }
            for (q, entry) in entries.iter().enumerate() {
                if entry.indices.len() != arity {
                    return Err(format!(
                        "sampler set {s} position {q}: stored {} indices for {arity} features",
                        entry.indices.len()
                    ));
                }
                if entries[..q].iter().any(|e| e.tag == entry.tag) {
                    return Err(format!(
                        "sampler set {s}: duplicate partial tag {:#x}",
                        entry.tag
                    ));
                }
            }
        }
        Ok(())
    }
}

/// O(1) sampled-set membership filter: one bit per LLC set, built once at
/// predictor construction from the arithmetic sampling definition (every
/// `stride`-th set, as long as its quotient names a real sampler set).
///
/// The per-access membership test on the train path used to be a
/// divide/modulo (or shift/mask for power-of-two strides) plus a range
/// check; the filter turns it into a single indexed bit test for *any*
/// stride, so the overwhelmingly common unsampled access skips
/// tag-partialing, LRU bookkeeping, and weight-update setup on one load.
/// Exact by construction — no false positives or negatives.
#[derive(Debug, Clone)]
pub struct SampledSetFilter {
    bits: Box<[u64]>,
}

impl SampledSetFilter {
    /// Builds the filter for `llc_sets` sets sampled every `stride` sets
    /// into `sampler_sets` sampler sets.
    pub fn new(llc_sets: u32, stride: u32, sampler_sets: u32) -> Self {
        let stride = stride.max(1);
        let mut bits = vec![0u64; (llc_sets as usize).div_ceil(64)].into_boxed_slice();
        for set in (0..llc_sets).step_by(stride as usize) {
            if set / stride < sampler_sets {
                bits[(set / 64) as usize] |= 1u64 << (set % 64);
            }
        }
        SampledSetFilter { bits }
    }

    /// Whether `llc_set` is a sampled set. Sets beyond the built range
    /// are never sampled.
    #[inline]
    pub fn contains(&self, llc_set: u32) -> bool {
        let word = (llc_set / 64) as usize;
        word < self.bits.len() && self.bits[word] & (1u64 << (llc_set % 64)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler(assocs: Vec<u8>, theta: i32) -> Sampler {
        Sampler::new(2, assocs, theta)
    }

    fn run(
        s: &mut Sampler,
        set: u32,
        tag: u16,
        indices: &[u16],
        confidence: i16,
    ) -> (SamplerAccess, Vec<TrainingEvent>) {
        let mut events = Vec::new();
        let outcome = s.access(set, tag, indices, confidence, &mut events);
        (outcome, events)
    }

    #[test]
    fn miss_then_hit_at_mru() {
        let mut s = sampler(vec![18], 100);
        let (a, _) = run(&mut s, 0, 7, &[3], 0);
        assert!(!a.hit);
        let (b, _) = run(&mut s, 0, 7, &[3], 0);
        assert!(b.hit);
        assert_eq!(b.hit_position, Some(0));
    }

    #[test]
    fn reuse_below_assoc_trains_live_with_stored_index() {
        let mut s = sampler(vec![4], 100);
        run(&mut s, 0, 7, &[42], 0); // placed with index 42
        let (_, events) = run(&mut s, 0, 7, &[99], 0); // reused at p=0
        assert_eq!(
            events,
            vec![TrainingEvent::Decrement {
                feature: 0,
                index: 42
            }],
            "training must use the stored index, not the new one"
        );
    }

    #[test]
    fn reuse_beyond_assoc_does_not_train_live() {
        // Feature assoc 1: any hit at position >= 1 would have missed.
        let mut s = sampler(vec![1], 100);
        run(&mut s, 0, 7, &[1], 0);
        // Insert another tag; tag 7 demotes to position 1 == A -> dead event.
        let (_, demote_events) = run(&mut s, 0, 8, &[2], 0);
        assert_eq!(
            demote_events,
            vec![TrainingEvent::Increment {
                feature: 0,
                index: 1
            }]
        );
        // Now hit tag 7 at position 1 (>= A=1): no live training.
        let (a, events) = run(&mut s, 0, 7, &[3], 0);
        assert!(a.hit);
        assert_eq!(a.hit_position, Some(1));
        assert!(
            events
                .iter()
                .all(|e| !matches!(e, TrainingEvent::Decrement { .. })),
            "no live training beyond feature associativity: {events:?}"
        );
    }

    #[test]
    fn promotion_demotes_intervening_blocks_across_their_assoc() {
        // Two features with different A.
        let mut s = sampler(vec![1, 2], 100);
        run(&mut s, 0, 1, &[10, 20], 0); // tag 1 @ p0
        run(&mut s, 0, 2, &[11, 21], 0); // tag 2 @ p0, tag 1 -> p1 (A0 fires)
                                         // Hit tag 1 (at p1): promoting it demotes tag 2 from p0 to p1,
                                         // crossing feature 0's A=1.
        let (_, events) = run(&mut s, 0, 1, &[12, 22], 0);
        assert!(events.contains(&TrainingEvent::Increment {
            feature: 0,
            index: 11
        }));
        // Feature 1 (A=2): tag 1 hit at p1 < 2 -> live training using tag
        // 1's own stored index (20, from its placement).
        assert!(events.contains(&TrainingEvent::Decrement {
            feature: 1,
            index: 20
        }));
    }

    #[test]
    fn eviction_is_demotion_to_position_18() {
        let mut s = sampler(vec![18], 100);
        // Fill all 18 ways.
        for t in 0..18u16 {
            run(&mut s, 0, t, &[t], 0);
        }
        assert_eq!(s.set_len(0), 18);
        // One more insertion demotes the LRU block (tag 0) to position 18.
        let (_, events) = run(&mut s, 0, 100, &[0], 0);
        assert!(events.contains(&TrainingEvent::Increment {
            feature: 0,
            index: 0
        }));
        assert_eq!(s.set_len(0), 18);
    }

    #[test]
    fn theta_gates_confident_predictions() {
        let mut s = sampler(vec![4], 10);
        // Stored confidence -200: confidently live; reuse shouldn't train.
        run(&mut s, 0, 7, &[5], -200);
        let (_, events) = run(&mut s, 0, 7, &[5], -200);
        assert!(
            events.is_empty(),
            "confidently-correct live prediction retrained"
        );
        // Stored confidence +200 (mispredicted dead): reuse trains.
        run(&mut s, 0, 8, &[6], 200);
        let (_, events) = run(&mut s, 0, 8, &[6], 200);
        assert!(events.contains(&TrainingEvent::Decrement {
            feature: 0,
            index: 6
        }));
    }

    #[test]
    fn theta_gates_dead_training_too() {
        let mut s = sampler(vec![1], 10);
        // Confidently dead (+200): demotion to A shouldn't re-train.
        run(&mut s, 0, 7, &[5], 200);
        let (_, events) = run(&mut s, 0, 8, &[6], 200);
        assert!(
            events.is_empty(),
            "confidently-dead block retrained on demotion"
        );
    }

    #[test]
    fn sets_are_independent() {
        let mut s = sampler(vec![2], 100);
        run(&mut s, 0, 7, &[1], 0);
        let (a, _) = run(&mut s, 1, 7, &[1], 0);
        assert!(!a.hit, "tag in set 0 must not hit in set 1");
    }

    #[test]
    fn partial_tags_fold_high_bits() {
        assert_ne!(partial_tag(0x1_0000_0000), partial_tag(0x2_0000_0000));
        assert_eq!(partial_tag(5), 5);
    }

    #[test]
    fn confidence_clamps_to_nine_bits() {
        assert_eq!(clamp_confidence(1000), 255);
        assert_eq!(clamp_confidence(-1000), -256);
        assert_eq!(clamp_confidence(17), 17);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn access_checks_index_arity() {
        let mut s = sampler(vec![2, 3], 100);
        let mut events = Vec::new();
        let _ = s.access(0, 1, &[0], 0, &mut events);
    }
}

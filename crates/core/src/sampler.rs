//! The 18-way LRU sampler with per-feature associativity training.
//!
//! A small number of cache sets are sampled; each has a corresponding
//! sampler set holding partial tags, the last-computed confidence, the
//! vector of prediction-table indices used for that confidence, and an LRU
//! stack position (§3.3). Unlike prior work, *evictions from the sampler
//! have no special significance*: each feature has its own maximum recency
//! position `A`, and a block is trained dead for feature `i` at the moment
//! it is demoted to position `A_i` (§3.8).
//!
//! Training output is a flat SoA buffer of packed [`TrainingEvent`] words
//! — `(feature << 17) | (index << 1) | sign` — appended directly by
//! [`Sampler::access`]. The low 17 bits are exactly what the weight-update
//! kernels consume (`(arena_offset << 1) | sign` when the caller stores
//! precombined arena offsets, as the optimized predictor does); the
//! feature id rides in the high bits for consumers that address per-table
//! weights instead (the verification reference model) and for tests.
//!
//! Set storage is structure-of-arrays: parallel tag / confidence / index
//! slabs in physical recency order (element 0 of a set is MRU), rotated
//! with `copy_within` on promotion. The per-position × per-feature
//! demotion scans are replaced by two precomputed feature lists: features
//! with `A == p` (fired when a block is demoted *to* position `p`) and
//! features with `A > p` (fired on a reuse *at* position `p`), so an
//! access only touches the features that can actually train.

/// Sampler associativity: "Each set in the sampler has 18 ways" (§3.3).
pub const SAMPLER_ASSOC: usize = 18;

/// Bits kept per partial tag (§3.3: 16 bits balances aliasing vs. area).
pub const PARTIAL_TAG_BITS: u32 = 16;

/// Confidence values are stored as 9-bit signed integers (§3.3).
pub const CONFIDENCE_MIN: i32 = -256;

/// Upper bound of the stored 9-bit confidence.
pub const CONFIDENCE_MAX: i32 = 255;

/// Computes the 16-bit partial tag for a block address.
#[inline]
pub fn partial_tag(block: u64) -> u16 {
    let folded = block ^ (block >> 16) ^ (block >> 32) ^ (block >> 48);
    (folded & 0xffff) as u16
}

/// Clamps a raw confidence sum into the stored 9-bit range.
#[inline]
pub fn clamp_confidence(sum: i32) -> i16 {
    sum.clamp(CONFIDENCE_MIN, CONFIDENCE_MAX) as i16
}

/// One table update requested by a sampler access, packed into a single
/// word: bit 0 is the sign (1 = decrement toward "live", 0 = increment
/// toward "dead"), bits 1..17 are the stored table index, and bits 17+
/// carry the feature id. `(word & 0x1ffff)` is therefore the
/// `(index << 1) | sign` form the SIMD weight-update kernels consume
/// directly when indices are precombined arena offsets.
pub type TrainingEvent = u32;

/// Bit position where the feature id starts in a [`TrainingEvent`].
pub const EVENT_FEATURE_SHIFT: u32 = 17;

/// Packs an increment-toward-dead event (the block was demoted to the
/// feature's `A` position — an eviction from that feature's perspective).
#[inline]
pub fn event_increment(feature: u16, index: u16) -> TrainingEvent {
    (u32::from(feature) << EVENT_FEATURE_SHIFT) | (u32::from(index) << 1)
}

/// Packs a decrement-toward-live event (the block was reused within the
/// feature's associativity).
#[inline]
pub fn event_decrement(feature: u16, index: u16) -> TrainingEvent {
    event_increment(feature, index) | 1
}

/// The stored table index (a precombined arena offset in the optimized
/// predictor) of a packed event.
#[inline]
pub fn event_index(event: TrainingEvent) -> u16 {
    ((event >> 1) & 0xffff) as u16
}

/// The feature id of a packed event.
#[inline]
pub fn event_feature(event: TrainingEvent) -> u16 {
    (event >> EVENT_FEATURE_SHIFT) as u16
}

/// Whether a packed event decrements (trains toward "live").
#[inline]
pub fn event_is_decrement(event: TrainingEvent) -> bool {
    event & 1 == 1
}

/// Outcome summary of one sampler access (for tests and statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerAccess {
    /// Whether the tag hit in the sampler set.
    pub hit: bool,
    /// Stack position of the hit (0 = MRU), if any.
    pub hit_position: Option<u32>,
}

/// The sampler structure: `sets` independent 18-way LRU-ordered sets in
/// SoA form. `tags`/`confidences` are `sets * SAMPLER_ASSOC` slabs and
/// `indices` is `sets * SAMPLER_ASSOC * arity`; within a set, physical
/// order is recency order (element 0 is MRU) and `occupancy` bounds the
/// live prefix.
#[derive(Debug)]
pub struct Sampler {
    tags: Box<[u16]>,
    confidences: Box<[i16]>,
    indices: Box<[u16]>,
    occupancy: Box<[u8]>,
    arity: usize,
    theta: i32,
    /// CSR list of features with `A == p`, for `p` in `1..=SAMPLER_ASSOC`
    /// (ascending feature order within a position): the features trained
    /// dead when a block is demoted to position `p`.
    eq_starts: [u16; SAMPLER_ASSOC + 2],
    eq_features: Vec<u16>,
    /// Positions `p` with a non-empty `eq` list, ascending — the demotion
    /// loops only visit these instead of every occupied position.
    eq_positions: Vec<u8>,
    /// CSR list of features with `A > p`, for `p` in `0..SAMPLER_ASSOC`
    /// (ascending feature order): the features trained live on a reuse at
    /// position `p`.
    gt_starts: [u16; SAMPLER_ASSOC + 1],
    gt_features: Vec<u16>,
}

impl Sampler {
    /// Creates a sampler with `sets` sampled sets, the per-feature
    /// associativity parameters, and training threshold `theta` (weights
    /// are only updated when the stored confidence was wrong or within
    /// `theta` of the decision boundary — perceptron threshold training).
    ///
    /// # Panics
    ///
    /// Panics if `sets == 0` or any associativity is outside `1..=18`.
    pub fn new(sets: u32, feature_assocs: Vec<u8>, theta: i32) -> Self {
        assert!(sets > 0, "need at least one sampled set");
        assert!(
            feature_assocs
                .iter()
                .all(|&a| (1..=SAMPLER_ASSOC as u8).contains(&a)),
            "feature associativity out of range"
        );
        let arity = feature_assocs.len();
        let ways = sets as usize * SAMPLER_ASSOC;

        let mut eq_starts = [0u16; SAMPLER_ASSOC + 2];
        let mut eq_features = Vec::with_capacity(arity);
        let mut eq_positions = Vec::new();
        for (p, start) in eq_starts.iter_mut().enumerate().skip(1).take(SAMPLER_ASSOC) {
            *start = eq_features.len() as u16;
            for (f, &a) in feature_assocs.iter().enumerate() {
                if usize::from(a) == p {
                    eq_features.push(f as u16);
                }
            }
            if eq_features.len() as u16 != *start {
                eq_positions.push(p as u8);
            }
        }
        eq_starts[SAMPLER_ASSOC + 1] = eq_features.len() as u16;

        let mut gt_starts = [0u16; SAMPLER_ASSOC + 1];
        let mut gt_features = Vec::new();
        for (p, start) in gt_starts.iter_mut().enumerate().take(SAMPLER_ASSOC) {
            *start = gt_features.len() as u16;
            for (f, &a) in feature_assocs.iter().enumerate() {
                if usize::from(a) > p {
                    gt_features.push(f as u16);
                }
            }
        }
        gt_starts[SAMPLER_ASSOC] = gt_features.len() as u16;

        Sampler {
            tags: vec![0u16; ways].into_boxed_slice(),
            confidences: vec![0i16; ways].into_boxed_slice(),
            indices: vec![0u16; ways * arity].into_boxed_slice(),
            occupancy: vec![0u8; sets as usize].into_boxed_slice(),
            arity,
            theta,
            eq_starts,
            eq_features,
            eq_positions,
            gt_starts,
            gt_features,
        }
    }

    /// Number of sampled sets.
    pub fn sets(&self) -> u32 {
        self.occupancy.len() as u32
    }

    /// Features trained dead by a demotion to position `p`.
    #[inline]
    fn eq_list(&self, p: usize) -> &[u16] {
        &self.eq_features[usize::from(self.eq_starts[p])..usize::from(self.eq_starts[p + 1])]
    }

    /// Features trained live by a reuse at position `p`.
    #[inline]
    fn gt_list(&self, p: usize) -> &[u16] {
        &self.gt_features[usize::from(self.gt_starts[p])..usize::from(self.gt_starts[p + 1])]
    }

    /// Simulates the sampler's response to an access: `tag` hit/placed in
    /// `set`, carrying the just-computed `indices` and `confidence`.
    /// Appends the (already threshold-gated) training events to `events`
    /// as packed words — the caller owns clearing — and returns a hit
    /// summary.
    ///
    /// Demotion semantics: on a hit at position `p`, blocks above `p`
    /// demote by one; on a miss every block demotes by one and the
    /// position-17 block (if any) falls off the end — a demotion *to*
    /// position 18, which trains features with `A = 18`.
    pub fn access(
        &mut self,
        set: u32,
        tag: u16,
        indices: &[u16],
        confidence: i16,
        events: &mut Vec<TrainingEvent>,
    ) -> SamplerAccess {
        assert_eq!(indices.len(), self.arity, "index vector arity mismatch");
        let theta = self.theta;
        let occ = usize::from(self.occupancy[set as usize]);
        let base = set as usize * SAMPLER_ASSOC;
        let set_tags = &self.tags[base..base + occ];
        let hit_position = set_tags.iter().position(|&t| t == tag);

        match hit_position {
            Some(p) => {
                // Round 1: train the reused block. For each feature with
                // p < A the reuse is a hit at associativity A; gate on the
                // *stored* confidence (mispredicted dead, or within theta).
                let way = base + p;
                if i32::from(self.confidences[way]) >= -theta {
                    let stored = way * self.arity;
                    for &f in self.gt_list(p) {
                        events.push(event_decrement(f, self.indices[stored + usize::from(f)]));
                    }
                }
                // Round 2: the promotion of `p` demotes blocks 0..p by
                // one; a block moving from q to q+1 == A is an eviction
                // for that feature.
                for &np in &self.eq_positions {
                    let np = usize::from(np);
                    if np > p {
                        break;
                    }
                    let q = np - 1;
                    if i32::from(self.confidences[base + q]) <= theta {
                        let stored = (base + q) * self.arity;
                        for &f in self.eq_list(np) {
                            events.push(event_increment(f, self.indices[stored + usize::from(f)]));
                        }
                    }
                }
                // Rotate positions 0..p down by one and install the
                // updated entry at MRU.
                self.tags.copy_within(base..base + p, base + 1);
                self.tags[base] = tag;
                self.confidences.copy_within(base..base + p, base + 1);
                self.confidences[base] = confidence;
                let ibase = base * self.arity;
                self.indices
                    .copy_within(ibase..ibase + p * self.arity, ibase + self.arity);
                self.indices[ibase..ibase + self.arity].copy_from_slice(indices);
                SamplerAccess {
                    hit: true,
                    hit_position: Some(p as u32),
                }
            }
            None => {
                // Every resident block demotes by one position.
                for &np in &self.eq_positions {
                    let np = usize::from(np);
                    if np > occ {
                        break;
                    }
                    let q = np - 1;
                    if i32::from(self.confidences[base + q]) <= theta {
                        let stored = (base + q) * self.arity;
                        for &f in self.eq_list(np) {
                            events.push(event_increment(f, self.indices[stored + usize::from(f)]));
                        }
                    }
                }
                // A full set drops its LRU block (it just trained as a
                // demotion to position 18 above); everything else shifts
                // down one and the new block lands at MRU.
                let keep = occ.min(SAMPLER_ASSOC - 1);
                self.tags.copy_within(base..base + keep, base + 1);
                self.tags[base] = tag;
                self.confidences.copy_within(base..base + keep, base + 1);
                self.confidences[base] = confidence;
                let ibase = base * self.arity;
                self.indices
                    .copy_within(ibase..ibase + keep * self.arity, ibase + self.arity);
                self.indices[ibase..ibase + self.arity].copy_from_slice(indices);
                self.occupancy[set as usize] = (keep + 1) as u8;
                SamplerAccess {
                    hit: false,
                    hit_position: None,
                }
            }
        }
    }

    /// Occupancy of a sampler set (tests).
    pub fn set_len(&self, set: u32) -> usize {
        usize::from(self.occupancy[set as usize])
    }

    /// Structural invariants: every set within [`SAMPLER_ASSOC`], unique
    /// partial tags within a set's live prefix, and the SoA slabs sized
    /// for the feature arity. Returns `Err(detail)` on the first
    /// violation so verification can fold it into a divergence report.
    pub fn check_invariants(&self) -> Result<(), String> {
        let sets = self.occupancy.len();
        if self.tags.len() != sets * SAMPLER_ASSOC
            || self.confidences.len() != sets * SAMPLER_ASSOC
            || self.indices.len() != sets * SAMPLER_ASSOC * self.arity
        {
            return Err(format!(
                "sampler slab sizes inconsistent with {sets} sets x {} features",
                self.arity
            ));
        }
        for (s, &occ) in self.occupancy.iter().enumerate() {
            let occ = usize::from(occ);
            if occ > SAMPLER_ASSOC {
                return Err(format!(
                    "sampler set {s}: occupancy {occ} exceeds associativity {SAMPLER_ASSOC}"
                ));
            }
            let base = s * SAMPLER_ASSOC;
            let tags = &self.tags[base..base + occ];
            for (q, &tag) in tags.iter().enumerate() {
                if tags[..q].contains(&tag) {
                    return Err(format!("sampler set {s}: duplicate partial tag {tag:#x}"));
                }
            }
        }
        Ok(())
    }
}

/// O(1) sampled-set membership filter: one bit per LLC set, built once at
/// predictor construction from the arithmetic sampling definition (every
/// `stride`-th set, as long as its quotient names a real sampler set).
///
/// The per-access membership test on the train path used to be a
/// divide/modulo (or shift/mask for power-of-two strides) plus a range
/// check; the filter turns it into a single indexed bit test for *any*
/// stride, so the overwhelmingly common unsampled access skips
/// tag-partialing, LRU bookkeeping, and weight-update setup on one load.
/// Exact by construction — no false positives or negatives.
#[derive(Debug, Clone)]
pub struct SampledSetFilter {
    bits: Box<[u64]>,
}

impl SampledSetFilter {
    /// Builds the filter for `llc_sets` sets sampled every `stride` sets
    /// into `sampler_sets` sampler sets.
    pub fn new(llc_sets: u32, stride: u32, sampler_sets: u32) -> Self {
        let stride = stride.max(1);
        let mut bits = vec![0u64; (llc_sets as usize).div_ceil(64)].into_boxed_slice();
        for set in (0..llc_sets).step_by(stride as usize) {
            if set / stride < sampler_sets {
                bits[(set / 64) as usize] |= 1u64 << (set % 64);
            }
        }
        SampledSetFilter { bits }
    }

    /// Whether `llc_set` is a sampled set. Sets beyond the built range
    /// are never sampled.
    #[inline]
    pub fn contains(&self, llc_set: u32) -> bool {
        let word = (llc_set / 64) as usize;
        word < self.bits.len() && self.bits[word] & (1u64 << (llc_set % 64)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler(assocs: Vec<u8>, theta: i32) -> Sampler {
        Sampler::new(2, assocs, theta)
    }

    fn run(
        s: &mut Sampler,
        set: u32,
        tag: u16,
        indices: &[u16],
        confidence: i16,
    ) -> (SamplerAccess, Vec<TrainingEvent>) {
        let mut events = Vec::new();
        let outcome = s.access(set, tag, indices, confidence, &mut events);
        (outcome, events)
    }

    #[test]
    fn packed_events_round_trip() {
        let inc = event_increment(13, 0x8001);
        assert_eq!(event_feature(inc), 13);
        assert_eq!(event_index(inc), 0x8001);
        assert!(!event_is_decrement(inc));
        let dec = event_decrement(15, u16::MAX);
        assert_eq!(event_feature(dec), 15);
        assert_eq!(event_index(dec), u16::MAX);
        assert!(event_is_decrement(dec));
    }

    #[test]
    fn miss_then_hit_at_mru() {
        let mut s = sampler(vec![18], 100);
        let (a, _) = run(&mut s, 0, 7, &[3], 0);
        assert!(!a.hit);
        let (b, _) = run(&mut s, 0, 7, &[3], 0);
        assert!(b.hit);
        assert_eq!(b.hit_position, Some(0));
    }

    #[test]
    fn reuse_below_assoc_trains_live_with_stored_index() {
        let mut s = sampler(vec![4], 100);
        run(&mut s, 0, 7, &[42], 0); // placed with index 42
        let (_, events) = run(&mut s, 0, 7, &[99], 0); // reused at p=0
        assert_eq!(
            events,
            vec![event_decrement(0, 42)],
            "training must use the stored index, not the new one"
        );
    }

    #[test]
    fn reuse_beyond_assoc_does_not_train_live() {
        // Feature assoc 1: any hit at position >= 1 would have missed.
        let mut s = sampler(vec![1], 100);
        run(&mut s, 0, 7, &[1], 0);
        // Insert another tag; tag 7 demotes to position 1 == A -> dead event.
        let (_, demote_events) = run(&mut s, 0, 8, &[2], 0);
        assert_eq!(demote_events, vec![event_increment(0, 1)]);
        // Now hit tag 7 at position 1 (>= A=1): no live training.
        let (a, events) = run(&mut s, 0, 7, &[3], 0);
        assert!(a.hit);
        assert_eq!(a.hit_position, Some(1));
        assert!(
            events.iter().all(|&e| !event_is_decrement(e)),
            "no live training beyond feature associativity: {events:?}"
        );
    }

    #[test]
    fn promotion_demotes_intervening_blocks_across_their_assoc() {
        // Two features with different A.
        let mut s = sampler(vec![1, 2], 100);
        run(&mut s, 0, 1, &[10, 20], 0); // tag 1 @ p0
        run(&mut s, 0, 2, &[11, 21], 0); // tag 2 @ p0, tag 1 -> p1 (A0 fires)
                                         // Hit tag 1 (at p1): promoting it demotes tag 2 from p0 to p1,
                                         // crossing feature 0's A=1.
        let (_, events) = run(&mut s, 0, 1, &[12, 22], 0);
        assert!(events.contains(&event_increment(0, 11)));
        // Feature 1 (A=2): tag 1 hit at p1 < 2 -> live training using tag
        // 1's own stored index (20, from its placement).
        assert!(events.contains(&event_decrement(1, 20)));
    }

    #[test]
    fn eviction_is_demotion_to_position_18() {
        let mut s = sampler(vec![18], 100);
        // Fill all 18 ways.
        for t in 0..18u16 {
            run(&mut s, 0, t, &[t], 0);
        }
        assert_eq!(s.set_len(0), 18);
        // One more insertion demotes the LRU block (tag 0) to position 18.
        let (_, events) = run(&mut s, 0, 100, &[0], 0);
        assert!(events.contains(&event_increment(0, 0)));
        assert_eq!(s.set_len(0), 18);
    }

    #[test]
    fn theta_gates_confident_predictions() {
        let mut s = sampler(vec![4], 10);
        // Stored confidence -200: confidently live; reuse shouldn't train.
        run(&mut s, 0, 7, &[5], -200);
        let (_, events) = run(&mut s, 0, 7, &[5], -200);
        assert!(
            events.is_empty(),
            "confidently-correct live prediction retrained"
        );
        // Stored confidence +200 (mispredicted dead): reuse trains.
        run(&mut s, 0, 8, &[6], 200);
        let (_, events) = run(&mut s, 0, 8, &[6], 200);
        assert!(events.contains(&event_decrement(0, 6)));
    }

    #[test]
    fn theta_gates_dead_training_too() {
        let mut s = sampler(vec![1], 10);
        // Confidently dead (+200): demotion to A shouldn't re-train.
        run(&mut s, 0, 7, &[5], 200);
        let (_, events) = run(&mut s, 0, 8, &[6], 200);
        assert!(
            events.is_empty(),
            "confidently-dead block retrained on demotion"
        );
    }

    #[test]
    fn sets_are_independent() {
        let mut s = sampler(vec![2], 100);
        run(&mut s, 0, 7, &[1], 0);
        let (a, _) = run(&mut s, 1, 7, &[1], 0);
        assert!(!a.hit, "tag in set 0 must not hit in set 1");
    }

    #[test]
    fn events_append_without_clearing() {
        // The SoA protocol makes the caller own the buffer lifecycle:
        // access() appends, so consecutive accesses can share one flat
        // buffer across a batch window.
        let mut s = sampler(vec![1], 100);
        let mut events = Vec::new();
        let _ = s.access(0, 7, &[5], 0, &mut events);
        let _ = s.access(0, 8, &[6], 0, &mut events);
        let _ = s.access(0, 9, &[7], 0, &mut events);
        assert_eq!(
            events,
            vec![event_increment(0, 5), event_increment(0, 6)],
            "demotion events from both misses must accumulate"
        );
    }

    #[test]
    fn partial_tags_fold_high_bits() {
        assert_ne!(partial_tag(0x1_0000_0000), partial_tag(0x2_0000_0000));
        assert_eq!(partial_tag(5), 5);
    }

    #[test]
    fn confidence_clamps_to_nine_bits() {
        assert_eq!(clamp_confidence(1000), 255);
        assert_eq!(clamp_confidence(-1000), -256);
        assert_eq!(clamp_confidence(17), 17);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn access_checks_index_arity() {
        let mut s = sampler(vec![2, 3], 100);
        let mut events = Vec::new();
        let _ = s.access(0, 1, &[0], 0, &mut events);
    }
}

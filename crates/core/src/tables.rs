//! Hashed-perceptron weight tables.

use crate::feature::Feature;

/// Weight bounds: "We find that 6 bit weights ranging from -32 to +31
/// provide a good trade-off between accuracy and area" (§3.4).
pub const WEIGHT_MIN: i8 = -32;

/// Upper weight bound (inclusive).
pub const WEIGHT_MAX: i8 = 31;

/// One saturating weight table per feature.
#[derive(Debug, Clone)]
pub struct WeightTables {
    tables: Vec<Vec<i8>>,
    weight_min: i8,
    weight_max: i8,
}

impl WeightTables {
    /// Allocates zeroed tables sized by each feature's
    /// [`Feature::table_size`], with the paper's 6-bit weight range.
    pub fn new(features: &[Feature]) -> Self {
        WeightTables::with_weight_bits(features, 6)
    }

    /// Allocates tables with `bits`-wide signed weights (for the weight
    /// width ablation study).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=8`.
    pub fn with_weight_bits(features: &[Feature], bits: u32) -> Self {
        assert!((2..=8).contains(&bits), "weight bits must be 2..=8");
        let half = 1i16 << (bits - 1);
        WeightTables {
            tables: features.iter().map(|f| vec![0i8; f.table_size()]).collect(),
            weight_min: (-half) as i8,
            weight_max: (half - 1) as i8,
        }
    }

    /// Number of tables (= number of features).
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether there are no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Reads the weight selected by `index` in `table`.
    pub fn weight(&self, table: usize, index: u16) -> i8 {
        self.tables[table][index as usize]
    }

    /// Sums the weights selected by `indices` (one per table) — the
    /// predictor's confidence value.
    ///
    /// # Panics
    ///
    /// Panics if `indices.len()` differs from the table count.
    pub fn confidence(&self, indices: &[u16]) -> i32 {
        assert_eq!(indices.len(), self.tables.len(), "index vector arity");
        indices
            .iter()
            .zip(&self.tables)
            .map(|(&i, t)| i32::from(t[i as usize]))
            .sum()
    }

    /// Saturating increment toward "dead".
    pub fn increment(&mut self, table: usize, index: u16) {
        let w = &mut self.tables[table][index as usize];
        *w = (*w).saturating_add(1).min(self.weight_max);
    }

    /// Saturating decrement toward "live".
    pub fn decrement(&mut self, table: usize, index: u16) {
        let w = &mut self.tables[table][index as usize];
        *w = (*w).saturating_sub(1).max(self.weight_min);
    }

    /// Total storage in bits (for the overhead accounting test against the
    /// paper's §4.4 numbers).
    pub fn storage_bits(&self, weight_bits: u32) -> u64 {
        self.tables
            .iter()
            .map(|t| t.len() as u64 * u64::from(weight_bits))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::FeatureKind;

    fn features() -> Vec<Feature> {
        vec![
            Feature::new(16, FeatureKind::Bias, false),
            Feature::new(6, FeatureKind::Burst, false),
            Feature::new(
                10,
                FeatureKind::Pc {
                    begin: 1,
                    end: 53,
                    which: 10,
                },
                false,
            ),
        ]
    }

    #[test]
    fn tables_are_sized_per_feature() {
        let t = WeightTables::new(&features());
        assert_eq!(t.len(), 3);
        assert_eq!(t.weight(0, 0), 0);
        assert_eq!(t.confidence(&[0, 0, 0]), 0);
    }

    #[test]
    fn confidence_sums_selected_weights() {
        let mut t = WeightTables::new(&features());
        t.increment(0, 0);
        t.increment(1, 1);
        t.increment(1, 1);
        t.decrement(2, 100);
        assert_eq!(t.confidence(&[0, 1, 100]), 1 + 2 - 1);
        assert_eq!(t.confidence(&[0, 0, 100]), 1 - 1);
    }

    #[test]
    fn weights_saturate_at_six_bit_bounds() {
        let mut t = WeightTables::new(&features());
        for _ in 0..100 {
            t.increment(0, 0);
            t.decrement(1, 0);
        }
        assert_eq!(t.weight(0, 0), WEIGHT_MAX);
        assert_eq!(t.weight(1, 0), WEIGHT_MIN);
    }

    #[test]
    fn narrow_weights_saturate_earlier() {
        let mut t = WeightTables::with_weight_bits(&features(), 4);
        for _ in 0..100 {
            t.increment(0, 0);
            t.decrement(1, 0);
        }
        assert_eq!(t.weight(0, 0), 7);
        assert_eq!(t.weight(1, 0), -8);
    }

    #[test]
    #[should_panic(expected = "index vector arity")]
    fn confidence_checks_arity() {
        let t = WeightTables::new(&features());
        let _ = t.confidence(&[0, 0]);
    }

    #[test]
    fn storage_accounting() {
        let t = WeightTables::new(&features());
        // bias: 1 entry, burst: 2, pc: 256 => 259 weights x 6 bits.
        assert_eq!(t.storage_bits(6), 259 * 6);
    }
}

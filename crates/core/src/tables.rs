//! Hashed-perceptron weight tables.
//!
//! All per-feature tables live in one contiguous `Vec<i8>` arena with
//! per-feature base offsets (cumulative table sizes, in feature order —
//! the same layout [`crate::plan::FeaturePlan`] bakes into its compiled
//! features). The hot path addresses weights by precombined arena offset,
//! so [`WeightTables::confidence`] is a single gather-sum over one slice;
//! the `(table, index)` API remains for tests, ablations, and storage
//! accounting.

use std::sync::OnceLock;

use crate::feature::Feature;
use crate::simd::{self, ApplyScratch, SimdLevel, GATHER_PAD};

/// Weight bounds: "We find that 6 bit weights ranging from -32 to +31
/// provide a good trade-off between accuracy and area" (§3.4).
pub const WEIGHT_MIN: i8 = -32;

/// Upper weight bound (inclusive).
pub const WEIGHT_MAX: i8 = 31;

/// One saturating weight table per feature, flattened into a single arena.
///
/// The backing vector is allocated [`GATHER_PAD`] entries past the
/// logical arena so the AVX2 gather-sum kernel (which reads 4 bytes per
/// selected weight) stays in bounds for every in-arena offset; the pad
/// entries are never addressed by any offset and stay zero.
#[derive(Debug, Clone)]
pub struct WeightTables {
    weights: Vec<i8>,
    /// Logical arena length (`weights.len() - GATHER_PAD`).
    arena: usize,
    /// Arena start of each table, plus a final sentinel (= arena length).
    bases: Vec<u32>,
    weight_min: i8,
    weight_max: i8,
    /// Sort-coalesce buffers for the batched weight-update kernel, owned
    /// here so steady-state training never allocates.
    scratch: ApplyScratch,
}

/// Telemetry for the train-kernel dispatch: how many event-buffer applies
/// took the vectorized path vs the sequential scalar fold. No-ops unless
/// a driver enables `--metrics`; production runs use the pair to spot a
/// dispatch regression (e.g. an unexpectedly scalar fleet).
fn apply_dispatch_counters() -> &'static (mrp_obs::Counter, mrp_obs::Counter) {
    static COUNTERS: OnceLock<(mrp_obs::Counter, mrp_obs::Counter)> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        (
            mrp_obs::counter("predictor.train.apply.vector"),
            mrp_obs::counter("predictor.train.apply.scalar"),
        )
    })
}

impl WeightTables {
    /// Allocates zeroed tables sized by each feature's
    /// [`Feature::table_size`], with the paper's 6-bit weight range.
    pub fn new(features: &[Feature]) -> Self {
        WeightTables::with_weight_bits(features, 6)
    }

    /// Allocates tables with `bits`-wide signed weights (for the weight
    /// width ablation study).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=8`.
    pub fn with_weight_bits(features: &[Feature], bits: u32) -> Self {
        assert!((2..=8).contains(&bits), "weight bits must be 2..=8");
        let half = 1i16 << (bits - 1);
        let mut bases = Vec::with_capacity(features.len() + 1);
        let mut total = 0u32;
        for f in features {
            bases.push(total);
            total += f.table_size() as u32;
        }
        bases.push(total);
        assert!(
            total as usize <= usize::from(u16::MAX) + 1,
            "weight arena exceeds u16 offsets"
        );
        WeightTables {
            weights: vec![0i8; total as usize + GATHER_PAD],
            arena: total as usize,
            bases,
            weight_min: (-half) as i8,
            weight_max: (half - 1) as i8,
            scratch: ApplyScratch::default(),
        }
    }

    /// Number of tables (= number of features).
    pub fn len(&self) -> usize {
        self.bases.len() - 1
    }

    /// Whether there are no tables.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Arena offset where `table` starts.
    pub fn base(&self, table: usize) -> usize {
        self.bases[table] as usize
    }

    /// Total arena entries across all tables (excluding the gather pad).
    pub fn arena_len(&self) -> usize {
        self.arena
    }

    /// The `(min, max)` saturation bounds of these tables.
    pub fn weight_bounds(&self) -> (i8, i8) {
        (self.weight_min, self.weight_max)
    }

    /// Reads the weight selected by `index` in `table`.
    pub fn weight(&self, table: usize, index: u16) -> i8 {
        let offset = self.bases[table] as usize + usize::from(index);
        debug_assert!(
            offset < self.bases[table + 1] as usize,
            "index beyond table"
        );
        self.weights[offset]
    }

    /// Sums the weights selected by `offsets` (one precombined arena
    /// offset per table, as emitted by
    /// [`crate::plan::FeaturePlan::compute_offsets`]) — the predictor's
    /// confidence value. One batched gather-sum kernel serves every
    /// confidence consumer; the kernel family follows
    /// [`crate::simd::level`].
    #[inline]
    pub fn confidence(&self, offsets: &[u16]) -> i32 {
        self.confidence_with(simd::level(), offsets)
    }

    /// [`Self::confidence`] with an explicit kernel level, for the
    /// kernel-equivalence sweeps in `mrp-verify` and the benches.
    #[inline]
    pub fn confidence_with(&self, level: SimdLevel, offsets: &[u16]) -> i32 {
        debug_assert_eq!(offsets.len(), self.len(), "index vector arity");
        debug_assert!(
            offsets.iter().all(|&o| usize::from(o) < self.arena),
            "offset beyond arena"
        );
        simd::gather_sum_i8(&self.weights, offsets, level)
    }

    /// Saturating increment toward "dead".
    pub fn increment(&mut self, table: usize, index: u16) {
        let offset = self.bases[table] + u32::from(index);
        self.increment_at(offset as u16);
    }

    /// Saturating decrement toward "live".
    pub fn decrement(&mut self, table: usize, index: u16) {
        let offset = self.bases[table] + u32::from(index);
        self.decrement_at(offset as u16);
    }

    /// Saturating increment of the weight at a precombined arena offset.
    #[inline]
    pub fn increment_at(&mut self, offset: u16) {
        debug_assert!(usize::from(offset) < self.arena, "offset beyond arena");
        let w = &mut self.weights[usize::from(offset)];
        *w = (*w).saturating_add(1).min(self.weight_max);
        debug_assert!(*w >= self.weight_min && *w <= self.weight_max);
    }

    /// Saturating decrement of the weight at a precombined arena offset.
    #[inline]
    pub fn decrement_at(&mut self, offset: u16) {
        debug_assert!(usize::from(offset) < self.arena, "offset beyond arena");
        let w = &mut self.weights[usize::from(offset)];
        *w = (*w).saturating_sub(1).max(self.weight_min);
        debug_assert!(*w >= self.weight_min && *w <= self.weight_max);
    }

    /// Applies a packed SoA training-event buffer (words of
    /// `(arena_offset << 1) | sign` in the low 17 bits, as emitted by
    /// [`crate::sampler::Sampler::access`] when fed precombined arena
    /// offsets) with the same saturating semantics as a sequential
    /// [`Self::increment_at`]/[`Self::decrement_at`] fold, through the
    /// batched kernel family selected by [`crate::simd::level`].
    #[inline]
    pub fn apply_events(&mut self, events: &[u32]) {
        self.apply_events_with(simd::level(), events);
    }

    /// [`Self::apply_events`] with an explicit kernel level, for the
    /// kernel-equivalence sweeps in `mrp-verify` and the benches.
    pub fn apply_events_with(&mut self, level: SimdLevel, events: &[u32]) {
        debug_assert!(
            events
                .iter()
                .all(|&e| ((e >> 1) as usize & 0xffff) < self.arena),
            "event offset beyond arena"
        );
        let vectorized = simd::apply_events_i8(
            &mut self.weights,
            events,
            self.weight_min,
            self.weight_max,
            level,
            &mut self.scratch,
        );
        if !events.is_empty() {
            let (vector, scalar) = apply_dispatch_counters();
            if vectorized {
                vector.incr();
            } else {
                scalar.incr();
            }
        }
    }

    /// Total storage in bits (for the overhead accounting test against the
    /// paper's §4.4 numbers). Counts the logical arena only — the gather
    /// pad is an implementation artifact, not modeled hardware.
    pub fn storage_bits(&self, weight_bits: u32) -> u64 {
        self.arena as u64 * u64::from(weight_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::FeatureKind;

    fn features() -> Vec<Feature> {
        vec![
            Feature::new(16, FeatureKind::Bias, false),
            Feature::new(6, FeatureKind::Burst, false),
            Feature::new(
                10,
                FeatureKind::Pc {
                    begin: 1,
                    end: 53,
                    which: 10,
                },
                false,
            ),
        ]
    }

    /// Precombined arena offsets for per-table indices.
    fn offsets(t: &WeightTables, indices: &[u16]) -> Vec<u16> {
        indices
            .iter()
            .enumerate()
            .map(|(table, &i)| (t.base(table) + usize::from(i)) as u16)
            .collect()
    }

    #[test]
    fn tables_are_sized_per_feature() {
        let t = WeightTables::new(&features());
        assert_eq!(t.len(), 3);
        assert_eq!(t.weight(0, 0), 0);
        assert_eq!(t.confidence(&offsets(&t, &[0, 0, 0])), 0);
    }

    #[test]
    fn arena_bases_are_cumulative_table_sizes() {
        let t = WeightTables::new(&features());
        // bias: 1 entry, burst: 2, pc: 256.
        assert_eq!(t.base(0), 0);
        assert_eq!(t.base(1), 1);
        assert_eq!(t.base(2), 3);
        assert_eq!(t.arena_len(), 259);
    }

    #[test]
    fn confidence_sums_selected_weights() {
        let mut t = WeightTables::new(&features());
        t.increment(0, 0);
        t.increment(1, 1);
        t.increment(1, 1);
        t.decrement(2, 100);
        assert_eq!(t.confidence(&offsets(&t, &[0, 1, 100])), 1 + 2 - 1);
        assert_eq!(t.confidence(&offsets(&t, &[0, 0, 100])), 1 - 1);
    }

    #[test]
    fn arena_offset_updates_match_table_updates() {
        let mut t = WeightTables::new(&features());
        t.increment_at((t.base(2) + 100) as u16);
        assert_eq!(t.weight(2, 100), 1);
        t.decrement_at((t.base(2) + 100) as u16);
        assert_eq!(t.weight(2, 100), 0);
    }

    #[test]
    fn weights_saturate_at_six_bit_bounds() {
        let mut t = WeightTables::new(&features());
        for _ in 0..100 {
            t.increment(0, 0);
            t.decrement(1, 0);
        }
        assert_eq!(t.weight(0, 0), WEIGHT_MAX);
        assert_eq!(t.weight(1, 0), WEIGHT_MIN);
    }

    #[test]
    fn narrow_weights_saturate_earlier() {
        let mut t = WeightTables::with_weight_bits(&features(), 4);
        for _ in 0..100 {
            t.increment(0, 0);
            t.decrement(1, 0);
        }
        assert_eq!(t.weight(0, 0), 7);
        assert_eq!(t.weight(1, 0), -8);
    }

    #[test]
    fn storage_accounting() {
        let t = WeightTables::new(&features());
        // bias: 1 entry, burst: 2, pc: 256 => 259 weights x 6 bits.
        assert_eq!(t.storage_bits(6), 259 * 6);
        // The gather pad is excluded from the modeled arena.
        assert_eq!(t.arena_len(), 259);
    }

    #[test]
    fn apply_events_matches_sequential_updates() {
        use crate::sampler::{event_decrement, event_increment};
        let mut batched = WeightTables::new(&features());
        let mut sequential = WeightTables::new(&features());
        // A long buffer with duplicate offsets and mixed signs, crossing
        // the vector threshold; feature ids are irrelevant to the apply.
        let events: Vec<u32> = (0..300u32)
            .map(|i| {
                let offset = (i * 13 % 259) as u16;
                if i % 3 == 0 {
                    event_decrement(0, offset)
                } else {
                    event_increment(0, offset)
                }
            })
            .collect();
        for &e in &events {
            let offset = crate::sampler::event_index(e);
            if crate::sampler::event_is_decrement(e) {
                sequential.decrement_at(offset);
            } else {
                sequential.increment_at(offset);
            }
        }
        for &l in crate::simd::available_levels() {
            let mut t = batched.clone();
            t.apply_events_with(l, &events);
            for o in 0..t.arena_len() as u16 {
                assert_eq!(
                    t.weights[usize::from(o)],
                    sequential.weights[usize::from(o)],
                    "offset {o} at {l:?}"
                );
            }
        }
        batched.apply_events(&events);
        assert_eq!(batched.weights, sequential.weights);
    }

    #[test]
    fn confidence_levels_agree() {
        let mut t = WeightTables::new(&features());
        // Weights spread across the arena, including the last entry.
        for o in 0..t.arena_len() as u16 {
            for _ in 0..(o % 67) {
                if o % 2 == 0 {
                    t.increment_at(o);
                } else {
                    t.decrement_at(o);
                }
            }
        }
        let last = (t.arena_len() - 1) as u16;
        let offsets = vec![0u16, 2, last];
        let expected = t.confidence_with(crate::simd::SimdLevel::Scalar, &offsets);
        for &l in crate::simd::available_levels() {
            assert_eq!(t.confidence_with(l, &offsets), expected, "{l:?}");
        }
    }
}

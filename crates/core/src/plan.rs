//! Compiled feature plans: the hot-path form of [`Feature::index`].
//!
//! [`Feature::index`] is general but re-derives everything on every
//! access: it re-matches the kind enum, recomputes `table_size()` and its
//! `trailing_zeros()`, and re-folds the PC for every `xor_pc` feature.
//! [`FeaturePlan`] lowers the feature set once, at predictor
//! construction, into straight-line per-feature programs:
//!
//! * the raw-bit extraction becomes a precomputed shift + mask
//!   ([`Source`]), with the `offset` feature's 6-bit clamp folded into
//!   the mask;
//! * the fold width (`log2(table_size)`) is a stored constant;
//! * every `xor_pc` feature's table has [`MAX_TABLE_SIZE`] entries, so
//!   the PC fold width is always [`MAX_INDEX_BITS`] — the plan folds the
//!   PC **once per access** and shares it across all XOR features;
//! * each feature's base offset in the flat weight arena
//!   (see [`crate::tables::WeightTables`]) is baked in, so the plan
//!   emits precombined arena offsets and `confidence` becomes a single
//!   gather-sum over one slice.
//!
//! The lowering is semantics-preserving: for every context, the emitted
//! offset is exactly `base(feature) + Feature::index(ctx)`. Unit tests
//! here and the property test in `tests/properties.rs` hold it to that
//! bit-for-bit.

use crate::context::FeatureContext;
use crate::feature::{fold, Feature, FeatureKind, MAX_INDEX_BITS, MAX_TABLE_SIZE};

/// Where a compiled feature reads its raw bits from. Shift/mask are
/// precomputed from the feature's bit range with `Feature::index`'s
/// clamping rules baked in.
#[derive(Debug, Clone, Copy)]
enum Source {
    /// `pc(..)`: bits of the `which`-th most recent PC.
    PcHist { which: u16, shift: u32, mask: u64 },
    /// `address(..)`: bits of the physical address.
    Address { shift: u32, mask: u64 },
    /// `offset(..)`: bits of the 6-bit block offset; the `& 0x3f` clamp
    /// is folded into `mask`.
    Offset { shift: u32, mask: u64 },
    /// `bias(..)`: the constant 0.
    Zero,
    /// `burst(..)`: 1 iff the access is to the set's MRU block.
    Mru,
    /// `insert(..)`: 1 iff the access is a miss fill.
    Insert,
    /// `lastmiss(..)`: 1 iff the previous access to the set missed.
    LastMiss,
}

/// Shift/mask pair reproducing `field(value, begin, end)`.
fn field_plan(begin: u8, end: u8) -> (u32, u64) {
    let width = u32::from(end - begin) + 1;
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    (u32::from(begin.min(63)), mask)
}

/// How a feature's raw bits reach its table index — decided once at
/// lowering instead of looping [`fold`] on every access.
#[derive(Debug, Clone, Copy)]
enum FoldKind {
    /// The source mask already guarantees `raw < table_size`: the fold
    /// loop would run at most one iteration and return `raw` unchanged.
    Identity,
    /// Wide field into a [`MAX_TABLE_SIZE`]-entry table: a fixed
    /// shift-XOR cascade computes the 8-bit fold branch-free.
    Fold8,
    /// Fallback to the reference fold loop (unreachable for any feature
    /// [`Feature::new`] accepts, kept for safety).
    Loop,
}

/// One feature lowered to straight-line index computation.
#[derive(Debug, Clone, Copy)]
pub struct CompiledFeature {
    source: Source,
    /// `log2(table_size)`; 0 means a single-entry table (index is 0).
    fold_bits: u32,
    fold_kind: FoldKind,
    /// `table_size - 1`.
    index_mask: u64,
    /// XOR the folded value with the shared 8-bit PC fold.
    xor_pc: bool,
    /// This feature's base offset in the flat weight arena.
    base: u16,
}

/// XOR-fold of all eight bytes of `value`: bit-identical to
/// `fold(value, 8)` but branch-free.
#[inline]
fn fold8(mut value: u64) -> u64 {
    value ^= value >> 32;
    value ^= value >> 16;
    value ^= value >> 8;
    value & 0xff
}

impl CompiledFeature {
    fn lower(feature: &Feature, base: u16) -> Self {
        let source = match feature.kind {
            FeatureKind::Pc { begin, end, which } => {
                let (shift, mask) = field_plan(begin, end);
                Source::PcHist {
                    which: u16::from(which),
                    shift,
                    mask,
                }
            }
            FeatureKind::Address { begin, end } => {
                let (shift, mask) = field_plan(begin, end);
                Source::Address { shift, mask }
            }
            FeatureKind::Offset { begin, end } => {
                // field(address & 0x3f, begin.min(5), end.min(5)): shifting
                // the pre-masked offset equals masking the shifted address
                // with `0x3f >> shift`, so both masks merge into one.
                let (shift, mask) = field_plan(begin.min(5), end.min(5));
                Source::Offset {
                    shift,
                    mask: mask & (0x3f >> shift),
                }
            }
            FeatureKind::Bias => Source::Zero,
            FeatureKind::Burst => Source::Mru,
            FeatureKind::Insert => Source::Insert,
            FeatureKind::LastMiss => Source::LastMiss,
        };
        let table_size = feature.table_size();
        debug_assert!(
            !feature.xor_pc || table_size == MAX_TABLE_SIZE,
            "xor_pc implies a full-size table; the shared PC fold relies on it"
        );
        let fold_bits = table_size.trailing_zeros();
        // The widest value each source can produce, for fold elision.
        let source_max = match source {
            Source::PcHist { mask, .. }
            | Source::Address { mask, .. }
            | Source::Offset { mask, .. } => mask,
            Source::Zero => 0,
            Source::Mru | Source::Insert | Source::LastMiss => 1,
        };
        let fold_kind = if fold_bits >= 64 || source_max < (1u64 << fold_bits) {
            FoldKind::Identity
        } else if fold_bits == MAX_INDEX_BITS {
            FoldKind::Fold8
        } else {
            FoldKind::Loop
        };
        CompiledFeature {
            source,
            fold_bits,
            fold_kind,
            index_mask: table_size as u64 - 1,
            xor_pc: feature.xor_pc,
            base,
        }
    }

    /// The arena offset this feature selects for `ctx`. `pc_fold8` must
    /// be [`shared_pc_fold`] of `ctx.pc`.
    #[inline]
    pub fn index_offset(&self, ctx: &FeatureContext<'_>, pc_fold8: u64) -> u16 {
        let raw = match self.source {
            Source::PcHist { which, shift, mask } => {
                (ctx.history_pc(usize::from(which)) >> shift) & mask
            }
            Source::Address { shift, mask } => (ctx.address >> shift) & mask,
            Source::Offset { shift, mask } => (ctx.address >> shift) & mask,
            Source::Zero => 0,
            Source::Mru => u64::from(ctx.is_mru),
            Source::Insert => u64::from(ctx.is_insert),
            Source::LastMiss => u64::from(ctx.last_miss),
        };
        if self.fold_bits == 0 {
            return self.base;
        }
        let mut value = match self.fold_kind {
            FoldKind::Identity => raw,
            FoldKind::Fold8 => fold8(raw),
            FoldKind::Loop => fold(raw, self.fold_bits),
        };
        if self.xor_pc {
            value ^= pc_fold8;
        }
        self.base + (value & self.index_mask) as u16
    }
}

/// The 8-bit PC fold shared by every `xor_pc` feature in an access
/// (bit-identical to `fold(pc, MAX_INDEX_BITS)`).
#[inline]
pub fn shared_pc_fold(pc: u64) -> u64 {
    fold8(pc)
}

/// A feature set lowered for the hot path, plus the arena geometry the
/// matching [`crate::tables::WeightTables`] uses.
#[derive(Debug, Clone)]
pub struct FeaturePlan {
    compiled: Vec<CompiledFeature>,
    /// Whether any feature XORs with the PC (skip the shared fold if not).
    any_xor: bool,
    arena_len: usize,
}

impl FeaturePlan {
    /// Lowers `features`, assigning arena base offsets in feature order
    /// (the same layout [`crate::tables::WeightTables`] allocates).
    ///
    /// # Panics
    ///
    /// Panics if the combined table sizes overflow the 16-bit offset
    /// space (would need > 256 full-size features).
    pub fn new(features: &[Feature]) -> Self {
        let mut base = 0usize;
        let compiled = features
            .iter()
            .map(|f| {
                let c =
                    CompiledFeature::lower(f, u16::try_from(base).expect("arena offsets fit u16"));
                base += f.table_size();
                c
            })
            .collect();
        assert!(
            base <= usize::from(u16::MAX) + 1,
            "weight arena exceeds u16 offsets"
        );
        FeaturePlan {
            compiled,
            any_xor: features.iter().any(|f| f.xor_pc),
            arena_len: base,
        }
    }

    /// Number of compiled features.
    pub fn len(&self) -> usize {
        self.compiled.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.compiled.is_empty()
    }

    /// Total weight-arena entries across all features.
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }

    /// Computes every feature's arena offset for an access into `out`
    /// (cleared first). Allocation-free on the hot path.
    #[inline]
    pub fn compute_offsets(&self, ctx: &FeatureContext<'_>, out: &mut Vec<u16>) {
        let pc_fold8 = if self.any_xor {
            shared_pc_fold(ctx.pc)
        } else {
            0
        };
        out.clear();
        out.extend(self.compiled.iter().map(|c| c.index_offset(ctx, pc_fold8)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature_sets;

    /// Contexts exercising warm/cold history, all flag combinations, and
    /// extreme PC/address values.
    fn contexts(history: &[u64]) -> Vec<FeatureContext<'_>> {
        let mut out = Vec::new();
        for seed in 0..256u64 {
            let pc = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left((seed % 64) as u32);
            let address = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ (pc >> 3);
            out.push(FeatureContext {
                pc,
                address,
                pc_history: if seed % 3 == 0 { &[] } else { history },
                is_mru: seed % 2 == 0,
                is_insert: seed % 3 == 0,
                last_miss: seed % 5 == 0,
            });
        }
        for pc in [0, 1, u64::MAX, 0x7fff_ffff_ffff_ffff] {
            out.push(FeatureContext {
                pc,
                address: pc ^ 0x3f,
                pc_history: history,
                is_mru: true,
                is_insert: true,
                last_miss: true,
            });
        }
        out
    }

    fn assert_plan_matches(features: &[Feature]) {
        let plan = FeaturePlan::new(features);
        let history: Vec<u64> = (0..18).map(|i| 0x40_0000 + i * 0x1351).collect();
        let mut offsets = Vec::new();
        for ctx in contexts(&history) {
            plan.compute_offsets(&ctx, &mut offsets);
            let mut base = 0u16;
            for (f, &offset) in features.iter().zip(&offsets) {
                assert_eq!(
                    offset,
                    base + f.index(&ctx),
                    "{f} diverged at pc={:#x} address={:#x}",
                    ctx.pc,
                    ctx.address
                );
                base += f.table_size() as u16;
            }
        }
    }

    #[test]
    fn published_feature_sets_compile_bit_identically() {
        assert_plan_matches(&feature_sets::table_1a());
        assert_plan_matches(&feature_sets::table_1b());
        assert_plan_matches(&feature_sets::table_2());
    }

    #[test]
    fn every_kind_compiles_bit_identically_with_and_without_xor() {
        for xor_pc in [false, true] {
            let features: Vec<Feature> = [
                FeatureKind::Pc {
                    begin: 1,
                    end: 53,
                    which: 10,
                },
                FeatureKind::Pc {
                    begin: 0,
                    end: 63,
                    which: 0,
                },
                FeatureKind::Address { begin: 8, end: 19 },
                FeatureKind::Address { begin: 0, end: 63 },
                FeatureKind::Bias,
                FeatureKind::Burst,
                FeatureKind::Insert,
                FeatureKind::LastMiss,
                FeatureKind::Offset { begin: 0, end: 5 },
                FeatureKind::Offset { begin: 3, end: 5 },
            ]
            .into_iter()
            .map(|kind| Feature::new(9, kind, xor_pc))
            .collect();
            assert_plan_matches(&features);
        }
    }

    #[test]
    fn offset_clamp_matches_reference() {
        // begin/end beyond bit 5 clamp to the block-offset width.
        for (begin, end) in [(4, 9), (6, 9), (0, 63)] {
            let features = vec![Feature::new(3, FeatureKind::Offset { begin, end }, false)];
            assert_plan_matches(&features);
        }
    }

    #[test]
    fn arena_layout_is_cumulative_table_sizes() {
        let features = feature_sets::table_1a();
        let plan = FeaturePlan::new(&features);
        assert_eq!(
            plan.arena_len(),
            features.iter().map(|f| f.table_size()).sum::<usize>()
        );
    }

    #[test]
    fn shared_fold_matches_per_feature_fold() {
        for pc in [0u64, 0x400_000, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(shared_pc_fold(pc), fold(pc, MAX_INDEX_BITS));
        }
    }
}

//! Compiled feature plans: the hot-path form of [`Feature::index`].
//!
//! [`Feature::index`] is general but re-derives everything on every
//! access: it re-matches the kind enum, recomputes `table_size()` and its
//! `trailing_zeros()`, and re-folds the PC for every `xor_pc` feature.
//! [`FeaturePlan`] lowers the feature set once, at predictor
//! construction, into straight-line per-feature programs:
//!
//! * the raw-bit extraction becomes a precomputed shift + mask
//!   ([`Source`]), with the `offset` feature's 6-bit clamp folded into
//!   the mask;
//! * the fold width (`log2(table_size)`) is a stored constant;
//! * every `xor_pc` feature's table has [`MAX_TABLE_SIZE`] entries, so
//!   the PC fold width is always [`MAX_INDEX_BITS`] — the plan folds the
//!   PC **once per access** and shares it across all XOR features;
//! * each feature's base offset in the flat weight arena
//!   (see [`crate::tables::WeightTables`]) is baked in, so the plan
//!   emits precombined arena offsets and `confidence` becomes a single
//!   gather-sum over one slice.
//!
//! On top of the per-feature compiled form, the plan transposes itself
//! into **SoA lane arrays** ([`LanePlan`]): parallel padded vectors of
//! source selectors, shifts, masks, XOR masks, index masks, and arena
//! bases, one entry per feature. Together with the per-access transposed
//! value vector ([`LaneContext`]), index computation for all 16 features
//! becomes one branch-free pass — every lane evaluates
//!
//! ```text
//! raw = (vals[src] >> shift) & mask
//! v   = fold8(raw)                      // identity when raw < 256
//! v  ^= pc_fold8 & xor_mask
//! out = base + (v & index_mask)
//! ```
//!
//! which is bit-identical to the per-feature interpretation for every
//! feature [`Feature::new`] accepts: `Loop` folds are unreachable (all
//! table sizes are ≤ [`MAX_TABLE_SIZE`]), and for `Identity` lanes the
//! raw value is already below 256 so `fold8` is the identity. The pass is
//! written so LLVM autovectorizes it on stable Rust, with explicit AVX2
//! and AVX-512 forms dispatched at runtime (see [`crate::simd`]). The
//! AVX-512 form goes one step further: it never materializes the
//! [`LaneContext`] — the 32-slot value table lives in four zmm registers
//! built straight from the [`FeatureContext`], and lane selection is two
//! register permutes instead of a memory gather.
//!
//! The lowering is semantics-preserving: for every context, the emitted
//! offset is exactly `base(feature) + Feature::index(ctx)`. Unit tests
//! here, the property tests in `tests/properties.rs`, and `mrp-verify`'s
//! kernel-identity pass hold it to that bit-for-bit.

use crate::context::{FeatureContext, HISTORY_DEPTH};
use crate::feature::{fold, Feature, FeatureKind, MAX_INDEX_BITS, MAX_TABLE_SIZE};
use crate::simd::{self, SimdLevel};

/// Where a compiled feature reads its raw bits from. Shift/mask are
/// precomputed from the feature's bit range with `Feature::index`'s
/// clamping rules baked in.
#[derive(Debug, Clone, Copy)]
enum Source {
    /// `pc(..)`: bits of the `which`-th most recent PC.
    PcHist { which: u16, shift: u32, mask: u64 },
    /// `address(..)`: bits of the physical address.
    Address { shift: u32, mask: u64 },
    /// `offset(..)`: bits of the 6-bit block offset; the `& 0x3f` clamp
    /// is folded into `mask`.
    Offset { shift: u32, mask: u64 },
    /// `bias(..)`: the constant 0.
    Zero,
    /// `burst(..)`: 1 iff the access is to the set's MRU block.
    Mru,
    /// `insert(..)`: 1 iff the access is a miss fill.
    Insert,
    /// `lastmiss(..)`: 1 iff the previous access to the set missed.
    LastMiss,
}

/// Shift/mask pair reproducing `field(value, begin, end)`.
fn field_plan(begin: u8, end: u8) -> (u32, u64) {
    let width = u32::from(end - begin) + 1;
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    (u32::from(begin.min(63)), mask)
}

/// How a feature's raw bits reach its table index — decided once at
/// lowering instead of looping [`fold`] on every access.
#[derive(Debug, Clone, Copy)]
enum FoldKind {
    /// The source mask already guarantees `raw < table_size`: the fold
    /// loop would run at most one iteration and return `raw` unchanged.
    Identity,
    /// Wide field into a [`MAX_TABLE_SIZE`]-entry table: a fixed
    /// shift-XOR cascade computes the 8-bit fold branch-free.
    Fold8,
    /// Fallback to the reference fold loop (unreachable for any feature
    /// [`Feature::new`] accepts, kept for safety).
    Loop,
}

/// One feature lowered to straight-line index computation.
#[derive(Debug, Clone, Copy)]
pub struct CompiledFeature {
    source: Source,
    /// `log2(table_size)`; 0 means a single-entry table (index is 0).
    fold_bits: u32,
    fold_kind: FoldKind,
    /// `table_size - 1`.
    index_mask: u64,
    /// XOR the folded value with the shared 8-bit PC fold.
    xor_pc: bool,
    /// This feature's base offset in the flat weight arena.
    base: u16,
}

/// XOR-fold of all eight bytes of `value`: bit-identical to
/// `fold(value, 8)` but branch-free.
#[inline]
fn fold8(mut value: u64) -> u64 {
    value ^= value >> 32;
    value ^= value >> 16;
    value ^= value >> 8;
    value & 0xff
}

impl CompiledFeature {
    fn lower(feature: &Feature, base: u16) -> Self {
        let source = match feature.kind {
            FeatureKind::Pc { begin, end, which } => {
                let (shift, mask) = field_plan(begin, end);
                Source::PcHist {
                    which: u16::from(which),
                    shift,
                    mask,
                }
            }
            FeatureKind::Address { begin, end } => {
                let (shift, mask) = field_plan(begin, end);
                Source::Address { shift, mask }
            }
            FeatureKind::Offset { begin, end } => {
                // field(address & 0x3f, begin.min(5), end.min(5)): shifting
                // the pre-masked offset equals masking the shifted address
                // with `0x3f >> shift`, so both masks merge into one.
                let (shift, mask) = field_plan(begin.min(5), end.min(5));
                Source::Offset {
                    shift,
                    mask: mask & (0x3f >> shift),
                }
            }
            FeatureKind::Bias => Source::Zero,
            FeatureKind::Burst => Source::Mru,
            FeatureKind::Insert => Source::Insert,
            FeatureKind::LastMiss => Source::LastMiss,
        };
        let table_size = feature.table_size();
        debug_assert!(
            !feature.xor_pc || table_size == MAX_TABLE_SIZE,
            "xor_pc implies a full-size table; the shared PC fold relies on it"
        );
        let fold_bits = table_size.trailing_zeros();
        // The widest value each source can produce, for fold elision.
        let source_max = match source {
            Source::PcHist { mask, .. }
            | Source::Address { mask, .. }
            | Source::Offset { mask, .. } => mask,
            Source::Zero => 0,
            Source::Mru | Source::Insert | Source::LastMiss => 1,
        };
        let fold_kind = if fold_bits >= 64 || source_max < (1u64 << fold_bits) {
            FoldKind::Identity
        } else if fold_bits == MAX_INDEX_BITS {
            FoldKind::Fold8
        } else {
            FoldKind::Loop
        };
        CompiledFeature {
            source,
            fold_bits,
            fold_kind,
            index_mask: table_size as u64 - 1,
            xor_pc: feature.xor_pc,
            base,
        }
    }

    /// The arena offset this feature selects for `ctx`. `pc_fold8` must
    /// be [`shared_pc_fold`] of `ctx.pc`.
    #[inline]
    pub fn index_offset(&self, ctx: &FeatureContext<'_>, pc_fold8: u64) -> u16 {
        let raw = match self.source {
            Source::PcHist { which, shift, mask } => {
                (ctx.history_pc(usize::from(which)) >> shift) & mask
            }
            Source::Address { shift, mask } => (ctx.address >> shift) & mask,
            Source::Offset { shift, mask } => (ctx.address >> shift) & mask,
            Source::Zero => 0,
            Source::Mru => u64::from(ctx.is_mru),
            Source::Insert => u64::from(ctx.is_insert),
            Source::LastMiss => u64::from(ctx.last_miss),
        };
        if self.fold_bits == 0 {
            return self.base;
        }
        let mut value = match self.fold_kind {
            FoldKind::Identity => raw,
            FoldKind::Fold8 => fold8(raw),
            FoldKind::Loop => fold(raw, self.fold_bits),
        };
        if self.xor_pc {
            value ^= pc_fold8;
        }
        self.base + (value & self.index_mask) as u16
    }
}

/// The 8-bit PC fold shared by every `xor_pc` feature in an access
/// (bit-identical to `fold(pc, MAX_INDEX_BITS)`).
#[inline]
pub fn shared_pc_fold(pc: u64) -> u64 {
    fold8(pc)
}

/// Slots in the transposed per-access value vector ([`LaneContext`]). A
/// power of two so lane source selectors stay provably in bounds with a
/// mask instead of a branch.
pub const LANE_VALS: usize = 32;

/// `vals` slot holding the current PC (also the fallback for history
/// depths beyond [`HISTORY_DEPTH`]).
const V_PC: usize = HISTORY_DEPTH;
/// `vals` slot holding the access address.
const V_ADDR: usize = HISTORY_DEPTH + 1;
/// `vals` slot holding the `burst` flag.
const V_MRU: usize = HISTORY_DEPTH + 2;
/// `vals` slot holding the `insert` flag.
const V_INSERT: usize = HISTORY_DEPTH + 3;
/// `vals` slot holding the `lastmiss` flag.
const V_LASTMISS: usize = HISTORY_DEPTH + 4;
/// `vals` slot wired to the constant 0 (bias and pad lanes).
const V_ZERO: usize = HISTORY_DEPTH + 5;

/// Lane count granularity: plans pad to a multiple of this with inert
/// lanes so every kernel runs whole vector-width groups only (the AVX2
/// kernel steps 4 lanes, the AVX-512 kernel 8; both divide 16).
const LANE_WIDTH: usize = 16;

/// Largest batch [`FeaturePlan::compute_offsets_batch`] accepts: the
/// access front-ends group up to one LLC lookahead window of consecutive
/// accesses, and a small bound keeps the per-batch context array on the
/// stack.
pub const MAX_BATCH: usize = 16;

/// One access, transposed for lane-parallel index computation: every
/// value any feature can source, laid out so a lane reads `vals[src]`.
///
/// Building this once per access replaces the per-feature `match` on
/// [`Source`] (and the bounds-checked `history_pc` lookup) with a single
/// gatherable array; the 8-bit PC fold is computed here too, so batched
/// front-ends fold all PCs of a group together before any index math.
#[derive(Debug, Clone, Copy)]
pub struct LaneContext {
    vals: [u64; LANE_VALS],
    pc_fold8: u64,
}

impl LaneContext {
    /// Transposes `ctx`. History slots beyond the recorded depth hold the
    /// current PC, matching [`FeatureContext::history_pc`]'s fallback.
    #[inline]
    pub fn new(ctx: &FeatureContext<'_>) -> Self {
        let mut vals = [0u64; LANE_VALS];
        let depth = ctx.pc_history.len().min(HISTORY_DEPTH);
        vals[..depth].copy_from_slice(&ctx.pc_history[..depth]);
        for slot in &mut vals[depth..HISTORY_DEPTH] {
            *slot = ctx.pc;
        }
        vals[V_PC] = ctx.pc;
        vals[V_ADDR] = ctx.address;
        vals[V_MRU] = u64::from(ctx.is_mru);
        vals[V_INSERT] = u64::from(ctx.is_insert);
        vals[V_LASTMISS] = u64::from(ctx.last_miss);
        LaneContext {
            vals,
            pc_fold8: fold8(ctx.pc),
        }
    }
}

/// The feature plan transposed into SoA lane arrays: element `i` of every
/// array parameterizes feature `i`'s index computation, padded to a
/// [`LANE_WIDTH`] multiple with inert lanes (mask 0, index mask 0, base
/// 0 — they emit offset 0, truncated away after the kernel).
#[derive(Debug, Clone)]
struct LanePlan {
    /// [`LaneContext`] slot each lane reads (always `< LANE_VALS`).
    src: Box<[u32]>,
    /// Right shift applied to the sourced value (≤ 63).
    shift: Box<[u64]>,
    /// Field mask applied after the shift.
    mask: Box<[u64]>,
    /// `0xff` for `xor_pc` lanes, 0 otherwise.
    xor_mask: Box<[u64]>,
    /// `table_size - 1`.
    index_mask: Box<[u64]>,
    /// Arena base of the lane's table.
    base: Box<[u64]>,
    /// Lane count (a [`LANE_WIDTH`] multiple, ≥ the feature count).
    padded: usize,
    /// Whether every lane fits the universal branch-free formula. Always
    /// true for [`Feature::new`] features; cleared defensively for `Loop`
    /// folds or out-of-range history depths, falling the plan back to the
    /// per-feature compiled path.
    ok: bool,
}

impl LanePlan {
    fn build(compiled: &[CompiledFeature]) -> Self {
        let padded = compiled.len().next_multiple_of(LANE_WIDTH).max(LANE_WIDTH);
        let mut plan = LanePlan {
            src: vec![V_ZERO as u32; padded].into_boxed_slice(),
            shift: vec![0; padded].into_boxed_slice(),
            mask: vec![0; padded].into_boxed_slice(),
            xor_mask: vec![0; padded].into_boxed_slice(),
            index_mask: vec![0; padded].into_boxed_slice(),
            base: vec![0; padded].into_boxed_slice(),
            padded,
            ok: true,
        };
        for (i, c) in compiled.iter().enumerate() {
            let (slot, shift, mask) = match c.source {
                Source::PcHist { which, shift, mask } => {
                    // `vals` keeps HISTORY_DEPTH history slots; deeper
                    // depths would alias the PC fallback even when a
                    // caller supplies a longer history slice, so they
                    // fall back (unreachable for valid features).
                    if usize::from(which) >= HISTORY_DEPTH {
                        plan.ok = false;
                    }
                    (usize::from(which).min(V_PC) as u32, shift, mask)
                }
                Source::Address { shift, mask } | Source::Offset { shift, mask } => {
                    (V_ADDR as u32, shift, mask)
                }
                Source::Zero => (V_ZERO as u32, 0, 0),
                Source::Mru => (V_MRU as u32, 0, 1),
                Source::Insert => (V_INSERT as u32, 0, 1),
                Source::LastMiss => (V_LASTMISS as u32, 0, 1),
            };
            // `fold8` is exact for Identity lanes only because their raw
            // value is below 256; Loop folds (and any fold wider than
            // MAX_INDEX_BITS) have no lane form.
            if matches!(c.fold_kind, FoldKind::Loop) || c.fold_bits > MAX_INDEX_BITS {
                plan.ok = false;
            }
            plan.src[i] = slot;
            plan.shift[i] = u64::from(shift);
            plan.mask[i] = mask;
            plan.xor_mask[i] = if c.xor_pc { 0xff } else { 0 };
            plan.index_mask[i] = c.index_mask;
            plan.base[i] = u64::from(c.base);
        }
        plan
    }
}

/// The branch-free lane pass in scalar form. Written over fixed-bound
/// slices with masked `vals` indexing so LLVM autovectorizes it (and so
/// no bounds check survives into the loop).
fn lanes_scalar(plan: &LanePlan, lane_ctx: &LaneContext, out: &mut [u16]) {
    let n = plan.padded;
    let (src, shift) = (&plan.src[..n], &plan.shift[..n]);
    let (mask, xor_mask) = (&plan.mask[..n], &plan.xor_mask[..n]);
    let (index_mask, base) = (&plan.index_mask[..n], &plan.base[..n]);
    let out = &mut out[..n];
    let pc_fold8 = lane_ctx.pc_fold8;
    for i in 0..n {
        let raw = (lane_ctx.vals[src[i] as usize & (LANE_VALS - 1)] >> shift[i]) & mask[i];
        let mut v = raw ^ (raw >> 32);
        v ^= v >> 16;
        v ^= v >> 8;
        v &= 0xff;
        v ^= pc_fold8 & xor_mask[i];
        out[i] = (base[i] + (v & index_mask[i])) as u16;
    }
}

/// The same lane pass as 4-wide AVX2: one `vals` gather, variable shift,
/// and the fold as three shift-XOR rounds per group of four lanes.
///
/// # Safety
///
/// Requires AVX2. `out` must hold at least `plan.padded` entries.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lanes_avx2(plan: &LanePlan, lane_ctx: &LaneContext, out: &mut [u16]) {
    use core::arch::x86_64::*;

    debug_assert!(out.len() >= plan.padded);
    let vals = lane_ctx.vals.as_ptr() as *const i64;
    let pc_fold = _mm256_set1_epi64x(lane_ctx.pc_fold8 as i64);
    let byte_mask = _mm256_set1_epi64x(0xff);
    let mut i = 0;
    while i < plan.padded {
        let src32 = _mm_loadu_si128(plan.src.as_ptr().add(i) as *const __m128i);
        let src64 = _mm256_cvtepu32_epi64(src32);
        let raw = _mm256_i64gather_epi64(vals, src64, 8);
        let shift = _mm256_loadu_si256(plan.shift.as_ptr().add(i) as *const __m256i);
        let mut v = _mm256_srlv_epi64(raw, shift);
        v = _mm256_and_si256(
            v,
            _mm256_loadu_si256(plan.mask.as_ptr().add(i) as *const __m256i),
        );
        v = _mm256_xor_si256(v, _mm256_srli_epi64(v, 32));
        v = _mm256_xor_si256(v, _mm256_srli_epi64(v, 16));
        v = _mm256_xor_si256(v, _mm256_srli_epi64(v, 8));
        v = _mm256_and_si256(v, byte_mask);
        let xor_mask = _mm256_loadu_si256(plan.xor_mask.as_ptr().add(i) as *const __m256i);
        v = _mm256_xor_si256(v, _mm256_and_si256(pc_fold, xor_mask));
        v = _mm256_and_si256(
            v,
            _mm256_loadu_si256(plan.index_mask.as_ptr().add(i) as *const __m256i),
        );
        v = _mm256_add_epi64(
            v,
            _mm256_loadu_si256(plan.base.as_ptr().add(i) as *const __m256i),
        );
        let mut lanes = [0i64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
        out[i] = lanes[0] as u16;
        out[i + 1] = lanes[1] as u16;
        out[i + 2] = lanes[2] as u16;
        out[i + 3] = lanes[3] as u16;
        i += 4;
    }
}

/// The lane pass as 8-wide AVX-512, fed straight from the
/// [`FeatureContext`]: the 32-slot value table is built in four zmm
/// registers (history slots masked-loaded with the current-PC fallback),
/// lane selection is two `vpermi2q` register permutes blended on source
/// bit 4, and the eight u16 offsets are narrowed with one `vpmovqw`
/// store. No [`LaneContext`] is materialized and no memory gather runs.
///
/// # Safety
///
/// Requires AVX-512 F. `out` must hold at least `plan.padded` entries.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn lanes_avx512(plan: &LanePlan, ctx: &FeatureContext<'_>, out: &mut [u16]) {
    use core::arch::x86_64::*;

    debug_assert!(out.len() >= plan.padded);
    // Value-table slots 0..8 and 8..16: history entries, with slots past
    // the recorded depth holding the current PC (the `history_pc`
    // fallback `LaneContext::new` also applies). Masked loads read only
    // the selected elements, so short histories never touch past-the-end
    // memory.
    let depth = ctx.pc_history.len().min(HISTORY_DEPTH);
    let pc = _mm512_set1_epi64(ctx.pc as i64);
    let hist = ctx.pc_history.as_ptr() as *const i64;
    let k0 = (1u32 << depth.min(8)) - 1;
    let k1 = (1u32 << depth.saturating_sub(8).min(8)) - 1;
    let v0 = _mm512_mask_loadu_epi64(pc, k0 as u8, hist);
    let v1 = _mm512_mask_loadu_epi64(pc, k1 as u8, hist.add(8));
    // Slots 16..24: the last two history entries, then pc / address /
    // flags / zero — the same layout as `LaneContext::vals`.
    let h16 = if depth > 16 {
        *hist.add(16)
    } else {
        ctx.pc as i64
    };
    let h17 = if depth > 17 {
        *hist.add(17)
    } else {
        ctx.pc as i64
    };
    let v2 = _mm512_set_epi64(
        0,
        i64::from(ctx.last_miss),
        i64::from(ctx.is_insert),
        i64::from(ctx.is_mru),
        ctx.address as i64,
        ctx.pc as i64,
        h17,
        h16,
    );
    // Slots 24..32 are the all-zero pad plane.
    let v3 = _mm512_setzero_si512();

    let pc_fold = _mm512_set1_epi64(fold8(ctx.pc) as i64);
    let byte_mask = _mm512_set1_epi64(0xff);
    let high_bit = _mm512_set1_epi64(16);
    let mut i = 0;
    while i < plan.padded {
        let src32 = _mm256_loadu_si256(plan.src.as_ptr().add(i) as *const __m256i);
        let idx = _mm512_cvtepu32_epi64(src32);
        // vpermi2q reads idx bits 3:0, so `lo` selects within slots
        // 0..16 and `hi` within 16..32; bit 4 picks the half.
        let lo = _mm512_permutex2var_epi64(v0, idx, v1);
        let hi = _mm512_permutex2var_epi64(v2, idx, v3);
        let in_hi = _mm512_test_epi64_mask(idx, high_bit);
        let raw = _mm512_mask_blend_epi64(in_hi, lo, hi);
        let shift = _mm512_loadu_epi64(plan.shift.as_ptr().add(i) as *const i64);
        let mut v = _mm512_srlv_epi64(raw, shift);
        v = _mm512_and_si512(
            v,
            _mm512_loadu_epi64(plan.mask.as_ptr().add(i) as *const i64),
        );
        v = _mm512_xor_si512(v, _mm512_srli_epi64(v, 32));
        v = _mm512_xor_si512(v, _mm512_srli_epi64(v, 16));
        v = _mm512_xor_si512(v, _mm512_srli_epi64(v, 8));
        v = _mm512_and_si512(v, byte_mask);
        let xor_mask = _mm512_loadu_epi64(plan.xor_mask.as_ptr().add(i) as *const i64);
        v = _mm512_xor_si512(v, _mm512_and_si512(pc_fold, xor_mask));
        v = _mm512_and_si512(
            v,
            _mm512_loadu_epi64(plan.index_mask.as_ptr().add(i) as *const i64),
        );
        v = _mm512_add_epi64(
            v,
            _mm512_loadu_epi64(plan.base.as_ptr().add(i) as *const i64),
        );
        let packed = _mm512_cvtepi64_epi16(v);
        _mm_storeu_si128(out.as_mut_ptr().add(i) as *mut __m128i, packed);
        i += 8;
    }
}

/// [`lanes_avx512`] unrolled over a batch for the 16-lane plans every
/// [`Feature::new`] feature set compiles to: the twelve plan-constant
/// vectors (lane selectors, shifts, masks, bases) and the two half-select
/// masks are loaded into registers once, so the per-access loop runs only
/// the value-table build, the permutes, and the lane arithmetic. Each
/// access `i` writes `out[i * 16 .. (i + 1) * 16]`. Bit-identical to
/// calling [`lanes_avx512`] per access — same instructions, hoisted
/// loads.
///
/// # Safety
///
/// Requires AVX-512 F. `plan.padded` must be 16 and `out` must hold at
/// least `ctxs.len() * 16` entries.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn lanes_avx512_batch16(plan: &LanePlan, ctxs: &[FeatureContext<'_>], out: &mut [u16]) {
    use core::arch::x86_64::*;

    debug_assert_eq!(plan.padded, 16);
    debug_assert!(out.len() >= ctxs.len() * 16);
    let high_bit = _mm512_set1_epi64(16);
    let byte_mask = _mm512_set1_epi64(0xff);
    // Plan-constant lane parameters, hoisted across the batch.
    let src0 = _mm256_loadu_si256(plan.src.as_ptr() as *const __m256i);
    let src1 = _mm256_loadu_si256(plan.src.as_ptr().add(8) as *const __m256i);
    let idx0 = _mm512_cvtepu32_epi64(src0);
    let idx1 = _mm512_cvtepu32_epi64(src1);
    let in_hi0 = _mm512_test_epi64_mask(idx0, high_bit);
    let in_hi1 = _mm512_test_epi64_mask(idx1, high_bit);
    let sh0 = _mm512_loadu_epi64(plan.shift.as_ptr() as *const i64);
    let sh1 = _mm512_loadu_epi64(plan.shift.as_ptr().add(8) as *const i64);
    let m0 = _mm512_loadu_epi64(plan.mask.as_ptr() as *const i64);
    let m1 = _mm512_loadu_epi64(plan.mask.as_ptr().add(8) as *const i64);
    let x0 = _mm512_loadu_epi64(plan.xor_mask.as_ptr() as *const i64);
    let x1 = _mm512_loadu_epi64(plan.xor_mask.as_ptr().add(8) as *const i64);
    let im0 = _mm512_loadu_epi64(plan.index_mask.as_ptr() as *const i64);
    let im1 = _mm512_loadu_epi64(plan.index_mask.as_ptr().add(8) as *const i64);
    let b0 = _mm512_loadu_epi64(plan.base.as_ptr() as *const i64);
    let b1 = _mm512_loadu_epi64(plan.base.as_ptr().add(8) as *const i64);

    for (i, ctx) in ctxs.iter().enumerate() {
        // Value-table build, exactly as in `lanes_avx512`.
        let depth = ctx.pc_history.len().min(HISTORY_DEPTH);
        let pc = _mm512_set1_epi64(ctx.pc as i64);
        let hist = ctx.pc_history.as_ptr() as *const i64;
        let k0 = (1u32 << depth.min(8)) - 1;
        let k1 = (1u32 << depth.saturating_sub(8).min(8)) - 1;
        let v0 = _mm512_mask_loadu_epi64(pc, k0 as u8, hist);
        let v1 = _mm512_mask_loadu_epi64(pc, k1 as u8, hist.add(8));
        let h16 = if depth > 16 {
            *hist.add(16)
        } else {
            ctx.pc as i64
        };
        let h17 = if depth > 17 {
            *hist.add(17)
        } else {
            ctx.pc as i64
        };
        let v2 = _mm512_set_epi64(
            0,
            i64::from(ctx.last_miss),
            i64::from(ctx.is_insert),
            i64::from(ctx.is_mru),
            ctx.address as i64,
            ctx.pc as i64,
            h17,
            h16,
        );
        let v3 = _mm512_setzero_si512();
        let pc_fold = _mm512_set1_epi64(fold8(ctx.pc) as i64);
        let dst = out.as_mut_ptr().add(i * 16);

        let lo = _mm512_permutex2var_epi64(v0, idx0, v1);
        let hi = _mm512_permutex2var_epi64(v2, idx0, v3);
        let raw = _mm512_mask_blend_epi64(in_hi0, lo, hi);
        let mut v = _mm512_srlv_epi64(raw, sh0);
        v = _mm512_and_si512(v, m0);
        v = _mm512_xor_si512(v, _mm512_srli_epi64(v, 32));
        v = _mm512_xor_si512(v, _mm512_srli_epi64(v, 16));
        v = _mm512_xor_si512(v, _mm512_srli_epi64(v, 8));
        v = _mm512_and_si512(v, byte_mask);
        v = _mm512_xor_si512(v, _mm512_and_si512(pc_fold, x0));
        v = _mm512_and_si512(v, im0);
        v = _mm512_add_epi64(v, b0);
        _mm_storeu_si128(dst as *mut __m128i, _mm512_cvtepi64_epi16(v));

        let lo = _mm512_permutex2var_epi64(v0, idx1, v1);
        let hi = _mm512_permutex2var_epi64(v2, idx1, v3);
        let raw = _mm512_mask_blend_epi64(in_hi1, lo, hi);
        let mut v = _mm512_srlv_epi64(raw, sh1);
        v = _mm512_and_si512(v, m1);
        v = _mm512_xor_si512(v, _mm512_srli_epi64(v, 32));
        v = _mm512_xor_si512(v, _mm512_srli_epi64(v, 16));
        v = _mm512_xor_si512(v, _mm512_srli_epi64(v, 8));
        v = _mm512_and_si512(v, byte_mask);
        v = _mm512_xor_si512(v, _mm512_and_si512(pc_fold, x1));
        v = _mm512_and_si512(v, im1);
        v = _mm512_add_epi64(v, b1);
        _mm_storeu_si128(dst.add(8) as *mut __m128i, _mm512_cvtepi64_epi16(v));
    }
}

/// Which access-time flag a [`FlagLane`] sources.
#[derive(Debug, Clone, Copy)]
enum FlagKind {
    /// `burst(..)`: the set-MRU flag.
    Mru,
    /// `insert(..)`: the miss-fill flag.
    Insert,
    /// `lastmiss(..)`: the set's last-access-missed flag.
    LastMiss,
}

/// One lane whose raw value is an access-time flag. Everything else a
/// lane reads (PC, address, history) is derivable from the access stream
/// alone, so batched front-ends compute whole windows of offsets ahead
/// of time with the flags zeroed and [`FeaturePlan::patch_flags`]
/// rewrites just these lanes once the outcome-dependent state is known.
#[derive(Debug, Clone, Copy)]
struct FlagLane {
    /// Offset-vector position (always `< len()`).
    lane: u32,
    flag: FlagKind,
    /// `0xff` when the lane XORs the shared PC fold.
    xor_mask: u64,
    /// `table_size - 1`.
    index_mask: u64,
    /// Arena base of the lane's table.
    base: u16,
}

/// A feature set lowered for the hot path, plus the arena geometry the
/// matching [`crate::tables::WeightTables`] uses.
#[derive(Debug, Clone)]
pub struct FeaturePlan {
    compiled: Vec<CompiledFeature>,
    /// The compiled features transposed into SoA lane arrays.
    lanes: LanePlan,
    /// Lanes sourcing access-time flags (see [`FlagLane`]).
    flag_lanes: Vec<FlagLane>,
    /// Whether any feature XORs with the PC (skip the shared fold if not).
    any_xor: bool,
    arena_len: usize,
}

impl FeaturePlan {
    /// Lowers `features`, assigning arena base offsets in feature order
    /// (the same layout [`crate::tables::WeightTables`] allocates).
    ///
    /// # Panics
    ///
    /// Panics if the combined table sizes overflow the 16-bit offset
    /// space (would need > 256 full-size features).
    pub fn new(features: &[Feature]) -> Self {
        let mut base = 0usize;
        let compiled = features
            .iter()
            .map(|f| {
                let c =
                    CompiledFeature::lower(f, u16::try_from(base).expect("arena offsets fit u16"));
                base += f.table_size();
                c
            })
            .collect();
        assert!(
            base <= usize::from(u16::MAX) + 1,
            "weight arena exceeds u16 offsets"
        );
        let compiled: Vec<CompiledFeature> = compiled;
        let flag_lanes = compiled
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let flag = match c.source {
                    Source::Mru => FlagKind::Mru,
                    Source::Insert => FlagKind::Insert,
                    Source::LastMiss => FlagKind::LastMiss,
                    _ => return None,
                };
                Some(FlagLane {
                    lane: i as u32,
                    flag,
                    xor_mask: if c.xor_pc { 0xff } else { 0 },
                    index_mask: c.index_mask,
                    base: c.base,
                })
            })
            .collect();
        FeaturePlan {
            lanes: LanePlan::build(&compiled),
            compiled,
            flag_lanes,
            any_xor: features.iter().any(|f| f.xor_pc),
            arena_len: base,
        }
    }

    /// Rewrites the flag-sourced entries of one access's precomputed
    /// offset vector (`offsets[..len()]`, as produced with all flags
    /// zeroed) for the true access-time flag values.
    ///
    /// Bit-identical to having computed the offsets with the flags set
    /// from the start: a flag lane's raw value is 0 or 1, for which the
    /// byte fold is the identity, so the lane formula collapses to
    /// `base + ((flag ^ (fold8(pc) & xor_mask)) & index_mask)` — applied
    /// here verbatim. Single-entry flag tables have `index_mask == 0`
    /// and still resolve to `base`, matching the compiled early-out.
    #[inline]
    pub fn patch_flags(
        &self,
        offsets: &mut [u16],
        pc: u64,
        is_mru: bool,
        is_insert: bool,
        last_miss: bool,
    ) {
        if self.flag_lanes.is_empty() {
            return;
        }
        let pc_fold8 = fold8(pc);
        for fl in &self.flag_lanes {
            let flag = u64::from(match fl.flag {
                FlagKind::Mru => is_mru,
                FlagKind::Insert => is_insert,
                FlagKind::LastMiss => last_miss,
            });
            let v = (flag ^ (pc_fold8 & fl.xor_mask)) & fl.index_mask;
            offsets[fl.lane as usize] = fl.base + v as u16;
        }
    }

    /// Number of compiled features.
    pub fn len(&self) -> usize {
        self.compiled.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.compiled.is_empty()
    }

    /// Total weight-arena entries across all features.
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }

    /// Computes every feature's arena offset for an access into `out`
    /// (cleared first). Allocation-free on the hot path once `out` has
    /// warmed to the plan's padded lane count; dispatches to the lane
    /// kernel family [`crate::simd::level`] selected at startup.
    #[inline]
    pub fn compute_offsets(&self, ctx: &FeatureContext<'_>, out: &mut Vec<u16>) {
        self.compute_offsets_with(simd::level(), ctx, out);
    }

    /// [`Self::compute_offsets`] with an explicit kernel level, for the
    /// kernel-equivalence sweeps in `mrp-verify` and the benches. Falls
    /// back to the per-feature compiled path for plans outside the lane
    /// formula's domain (never produced by [`Feature::new`] features).
    pub fn compute_offsets_with(
        &self,
        level: SimdLevel,
        ctx: &FeatureContext<'_>,
        out: &mut Vec<u16>,
    ) {
        if !self.lanes.ok {
            self.compute_offsets_compiled(ctx, out);
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if level == SimdLevel::Avx512 && std::arch::is_x86_feature_detected!("avx512f") {
            out.clear();
            out.resize(self.lanes.padded, 0);
            // SAFETY: AVX-512 F presence just checked; `out` holds the
            // padded lane count.
            unsafe { lanes_avx512(&self.lanes, ctx, out) };
            out.truncate(self.compiled.len());
            return;
        }
        let lane_ctx = LaneContext::new(ctx);
        self.offsets_from_lane_ctx(level, &lane_ctx, out);
    }

    /// The per-feature interpretation of the compiled plan: the reference
    /// the lane kernels are verified against, and the fallback for plans
    /// the lanes cannot express.
    pub fn compute_offsets_compiled(&self, ctx: &FeatureContext<'_>, out: &mut Vec<u16>) {
        let pc_fold8 = if self.any_xor {
            shared_pc_fold(ctx.pc)
        } else {
            0
        };
        out.clear();
        out.extend(self.compiled.iter().map(|c| c.index_offset(ctx, pc_fold8)));
    }

    /// Runs the selected lane kernel over one transposed context. `out`
    /// is sized to the padded lane count for the kernel, then truncated
    /// to the feature count.
    fn offsets_from_lane_ctx(&self, level: SimdLevel, lane_ctx: &LaneContext, out: &mut Vec<u16>) {
        out.clear();
        out.resize(self.lanes.padded, 0);
        self.run_lane_kernel(level, lane_ctx, out);
        out.truncate(self.compiled.len());
    }

    fn run_lane_kernel(&self, level: SimdLevel, lane_ctx: &LaneContext, out: &mut [u16]) {
        #[cfg(target_arch = "x86_64")]
        {
            if level == SimdLevel::Avx2 && std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 presence just checked; `out` holds the
                // padded lane count.
                unsafe { lanes_avx2(&self.lanes, lane_ctx, out) };
                return;
            }
        }
        let _ = level;
        lanes_scalar(&self.lanes, lane_ctx, out);
    }

    /// The small-batch front-end: computes the offsets of up to
    /// [`MAX_BATCH`] consecutive accesses in one pass. All contexts are
    /// transposed and their PCs folded together first, then the lane
    /// kernel runs back to back over the group; access `i`'s offsets land
    /// at `out[i * len .. (i + 1) * len]`.
    ///
    /// Bit-identical to calling [`Self::compute_offsets`] per context:
    /// batching reorders no observable computation, it only hoists the
    /// context transposition out of the per-access loop.
    ///
    /// # Panics
    ///
    /// Panics if `ctxs` holds more than [`MAX_BATCH`] contexts.
    pub fn compute_offsets_batch(&self, ctxs: &[FeatureContext<'_>], out: &mut Vec<u16>) {
        assert!(ctxs.len() <= MAX_BATCH, "batch exceeds MAX_BATCH");
        out.clear();
        let len = self.compiled.len();
        if !self.lanes.ok {
            let mut one = Vec::with_capacity(len);
            for ctx in ctxs {
                self.compute_offsets_compiled(ctx, &mut one);
                out.extend_from_slice(&one);
            }
            return;
        }
        let padded = self.lanes.padded;
        let level = simd::level();
        out.resize(ctxs.len() * padded, 0);
        #[cfg(target_arch = "x86_64")]
        let direct_avx512 =
            level == SimdLevel::Avx512 && std::arch::is_x86_feature_detected!("avx512f");
        #[cfg(not(target_arch = "x86_64"))]
        let direct_avx512 = false;
        if direct_avx512 {
            // The AVX-512 kernel builds its value table in registers, so
            // the group skips the transposition phase entirely. 16-lane
            // plans (every `Feature::new` set) run the batch variant with
            // the plan constants hoisted across the group.
            #[cfg(target_arch = "x86_64")]
            if padded == 16 {
                // SAFETY: AVX-512 F presence checked above; `out` holds
                // `ctxs.len() * 16` entries and the plan is 16-lane.
                unsafe { lanes_avx512_batch16(&self.lanes, ctxs, out) };
            } else {
                for (i, ctx) in ctxs.iter().enumerate() {
                    // SAFETY: AVX-512 F presence checked above; each
                    // slice holds the padded lane count.
                    unsafe {
                        lanes_avx512(&self.lanes, ctx, &mut out[i * padded..(i + 1) * padded])
                    };
                }
            }
        } else {
            // Front-end phase: transpose every context (and fold every
            // PC) before any index computation.
            let mut lane_ctxs = [LaneContext {
                vals: [0; LANE_VALS],
                pc_fold8: 0,
            }; MAX_BATCH];
            for (slot, ctx) in lane_ctxs.iter_mut().zip(ctxs) {
                *slot = LaneContext::new(ctx);
            }
            // Kernel phase: lane passes back to back into one buffer.
            for (i, lane_ctx) in lane_ctxs[..ctxs.len()].iter().enumerate() {
                self.run_lane_kernel(level, lane_ctx, &mut out[i * padded..(i + 1) * padded]);
            }
        }
        if padded != len {
            for i in 1..ctxs.len() {
                out.copy_within(i * padded..i * padded + len, i * len);
            }
        }
        out.truncate(ctxs.len() * len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature_sets;

    /// Contexts exercising warm/cold history, all flag combinations, and
    /// extreme PC/address values.
    fn contexts(history: &[u64]) -> Vec<FeatureContext<'_>> {
        let mut out = Vec::new();
        for seed in 0..256u64 {
            let pc = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left((seed % 64) as u32);
            let address = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ (pc >> 3);
            out.push(FeatureContext {
                pc,
                address,
                pc_history: if seed % 3 == 0 { &[] } else { history },
                is_mru: seed % 2 == 0,
                is_insert: seed % 3 == 0,
                last_miss: seed % 5 == 0,
            });
        }
        for pc in [0, 1, u64::MAX, 0x7fff_ffff_ffff_ffff] {
            out.push(FeatureContext {
                pc,
                address: pc ^ 0x3f,
                pc_history: history,
                is_mru: true,
                is_insert: true,
                last_miss: true,
            });
        }
        out
    }

    fn assert_plan_matches(features: &[Feature]) {
        let plan = FeaturePlan::new(features);
        let history: Vec<u64> = (0..18).map(|i| 0x40_0000 + i * 0x1351).collect();
        let mut offsets = Vec::new();
        for ctx in contexts(&history) {
            plan.compute_offsets(&ctx, &mut offsets);
            let mut base = 0u16;
            for (f, &offset) in features.iter().zip(&offsets) {
                assert_eq!(
                    offset,
                    base + f.index(&ctx),
                    "{f} diverged at pc={:#x} address={:#x}",
                    ctx.pc,
                    ctx.address
                );
                base += f.table_size() as u16;
            }
        }
    }

    #[test]
    fn published_feature_sets_compile_bit_identically() {
        assert_plan_matches(&feature_sets::table_1a());
        assert_plan_matches(&feature_sets::table_1b());
        assert_plan_matches(&feature_sets::table_2());
    }

    #[test]
    fn every_kind_compiles_bit_identically_with_and_without_xor() {
        for xor_pc in [false, true] {
            let features: Vec<Feature> = [
                FeatureKind::Pc {
                    begin: 1,
                    end: 53,
                    which: 10,
                },
                FeatureKind::Pc {
                    begin: 0,
                    end: 63,
                    which: 0,
                },
                FeatureKind::Address { begin: 8, end: 19 },
                FeatureKind::Address { begin: 0, end: 63 },
                FeatureKind::Bias,
                FeatureKind::Burst,
                FeatureKind::Insert,
                FeatureKind::LastMiss,
                FeatureKind::Offset { begin: 0, end: 5 },
                FeatureKind::Offset { begin: 3, end: 5 },
            ]
            .into_iter()
            .map(|kind| Feature::new(9, kind, xor_pc))
            .collect();
            assert_plan_matches(&features);
        }
    }

    #[test]
    fn offset_clamp_matches_reference() {
        // begin/end beyond bit 5 clamp to the block-offset width.
        for (begin, end) in [(4, 9), (6, 9), (0, 63)] {
            let features = vec![Feature::new(3, FeatureKind::Offset { begin, end }, false)];
            assert_plan_matches(&features);
        }
    }

    #[test]
    fn arena_layout_is_cumulative_table_sizes() {
        let features = feature_sets::table_1a();
        let plan = FeaturePlan::new(&features);
        assert_eq!(
            plan.arena_len(),
            features.iter().map(|f| f.table_size()).sum::<usize>()
        );
    }

    #[test]
    fn shared_fold_matches_per_feature_fold() {
        for pc in [0u64, 0x400_000, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(shared_pc_fold(pc), fold(pc, MAX_INDEX_BITS));
        }
    }

    /// Every available kernel level must agree with the per-feature
    /// compiled interpretation (itself verified against `Feature::index`
    /// above) on every context.
    fn assert_lane_kernels_match(features: &[Feature]) {
        let plan = FeaturePlan::new(features);
        assert!(plan.lanes.ok, "Feature::new features must be lane-able");
        let history: Vec<u64> = (0..18).map(|i| 0x40_0000 + i * 0x1351).collect();
        let (mut compiled, mut lane) = (Vec::new(), Vec::new());
        for ctx in contexts(&history) {
            plan.compute_offsets_compiled(&ctx, &mut compiled);
            for &level in simd::available_levels() {
                plan.compute_offsets_with(level, &ctx, &mut lane);
                assert_eq!(
                    lane, compiled,
                    "{level:?} diverged at pc={:#x} address={:#x}",
                    ctx.pc, ctx.address
                );
            }
        }
    }

    #[test]
    fn lane_kernels_match_compiled_on_published_sets() {
        assert_lane_kernels_match(&feature_sets::table_1a());
        assert_lane_kernels_match(&feature_sets::table_1b());
        assert_lane_kernels_match(&feature_sets::table_2());
    }

    #[test]
    fn lane_kernels_match_compiled_on_every_kind() {
        for xor_pc in [false, true] {
            let features: Vec<Feature> = [
                FeatureKind::Pc {
                    begin: 1,
                    end: 53,
                    which: 17,
                },
                FeatureKind::Address { begin: 0, end: 63 },
                FeatureKind::Bias,
                FeatureKind::Burst,
                FeatureKind::Insert,
                FeatureKind::LastMiss,
                FeatureKind::Offset { begin: 0, end: 5 },
            ]
            .into_iter()
            .map(|kind| Feature::new(7, kind, xor_pc))
            .collect();
            assert_lane_kernels_match(&features);
        }
    }

    #[test]
    fn lane_pad_is_inert_and_truncated() {
        // A 1-feature plan pads to LANE_WIDTH lanes; the output must hold
        // exactly one offset regardless of kernel.
        let features = vec![Feature::new(3, FeatureKind::Burst, true)];
        let plan = FeaturePlan::new(&features);
        assert_eq!(plan.lanes.padded, LANE_WIDTH);
        let mut out = Vec::new();
        for &level in simd::available_levels() {
            plan.compute_offsets_with(
                level,
                &FeatureContext {
                    pc: 0x400040,
                    address: 0x1234,
                    pc_history: &[],
                    is_mru: true,
                    is_insert: false,
                    last_miss: false,
                },
                &mut out,
            );
            assert_eq!(out.len(), 1, "{level:?}");
        }
    }

    #[test]
    fn batched_offsets_equal_sequential() {
        let features = feature_sets::table_1a();
        let plan = FeaturePlan::new(&features);
        let history: Vec<u64> = (0..18).map(|i| 0x40_0000 + i * 0x1351).collect();
        let ctxs = contexts(&history);
        let mut one = Vec::new();
        let mut batched = Vec::new();
        for group in ctxs.chunks(MAX_BATCH) {
            plan.compute_offsets_batch(group, &mut batched);
            assert_eq!(batched.len(), group.len() * plan.len());
            for (i, ctx) in group.iter().enumerate() {
                plan.compute_offsets(ctx, &mut one);
                assert_eq!(
                    &batched[i * plan.len()..(i + 1) * plan.len()],
                    one.as_slice(),
                    "batch slot {i}"
                );
            }
        }
    }

    #[test]
    fn patched_flag_offsets_equal_direct_computation() {
        // Offsets computed with flags zeroed then patched must equal
        // offsets computed with the true flags, for every flag combo,
        // kernel level, and both xor and non-xor flag features.
        for xor_pc in [false, true] {
            let features = vec![
                Feature::new(9, FeatureKind::Burst, xor_pc),
                Feature::new(
                    9,
                    FeatureKind::Pc {
                        begin: 0,
                        end: 63,
                        which: 2,
                    },
                    true,
                ),
                Feature::new(9, FeatureKind::Insert, xor_pc),
                Feature::new(9, FeatureKind::Address { begin: 6, end: 27 }, xor_pc),
                Feature::new(9, FeatureKind::LastMiss, xor_pc),
            ];
            let plan = FeaturePlan::new(&features);
            let history: Vec<u64> = (0..18).map(|i| 0x40_0000 + i * 0x1351).collect();
            let (mut zeroed, mut direct) = (Vec::new(), Vec::new());
            for ctx in contexts(&history) {
                for &level in simd::available_levels() {
                    let blank = FeatureContext {
                        is_mru: false,
                        is_insert: false,
                        last_miss: false,
                        ..ctx
                    };
                    plan.compute_offsets_with(level, &blank, &mut zeroed);
                    plan.patch_flags(
                        &mut zeroed,
                        ctx.pc,
                        ctx.is_mru,
                        ctx.is_insert,
                        ctx.last_miss,
                    );
                    plan.compute_offsets_with(level, &ctx, &mut direct);
                    assert_eq!(
                        zeroed, direct,
                        "{level:?} flags ({}, {}, {})",
                        ctx.is_mru, ctx.is_insert, ctx.last_miss
                    );
                }
            }
        }
    }

    #[test]
    fn long_history_slices_stay_bit_identical() {
        // Callers may hand a history longer than HISTORY_DEPTH; lanes and
        // reference must agree (features can only reach depth < 18).
        let features = feature_sets::table_2();
        let plan = FeaturePlan::new(&features);
        let history: Vec<u64> = (0..40).map(|i| 0x8_0000 + i * 0x77).collect();
        let ctx = FeatureContext {
            pc: 0x400100,
            address: 0xdead40,
            pc_history: &history,
            is_mru: false,
            is_insert: true,
            last_miss: true,
        };
        let mut offsets = Vec::new();
        for &level in simd::available_levels() {
            plan.compute_offsets_with(level, &ctx, &mut offsets);
            let mut base = 0u16;
            for (f, &offset) in features.iter().zip(&offsets) {
                assert_eq!(offset, base + f.index(&ctx), "{f} at {level:?}");
                base += f.table_size() as u16;
            }
        }
    }
}

//! The paper's published feature sets (Tables 1(a), 1(b), and 2).
//!
//! These are the cross-validated single-thread sets and the
//! multi-programmed set exactly as printed, including the intentional
//! duplicate `pc(17,6,20,0,1)` in Table 1(a) ("the hill-climbing algorithm
//! may choose to duplicate a feature", §5.4).
//!
//! Two entries required interpretation of apparent typesetting errors in
//! the camera-ready table:
//!
//! * Table 2's `address(9,9,14,5,1)` lists five parameters where
//!   `address` takes four; we read it as `address(9,9,14,1)`.
//! * Table 2's `pc(9,11,7,16,0)` has an inverted bit range (`B=11 > E=7`);
//!   we read it as `pc(9,7,11,16,0)`.

use crate::feature::{Feature, FeatureKind};

/// Shorthand constructors for readable set definitions.
fn pc(a: u8, b: u8, e: u8, w: u8, x: u8) -> Feature {
    Feature::new(
        a,
        FeatureKind::Pc {
            begin: b,
            end: e,
            which: w,
        },
        x != 0,
    )
}

fn address(a: u8, b: u8, e: u8, x: u8) -> Feature {
    Feature::new(a, FeatureKind::Address { begin: b, end: e }, x != 0)
}

fn bias(a: u8, x: u8) -> Feature {
    Feature::new(a, FeatureKind::Bias, x != 0)
}

fn burst(a: u8, x: u8) -> Feature {
    Feature::new(a, FeatureKind::Burst, x != 0)
}

fn insert(a: u8, x: u8) -> Feature {
    Feature::new(a, FeatureKind::Insert, x != 0)
}

fn lastmiss(a: u8, x: u8) -> Feature {
    Feature::new(a, FeatureKind::LastMiss, x != 0)
}

fn offset(a: u8, b: u8, e: u8, x: u8) -> Feature {
    Feature::new(a, FeatureKind::Offset { begin: b, end: e }, x != 0)
}

/// Table 1(a): first cross-validated single-thread feature set.
pub fn table_1a() -> Vec<Feature> {
    vec![
        bias(16, 0),
        burst(6, 0),
        insert(16, 0),
        insert(16, 1),
        insert(17, 1),
        insert(8, 1),
        lastmiss(9, 0),
        offset(10, 0, 6, 1),
        offset(15, 1, 6, 1),
        pc(10, 1, 53, 10, 0),
        pc(16, 3, 11, 16, 1),
        pc(16, 8, 16, 5, 0),
        pc(17, 6, 20, 0, 1),
        pc(17, 6, 20, 0, 1),
        pc(17, 6, 20, 14, 1),
        pc(7, 14, 43, 11, 0),
    ]
}

/// Table 1(b): second cross-validated single-thread feature set (used for
/// the paper's area estimate, §4.4).
pub fn table_1b() -> Vec<Feature> {
    vec![
        address(11, 8, 19, 0),
        bias(6, 1),
        insert(15, 0),
        insert(16, 1),
        insert(6, 1),
        offset(15, 1, 6, 1),
        offset(15, 3, 7, 0),
        pc(11, 2, 24, 4, 1),
        pc(15, 14, 32, 6, 0),
        pc(15, 5, 28, 0, 1),
        pc(16, 0, 16, 8, 1),
        pc(17, 6, 20, 0, 1),
        pc(6, 12, 14, 10, 1),
        pc(7, 1, 24, 11, 0),
        pc(7, 14, 43, 11, 0),
        pc(8, 1, 61, 11, 0),
    ]
}

/// Table 2: the multi-programmed feature set (developed on 100 training
/// mixes).
pub fn table_2() -> Vec<Feature> {
    vec![
        bias(6, 0),
        address(9, 9, 14, 1),
        address(9, 12, 29, 0),
        address(13, 21, 29, 0),
        address(14, 17, 25, 0),
        lastmiss(6, 0),
        lastmiss(18, 0),
        offset(13, 0, 4, 0),
        offset(14, 0, 6, 0),
        offset(16, 0, 1, 0),
        pc(6, 13, 31, 4, 0),
        pc(9, 7, 11, 16, 0),
        pc(13, 16, 24, 17, 0),
        pc(16, 2, 10, 2, 0),
        pc(16, 4, 46, 9, 0),
        pc(17, 0, 13, 5, 0),
    ]
}

/// Suite-tuned feature set A, derived with the paper's §5 methodology
/// (random search + hill climbing, two-fold cross-validation) on *this
/// repository's* workload suite by the `derive_features` binary — the
/// analogue of Table 1(a), which was derived on SPEC CPU 2006 +
/// CloudSuite and does not transfer to a different workload population.
pub fn suite_tuned_a() -> Vec<Feature> {
    vec![
        bias(11, 1),
        pc(17, 2, 17, 1, 1),
        insert(8, 1),
        insert(8, 1),
        address(16, 10, 25, 1),
        address(16, 13, 27, 1),
        pc(3, 10, 50, 8, 0),
        pc(16, 2, 17, 1, 0),
        pc(17, 2, 17, 2, 0),
        pc(15, 2, 17, 1, 0),
        address(15, 10, 24, 1),
        address(1, 22, 28, 1),
        pc(16, 2, 17, 0, 0),
        pc(16, 2, 17, 1, 1),
        insert(9, 1),
        bias(3, 0),
    ]
}

/// Suite-tuned feature set B (cross-validation counterpart of
/// [`suite_tuned_a`]: derived on the complementary half of the suite, so
/// workloads in half A are reported with this set and vice versa).
pub fn suite_tuned_b() -> Vec<Feature> {
    vec![
        pc(16, 2, 17, 2, 0),
        pc(16, 2, 17, 2, 1),
        pc(16, 15, 38, 8, 1),
        pc(16, 15, 38, 8, 1),
        address(17, 18, 33, 1),
        address(16, 13, 28, 1),
        address(14, 22, 26, 1),
        pc(15, 2, 17, 1, 1),
        pc(17, 15, 38, 8, 1),
        address(17, 18, 33, 1),
        pc(16, 2, 17, 1, 1),
        address(1, 22, 28, 1),
        pc(12, 5, 30, 0, 1),
        pc(16, 2, 17, 1, 1),
        pc(17, 15, 38, 8, 1),
        pc(12, 5, 30, 0, 1),
    ]
}

/// A Perceptron-equivalent feature set: the six features of Teran et
/// al.'s perceptron reuse predictor (current PC, three recent PCs, two
/// tag shifts XORed with the PC) expressed as multiperspective features,
/// all at the cache's associativity. With this set the multiperspective
/// machinery reduces to (a superset of) Perceptron — useful for isolating
/// the contribution of feature diversity from the training mechanism.
pub fn perceptron_like() -> Vec<Feature> {
    vec![
        pc(16, 2, 17, 0, 0),
        pc(16, 2, 17, 1, 0),
        pc(16, 2, 17, 2, 0),
        pc(16, 2, 17, 3, 0),
        address(16, 10, 25, 1),
        address(16, 13, 28, 1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sets_have_16_features() {
        assert_eq!(table_1a().len(), 16);
        assert_eq!(table_1b().len(), 16);
        assert_eq!(table_2().len(), 16);
    }

    #[test]
    fn table_1a_contains_the_intentional_duplicate() {
        let set = table_1a();
        let dup = set
            .iter()
            .filter(|f| f.to_string() == "pc(17,6,20,0,1)")
            .count();
        assert_eq!(dup, 2);
    }

    #[test]
    fn single_thread_sets_share_common_features() {
        // §5.4: "the two sets of single-thread features share some
        // elements, for instance, pc(17,6,20,0,1) appears in both".
        let a: Vec<String> = table_1a().iter().map(|f| f.to_string()).collect();
        let b: Vec<String> = table_1b().iter().map(|f| f.to_string()).collect();
        assert!(a.contains(&"pc(17,6,20,0,1)".to_string()));
        assert!(b.contains(&"pc(17,6,20,0,1)".to_string()));
        assert!(a.contains(&"offset(15,1,6,1)".to_string()));
        assert!(b.contains(&"offset(15,1,6,1)".to_string()));
        assert!(a.contains(&"pc(7,14,43,11,0)".to_string()));
        assert!(b.contains(&"pc(7,14,43,11,0)".to_string()));
    }

    #[test]
    fn multiprogrammed_set_is_address_heavy_and_insert_free() {
        // §5.4 observations: four address features, no insert features.
        let set = table_2();
        let addresses = set
            .iter()
            .filter(|f| matches!(f.kind, FeatureKind::Address { .. }))
            .count();
        let inserts = set
            .iter()
            .filter(|f| matches!(f.kind, FeatureKind::Insert))
            .count();
        assert_eq!(addresses, 4);
        assert_eq!(inserts, 0);
    }

    #[test]
    fn index_vector_bits_match_paper_overhead_math() {
        // §4.4: Table 1(b) needs 118 index bits per sampler entry.
        let bits: u32 = table_1b()
            .iter()
            .map(|f| (f.table_size() as u32).trailing_zeros())
            .sum();
        assert_eq!(bits, 118);
    }

    #[test]
    fn every_feature_round_trips_through_display() {
        for f in table_1a().iter().chain(&table_1b()).chain(&table_2()) {
            let s = f.to_string();
            assert!(s.contains('('), "{s}");
            assert!((1..=18).contains(&f.assoc));
        }
    }
}

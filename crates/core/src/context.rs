//! Runtime state features are evaluated against.

/// Snapshot of the inputs one access presents to the feature set.
///
/// Borrowed views into the per-core history keep index computation
/// allocation-free on the hot path.
#[derive(Debug, Clone, Copy)]
pub struct FeatureContext<'a> {
    /// PC of the current memory instruction.
    pub pc: u64,
    /// Full byte address of the access.
    pub address: u64,
    /// Recent PCs, most recent first; `pc_history[0]` is the current PC
    /// once recorded. Features index this with their `W` parameter.
    pub pc_history: &'a [u64],
    /// Whether the accessed block is the set's most-recently-used block.
    pub is_mru: bool,
    /// Whether this access inserts the block (LLC miss fill path).
    pub is_insert: bool,
    /// Whether the previous access to this set missed.
    pub last_miss: bool,
}

impl FeatureContext<'_> {
    /// The `which`-th most recent PC (0 = current). Falls back to the
    /// current PC while the history is still warming up.
    pub fn history_pc(&self, which: usize) -> u64 {
        self.pc_history.get(which).copied().unwrap_or(self.pc)
    }
}

/// Depth of PC history kept per core: the published feature sets use `W`
/// up to 17 (Table 2's `pc(13,16,24,17,0)`), so 18 entries cover every
/// parameterization.
pub const HISTORY_DEPTH: usize = 18;

/// Per-core history of memory-instruction PCs, most recent first.
///
/// A small fixed buffer shifted on push: 17 copies per access is cheaper
/// and simpler than ring arithmetic at this size, and keeps the history
/// viewable as a plain slice.
#[derive(Debug, Clone, Default)]
pub struct PcHistory {
    entries: [u64; HISTORY_DEPTH],
    len: usize,
}

impl PcHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        PcHistory::default()
    }

    /// Records the PC of a new memory access (becomes entry 0).
    pub fn push(&mut self, pc: u64) {
        self.entries.copy_within(0..HISTORY_DEPTH - 1, 1);
        self.entries[0] = pc;
        self.len = (self.len + 1).min(HISTORY_DEPTH);
    }

    /// The history as a slice, most recent first.
    pub fn as_slice(&self) -> &[u64] {
        &self.entries[..self.len]
    }

    /// Recorded depth so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no accesses have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Per-set tracking needed by the `burst` and `lastmiss` features plus the
/// MRU determination: the last block accessed in each set and whether the
/// last access missed ("The lastmiss feature requires keeping a single
/// extra bit for every set", §3.4).
///
/// Both facts are packed into one word per set — `(block << 1) | missed`
/// — so the hot path's `is_mru`/`last_miss` pair touches a single cache
/// line per set instead of two. Block numbers are byte addresses shifted
/// right by the line-size bits, so the top bit is always free. The
/// initial sentinel clears the miss bit and keeps a block value
/// (`u64::MAX >> 1`) no real address can produce.
#[derive(Debug, Clone)]
pub struct SetState {
    packed: Vec<u64>,
}

impl SetState {
    /// Creates state for `sets` cache sets.
    pub fn new(sets: u32) -> Self {
        SetState {
            packed: vec![!1u64; sets as usize],
        }
    }

    /// Whether `block` is the most recently accessed block of `set`.
    pub fn is_mru(&self, set: u32, block: u64) -> bool {
        self.packed[set as usize] >> 1 == block
    }

    /// Whether the last access to `set` missed.
    pub fn last_miss(&self, set: u32) -> bool {
        self.packed[set as usize] & 1 != 0
    }

    /// Records the outcome of an access to `set`.
    pub fn record(&mut self, set: u32, block: u64, missed: bool) {
        self.packed[set as usize] = (block << 1) | u64::from(missed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_is_most_recent_first() {
        let mut h = PcHistory::new();
        h.push(1);
        h.push(2);
        h.push(3);
        assert_eq!(h.as_slice(), &[3, 2, 1]);
    }

    #[test]
    fn history_is_bounded() {
        let mut h = PcHistory::new();
        for pc in 0..100 {
            h.push(pc);
        }
        assert_eq!(h.len(), HISTORY_DEPTH);
        assert_eq!(h.as_slice()[0], 99);
        assert_eq!(h.as_slice()[HISTORY_DEPTH - 1], 100 - HISTORY_DEPTH as u64);
    }

    #[test]
    fn history_slice_is_contiguous_after_wrap() {
        let mut h = PcHistory::new();
        for pc in 0..(HISTORY_DEPTH as u64 * 3) {
            h.push(pc);
            assert_eq!(h.as_slice().len(), h.len(), "deque split detected");
        }
    }

    #[test]
    fn context_falls_back_to_current_pc() {
        let ctx = FeatureContext {
            pc: 0x42,
            address: 0,
            pc_history: &[0x42, 0x41],
            is_mru: false,
            is_insert: false,
            last_miss: false,
        };
        assert_eq!(ctx.history_pc(1), 0x41);
        assert_eq!(ctx.history_pc(9), 0x42);
    }

    #[test]
    fn set_state_tracks_mru_and_lastmiss() {
        let mut s = SetState::new(4);
        assert!(!s.is_mru(0, 5));
        s.record(0, 5, true);
        assert!(s.is_mru(0, 5));
        assert!(s.last_miss(0));
        assert!(!s.last_miss(1));
        s.record(0, 6, false);
        assert!(!s.is_mru(0, 5));
        assert!(!s.last_miss(0));
    }
}

//! The `PredictionEngine` facade: one typed front door for building and
//! driving an LLC + reuse-predictor instance.
//!
//! Every entry point used to construct caches and policies ad-hoc —
//! driver binaries, replay loops, orchestrator workers, each repeating
//! the same geometry/policy/knob plumbing. [`EngineConfig`] centralizes
//! construction (geometry, policy factory, [`RuntimeOptions`], optional
//! confidence telemetry) and [`PredictionEngine`] is the run-time
//! handle: feed it access batches with
//! [`submit_batch`](PredictionEngine::submit_batch), read a point-in-time
//! [`EngineStats`] with [`snapshot`](PredictionEngine::snapshot).
//!
//! The facade is policy-agnostic: anything implementing
//! [`ReplacementPolicy`] plugs in through
//! [`EngineConfig::policy_with`]. Batch submission reproduces the exact
//! hook protocol the replay loops use — announced windows of
//! [`LLC_LOOKAHEAD`] accesses when the policy subscribes, per-access
//! core-stream delivery when it observes core accesses — so an engine
//! fed the same stream as a legacy loop lands on bit-identical state
//! (held to that by the facade-equivalence tests in `mrp-experiments`).

use mrp_cache::{
    AccessResult, Cache, CacheConfig, CacheStats, LlcRecording, ReplacementPolicy, UpcomingAccess,
    LLC_LOOKAHEAD,
};
use mrp_trace::MemoryAccess;

use crate::options::RuntimeOptions;

/// One access submitted to an engine — the trace record type, re-exported
/// so serving layers can name it without importing `mrp-trace`.
pub type Access = MemoryAccess;

type PolicyFactory = Box<dyn FnOnce(&CacheConfig) -> Box<dyn ReplacementPolicy + Send>>;

/// Builder for a [`PredictionEngine`].
///
/// ```ignore
/// let mut engine = EngineConfig::new(CacheConfig::llc_single())
///     .policy_with(|llc| Box::new(Mpppb::new(MpppbConfig::single_thread(llc), llc)))
///     .options(RuntimeOptions::from_env())
///     .label("tenant-0")
///     .build();
/// let decisions = engine.submit_batch(&accesses);
/// ```
pub struct EngineConfig {
    llc: CacheConfig,
    policy: Option<PolicyFactory>,
    options: RuntimeOptions,
    label: String,
    track_confidence: bool,
}

impl EngineConfig {
    /// Starts a configuration for the LLC geometry `llc`.
    pub fn new(llc: CacheConfig) -> Self {
        EngineConfig {
            llc,
            policy: None,
            options: RuntimeOptions::default(),
            label: String::new(),
            track_confidence: false,
        }
    }

    /// Uses an already-constructed policy (must match the geometry).
    pub fn policy(mut self, policy: Box<dyn ReplacementPolicy + Send>) -> Self {
        self.policy = Some(Box::new(move |_| policy));
        self
    }

    /// Uses a policy built from the configured geometry at
    /// [`build`](EngineConfig::build) time — the usual form, since every
    /// policy sizes its per-set state from the `CacheConfig`.
    pub fn policy_with<F>(mut self, factory: F) -> Self
    where
        F: FnOnce(&CacheConfig) -> Box<dyn ReplacementPolicy + Send> + 'static,
    {
        self.policy = Some(Box::new(factory));
        self
    }

    /// Installs these [`RuntimeOptions`] process-wide when the engine is
    /// built (default: defer everything to the environment).
    pub fn options(mut self, options: RuntimeOptions) -> Self {
        self.options = options;
        self
    }

    /// Display label carried into [`EngineStats`] (e.g. a tenant or
    /// shard name).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Enables per-decision confidence histograms (default off — the
    /// predictor hot path pays nothing unless telemetry asks).
    pub fn track_confidence(mut self, enabled: bool) -> Self {
        self.track_confidence = enabled;
        self
    }

    /// Constructs the engine: installs the runtime options, builds the
    /// policy against the geometry, and wires up telemetry.
    ///
    /// # Panics
    ///
    /// Panics if no policy was configured.
    pub fn build(self) -> PredictionEngine {
        self.options.install();
        let factory = self
            .policy
            .expect("EngineConfig::build: no policy configured (use .policy / .policy_with)");
        let mut policy = factory(&self.llc);
        if self.track_confidence {
            policy.set_confidence_tracking(true);
        }
        PredictionEngine {
            llc: Cache::new(self.llc, policy),
            label: self.label,
            processed: 0,
            decisions: Decisions::default(),
            window: Vec::new(),
        }
    }
}

/// Tally of the outcomes from one or more
/// [`submit_batch`](PredictionEngine::submit_batch) calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Decisions {
    /// Accesses processed.
    pub processed: u64,
    /// Accesses that hit in the LLC.
    pub hits: u64,
    /// Accesses that missed and filled.
    pub misses: u64,
    /// Misses the policy chose to bypass.
    pub bypassed: u64,
}

impl Decisions {
    /// Accumulates another tally.
    pub fn merge(&mut self, other: &Decisions) {
        self.processed += other.processed;
        self.hits += other.hits;
        self.misses += other.misses;
        self.bypassed += other.bypassed;
    }
}

/// Point-in-time statistics for one engine ([`PredictionEngine::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// The engine's configured label.
    pub label: String,
    /// Accesses submitted through the facade since construction.
    pub processed: u64,
    /// The LLC's counters.
    pub llc: CacheStats,
    /// Per-decision confidence histogram
    /// ([`crate::mpppb::CONFIDENCE_BINS`] bins), present when the policy
    /// tracks confidence and tracking is enabled.
    pub confidence: Option<Vec<u64>>,
}

impl EngineStats {
    /// Demand hit ratio in `[0, 1]` (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        1.0 - self.llc.miss_ratio()
    }
}

/// A running LLC + predictor instance behind the typed facade.
pub struct PredictionEngine {
    llc: Cache,
    label: String,
    processed: u64,
    decisions: Decisions,
    /// Scratch for the advisory-window announcements, reused across
    /// batches so the hot submit path never allocates.
    window: Vec<UpcomingAccess>,
}

impl PredictionEngine {
    /// Submits demand accesses in order, announcing them ahead of time
    /// in [`LLC_LOOKAHEAD`]-sized windows when the policy subscribes
    /// (the same advisory protocol the batched replay front-ends use)
    /// and mirroring the core stream into
    /// [`ReplacementPolicy::on_core_access`] when the policy observes
    /// it. Returns the outcome tally for this batch.
    pub fn submit_batch(&mut self, batch: &[Access]) -> Decisions {
        let windowed = self.llc.policy_mut().uses_upcoming_accesses();
        let core_stream = self.llc.policy_mut().uses_core_accesses();
        let mut window = std::mem::take(&mut self.window);
        let mut tally = Decisions::default();
        for chunk in batch.chunks(LLC_LOOKAHEAD.max(1)) {
            if windowed {
                window.clear();
                window.extend(chunk.iter().map(|a| UpcomingAccess::new(a, false)));
                self.llc.policy_mut().on_upcoming_accesses(&window);
            }
            for access in chunk {
                if core_stream {
                    self.llc.policy_mut().on_core_access(access);
                }
                match self.llc.access(access, false) {
                    AccessResult::Hit => tally.hits += 1,
                    AccessResult::Miss { .. } => tally.misses += 1,
                    AccessResult::Bypassed => tally.bypassed += 1,
                }
                tally.processed += 1;
            }
        }
        self.window = window;
        self.processed += tally.processed;
        self.decisions.merge(&tally);
        tally
    }

    /// Replays a recorded LLC stream through this engine — the exact
    /// filtered-stream protocol (lookahead prefetches, announced
    /// windows, core-stream delivery) of `LlcRecording::replay_llc`.
    pub fn replay(&mut self, recording: &LlcRecording) {
        recording.replay_llc(&mut self.llc);
    }

    /// A point-in-time statistics snapshot.
    pub fn snapshot(&self) -> EngineStats {
        EngineStats {
            label: self.label.clone(),
            processed: self.processed,
            llc: *self.llc.stats(),
            confidence: self.llc.policy().confidence_histogram(),
        }
    }

    /// Running tally across every batch submitted so far.
    pub fn decisions(&self) -> &Decisions {
        &self.decisions
    }

    /// The engine's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The underlying LLC (stats, probes, geometry).
    pub fn cache(&self) -> &Cache {
        &self.llc
    }

    /// Mutable access to the underlying LLC, for simulation front-ends
    /// that drive the cache directly (hierarchy sims, replay loops)
    /// while construction still flows through the facade.
    pub fn cache_mut(&mut self) -> &mut Cache {
        &mut self.llc
    }

    /// Unwraps the engine into its LLC, for front-ends that take
    /// ownership (e.g. hierarchy construction).
    pub fn into_llc(self) -> Cache {
        self.llc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpppb::{Mpppb, MpppbConfig, CONFIDENCE_BINS};

    fn engine(track: bool) -> PredictionEngine {
        EngineConfig::new(CacheConfig::llc_single())
            .policy_with(|llc| Box::new(Mpppb::new(MpppbConfig::single_thread(llc), llc)))
            .label("test")
            .track_confidence(track)
            .build()
    }

    fn stream(n: usize) -> Vec<Access> {
        (0..n)
            .map(|i| MemoryAccess::load(0x400000 + (i as u64 % 7) * 4, (i as u64 % 997) << 6))
            .collect()
    }

    #[test]
    fn batch_tally_matches_llc_stats() {
        let mut e = engine(false);
        let d = e.submit_batch(&stream(4096));
        assert_eq!(d.processed, 4096);
        assert_eq!(d.processed, d.hits + d.misses + d.bypassed);
        let s = e.snapshot();
        assert_eq!(s.processed, 4096);
        assert_eq!(s.llc.demand_hits, d.hits);
        assert_eq!(s.llc.demand_misses, d.misses + d.bypassed);
        assert_eq!(s.llc.bypasses, d.bypassed);
        assert_eq!(e.decisions(), &d);
        assert_eq!(s.label, "test");
    }

    #[test]
    fn confidence_histogram_present_only_when_tracked() {
        let mut e = engine(false);
        e.submit_batch(&stream(512));
        assert!(e.snapshot().confidence.is_none());

        let mut e = engine(true);
        let d = e.submit_batch(&stream(512));
        let hist = e.snapshot().confidence.expect("tracking enabled");
        assert_eq!(hist.len(), CONFIDENCE_BINS);
        // Every access produces exactly one prediction.
        assert_eq!(hist.iter().sum::<u64>(), d.processed);
    }

    #[test]
    fn submit_batch_is_window_invariant() {
        // The announced window is advisory: feeding the same stream in
        // different batch sizes must land on identical stats.
        let accesses = stream(2048);
        let mut whole = engine(false);
        whole.submit_batch(&accesses);
        let mut pieces = engine(false);
        for chunk in accesses.chunks(13) {
            pieces.submit_batch(chunk);
        }
        assert_eq!(whole.snapshot().llc, pieces.snapshot().llc);
    }

    #[test]
    #[should_panic(expected = "no policy configured")]
    fn build_without_policy_panics() {
        let _ = EngineConfig::new(CacheConfig::llc_single()).build();
    }
}

//! Property tests for the predict/train pipeline's fast-path
//! ingredients: the sampler-set membership bitset and the flag-lane
//! offset patching that lets windows be computed before access outcomes
//! are known.

use mrp_core::context::FeatureContext;
use mrp_core::feature::{Feature, FeatureKind};
use mrp_core::plan::FeaturePlan;
use mrp_core::sampler::SampledSetFilter;
use mrp_core::simd;
use proptest::prelude::*;

/// The arithmetic definition of sampled-set membership the filter must
/// reproduce: sets at multiples of the stride, first `sampler_sets` of
/// them (see `MultiperspectivePredictor::sampler_set`).
fn is_sampled_reference(set: u32, stride: u32, sampler_sets: u32) -> bool {
    let stride = stride.max(1);
    set.is_multiple_of(stride) && set / stride < sampler_sets
}

proptest! {
    /// The O(1) bitset gate must never skip the train stage for a set
    /// the sampler owns (a false negative silently stops training), nor
    /// admit one it doesn't (a false positive corrupts the sampler
    /// indexing): exact equivalence with the arithmetic definition.
    #[test]
    fn sampled_set_filter_is_exact(
        sets_log2 in 1u32..=14,
        sampler_sets in 0u32..=512,
        stride_jitter in 0u32..=3,
    ) {
        let llc_sets = 1u32 << sets_log2;
        // The shipped configurations derive the stride from the set
        // count; also sweep deliberately mismatched strides.
        let stride = ((llc_sets / sampler_sets.max(1)).max(1)).saturating_add(stride_jitter);
        let filter = SampledSetFilter::new(llc_sets, stride, sampler_sets);
        for set in 0..llc_sets {
            prop_assert_eq!(
                filter.contains(set),
                is_sampled_reference(set, stride, sampler_sets),
                "set {} (stride {}, sampler_sets {})",
                set,
                stride,
                sampler_sets
            );
        }
        // Out-of-range probes must be negative, not out-of-bounds.
        prop_assert!(!filter.contains(llc_sets));
        prop_assert!(!filter.contains(u32::MAX));
    }

    /// Flag patching over flag-zeroed offsets must be bit-identical to
    /// computing the offsets with the true flags, for every kernel
    /// level — the identity the decoupled predict stage rests on.
    #[test]
    fn flag_patching_matches_direct_offsets(
        pc in any::<u64>(),
        address in any::<u64>(),
        is_mru in any::<bool>(),
        is_insert in any::<bool>(),
        last_miss in any::<bool>(),
        history_seed in any::<u64>(),
        depth in 0usize..=18,
    ) {
        let features = vec![
            Feature::new(9, FeatureKind::Burst, true),
            Feature::new(7, FeatureKind::Pc { begin: 0, end: 63, which: 3 }, true),
            Feature::new(5, FeatureKind::Insert, false),
            Feature::new(3, FeatureKind::Address { begin: 6, end: 31 }, true),
            Feature::new(11, FeatureKind::LastMiss, true),
            Feature::new(2, FeatureKind::Bias, false),
        ];
        let plan = FeaturePlan::new(&features);
        let history: Vec<u64> = (0..depth as u64)
            .map(|i| history_seed.wrapping_mul(i.wrapping_add(1)))
            .collect();
        let blank = FeatureContext {
            pc,
            address,
            pc_history: &history,
            is_mru: false,
            is_insert: false,
            last_miss: false,
        };
        let true_ctx = FeatureContext {
            is_mru,
            is_insert,
            last_miss,
            ..blank
        };
        let (mut patched, mut direct) = (Vec::new(), Vec::new());
        for &level in simd::available_levels() {
            plan.compute_offsets_with(level, &blank, &mut patched);
            plan.patch_flags(&mut patched, pc, is_mru, is_insert, last_miss);
            plan.compute_offsets_with(level, &true_ctx, &mut direct);
            prop_assert_eq!(&patched, &direct, "kernel level {:?}", level);
        }
    }
}

//! Feature design-space exploration (paper §5).
//!
//! The paper finds its feature sets by starting "with a large set of
//! randomly chosen features", evaluating them "with a fast simulator that
//! only measures average MPKI", then refining with "a hill-climbing
//! algorithm" (§5.1). This crate
//! provides that machinery at laptop scale:
//!
//! * [`fast_sim`] — a fast MPKI-only evaluator: the LLC-filtered access
//!   stream of each workload is recorded once, then every candidate
//!   feature set replays the recorded stream against a bare LLC (no
//!   L1/L2/timing re-simulation per candidate).
//! * [`random`] — uniform random generation of parameterized features and
//!   16-feature sets.
//! * [`hillclimb`] — the paper's hill-climbing moves: replace a feature
//!   with a random one, duplicate another feature over it, or perturb one
//!   parameter; keep the change iff average MPKI improves.
//! * [`crossval`] — the two-subset cross-validation split used for the
//!   single-thread feature sets (§5.2).

pub mod crossval;
pub mod fast_sim;
pub mod hillclimb;
pub mod random;

pub use fast_sim::{FastEvaluator, LlcTrace};
pub use hillclimb::{HillClimbReport, HillClimber};
pub use random::RandomFeatures;

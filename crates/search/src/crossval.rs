//! Cross-validation split of the workload suite (§5.2).

use mrp_trace::Workload;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Randomly partitions workloads into two near-halves, as the paper does
/// with its 99 program segments (50/49). Features developed by searching
/// on one subset are *reported* on the other, so no feature set is tuned
/// on the workloads it is evaluated with.
pub fn split(workloads: &[Workload], seed: u64) -> (Vec<Workload>, Vec<Workload>) {
    let mut shuffled: Vec<Workload> = workloads.to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    shuffled.shuffle(&mut rng);
    let mid = shuffled.len().div_ceil(2);
    let second = shuffled.split_off(mid);
    (shuffled, second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_trace::workloads;
    use std::collections::HashSet;

    #[test]
    fn split_partitions_the_suite() {
        let suite = workloads::suite();
        let (a, b) = split(&suite, 3);
        assert_eq!(a.len() + b.len(), suite.len());
        assert_eq!(a.len(), 17);
        assert_eq!(b.len(), 16);
        let names: HashSet<&str> = a.iter().chain(&b).map(|w| w.name()).collect();
        assert_eq!(names.len(), suite.len(), "subsets must be disjoint");
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let suite = workloads::suite();
        let (a1, _) = split(&suite, 3);
        let (a2, _) = split(&suite, 3);
        let n1: Vec<&str> = a1.iter().map(|w| w.name()).collect();
        let n2: Vec<&str> = a2.iter().map(|w| w.name()).collect();
        assert_eq!(n1, n2);
        let (a3, _) = split(&suite, 4);
        let n3: Vec<&str> = a3.iter().map(|w| w.name()).collect();
        assert_ne!(n1, n3);
    }
}

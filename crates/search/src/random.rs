//! Random generation of parameterized features.

use mrp_core::{Feature, FeatureKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random generator over the feature parameter space (§5.1: the
/// initial population is 4,000 randomly chosen sets of 16 features).
#[derive(Debug)]
pub struct RandomFeatures {
    rng: StdRng,
}

impl RandomFeatures {
    /// Creates a deterministic generator.
    pub fn new(seed: u64) -> Self {
        RandomFeatures {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws one random feature.
    pub fn feature(&mut self) -> Feature {
        let assoc = self.rng.gen_range(1..=18u8);
        let xor_pc = self.rng.gen_bool(0.5);
        let kind = match self.rng.gen_range(0..7u8) {
            0 => {
                let begin = self.rng.gen_range(0..20u8);
                let end = begin + self.rng.gen_range(1..=48u8).min(63 - begin);
                FeatureKind::Pc {
                    begin,
                    end,
                    which: self.rng.gen_range(0..=17u8),
                }
            }
            1 => {
                let begin = self.rng.gen_range(6..24u8);
                let end = begin + self.rng.gen_range(1..=16u8).min(40 - begin);
                FeatureKind::Address { begin, end }
            }
            2 => FeatureKind::Bias,
            3 => FeatureKind::Burst,
            4 => FeatureKind::Insert,
            5 => FeatureKind::LastMiss,
            _ => {
                let begin = self.rng.gen_range(0..5u8);
                let end = begin + self.rng.gen_range(1..=5u8).min(5 - begin).max(1);
                FeatureKind::Offset {
                    begin,
                    end: end.min(5).max(begin),
                }
            }
        };
        Feature::new(assoc, kind, xor_pc)
    }

    /// Draws a set of `n` random features.
    pub fn feature_set(&mut self, n: usize) -> Vec<Feature> {
        (0..n).map(|_| self.feature()).collect()
    }

    /// Perturbs one parameter of `feature` slightly (one of the
    /// hill-climbing moves).
    pub fn perturb(&mut self, feature: &Feature) -> Feature {
        let mut assoc = feature.assoc;
        let mut xor_pc = feature.xor_pc;
        let mut kind = feature.kind;
        match self.rng.gen_range(0..3u8) {
            0 => {
                let delta: i8 = if self.rng.gen_bool(0.5) { 1 } else { -1 };
                assoc = assoc.saturating_add_signed(delta).clamp(1, 18);
            }
            1 => {
                xor_pc = !xor_pc;
            }
            _ => {
                kind = match kind {
                    FeatureKind::Pc { begin, end, which } => {
                        let which = which.saturating_add_signed(if self.rng.gen_bool(0.5) {
                            1
                        } else {
                            -1
                        });
                        FeatureKind::Pc {
                            begin,
                            end,
                            which: which.min(17),
                        }
                    }
                    FeatureKind::Address { begin, end } => {
                        let end =
                            end.saturating_add_signed(if self.rng.gen_bool(0.5) { 1 } else { -1 });
                        FeatureKind::Address {
                            begin,
                            end: end.max(begin),
                        }
                    }
                    FeatureKind::Offset { begin, end } => {
                        let end = end
                            .saturating_add_signed(if self.rng.gen_bool(0.5) { 1 } else { -1 })
                            .min(5);
                        FeatureKind::Offset {
                            begin: begin.min(end),
                            end: end.max(begin.min(end)),
                        }
                    }
                    other => other,
                };
            }
        }
        Feature::new(assoc, kind, xor_pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_features_are_valid() {
        let mut g = RandomFeatures::new(1);
        for _ in 0..2000 {
            let f = g.feature();
            assert!((1..=18).contains(&f.assoc));
            assert!(f.table_size() >= 1 && f.table_size() <= 256);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = RandomFeatures::new(9).feature_set(16);
        let b = RandomFeatures::new(9).feature_set(16);
        assert_eq!(a, b);
    }

    #[test]
    fn generator_covers_all_kinds() {
        let mut g = RandomFeatures::new(2);
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..500 {
            kinds.insert(std::mem::discriminant(&g.feature().kind));
        }
        assert_eq!(kinds.len(), 7, "all seven feature types should appear");
    }

    #[test]
    fn perturbation_yields_valid_features() {
        let mut g = RandomFeatures::new(3);
        for _ in 0..500 {
            let f = g.feature();
            let p = g.perturb(&f);
            assert!((1..=18).contains(&p.assoc));
            let _ = p.table_size();
        }
    }

    #[test]
    fn perturbation_changes_something_usually() {
        let mut g = RandomFeatures::new(4);
        let f = g.feature();
        let changed = (0..50).filter(|_| g.perturb(&f) != f).count();
        assert!(changed > 25, "perturb changed only {changed}/50");
    }
}
